// Figure 3c reproduction: CPU usage of the Weaver processes while streaming
// 10,000 events/s batched as 10 events per transaction.
//
// Finding to reproduce: "a relatively high utilization of the timestamper
// process of Weaver" — the ordering service saturates while the shard
// (storage) processes stay well below it. The paper flags this as an entry
// point for optimizing Weaver.
#include <cstdio>

#include "generator/models/event_mix_model.h"
#include "generator/stream_generator.h"
#include "harness/report.h"
#include "sut/weaverlite/experiment.h"

using namespace graphtides;

int main() {
  std::printf("%s", SectionHeader(
      "Fig. 3c — CPU usage of weaverlite processes @ 10k ev/s, "
      "10 events/tx").c_str());

  constexpr double kWindowSeconds = 60.0;
  EventMixModelOptions model_options;  // Table 3 defaults
  model_options.ba = {10000, 250, 50};
  EventMixModel model(model_options);
  StreamGeneratorOptions gen;
  gen.rounds = static_cast<size_t>(10000 * kWindowSeconds);
  gen.seed = 42;
  gen.emit_phase_markers = false;
  auto stream = StreamGenerator(&model, gen).Generate();
  if (!stream.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 stream.status().ToString().c_str());
    return 1;
  }

  WeaverExperimentConfig config;
  config.target_rate_eps = 10000.0;
  config.events_per_tx = 10;
  config.max_duration = Duration::FromSeconds(kWindowSeconds);
  auto result = RunWeaverExperiment(stream->events, config);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("%s", ConfigBlock({
      {"Workload", "Table 3 event mix over BA(10000, 250, 50) bootstrap"},
      {"Streaming rate", "10000 ev/s, 10 events per transaction"},
      {"Applied rate",
       TextTable::FormatDouble(result->AppliedRateEps(), 1) + " ev/s"},
      {"Shards", std::to_string(result->shard_utilization.size())},
  }).c_str());

  std::printf("\ncpu utilization [%%] per second of virtual time:\n");
  std::printf("%-22s", "weaver-timestamper:");
  for (double u : result->timestamper_utilization) {
    std::printf(" %3.0f", u * 100.0);
  }
  std::printf("\n");
  for (size_t s = 0; s < result->shard_utilization.size(); ++s) {
    std::printf("%-22s",
                ("weaver-shard-" + std::to_string(s) + ":").c_str());
    for (double u : result->shard_utilization[s]) {
      std::printf(" %3.0f", u * 100.0);
    }
    std::printf("\n");
  }

  // Aggregate comparison.
  auto mean_of = [](const std::vector<double>& v) {
    if (v.size() <= 2) return 0.0;
    double sum = 0.0;
    for (size_t i = 1; i + 1 < v.size(); ++i) sum += v[i];
    return sum / static_cast<double>(v.size() - 2);
  };
  const double ts_mean = mean_of(result->timestamper_utilization);
  double shard_mean = 0.0;
  for (const auto& s : result->shard_utilization) shard_mean += mean_of(s);
  shard_mean /= static_cast<double>(result->shard_utilization.size());
  std::printf("\nmean steady-state cpu: timestamper %.0f%%, shards %.0f%%\n",
              ts_mean * 100.0, shard_mean * 100.0);
  std::printf(
      "\nExpected shape (paper): the timestamper consumes far more cycles\n"
      "than the shard processes — it is the write-path bottleneck.\n");
  return 0;
}
