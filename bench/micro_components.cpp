// Component microbenchmarks (google-benchmark): the framework's own hot
// paths — event (de)serialization, graph mutation, CSR construction, the
// generator round loop, the rate controller, the SPSC queue, and the batch
// algorithms on realistic snapshots. These back the performance claims in
// DESIGN.md and catch regressions in the measurement substrate itself (a
// slow replayer would distort every platform evaluation built on it).
#include <benchmark/benchmark.h>

#include "algorithms/components.h"
#include "algorithms/pagerank.h"
#include "algorithms/triangles.h"
#include "common/random.h"
#include "generator/bootstrap.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "replayer/rate_controller.h"
#include "replayer/spsc_queue.h"
#include "stream/event.h"
#include "stream/stream_file.h"

namespace graphtides {
namespace {

std::vector<Event> SocialStream(size_t rounds) {
  SocialNetworkModel model;
  StreamGeneratorOptions options;
  options.rounds = rounds;
  options.seed = 1;
  options.emit_phase_markers = false;
  auto stream = StreamGenerator(&model, options).Generate();
  return std::move(stream).value().events;
}

Graph BaGraph(size_t n) {
  TopologyIndex topology;
  Rng rng(3);
  GeneratorContext ctx(&topology, &rng);
  std::vector<Event> events;
  GraphBuilder builder(&topology, &ctx, &events);
  (void)BootstrapBarabasiAlbert(builder, ctx, {n, 20, 5});
  Graph graph;
  (void)graph.ApplyAll(events);
  return graph;
}

void BM_EventSerialize(benchmark::State& state) {
  const Event e = Event::AddEdge(123456, 654321, R"({"w":42,"since":7})");
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.ToCsvLine());
  }
}
BENCHMARK(BM_EventSerialize);

void BM_EventParse(benchmark::State& state) {
  const std::string line =
      Event::AddEdge(123456, 654321, R"({"w":42,"since":7})").ToCsvLine();
  for (auto _ : state) {
    auto parsed = ParseEventLine(line);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_EventParse);

void BM_GraphApplyStream(benchmark::State& state) {
  const std::vector<Event> events = SocialStream(20000);
  for (auto _ : state) {
    Graph graph;
    for (const Event& e : events) {
      benchmark::DoNotOptimize(graph.Apply(e).ok());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_GraphApplyStream);

void BM_GeneratorRound(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SocialNetworkModel model;
    StreamGeneratorOptions options;
    options.rounds = 10000;
    options.seed = 5;
    state.ResumeTiming();
    auto stream = StreamGenerator(&model, options).Generate();
    benchmark::DoNotOptimize(stream);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_GeneratorRound);

void BM_CsrConstruction(benchmark::State& state) {
  const Graph graph = BaGraph(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    const CsrGraph csr = CsrGraph::FromGraph(graph);
    benchmark::DoNotOptimize(csr.num_edges());
  }
}
BENCHMARK(BM_CsrConstruction)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PageRank(benchmark::State& state) {
  const CsrGraph csr =
      CsrGraph::FromGraph(BaGraph(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    const PageRankResult pr = PageRank(csr);
    benchmark::DoNotOptimize(pr.ranks.data());
  }
}
BENCHMARK(BM_PageRank)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_TriangleCount(benchmark::State& state) {
  const CsrGraph csr =
      CsrGraph::FromGraph(BaGraph(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(csr));
  }
}
BENCHMARK(BM_TriangleCount)->Arg(1000)->Arg(10000);

void BM_Wcc(benchmark::State& state) {
  const CsrGraph csr = CsrGraph::FromGraph(BaGraph(50000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(WeaklyConnectedComponents(csr).num_components);
  }
}
BENCHMARK(BM_Wcc);

void BM_SpscQueueRoundTrip(benchmark::State& state) {
  SpscQueue<Event> queue(1024);
  const Event e = Event::AddVertex(42, "state");
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.TryPush(e));
    benchmark::DoNotOptimize(queue.TryPop());
  }
}
BENCHMARK(BM_SpscQueueRoundTrip);

void BM_RateControllerSchedule(benchmark::State& state) {
  VirtualClock clock;
  RateController rate(1e6, &clock);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rate.NextDeadline());
  }
}
BENCHMARK(BM_RateControllerSchedule);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(100000, 1.0);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_StreamTextRoundTrip(benchmark::State& state) {
  const std::vector<Event> events = SocialStream(5000);
  for (auto _ : state) {
    const std::string text = FormatStreamText(events);
    auto parsed = ParseStreamText(text);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_StreamTextRoundTrip);

}  // namespace
}  // namespace graphtides
