// Figure 3b reproduction: events processed in the (simulated) Weaver store
// under different streaming rates and transaction batchings.
//
// Paper setup (Table 3): BA bootstrap n = 10000, m0 = 250, M = 50; event
// mix 10% CREATE_VERTEX / 5% REMOVE_VERTEX / 35% UPDATE_VERTEX /
// 35% CREATE_EDGE / 15% REMOVE_EDGE; Zipf-biased selections. Streaming
// rates 10^2, 10^3, 10^4 events/s, batched as 1 event/tx and 10 events/tx.
//
// Finding to reproduce: "Independent of the actual streaming rates, Weaver
// appeared to have an upper bound for throughput" — the store keeps pace
// with low rates but backthrottles fast ones; batching raises the ceiling
// because the timestamper's fixed per-transaction cost amortizes.
#include <cstdio>

#include "generator/models/event_mix_model.h"
#include "generator/stream_generator.h"
#include "harness/report.h"
#include "sut/weaverlite/experiment.h"

using namespace graphtides;

namespace {

// Observation window (the paper plots 500 s; 60 s shows the same plateau).
constexpr double kWindowSeconds = 60.0;

std::vector<Event> MakeTable3Stream(size_t evolution_events, uint64_t seed) {
  EventMixModelOptions options;  // defaults are the Table 3 mix and biases
  options.ba = {10000, 250, 50};
  EventMixModel model(options);
  StreamGeneratorOptions gen;
  gen.rounds = evolution_events;
  gen.seed = seed;
  gen.emit_phase_markers = false;
  auto stream = StreamGenerator(&model, gen).Generate();
  if (!stream.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 stream.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(stream).value().events;
}

}  // namespace

int main() {
  std::printf("%s", SectionHeader(
      "Fig. 3b — events processed in weaverlite at different streaming "
      "rates / batchings").c_str());
  std::printf("%s", ConfigBlock({
      {"Bootstrap graph", "BarabasiAlbert(n=10000, m0=250, M=50)"},
      {"Event mix", "cv 10% / rv 5% / uv 35% / ce 35% / re 15% / ue 0%"},
      {"Vertex selection", "removals Zipf toward low degree; updates uniform"},
      {"Edge selection", "source uniform; target Zipf toward high degree"},
      {"Rates x batching", "{100, 1000, 10000} ev/s x {1, 10} ev/tx"},
      {"Window", TextTable::FormatDouble(kWindowSeconds, 0) + " virtual s"},
  }).c_str());

  // One stream sized for the largest configuration, truncated per rate.
  const std::vector<Event> full = MakeTable3Stream(
      static_cast<size_t>(10000 * kWindowSeconds), 42);

  TextTable summary({"rate [ev/s]", "ev/tx", "offered", "applied",
                     "applied rate [ev/s]", "kept pace"});
  for (const size_t batch : {size_t{1}, size_t{10}}) {
    for (const double rate : {100.0, 1000.0, 10000.0}) {
      const size_t want =
          static_cast<size_t>(rate * kWindowSeconds);
      std::vector<Event> slice;
      size_t graph_ops = 0;
      for (const Event& e : full) {
        slice.push_back(e);
        if (IsGraphOp(e.type) && ++graph_ops >= want) break;
      }

      WeaverExperimentConfig config;
      config.target_rate_eps = rate;
      config.events_per_tx = batch;
      config.max_duration = Duration::FromSeconds(kWindowSeconds);
      auto result = RunWeaverExperiment(slice, config);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }

      const bool kept_pace =
          result->AppliedRateEps() > 0.9 * rate;
      summary.AddRow({TextTable::FormatDouble(rate, 0),
                      std::to_string(batch),
                      std::to_string(result->events_offered),
                      std::to_string(result->events_applied),
                      TextTable::FormatDouble(result->AppliedRateEps(), 1),
                      kept_pace ? "yes" : "no (backthrottled)"});

      // The Fig. 3b series: events processed per second over time.
      std::printf("\nseries rate=%g ev/s batch=%zu [events applied per "
                  "second]:\n  ",
                  rate, batch);
      const auto& series = result->processed_per_interval;
      for (size_t i = 0; i < series.size(); ++i) {
        std::printf("%g%s", series[i], i + 1 < series.size() ? " " : "\n");
      }
    }
  }
  std::printf("\n%s", summary.ToString().c_str());
  std::printf(
      "\nExpected shape (paper): at 100 ev/s the store keeps pace; at\n"
      "10^4 ev/s throughput saturates at a rate-independent ceiling\n"
      "(~1.1k ev/s at 1 ev/tx, ~8.7k ev/s at 10 ev/tx here): the\n"
      "timestamper's per-transaction cost bounds the write path, and\n"
      "batching shifts the bound.\n");
  return 0;
}
