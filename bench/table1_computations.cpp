// Table 1 reproduction: the paper's catalogue of example computations for
// stream-based graph systems, executed end-to-end on generated graphs.
//
//   Graph statistics     global properties, degree distribution
//   Graph properties     PageRank, cycle detection
//   Routing & traversals Bellman-Ford, Floyd-Warshall, BFS, spanning tree,
//                        diameter estimation
//   Graph theory         vertex coloring, triangle count
//   Communities          weakly connected components, community detection
//   Temporal analyses    trend analyses, online sampling (online rank)
//
// For each computation this bench reports the wall time on a
// Barabasi-Albert graph snapshot plus a characteristic output value, so a
// platform evaluation can pick computations with known baseline behavior.
#include <chrono>
#include <cstdio>

#include "common/flags.h"
#include "common/parallel.h"

#include "algorithms/coloring.h"
#include "algorithms/communities.h"
#include "algorithms/kmeans.h"
#include "algorithms/components.h"
#include "algorithms/cycles.h"
#include "algorithms/online_pagerank.h"
#include "algorithms/pagerank.h"
#include "algorithms/shortest_paths.h"
#include "algorithms/statistics.h"
#include "algorithms/traversal.h"
#include "algorithms/triangles.h"
#include "analysis/trend.h"
#include "generator/bootstrap.h"
#include "generator/stream_generator.h"
#include "graph/csr.h"
#include "harness/report.h"

using namespace graphtides;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "table1_computations: %s\n",
                 flags_or.status().ToString().c_str());
    return 1;
  }
  auto threads_flag = flags_or->GetInt("threads", 0);
  if (!threads_flag.ok() || *threads_flag < 0) {
    std::fprintf(stderr, "table1_computations: --threads expects N >= 0\n");
    return 1;
  }
  const size_t threads = ResolveThreads(static_cast<size_t>(*threads_flag));

  std::printf("%s", SectionHeader(
      "Table 1 — example computations for stream-based graph systems").c_str());

  // Build the input graph from a bootstrap stream (BA, 50k vertices).
  TopologyIndex topology;
  Rng rng(7);
  GeneratorContext ctx(&topology, &rng);
  std::vector<Event> events;
  GraphBuilder builder(&topology, &ctx, &events);
  BarabasiAlbertParams params{50000, 100, 5};
  if (Status st = BootstrapBarabasiAlbert(builder, ctx, params); !st.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n", st.ToString().c_str());
    return 1;
  }
  Graph graph;
  if (Status st = graph.ApplyAll(events); !st.ok()) {
    std::fprintf(stderr, "apply failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const CsrGraph csr = CsrGraph::FromGraph(graph, threads);
  std::printf("input: BarabasiAlbert(n=%zu, m0=%zu, M=%zu) -> %zu vertices, "
              "%zu edges (compute threads: %zu)\n\n",
              params.n, params.m0, params.m, csr.num_vertices(),
              csr.num_edges(), threads);

  TextTable table({"category", "computation", "time [ms]", "result"});
  auto add = [&](const char* category, const char* name, double ms,
                 const std::string& result) {
    table.AddRow({category, name, TextTable::FormatDouble(ms, 2), result});
  };

  {
    auto t = std::chrono::steady_clock::now();
    const GraphStatistics s = ComputeGraphStatistics(csr, threads);
    add("Graph statistics", "global properties", MillisSince(t),
        "mean out-deg " + TextTable::FormatDouble(s.mean_out_degree, 2) +
            ", gini " + TextTable::FormatDouble(s.out_degree_gini, 2));
  }
  {
    auto t = std::chrono::steady_clock::now();
    const auto dist = OutDegreeDistribution(csr);
    add("Graph statistics", "degree distribution", MillisSince(t),
        std::to_string(dist.size()) + " distinct degrees");
  }
  {
    auto t = std::chrono::steady_clock::now();
    const PageRankResult pr = PageRank(csr, {.threads = threads});
    add("Graph properties", "PageRank", MillisSince(t),
        std::to_string(pr.iterations) + " iterations, top rank " +
            TextTable::FormatDouble(pr.ranks[TopKByRank(pr.ranks, 1)[0]], 5));
  }
  {
    auto t = std::chrono::steady_clock::now();
    const bool cyclic = HasCycle(csr);
    add("Graph properties", "cycle detection", MillisSince(t),
        cyclic ? "cyclic" : "acyclic");
  }
  {
    auto t = std::chrono::steady_clock::now();
    const BellmanFordResult bf = BellmanFord(csr, 0, UnitWeights());
    size_t reached = 0;
    for (double d : bf.distance) {
      if (d != kInfiniteDistance) ++reached;
    }
    add("Routing & traversals", "Bellman-Ford", MillisSince(t),
        std::to_string(reached) + " reachable, " +
            std::to_string(bf.relaxation_rounds) + " rounds");
  }
  {
    // Floyd-Warshall on a 512-vertex subgraph (O(n^3)).
    TopologyIndex small_topo;
    Rng small_rng(9);
    GeneratorContext small_ctx(&small_topo, &small_rng);
    std::vector<Event> small_events;
    GraphBuilder small_builder(&small_topo, &small_ctx, &small_events);
    (void)BootstrapBarabasiAlbert(small_builder, small_ctx, {512, 10, 4});
    Graph small_graph;
    (void)small_graph.ApplyAll(small_events);
    const CsrGraph small = CsrGraph::FromGraph(small_graph);
    auto t = std::chrono::steady_clock::now();
    auto fw = FloydWarshall(small, UnitWeights());
    add("Routing & traversals", "Floyd-Warshall (n=512)", MillisSince(t),
        fw.ok() ? "all-pairs matrix computed" : fw.status().ToString());
  }
  {
    auto t = std::chrono::steady_clock::now();
    const auto dist = BfsDistancesUndirected(csr, 0);
    uint32_t ecc = 0;
    for (uint32_t d : dist) {
      if (d != kUnreachable) ecc = std::max(ecc, d);
    }
    add("Routing & traversals", "breadth-first search", MillisSince(t),
        "eccentricity(v0) = " + std::to_string(ecc));
  }
  {
    auto t = std::chrono::steady_clock::now();
    const SpanningTree tree = BfsSpanningTree(csr, 0);
    add("Routing & traversals", "spanning tree construction", MillisSince(t),
        std::to_string(tree.reached) + " vertices spanned");
  }
  {
    auto t = std::chrono::steady_clock::now();
    Rng diameter_rng(5);
    const size_t diameter = EstimateDiameter(csr, 4, diameter_rng);
    add("Routing & traversals", "diameter estimation", MillisSince(t),
        "diameter >= " + std::to_string(diameter));
  }
  {
    auto t = std::chrono::steady_clock::now();
    const ColoringResult coloring = GreedyColoring(csr);
    add("Graph theory", "vertex coloring", MillisSince(t),
        std::to_string(coloring.num_colors) + " colors (" +
            (IsProperColoring(csr, coloring.color) ? "proper" : "IMPROPER") +
            ")");
  }
  {
    auto t = std::chrono::steady_clock::now();
    const uint64_t triangles = CountTriangles(csr, threads);
    add("Graph theory", "triangle count", MillisSince(t),
        std::to_string(triangles) + " triangles");
  }
  {
    auto t = std::chrono::steady_clock::now();
    const ComponentsResult wcc =
        WeaklyConnectedComponents(csr, {.threads = threads});
    add("Communities", "weakly connected components", MillisSince(t),
        std::to_string(wcc.num_components) + " components, largest " +
            std::to_string(wcc.LargestSize()));
  }
  {
    auto t = std::chrono::steady_clock::now();
    Rng lp_rng(11);
    const CommunityResult lp = LabelPropagation(csr, lp_rng);
    add("Communities", "community detection (LPA)", MillisSince(t),
        std::to_string(lp.num_communities) + " communities in " +
            std::to_string(lp.rounds) + " rounds");
  }
  {
    auto t = std::chrono::steady_clock::now();
    const auto cores = CoreNumbers(csr);
    uint32_t kmax = 0;
    for (uint32_t c : cores) kmax = std::max(kmax, c);
    add("Communities", "k-core decomposition", MillisSince(t),
        "max core " + std::to_string(kmax));
  }
  {
    auto t = std::chrono::steady_clock::now();
    Rng km_rng(13);
    const auto features = VertexStructuralFeatures(csr);
    auto km = KMeans(features, 4, km_rng);
    add("Communities", "k-means (structural features)", MillisSince(t),
        km.ok() ? std::to_string(km->iterations) + " iterations, inertia " +
                      TextTable::FormatDouble(km->inertia, 1)
                : km.status().ToString());
  }
  {
    // Temporal analyses: trend detection over a timestamped event prefix.
    auto t = std::chrono::steady_clock::now();
    TrendDetector trends;
    Timestamp now;
    for (size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      now = Timestamp::FromSeconds(static_cast<double>(i) / 2000.0);
      if (e.type == EventType::kAddEdge) trends.Observe(e.edge.dst, now);
    }
    const auto trending = trends.TrendingAt(now);
    add("Temporal analyses", "trend analysis", MillisSince(t),
        std::to_string(trending.size()) + " trending vertices");
  }
  {
    // Temporal analyses: online (converging) rank over the event stream.
    auto t = std::chrono::steady_clock::now();
    OnlinePageRank online;
    for (const Event& e : events) {
      online.OnEventApplied(e);
      online.ProcessPending(16);
    }
    while (online.HasPendingWork()) online.ProcessPending(100000);
    const PageRankResult exact = PageRank(csr, {.threads = threads});
    std::vector<double> approx(csr.num_vertices());
    for (CsrGraph::Index v = 0; v < csr.num_vertices(); ++v) {
      approx[v] = online.RankOf(csr.IdOf(v));
    }
    add("Temporal analyses", "online rank (converging)", MillisSince(t),
        "median rel. error " +
            TextTable::FormatDouble(MedianRelativeError(approx, exact.ranks),
                                    4));
  }

  std::printf("%s", table.ToString().c_str());
  return 0;
}
