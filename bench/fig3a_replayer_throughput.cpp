// Figure 3a reproduction: throughput of the Graph Stream Replayer for given
// target rates, pipe vs TCP transport.
//
// Paper setup (Table 2): a single machine; the replayer streams a generated
// social-network workload either over a pipe (STDOUT -> STDIN of a
// measurement process) or a local TCP socket. For each target rate the
// paper reports the median achieved throughput with a band from the 5th
// percentile to the maximum.
//
// Here the pipe transport writes CSV lines through a FILE* pipe buffer to
// /dev/null-equivalent (a counting consumer), and the TCP transport streams
// over a loopback socket to an in-process line server — both measure the
// same code paths (serialization + transport write + pacing).
#include <cstdio>

#include "common/stats.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "harness/report.h"
#include "replayer/replayer.h"
#include "replayer/tcp.h"

using namespace graphtides;

namespace {

std::vector<Event> MakeWorkload(size_t rounds) {
  SocialNetworkModel model;
  StreamGeneratorOptions options;
  options.rounds = rounds;
  options.seed = 3;
  options.emit_phase_markers = false;
  auto stream = StreamGenerator(&model, options).Generate();
  if (!stream.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 stream.status().ToString().c_str());
    std::exit(1);
  }
  // Strip controls so the replay rate is exactly the configured target.
  std::vector<Event> events;
  for (Event& e : stream->events) {
    if (IsGraphOp(e.type)) events.push_back(std::move(e));
  }
  return events;
}

struct RateObservation {
  double median = 0.0;
  double p05 = 0.0;
  double max = 0.0;
  double lag_p50_us = 0.0;
  double lag_p99_us = 0.0;
  double lag_max_us = 0.0;
};

/// Achieved-rate distribution over 100 ms bins across `repetitions` runs.
RateObservation Measure(const std::vector<Event>& events, double target_rate,
                        bool tcp, int repetitions) {
  std::vector<double> bin_rates;
  std::vector<double> lags;
  for (int rep = 0; rep < repetitions; ++rep) {
    ReplayerOptions options;
    options.base_rate_eps = target_rate;
    options.stats_bin = Duration::FromMillis(100);
    StreamReplayer replayer(options);

    Result<ReplayStats> stats = Status::Internal("unset");
    if (tcp) {
      TcpLineServer server;
      auto port = server.Start(nullptr);
      if (!port.ok()) {
        std::fprintf(stderr, "server start failed\n");
        std::exit(1);
      }
      TcpSink sink;
      if (!sink.Connect("127.0.0.1", *port).ok()) {
        std::fprintf(stderr, "connect failed\n");
        std::exit(1);
      }
      stats = replayer.Replay(events, &sink);
      server.Join();
    } else {
      std::FILE* devnull = std::fopen("/dev/null", "w");
      PipeSink sink(devnull);
      stats = replayer.Replay(events, &sink);
      std::fclose(devnull);
    }
    if (!stats.ok()) {
      std::fprintf(stderr, "replay failed: %s\n",
                   stats.status().ToString().c_str());
      std::exit(1);
    }
    // Drop the first and last bin (ramp-up / partial bin).
    const auto& series = stats->rate_series;
    for (size_t i = 1; i + 1 < series.size(); ++i) {
      bin_rates.push_back(static_cast<double>(series[i].events) /
                          options.stats_bin.seconds());
    }
    lags.insert(lags.end(), stats->lag_us.begin(), stats->lag_us.end());
  }
  RateObservation obs;
  std::sort(bin_rates.begin(), bin_rates.end());
  obs.median = PercentileSorted(bin_rates, 0.5);
  obs.p05 = PercentileSorted(bin_rates, 0.05);
  obs.max = bin_rates.empty() ? 0.0 : bin_rates.back();
  std::sort(lags.begin(), lags.end());
  obs.lag_p50_us = PercentileSorted(lags, 0.5);
  obs.lag_p99_us = PercentileSorted(lags, 0.99);
  obs.lag_max_us = lags.empty() ? 0.0 : lags.back();
  return obs;
}

}  // namespace

int main() {
  std::printf("%s", SectionHeader(
      "Fig. 3a — Graph Stream Replayer throughput (pipe vs TCP)").c_str());
  std::printf("%s", ConfigBlock({
      {"Setup", "single process (replayer thread pair per run)"},
      {"Workload", "generated social network workload, graph ops only"},
      {"Pipe", "CSV lines through a stdio pipe buffer"},
      {"TCP", "CSV lines over a loopback socket to a line server"},
      {"Measurement", "achieved rate per 100 ms bin; median / 5th pct / max"},
  }).c_str());

  const std::vector<double> targets = {10000, 20000, 40000, 80000,
                                       160000, 320000};
  const int repetitions = 3;

  // Workload sized for ~0.5 s per run at the highest rate and reused
  // (truncated) for lower rates, keeping total bench time small.
  const std::vector<Event> full = MakeWorkload(170000);

  TextTable table({"transport", "target [ev/s]", "median [ev/s]",
                   "p05 [ev/s]", "max [ev/s]", "lag p50 [us]",
                   "lag p99 [us]", "lag max [us]"});
  for (const bool tcp : {false, true}) {
    for (double target : targets) {
      const size_t count = std::min<size_t>(
          full.size(), static_cast<size_t>(target * 0.5));  // ~0.5 s
      const std::vector<Event> slice(full.begin(),
                                     full.begin() + static_cast<long>(count));
      const RateObservation obs =
          Measure(slice, target, tcp, repetitions);
      table.AddRow({tcp ? "tcp" : "pipe",
                    TextTable::FormatDouble(target, 0),
                    TextTable::FormatDouble(obs.median, 0),
                    TextTable::FormatDouble(obs.p05, 0),
                    TextTable::FormatDouble(obs.max, 0),
                    TextTable::FormatDouble(obs.lag_p50_us, 1),
                    TextTable::FormatDouble(obs.lag_p99_us, 1),
                    TextTable::FormatDouble(obs.lag_max_us, 0)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected shape (paper): the achieved median sticks to the target\n"
      "rate across the sweep for both transports, while the measured range\n"
      "— here the per-event emission-lag distribution — widens noticeably\n"
      "at the highest rates.\n");
  return 0;
}
