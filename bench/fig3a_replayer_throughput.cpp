// Figure 3a reproduction: throughput of the Graph Stream Replayer for given
// target rates, pipe vs TCP transport.
//
// Paper setup (Table 2): a single machine; the replayer streams a generated
// social-network workload either over a pipe (STDOUT -> STDIN of a
// measurement process) or a local TCP socket. For each target rate the
// paper reports the median achieved throughput with a band from the 5th
// percentile to the maximum.
//
// Here the pipe transport writes CSV lines through a FILE* pipe buffer to
// /dev/null-equivalent (a counting consumer), and the TCP transport streams
// over a loopback socket to an in-process line server — both measure the
// same code paths (serialization + transport write + pacing).
//
// Shard sweep & CI smoke: the second section measures unthrottled
// ShardedReplayer throughput at 1/2/4/8 lanes and can persist the result
// as a machine-readable baseline.
//
// File-replay sweep: the third section replays the same workload from disk
// through ReplayFile, once from the CSV encoding and once from the
// gt-stream-v2 binary encoding (mmap reader), at 1 and 4 shards — the v2
// rows gate the format's ~2-4x parse-throughput claim via the baseline.
//
//   --quick                ~2 s run: skip the rate sweep, small workload
//   --json PATH            write shard-sweep results as JSON
//   --check-baseline PATH  compare against a previous --json file; exit 1
//                          if any shard count lost > 20% events/s
#include <cstdio>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/flags.h"
#include "common/stats.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "harness/report.h"
#include "replayer/replayer.h"
#include "replayer/sharded_replayer.h"
#include "replayer/tcp.h"
#include "stream/stream_file.h"
#include "stream/v2_writer.h"

using namespace graphtides;

namespace {

std::vector<Event> MakeWorkload(size_t rounds) {
  SocialNetworkModel model;
  StreamGeneratorOptions options;
  options.rounds = rounds;
  options.seed = 3;
  options.emit_phase_markers = false;
  auto stream = StreamGenerator(&model, options).Generate();
  if (!stream.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 stream.status().ToString().c_str());
    std::exit(1);
  }
  // Strip controls so the replay rate is exactly the configured target.
  std::vector<Event> events;
  for (Event& e : stream->events) {
    if (IsGraphOp(e.type)) events.push_back(std::move(e));
  }
  return events;
}

struct RateObservation {
  double median = 0.0;
  double p05 = 0.0;
  double max = 0.0;
  double lag_p50_us = 0.0;
  double lag_p99_us = 0.0;
  double lag_max_us = 0.0;
};

/// Achieved-rate distribution over 100 ms bins across `repetitions` runs.
RateObservation Measure(const std::vector<Event>& events, double target_rate,
                        bool tcp, int repetitions) {
  std::vector<double> bin_rates;
  LatencyHistogram lags;
  for (int rep = 0; rep < repetitions; ++rep) {
    ReplayerOptions options;
    options.base_rate_eps = target_rate;
    options.stats_bin = Duration::FromMillis(100);
    StreamReplayer replayer(options);

    Result<ReplayStats> stats = Status::Internal("unset");
    if (tcp) {
      TcpLineServer server;
      auto port = server.Start(nullptr);
      if (!port.ok()) {
        std::fprintf(stderr, "server start failed\n");
        std::exit(1);
      }
      TcpSink sink;
      if (!sink.Connect("127.0.0.1", *port).ok()) {
        std::fprintf(stderr, "connect failed\n");
        std::exit(1);
      }
      stats = replayer.Replay(events, &sink);
      server.Join();
    } else {
      std::FILE* devnull = std::fopen("/dev/null", "w");
      PipeSink sink(devnull);
      stats = replayer.Replay(events, &sink);
      std::fclose(devnull);
    }
    if (!stats.ok()) {
      std::fprintf(stderr, "replay failed: %s\n",
                   stats.status().ToString().c_str());
      std::exit(1);
    }
    // Drop the first and last bin (ramp-up / partial bin).
    const auto& series = stats->rate_series;
    for (size_t i = 1; i + 1 < series.size(); ++i) {
      bin_rates.push_back(static_cast<double>(series[i].events) /
                          options.stats_bin.seconds());
    }
    lags.Merge(stats->lag);
  }
  RateObservation obs;
  std::sort(bin_rates.begin(), bin_rates.end());
  obs.median = PercentileSorted(bin_rates, 0.5);
  obs.p05 = PercentileSorted(bin_rates, 0.05);
  obs.max = bin_rates.empty() ? 0.0 : bin_rates.back();
  obs.lag_p50_us = lags.ValueAtQuantileMicros(0.5);
  obs.lag_p99_us = lags.ValueAtQuantileMicros(0.99);
  obs.lag_max_us = static_cast<double>(lags.max_nanos()) / 1e3;
  return obs;
}

struct ShardObservation {
  size_t shards = 1;
  double events_per_sec = 0.0;
  double lag_p50_us = 0.0;
  double lag_p99_us = 0.0;
};

/// Unthrottled sharded replay to per-lane /dev/null pipes; median
/// events/s over `repetitions` runs plus emission-jitter percentiles.
ShardObservation MeasureSharded(const std::vector<Event>& events,
                                size_t shards, int repetitions) {
  std::vector<double> rates;
  LatencyHistogram lags;
  for (int rep = 0; rep < repetitions; ++rep) {
    ShardedReplayerOptions options;
    options.shards = shards;
    options.total_rate_eps = 1e9;  // deadlines always past: emit at full speed
    ShardedReplayer replayer(options);

    std::vector<std::FILE*> files;
    std::vector<std::unique_ptr<PipeSink>> pipes;
    std::vector<EventSink*> sinks;
    for (size_t s = 0; s < shards; ++s) {
      files.push_back(std::fopen("/dev/null", "w"));
      pipes.push_back(std::make_unique<PipeSink>(files.back()));
      sinks.push_back(pipes.back().get());
    }
    auto stats = replayer.Replay(events, sinks);
    for (std::FILE* f : files) std::fclose(f);
    if (!stats.ok()) {
      std::fprintf(stderr, "sharded replay failed: %s\n",
                   stats.status().ToString().c_str());
      std::exit(1);
    }
    const double elapsed = stats->aggregate.Elapsed().seconds();
    if (elapsed > 0.0) {
      rates.push_back(
          static_cast<double>(stats->aggregate.events_delivered) / elapsed);
    }
    lags.Merge(stats->aggregate.lag);
  }
  ShardObservation obs;
  obs.shards = shards;
  std::sort(rates.begin(), rates.end());
  obs.events_per_sec = PercentileSorted(rates, 0.5);
  obs.lag_p50_us = lags.ValueAtQuantileMicros(0.5);
  obs.lag_p99_us = lags.ValueAtQuantileMicros(0.99);
  return obs;
}

struct FileReplayObservation {
  size_t shards = 1;
  std::string format;  // "csv" or "v2"
  double events_per_sec = 0.0;
};

/// Unthrottled ReplayFile from disk, end to end in one format: CSV rows
/// parse CSV lines and serialize CSV lines; v2 rows decode mmap'd blocks
/// (a bounds-checked pointer cast per record) and re-encode sealed blocks
/// on the negotiated v2 wire. Each encoding pays its own decode AND its
/// own serializer — the honest format-vs-format comparison.
FileReplayObservation MeasureFileReplay(const std::string& stream_path,
                                        const std::string& format,
                                        size_t shards, int repetitions) {
  const bool v2 = format == "v2";
  std::vector<double> rates;
  for (int rep = 0; rep < repetitions; ++rep) {
    ShardedReplayerOptions options;
    options.shards = shards;
    options.total_rate_eps = 1e9;  // deadlines always past: full speed
    options.wire_format = v2 ? WireFormat::kV2 : WireFormat::kCsv;
    ShardedReplayer replayer(options);

    std::vector<std::FILE*> files;
    std::vector<std::unique_ptr<PipeSink>> pipes;
    std::vector<EventSink*> sinks;
    for (size_t s = 0; s < shards; ++s) {
      files.push_back(std::fopen("/dev/null", "w"));
      pipes.push_back(std::make_unique<PipeSink>(files.back()));
      if (v2) pipes.back()->EnableV2Wire();
      sinks.push_back(pipes.back().get());
    }
    auto stats = replayer.ReplayFile(stream_path, sinks);
    for (std::FILE* f : files) std::fclose(f);
    if (!stats.ok()) {
      std::fprintf(stderr, "file replay failed: %s\n",
                   stats.status().ToString().c_str());
      std::exit(1);
    }
    const double elapsed = stats->aggregate.Elapsed().seconds();
    if (elapsed > 0.0) {
      rates.push_back(
          static_cast<double>(stats->aggregate.events_delivered) / elapsed);
    }
  }
  FileReplayObservation obs;
  obs.shards = shards;
  obs.format = format;
  std::sort(rates.begin(), rates.end());
  obs.events_per_sec = PercentileSorted(rates, 0.5);
  return obs;
}

/// One shard-sweep entry per line so CheckBaseline can re-read the file
/// with sscanf instead of a JSON library.
void WriteJson(const std::string& path,
               const std::vector<ShardObservation>& results,
               const std::vector<FileReplayObservation>& file_results,
               size_t workload_events, bool quick) {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n";
  out << "  \"bench\": \"fig3a_replayer_throughput\",\n";
  out << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"workload_events\": " << workload_events << ",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ShardObservation& r = results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"shards\": %zu, \"events_per_sec\": %.1f, "
                  "\"lag_p50_us\": %.2f, \"lag_p99_us\": %.2f}%s\n",
                  r.shards, r.events_per_sec, r.lag_p50_us, r.lag_p99_us,
                  i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ],\n";
  out << "  \"file_results\": [\n";
  for (size_t i = 0; i < file_results.size(); ++i) {
    const FileReplayObservation& r = file_results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"shards\": %zu, \"format\": \"%s\", "
                  "\"events_per_sec\": %.1f}%s\n",
                  r.shards, r.format.c_str(), r.events_per_sec,
                  i + 1 < file_results.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

/// Returns the number of shard counts that regressed by more than 20%.
int CheckBaseline(const std::string& path,
                  const std::vector<ShardObservation>& results,
                  const std::vector<FileReplayObservation>& file_results) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    return 1;
  }
  int regressions = 0;
  std::string line;
  while (std::getline(in, line)) {
    size_t shards = 0;
    double baseline_eps = 0.0;
    char format[8] = {0};
    double current = -1.0;
    std::string label;
    if (std::sscanf(line.c_str(),
                    " {\"shards\": %zu, \"format\": \"%7[^\"]\", "
                    "\"events_per_sec\": %lf",
                    &shards, format, &baseline_eps) == 3) {
      const auto it = std::find_if(file_results.begin(), file_results.end(),
                                   [&](const FileReplayObservation& r) {
                                     return r.shards == shards &&
                                            r.format == format;
                                   });
      if (it == file_results.end()) continue;
      current = it->events_per_sec;
      label = "shards=" + std::to_string(shards) + " format=" + format;
    } else if (std::sscanf(line.c_str(),
                           " {\"shards\": %zu, \"events_per_sec\": %lf",
                           &shards, &baseline_eps) == 2) {
      const auto it = std::find_if(
          results.begin(), results.end(),
          [shards](const ShardObservation& r) { return r.shards == shards; });
      if (it == results.end()) continue;
      current = it->events_per_sec;
      label = "shards=" + std::to_string(shards);
    } else {
      continue;
    }
    const double floor = 0.8 * baseline_eps;
    if (current < floor) {
      const double delta_pct =
          baseline_eps > 0.0 ? (current / baseline_eps - 1.0) * 100.0 : 0.0;
      std::fprintf(stderr,
                   "REGRESSION %s: %.0f ev/s < 80%% of baseline %.0f ev/s "
                   "(%+.1f%%)\n",
                   label.c_str(), current, baseline_eps, delta_pct);
      ++regressions;
    } else {
      std::printf("baseline ok %s: %.0f ev/s vs baseline %.0f ev/s\n",
                  label.c_str(), current, baseline_eps);
    }
  }
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  const bool quick = flags.GetBool("quick");
  const std::string json_path = flags.GetString("json", "");
  const std::string baseline_path = flags.GetString("check-baseline", "");

  std::printf("%s", SectionHeader(
      "Fig. 3a — Graph Stream Replayer throughput (pipe vs TCP)").c_str());
  std::printf("%s", ConfigBlock({
      {"Setup", "single process (replayer thread pair per run)"},
      {"Workload", "generated social network workload, graph ops only"},
      {"Pipe", "CSV lines through a stdio pipe buffer"},
      {"TCP", "CSV lines over a loopback socket to a line server"},
      {"Measurement", "achieved rate per 100 ms bin; median / 5th pct / max"},
  }).c_str());

  // Workload sized for ~0.5 s per run at the highest rate and reused
  // (truncated) for lower rates, keeping total bench time small. Quick mode
  // trims everything for a ~2 s CI smoke run.
  const std::vector<Event> full = MakeWorkload(quick ? 40000 : 170000);

  if (!quick) {
    const std::vector<double> targets = {10000, 20000, 40000, 80000,
                                         160000, 320000};
    const int repetitions = 3;
    TextTable table({"transport", "target [ev/s]", "median [ev/s]",
                     "p05 [ev/s]", "max [ev/s]", "lag p50 [us]",
                     "lag p99 [us]", "lag max [us]"});
    for (const bool tcp : {false, true}) {
      for (double target : targets) {
        const size_t count = std::min<size_t>(
            full.size(), static_cast<size_t>(target * 0.5));  // ~0.5 s
        const std::vector<Event> slice(
            full.begin(), full.begin() + static_cast<long>(count));
        const RateObservation obs = Measure(slice, target, tcp, repetitions);
        table.AddRow({tcp ? "tcp" : "pipe",
                      TextTable::FormatDouble(target, 0),
                      TextTable::FormatDouble(obs.median, 0),
                      TextTable::FormatDouble(obs.p05, 0),
                      TextTable::FormatDouble(obs.max, 0),
                      TextTable::FormatDouble(obs.lag_p50_us, 1),
                      TextTable::FormatDouble(obs.lag_p99_us, 1),
                      TextTable::FormatDouble(obs.lag_max_us, 0)});
      }
    }
    std::printf("%s", table.ToString().c_str());
    std::printf(
        "\nExpected shape (paper): the achieved median sticks to the target\n"
        "rate across the sweep for both transports, while the measured range\n"
        "— here the per-event emission-lag distribution — widens noticeably\n"
        "at the highest rates.\n");
  }

  std::printf("%s", SectionHeader(
      "Shard sweep — unthrottled ShardedReplayer events/s").c_str());
  const int shard_reps = quick ? 2 : 3;
  std::vector<ShardObservation> sweep;
  TextTable shard_table({"shards", "events/s", "jitter p50 [us]",
                         "jitter p99 [us]"});
  for (const size_t shards : {1u, 2u, 4u, 8u}) {
    sweep.push_back(MeasureSharded(full, shards, shard_reps));
    const ShardObservation& obs = sweep.back();
    shard_table.AddRow({std::to_string(obs.shards),
                        TextTable::FormatDouble(obs.events_per_sec, 0),
                        TextTable::FormatDouble(obs.lag_p50_us, 2),
                        TextTable::FormatDouble(obs.lag_p99_us, 2)});
  }
  std::printf("%s", shard_table.ToString().c_str());
  std::printf("host cores: %u (lane scaling needs >= as many cores as lanes)\n",
              std::thread::hardware_concurrency());

  std::printf("%s", SectionHeader(
      "File replay — CSV vs gt-stream-v2 end-to-end, unthrottled events/s")
          .c_str());
  const std::filesystem::path bench_dir =
      std::filesystem::temp_directory_path() /
      ("gt_fig3a_" + std::to_string(::getpid()));
  std::filesystem::create_directories(bench_dir);
  const std::string csv_path = (bench_dir / "workload.gts").string();
  const std::string v2_path = (bench_dir / "workload.gts2").string();
  // The file sweep times the steady-state decode path, so the workload is
  // replicated until per-run fixed costs (lane threads, open/mmap) are
  // noise — the ~10 ms quick-mode runs would otherwise compress the ratio.
  std::vector<Event> file_workload;
  while (file_workload.size() < 400000) {
    file_workload.insert(file_workload.end(), full.begin(), full.end());
  }
  for (const Status& st : {WriteStreamFile(csv_path, file_workload),
                           WriteV2StreamFile(v2_path, file_workload)}) {
    if (!st.ok()) {
      std::fprintf(stderr, "workload write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  std::vector<FileReplayObservation> file_sweep;
  TextTable file_table({"shards", "csv [ev/s]", "v2 [ev/s]", "v2 speedup"});
  for (const size_t shards : {1u, 4u}) {
    file_sweep.push_back(
        MeasureFileReplay(csv_path, "csv", shards, shard_reps));
    const double csv_eps = file_sweep.back().events_per_sec;
    file_sweep.push_back(MeasureFileReplay(v2_path, "v2", shards, shard_reps));
    const double v2_eps = file_sweep.back().events_per_sec;
    file_table.AddRow({std::to_string(shards),
                       TextTable::FormatDouble(csv_eps, 0),
                       TextTable::FormatDouble(v2_eps, 0),
                       TextTable::FormatDouble(
                           csv_eps > 0.0 ? v2_eps / csv_eps : 0.0, 2) + "x"});
  }
  std::printf("%s", file_table.ToString().c_str());
  std::printf(
      "v2 replaces the CSV parse with an mmap pointer cast on input and the\n"
      "CSV escape/format with sealed binary blocks on the wire; the\n"
      "checked-in baseline pins the achieved speedup.\n");
  std::filesystem::remove_all(bench_dir);

  if (!json_path.empty()) {
    WriteJson(json_path, sweep, file_sweep, full.size(), quick);
    std::printf("shard-sweep results -> %s\n", json_path.c_str());
  }
  if (!baseline_path.empty()) {
    if (CheckBaseline(baseline_path, sweep, file_sweep) > 0) return 1;
  }
  return 0;
}
