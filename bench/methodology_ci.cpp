// Methodology demonstration (§4.5): "at least n >= 30 test runs for each
// configuration due to the central limit theory. Results can then be
// compared using confidence intervals of the aggregated metrics (often
// CI95). Non-overlapping confidence intervals of the results from two
// different systems are indeed significantly different."
//
// This bench runs the full factorial {streaming rate} x {events/tx} against
// weaverlite with n = 30 seeded repetitions per cell, prints per-cell CI95,
// and performs the paper's disjoint-interval significance test on the
// batching comparison.
#include <cstdio>

#include "generator/models/event_mix_model.h"
#include "generator/stream_generator.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "sut/weaverlite/experiment.h"

using namespace graphtides;

namespace {

std::vector<Event> MakeStream(size_t rounds, uint64_t seed) {
  EventMixModelOptions options;
  options.ba = {500, 20, 5};
  EventMixModel model(options);
  StreamGeneratorOptions gen;
  gen.rounds = rounds;
  gen.seed = seed;
  gen.emit_phase_markers = false;
  auto stream = StreamGenerator(&model, gen).Generate();
  if (!stream.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 stream.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(stream).value().events;
}

}  // namespace

int main() {
  std::printf("%s", SectionHeader(
      "Methodology (\xc2\xa7""4.5) — full factorial, n = 30 runs, CI95 "
      "comparison").c_str());

  ExperimentOptions options;
  options.repetitions = 30;
  options.confidence_level = 0.95;
  options.base_seed = 1000;
  ExperimentRunner runner(
      {{"rate", {2000.0, 10000.0}}, {"events_per_tx", {1.0, 10.0}}},
      options);

  auto results = runner.Run(
      [](const ExperimentConfig& config, uint64_t seed) -> Result<RunOutcome> {
        WeaverExperimentConfig weaver;
        weaver.target_rate_eps = config.at("rate");
        weaver.events_per_tx =
            static_cast<size_t>(config.at("events_per_tx"));
        weaver.max_duration = Duration::FromSeconds(8.0);
        // The workload (and therefore the exact event sequence) varies per
        // seed, as the paper's repeated-runs methodology intends.
        GT_ASSIGN_OR_RETURN(
            const WeaverExperimentResult run,
            RunWeaverExperiment(MakeStream(12000, seed), weaver));
        return RunOutcome{{"applied_rate_eps", run.AppliedRateEps()}};
      });
  if (!results.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  TextTable table({"rate [ev/s]", "ev/tx", "n", "mean [ev/s]", "stddev",
                   "CI95 low", "CI95 high"});
  for (const ConfigResult& r : *results) {
    const MetricAggregate& agg = r.metrics.at("applied_rate_eps");
    table.AddRow({TextTable::FormatDouble(r.config.at("rate"), 0),
                  TextTable::FormatDouble(r.config.at("events_per_tx"), 0),
                  std::to_string(agg.samples.size()),
                  TextTable::FormatDouble(agg.ci.mean, 1),
                  TextTable::FormatDouble(agg.stats.stddev(), 2),
                  TextTable::FormatDouble(agg.ci.lower, 1),
                  TextTable::FormatDouble(agg.ci.upper, 1)});
  }
  std::printf("%s", table.ToString().c_str());

  // Significance tests on pairs of configurations.
  auto find = [&](double rate, double batch) -> const MetricAggregate& {
    for (const ConfigResult& r : *results) {
      if (r.config.at("rate") == rate &&
          r.config.at("events_per_tx") == batch) {
        return r.metrics.at("applied_rate_eps");
      }
    }
    std::fprintf(stderr, "missing config\n");
    std::exit(1);
  };

  std::printf("\nsignificance (disjoint CI95 intervals):\n");
  struct Pair {
    const char* label;
    double rate_a, batch_a, rate_b, batch_b;
  };
  const Pair pairs[] = {
      {"10k ev/s: 1 ev/tx vs 10 ev/tx", 10000, 1, 10000, 10},
      {"2k ev/s: 1 ev/tx vs 10 ev/tx", 2000, 1, 2000, 10},
      {"10 ev/tx: 2k ev/s vs 10k ev/s", 2000, 10, 10000, 10},
  };
  for (const Pair& p : pairs) {
    const Comparison cmp = CompareByConfidenceIntervals(
        find(p.rate_a, p.batch_a).samples, find(p.rate_b, p.batch_b).samples);
    std::printf("  %-34s mean diff %9.1f ev/s -> %s\n", p.label,
                cmp.mean_difference,
                cmp.significant ? "significant" : "not significant");
  }
  std::printf(
      "\nReading: batching is significant at the saturating rate (the\n"
      "timestamper bound moves) and at 2k ev/s vs 10k ev/s with batching\n"
      "the system keeps pace in one case and saturates in the other.\n");
  return 0;
}
