// Closed-loop capacity search as a benchmark (DESIGN.md §16): runs the
// full SLO-frontier sweep against both simulated SUTs and reports the
// discovered sustainable rates, the search cost (steps, measurement runs,
// wall time), and the determinism property the CI smoke job gates on —
// two sweeps from the same base seed must emit byte-identical artifacts.
//
// Virtual-time measurement: the sweep replays the workload once per
// measurement window inside the simulator, so wall time here is simulator
// throughput, not SUT latency — useful for tracking the cost of the
// capacity-smoke CI job itself.
#include <cstdio>
#include <string>

#include "common/clock.h"
#include "harness/capacity/frontier.h"
#include "harness/capacity/frontier_sweep.h"
#include "harness/report.h"
#include "suite/benchmark_suite.h"
#include "suite/connectors/online_connector.h"
#include "suite/connectors/weaver_connector.h"

using namespace graphtides;

namespace {

struct SweepCase {
  std::string sut;
  double slo_p99_ms;
  double start_rate_eps;
  double max_rate_eps;
  ConnectorFactory factory;
};

}  // namespace

int main() {
  std::printf("%s", SectionHeader(
      "Closed-loop capacity search — SLO-frontier sweep cost "
      "(tiny size class)").c_str());
  std::printf("%s", ConfigBlock({
      {"Workload", "social (tiny, seeded per measurement run)"},
      {"Search", "geometric bracketing + bisection, resolution 5%"},
      {"Repetitions", "2 per visited rate (pilot + top-up)"},
      {"Determinism", "same base seed run twice, artifacts compared"},
  }).c_str());

  std::vector<SweepCase> cases;
  cases.push_back({"weaverlite", 100.0, 1000.0, 1e6,
                   [](Simulator* sim) -> std::unique_ptr<SuiteConnector> {
                     return std::make_unique<WeaverConnector>(sim, WeaverConnectorOptions{});
                   }});
  cases.push_back({"chronolite", 30.0, 1000.0, 2e5,
                   [](Simulator* sim) -> std::unique_ptr<SuiteConnector> {
                     return std::make_unique<OnlineConnector>(
                         sim, ChronoLiteOptions{});
                   }});

  const SeededWorkloadFactory workload_for =
      [](uint64_t seed) -> Result<SuiteWorkload> {
    for (SuiteWorkload& w : StandardWorkloads(SuiteSize::kTiny, seed)) {
      if (w.name == "social") return std::move(w);
    }
    return Status::Internal("standard workload set lacks 'social'");
  };

  TextTable table({"sut", "sustainable [ev/s]", "steps", "points",
                   "sweep [s]", "identical rerun"});
  MonotonicClock clock;
  int failures = 0;
  for (const SweepCase& c : cases) {
    FrontierSweepOptions sweep;
    sweep.search.slo_p99_ms = c.slo_p99_ms;
    sweep.search.start_rate_eps = c.start_rate_eps;
    sweep.search.max_rate_eps = c.max_rate_eps;
    sweep.search.seed = 42;
    sweep.repetitions = 2;

    const Timestamp begin = clock.Now();
    auto first = RunFrontierSweep(c.sut, workload_for, c.factory, sweep);
    const double elapsed_s = (clock.Now() - begin).seconds();
    if (!first.ok()) {
      std::fprintf(stderr, "%s: sweep failed: %s\n", c.sut.c_str(),
                   first.status().ToString().c_str());
      ++failures;
      continue;
    }
    auto rerun = RunFrontierSweep(c.sut, workload_for, c.factory, sweep);
    const bool identical =
        rerun.ok() && rerun->ToJson() == first->ToJson();
    if (!identical) ++failures;
    if (Status st = ValidateFrontier(*first); !st.ok()) {
      std::fprintf(stderr, "%s: frontier invalid: %s\n", c.sut.c_str(),
                   st.ToString().c_str());
      ++failures;
    }

    table.AddRow({c.sut,
                  TextTable::FormatDouble(first->sustainable_rate_eps, 0),
                  std::to_string(first->step_schedule.size()),
                  std::to_string(first->points.size()),
                  TextTable::FormatDouble(elapsed_s, 2),
                  identical ? "yes" : "NO"});
  }
  std::printf("%s", table.ToString().c_str());
  if (failures > 0) {
    std::fprintf(stderr, "capacity_frontier: %d failure(s)\n", failures);
    return 1;
  }
  return 0;
}
