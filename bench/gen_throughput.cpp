// Generator pipeline throughput — the fig3a-style harness for the stream
// generation side (§5.1: generation must comfortably outrun the replayer so
// workload preparation never bounds an experiment).
//
// Three configurations over the same social-network workload:
//
//   seed-inmem   the seed's path: Generate() into a vector, then per-event
//                std::to_string/vector<string> serialization (a faithful
//                local copy of the seed formatter) and one fwrite per line
//   inmem        Generate() into a vector, then the shared std::to_chars
//                serializer into a reused block buffer, one fwrite per block
//   pipeline     GenerateTo(PipelinedWriterConsumer): generation overlapped
//                with serialization + I/O on a writer thread, batch-arena
//                handoff, one fwrite per batch, constant memory
//
// A serialize-only section isolates the formatter change (the events/s of
// turning an in-memory stream into bytes), where the legacy allocation-per-
// field path is slowest.
//
//   --quick                ~2 s run: small workload, fewer repetitions
//   --json PATH            write results as JSON (one entry per line)
//   --check-baseline PATH  compare against a previous --json file; exit 1
//                          if any configuration lost > 20% events/s
#include <cstdio>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/stats.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "generator/stream_pipeline.h"
#include "harness/report.h"
#include "stream/event.h"

using namespace graphtides;

namespace {

StreamGeneratorOptions BenchOptions(size_t rounds) {
  StreamGeneratorOptions options;
  options.rounds = rounds;
  options.seed = 3;
  options.marker_interval = 1000;
  return options;
}

/// The seed's Event::ToCsvLine, kept verbatim as the measurement baseline:
/// a vector<string> of fields built with std::to_string / string concat,
/// joined by FormatCsvLine.
std::string SeedFormatEventLine(const Event& e) {
  std::vector<std::string> fields;
  fields.emplace_back(EventTypeName(e.type));
  switch (e.type) {
    case EventType::kAddVertex:
    case EventType::kUpdateVertex:
      fields.push_back(std::to_string(e.vertex));
      fields.push_back(e.payload);
      break;
    case EventType::kRemoveVertex:
      fields.push_back(std::to_string(e.vertex));
      fields.emplace_back();
      break;
    case EventType::kAddEdge:
    case EventType::kUpdateEdge:
      fields.push_back(std::to_string(e.edge.src) + "-" +
                       std::to_string(e.edge.dst));
      fields.push_back(e.payload);
      break;
    case EventType::kRemoveEdge:
      fields.push_back(std::to_string(e.edge.src) + "-" +
                       std::to_string(e.edge.dst));
      fields.emplace_back();
      break;
    case EventType::kMarker:
      fields.emplace_back();
      fields.push_back(e.payload);
      break;
    case EventType::kSetRate: {
      fields.emplace_back();
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", e.rate_factor);
      fields.emplace_back(buf);
      break;
    }
    case EventType::kPause:
      fields.emplace_back();
      fields.push_back(std::to_string(e.pause.millis()));
      break;
  }
  return FormatCsvLine(fields);
}

struct Run {
  double events_per_sec = 0.0;
  size_t events = 0;
};

/// Seed path: materialize the whole stream, then serialize each event to
/// its own string and fwrite it line by line.
Run RunSeedInmem(size_t rounds, FILE* out) {
  SocialNetworkModel model;
  StreamGenerator generator(&model, BenchOptions(rounds));
  const Timestamp start = WallClock().Now();
  auto stream = generator.Generate();
  if (!stream.ok()) std::exit(1);
  for (const Event& e : stream->events) {
    const std::string line = SeedFormatEventLine(e);
    std::fwrite(line.data(), 1, line.size(), out);
    std::fputc('\n', out);
  }
  std::fflush(out);
  const double elapsed = (WallClock().Now() - start).seconds();
  return {static_cast<double>(stream->events.size()) / elapsed,
          stream->events.size()};
}

/// In-memory generation + the shared to_chars serializer, block writes.
Run RunInmemToChars(size_t rounds, FILE* out) {
  SocialNetworkModel model;
  StreamGenerator generator(&model, BenchOptions(rounds));
  const Timestamp start = WallClock().Now();
  auto stream = generator.Generate();
  if (!stream.ok()) std::exit(1);
  std::string block;
  block.reserve(size_t{1} << 20);
  for (const Event& e : stream->events) {
    AppendEventLine(e, &block);
    if (block.size() >= (size_t{1} << 20) - 512) {
      std::fwrite(block.data(), 1, block.size(), out);
      block.clear();
    }
  }
  std::fwrite(block.data(), 1, block.size(), out);
  std::fflush(out);
  const double elapsed = (WallClock().Now() - start).seconds();
  return {static_cast<double>(stream->events.size()) / elapsed,
          stream->events.size()};
}

/// The pipelined writer: streaming generation, no materialized vector.
Run RunPipeline(size_t rounds, FILE* out) {
  SocialNetworkModel model;
  StreamGenerator generator(&model, BenchOptions(rounds));
  const Timestamp start = WallClock().Now();
  PipelinedWriterConsumer writer(out);
  auto summary = generator.GenerateTo(writer);
  if (!summary.ok()) std::exit(1);
  const double elapsed = (WallClock().Now() - start).seconds();
  return {static_cast<double>(summary->total_events) / elapsed,
          summary->total_events};
}

/// Serialize-only: events/s of formatting a pre-generated stream to bytes.
Run RunSerializeOnly(const std::vector<Event>& events, bool legacy,
                     FILE* out) {
  const Timestamp start = WallClock().Now();
  if (legacy) {
    for (const Event& e : events) {
      const std::string line = SeedFormatEventLine(e);
      std::fwrite(line.data(), 1, line.size(), out);
      std::fputc('\n', out);
    }
  } else {
    std::string block;
    block.reserve(size_t{1} << 20);
    for (const Event& e : events) {
      AppendEventLine(e, &block);
      if (block.size() >= (size_t{1} << 20) - 512) {
        std::fwrite(block.data(), 1, block.size(), out);
        block.clear();
      }
    }
    std::fwrite(block.data(), 1, block.size(), out);
  }
  std::fflush(out);
  const double elapsed = (WallClock().Now() - start).seconds();
  return {static_cast<double>(events.size()) / elapsed, events.size()};
}

struct Observation {
  std::string config;
  double events_per_sec = 0.0;
};

/// Median events/s over `repetitions` runs of `fn`.
template <typename Fn>
Observation Measure(const std::string& config, int repetitions, Fn&& fn) {
  std::vector<double> rates;
  for (int rep = 0; rep < repetitions; ++rep) {
    FILE* devnull = std::fopen("/dev/null", "w");
    const Run run = fn(devnull);
    std::fclose(devnull);
    rates.push_back(run.events_per_sec);
  }
  std::sort(rates.begin(), rates.end());
  return {config, PercentileSorted(rates, 0.5)};
}

/// One result entry per line so CheckBaseline can re-read the file with
/// sscanf instead of a JSON library (same convention as fig3a).
void WriteJson(const std::string& path,
               const std::vector<Observation>& results, size_t rounds,
               bool quick) {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n";
  out << "  \"bench\": \"gen_throughput\",\n";
  out << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"rounds\": " << rounds << ",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"config\": \"%s\", \"events_per_sec\": %.1f}%s\n",
                  results[i].config.c_str(), results[i].events_per_sec,
                  i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

/// Returns the number of configurations that regressed by more than 20%.
int CheckBaseline(const std::string& path,
                  const std::vector<Observation>& results) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    return 1;
  }
  int regressions = 0;
  std::string line;
  while (std::getline(in, line)) {
    char config[64];
    double baseline_eps = 0.0;
    if (std::sscanf(line.c_str(),
                    " {\"config\": \"%63[^\"]\", \"events_per_sec\": %lf",
                    config, &baseline_eps) != 2) {
      continue;
    }
    const auto it = std::find_if(
        results.begin(), results.end(),
        [&config](const Observation& r) { return r.config == config; });
    if (it == results.end()) continue;
    const double floor = 0.8 * baseline_eps;
    if (it->events_per_sec < floor) {
      const double delta_pct =
          baseline_eps > 0.0
              ? (it->events_per_sec / baseline_eps - 1.0) * 100.0
              : 0.0;
      std::fprintf(stderr,
                   "REGRESSION %s: %.0f ev/s < 80%% of baseline %.0f ev/s "
                   "(%+.1f%%)\n",
                   config, it->events_per_sec, baseline_eps, delta_pct);
      ++regressions;
    } else {
      std::printf("baseline ok %s: %.0f ev/s vs baseline %.0f ev/s\n",
                  config, it->events_per_sec, baseline_eps);
    }
  }
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  const bool quick = flags.GetBool("quick");
  const std::string json_path = flags.GetString("json", "");
  const std::string baseline_path = flags.GetString("check-baseline", "");

  const size_t rounds = quick ? 150000 : 1000000;
  const int reps = quick ? 3 : 5;

  std::printf("%s", SectionHeader(
      "Generator pipeline throughput (generation -> CSV bytes)").c_str());
  std::printf("%s", ConfigBlock({
      {"Workload", "social network model, marker every 1000 events"},
      {"seed-inmem", "Generate() + per-event to_string serialization"},
      {"inmem", "Generate() + to_chars block serialization"},
      {"pipeline", "GenerateTo(PipelinedWriterConsumer), constant memory"},
      {"Output", "/dev/null (stdio buffered)"},
      {"Measurement", "median end-to-end events/s over repetitions"},
  }).c_str());

  std::vector<Observation> results;
  results.push_back(Measure("seed-inmem", reps, [&](FILE* out) {
    return RunSeedInmem(rounds, out);
  }));
  results.push_back(Measure("inmem", reps, [&](FILE* out) {
    return RunInmemToChars(rounds, out);
  }));
  results.push_back(Measure("pipeline", reps, [&](FILE* out) {
    return RunPipeline(rounds, out);
  }));

  // Serialize-only section over a pre-generated stream.
  SocialNetworkModel model;
  StreamGenerator generator(&model, BenchOptions(rounds));
  auto stream = generator.Generate();
  if (!stream.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 stream.status().ToString().c_str());
    return 1;
  }
  const std::vector<Event>& events = stream->events;
  results.push_back(Measure("serialize-seed", reps, [&](FILE* out) {
    return RunSerializeOnly(events, /*legacy=*/true, out);
  }));
  results.push_back(Measure("serialize-tochars", reps, [&](FILE* out) {
    return RunSerializeOnly(events, /*legacy=*/false, out);
  }));

  TextTable table({"config", "events/s"});
  for (const Observation& r : results) {
    table.AddRow({r.config, TextTable::FormatDouble(r.events_per_sec, 0)});
  }
  std::printf("%s", table.ToString().c_str());

  auto rate_of = [&](const std::string& config) {
    const auto it = std::find_if(
        results.begin(), results.end(),
        [&config](const Observation& r) { return r.config == config; });
    return it == results.end() ? 0.0 : it->events_per_sec;
  };
  const double seed_e2e = rate_of("seed-inmem");
  const double seed_ser = rate_of("serialize-seed");
  if (seed_e2e > 0.0 && seed_ser > 0.0) {
    std::printf("\nspeedup vs seed path: pipeline end-to-end %.2fx, "
                "serialization %.2fx\n",
                rate_of("pipeline") / seed_e2e,
                rate_of("serialize-tochars") / seed_ser);
  }
  std::printf("host cores: %u\n", std::thread::hardware_concurrency());

  if (!json_path.empty()) {
    WriteJson(json_path, results, rounds, quick);
    std::printf("results -> %s\n", json_path.c_str());
  }
  if (!baseline_path.empty()) {
    if (CheckBaseline(baseline_path, results) > 0) return 1;
  }
  return 0;
}
