// The GraphTides benchmark suite in action (§6 future work): three
// computation styles (§4.4.2 — offline snapshots, online, hybrid
// pause/shift/resume-like epochs) compared under identical standardized
// workloads. This is the "LDBC Graphalytics, but for stream-based
// analytics" comparison table the paper sets as its long-term goal, and it
// makes the central trade-off measurable:
//
//   * offline  — exact results, but stale by up to an epoch + recompute
//                time, and ingestion stalls behind recomputes;
//   * online   — instantly queryable approximations whose error is the
//                unprocessed residual;
//   * hybrid   — exact-but-stale results with online-grade ingestion.
#include <cstdio>

#include "harness/report.h"
#include "suite/benchmark_suite.h"
#include "suite/connectors/hybrid_connector.h"
#include "suite/connectors/offline_connector.h"
#include "suite/connectors/online_connector.h"

using namespace graphtides;

int main() {
  std::printf("%s", SectionHeader(
      "GraphTides benchmark suite — computation-style comparison "
      "(small size class)").c_str());
  std::printf("%s", ConfigBlock({
      {"Workloads", "social / ddos / blockchain / mix (standard set, small)"},
      {"Computation goal", "influence rank (normalized PageRank)"},
      {"Metrics", "ingest rate (HB), watermark latency (LB), rank error "
                  "(HB accuracy), staleness (LB)"},
      {"Methodology", "identical streams, rates, and cost scales per cell"},
  }).c_str());

  const std::vector<SuiteWorkload> workloads =
      StandardWorkloads(SuiteSize::kSmall, 42);
  for (const SuiteWorkload& w : workloads) {
    if (w.events.empty()) {
      std::fprintf(stderr, "workload generation failed: %s\n",
                   w.name.c_str());
      return 1;
    }
  }

  std::vector<SuiteEntry> connectors;
  connectors.push_back(
      {"offline", [](Simulator* sim) -> std::unique_ptr<SuiteConnector> {
         OfflineConnectorOptions options;
         options.epoch = Duration::FromSeconds(2.0);
         return std::make_unique<OfflineSnapshotConnector>(sim, options);
       }});
  connectors.push_back(
      {"online", [](Simulator* sim) -> std::unique_ptr<SuiteConnector> {
         ChronoLiteOptions options;
         options.rank.push_threshold = 0.02;
         return std::make_unique<OnlineConnector>(sim, options);
       }});
  connectors.push_back(
      {"hybrid", [](Simulator* sim) -> std::unique_ptr<SuiteConnector> {
         HybridConnectorOptions options;
         options.epoch = Duration::FromSeconds(2.0);
         return std::make_unique<HybridConnector>(sim, options);
       }});

  SuiteCaseOptions options;
  options.error_interval = Duration::FromSeconds(5.0);
  options.max_duration = Duration::FromSeconds(300.0);
  auto scores = RunSuite(workloads, connectors, options);
  if (!scores.ok()) {
    std::fprintf(stderr, "suite failed: %s\n",
                 scores.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s", FormatSuiteReport(*scores).c_str());
  std::printf(
      "\nReading: the online style holds watermark latency and staleness\n"
      "near zero with a modest approximation error; the snapshot styles\n"
      "deliver (epoch-)exact results whose error at query time is governed\n"
      "by staleness — and the offline variant additionally inflates\n"
      "watermark latency whenever a recompute blocks ingestion. A '+'\n"
      "after the drain time marks cases still busy at the deadline.\n");
  return 0;
}
