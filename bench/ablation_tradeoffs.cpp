// Design-choice ablations on the chronolite engine, exercising the
// trade-off the paper puts at the center of stream-based graph processing
// (§1, §6): latency vs. accuracy of online computations, and the cost of
// the communication design.
//
//   (a) push-threshold sweep     — coarser thresholds finish (much) earlier
//                                  at the price of a larger parked residual
//                                  (staleness) in the result;
//   (b) outbox flush interval    — how aggressively residual deltas are
//                                  coalesced per destination trades message
//                                  count against result latency;
//   (c) worker count             — horizontal scaling of the engine.
#include <cstdio>

#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "harness/report.h"
#include "sut/chronolite/experiment.h"

using namespace graphtides;

namespace {

std::vector<Event> SocialStream(size_t rounds, uint64_t seed) {
  SocialNetworkModel model;
  StreamGeneratorOptions gen;
  gen.rounds = rounds;
  gen.seed = seed;
  gen.emit_phase_markers = false;
  auto stream = StreamGenerator(&model, gen).Generate();
  if (!stream.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 stream.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(stream).value().events;
}

struct RunSummary {
  double drain_tail_s = 0.0;
  double final_error = -1.0;
  double worst_error = -1.0;
  uint64_t messages = 0;
  uint64_t deltas = 0;
  double peak_queue = 0.0;
};

RunSummary RunWith(const std::vector<Event>& stream,
                   const ChronographExperimentConfig& config) {
  auto result = RunChronographExperiment(stream, config);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  RunSummary s;
  s.drain_tail_s =
      (result->drained_at - result->stream_finished_at).seconds();
  if (!result->rank_error.empty()) {
    s.final_error = result->rank_error.back().median_relative_error;
    for (const RankErrorSample& sample : result->rank_error) {
      s.worst_error = std::max(s.worst_error, sample.median_relative_error);
    }
  }
  s.messages = result->residual_messages;
  s.deltas = result->residual_deltas;
  for (const auto& series : result->worker_queue_length) {
    for (double q : series) s.peak_queue = std::max(s.peak_queue, q);
  }
  return s;
}

ChronographExperimentConfig BaseConfig() {
  // The Fig. 3d cost model at an oversubscribing rate, so the knobs under
  // ablation actually bind.
  ChronographExperimentConfig config;
  config.base_rate_eps = 4000.0;
  config.max_duration = Duration::FromSeconds(300.0);
  config.error_interval = Duration::FromSeconds(5.0);
  config.engine.update_cost = Duration::FromMicros(400);
  config.engine.residual_cost = Duration::FromMicros(60);
  config.engine.residual_entry_cost = Duration::FromMicros(12);
  config.engine.push_cost = Duration::FromMicros(30);
  return config;
}

}  // namespace

int main() {
  const std::vector<Event> stream = SocialStream(30000, 21);

  // --- (a) push threshold: latency vs accuracy -----------------------------
  std::printf("%s", SectionHeader(
      "Ablation (a) — online-rank push threshold (latency vs accuracy, "
      "\xc2\xa7""6)").c_str());
  TextTable a({"threshold", "post-stream tail [s]", "worst rank err",
               "final rank err", "batch messages", "deltas"});
  for (double threshold : {0.005, 0.02, 0.1, 0.5}) {
    ChronographExperimentConfig config = BaseConfig();
    config.engine.rank.push_threshold = threshold;
    const RunSummary s = RunWith(stream, config);
    a.AddRow({TextTable::FormatDouble(threshold, 3),
              TextTable::FormatDouble(s.drain_tail_s, 1),
              TextTable::FormatDouble(s.worst_error, 4),
              TextTable::FormatDouble(s.final_error, 4),
              std::to_string(s.messages), std::to_string(s.deltas)});
  }
  std::printf("%s", a.ToString().c_str());

  // --- (b) outbox flush interval -------------------------------------------
  std::printf("%s", SectionHeader(
      "Ablation (b) — residual outbox flush interval (message batching)").c_str());
  TextTable b({"flush [us]", "post-stream tail [s]", "batch messages",
               "deltas/message", "peak queue"});
  for (int64_t flush_us : {50, 200, 500, 2000, 10000}) {
    ChronographExperimentConfig config = BaseConfig();
    config.engine.rank.push_threshold = 0.02;
    config.engine.residual_flush_interval =
        Duration::FromMicros(flush_us);
    const RunSummary s = RunWith(stream, config);
    b.AddRow({std::to_string(flush_us),
              TextTable::FormatDouble(s.drain_tail_s, 1),
              std::to_string(s.messages),
              TextTable::FormatDouble(
                  s.messages > 0
                      ? static_cast<double>(s.deltas) /
                            static_cast<double>(s.messages)
                      : 0.0,
                  1),
              TextTable::FormatDouble(s.peak_queue, 0)});
  }
  std::printf("%s", b.ToString().c_str());

  // --- (c) worker count ------------------------------------------------------
  std::printf("%s", SectionHeader(
      "Ablation (c) — engine worker count (horizontal scaling)").c_str());
  TextTable c({"workers", "post-stream tail [s]", "worst rank err",
               "peak queue"});
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ChronographExperimentConfig config = BaseConfig();
    config.engine.rank.push_threshold = 0.02;
    config.engine.num_workers = workers;
    const RunSummary s = RunWith(stream, config);
    c.AddRow({std::to_string(workers),
              TextTable::FormatDouble(s.drain_tail_s, 1),
              TextTable::FormatDouble(s.worst_error, 4),
              TextTable::FormatDouble(s.peak_queue, 0)});
  }
  std::printf("%s", c.ToString().c_str());
  std::printf(
      "\nReading: (a) the threshold is the latency/accuracy knob the paper\n"
      "highlights (\xc2\xa7""6) — two orders of magnitude in post-stream drain\n"
      "time buy roughly 5x lower worst-case staleness; (b) coalescing\n"
      "outbound deltas collapses both the message count and the queue\n"
      "backlog (per-message overhead is the real cost), shortening the\n"
      "drain tail; (c) a single worker avoids cross-partition residual\n"
      "traffic entirely (fast drain, but worst in-flight error), while\n"
      "adding workers buys accuracy under load at the price of\n"
      "communication — the competition effect the paper observed in\n"
      "Chronograph.\n");
  return 0;
}
