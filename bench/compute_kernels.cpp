// Compute-kernel thread sweep: CSR snapshot build, PageRank, weakly
// connected components, and triangle counting from the parallel compute
// layer (src/common/parallel.h), each timed at 1/2/4/host_cores worker
// threads over a Barabasi-Albert bootstrap graph.
//
// Besides the timings the bench re-checks the layer's core contract on
// every run: the results at every thread count must be bit-identical to
// the single-threaded reference (ranks compared exactly, not by
// tolerance) — a determinism failure exits non-zero regardless of flags.
//
//   --quick                small workload, fewer repetitions (CI smoke)
//   --json PATH            write the sweep as JSON (one result per line)
//   --check-baseline PATH  compare against a previous --json file; exit 1
//                          if any (kernel, threads) cell lost > 25%
//                          edges/s. Baseline cells not measured in this
//                          run (e.g. a different host_cores) are skipped.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/components.h"
#include "algorithms/pagerank.h"
#include "algorithms/triangles.h"
#include "common/flags.h"
#include "generator/bootstrap.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "harness/report.h"

using namespace graphtides;

namespace {

struct KernelObservation {
  std::string kernel;
  size_t threads = 1;
  double millis = 0.0;
  double edges_per_sec = 0.0;
};

/// Fixed iteration count and zero tolerance pin the PageRank work per run,
/// so the timings compare like for like across thread counts.
constexpr size_t kPageRankIterations = 20;

double MedianMillis(std::vector<double> times) {
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Times `fn` (which returns the kernel result) `reps` times; stores the
/// median wall time and keeps the last result for the determinism check.
template <typename Fn>
auto TimeKernel(const char* kernel, size_t threads, size_t edges, int reps,
                std::vector<KernelObservation>* out, Fn fn) {
  std::vector<double> times;
  auto result = fn();
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    result = fn();
    times.push_back(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count());
  }
  KernelObservation obs;
  obs.kernel = kernel;
  obs.threads = threads;
  obs.millis = MedianMillis(std::move(times));
  obs.edges_per_sec =
      obs.millis > 0.0 ? static_cast<double>(edges) / (obs.millis / 1e3) : 0.0;
  out->push_back(obs);
  return result;
}

Graph MakeGraph(bool quick) {
  TopologyIndex topology;
  Rng rng(7);
  GeneratorContext ctx(&topology, &rng);
  std::vector<Event> events;
  GraphBuilder builder(&topology, &ctx, &events);
  const BarabasiAlbertParams params{quick ? 20000u : 120000u, 100, 5};
  if (Status st = BootstrapBarabasiAlbert(builder, ctx, params); !st.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  Graph graph;
  if (Status st = graph.ApplyAll(events); !st.ok()) {
    std::fprintf(stderr, "apply failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return graph;
}

bool SameCsr(const CsrGraph& a, const CsrGraph& b) {
  if (a.ids() != b.ids() || a.out_offsets() != b.out_offsets() ||
      a.in_offsets() != b.in_offsets()) {
    return false;
  }
  for (CsrGraph::Index v = 0; v < a.num_vertices(); ++v) {
    const auto ao = a.OutNeighbors(v);
    const auto bo = b.OutNeighbors(v);
    const auto ai = a.InNeighbors(v);
    const auto bi = b.InNeighbors(v);
    if (!std::equal(ao.begin(), ao.end(), bo.begin(), bo.end()) ||
        !std::equal(ai.begin(), ai.end(), bi.begin(), bi.end())) {
      return false;
    }
  }
  return true;
}

/// One sweep entry per line so CheckBaseline re-reads the file with sscanf.
void WriteJson(const std::string& path,
               const std::vector<KernelObservation>& results,
               size_t vertices, size_t edges, bool quick) {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n";
  out << "  \"bench\": \"compute_kernels\",\n";
  out << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"vertices\": " << vertices << ",\n";
  out << "  \"edges\": " << edges << ",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelObservation& r = results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"kernel\": \"%s\", \"threads\": %zu, "
                  "\"millis\": %.3f, \"edges_per_sec\": %.1f}%s\n",
                  r.kernel.c_str(), r.threads, r.millis, r.edges_per_sec,
                  i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

/// Returns the number of (kernel, threads) cells that lost > 25% edges/s
/// against the baseline file. Baseline cells not measured here are skipped
/// (a host with different core count sweeps a different set).
int CheckBaseline(const std::string& path,
                  const std::vector<KernelObservation>& results) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    return 1;
  }
  int regressions = 0;
  std::string line;
  while (std::getline(in, line)) {
    char kernel[32] = {0};
    size_t threads = 0;
    double baseline_millis = 0.0;
    double baseline_eps = 0.0;
    if (std::sscanf(line.c_str(),
                    " {\"kernel\": \"%31[^\"]\", \"threads\": %zu, "
                    "\"millis\": %lf, \"edges_per_sec\": %lf",
                    kernel, &threads, &baseline_millis, &baseline_eps) != 4) {
      continue;
    }
    const auto it =
        std::find_if(results.begin(), results.end(),
                     [&](const KernelObservation& r) {
                       return r.kernel == kernel && r.threads == threads;
                     });
    if (it == results.end()) continue;
    const std::string label =
        std::string(kernel) + " threads=" + std::to_string(threads);
    if (it->edges_per_sec < 0.75 * baseline_eps) {
      const double delta_pct =
          baseline_eps > 0.0
              ? (it->edges_per_sec / baseline_eps - 1.0) * 100.0
              : 0.0;
      std::fprintf(stderr,
                   "REGRESSION %s: %.0f edges/s < 75%% of baseline %.0f "
                   "(%+.1f%%)\n",
                   label.c_str(), it->edges_per_sec, baseline_eps, delta_pct);
      ++regressions;
    } else {
      std::printf("baseline ok %s: %.0f edges/s vs baseline %.0f\n",
                  label.c_str(), it->edges_per_sec, baseline_eps);
    }
  }
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  const bool quick = flags.GetBool("quick");
  const std::string json_path = flags.GetString("json", "");
  const std::string baseline_path = flags.GetString("check-baseline", "");
  const int reps = quick ? 3 : 5;

  const Graph graph = MakeGraph(quick);
  const size_t edges = graph.num_edges();

  // Thread sweep: 1/2/4/host_cores, deduplicated and sorted. On a small
  // host the oversubscribed counts still run (and must still be exact);
  // they just stop being faster.
  std::vector<size_t> sweep = {1, 2, 4,
                               std::max(1u, std::thread::hardware_concurrency())};
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

  std::printf("%s", SectionHeader(
      "Compute kernels — thread sweep over a BA bootstrap graph").c_str());
  std::printf("input: %zu vertices, %zu edges; host cores: %u; "
              "%d repetitions (median)\n\n",
              graph.num_vertices(), edges,
              std::thread::hardware_concurrency(), reps);

  PageRankOptions pr_options;
  pr_options.max_iterations = kPageRankIterations;
  pr_options.tolerance = 0.0;

  std::vector<KernelObservation> results;
  // threads = 1 results are the reference every other cell must match.
  CsrGraph ref_csr;
  PageRankResult ref_pr;
  ComponentsResult ref_wcc;
  uint64_t ref_triangles = 0;
  bool deterministic = true;

  TextTable table({"kernel", "threads", "median [ms]", "edges/s"});
  for (const size_t t : sweep) {
    const CsrGraph csr =
        TimeKernel("csr_build", t, edges, reps, &results,
                   [&] { return CsrGraph::FromGraph(graph, t); });
    pr_options.threads = t;
    const PageRankResult pr =
        TimeKernel("pagerank", t, edges, reps, &results,
                   [&] { return PageRank(csr, pr_options); });
    const ComponentsResult wcc = TimeKernel(
        "wcc", t, edges, reps, &results,
        [&] { return WeaklyConnectedComponents(csr, {.threads = t}); });
    const uint64_t triangles =
        TimeKernel("triangles", t, edges, reps, &results,
                   [&] { return CountTriangles(csr, t); });

    if (t == sweep.front()) {
      ref_csr = csr;
      ref_pr = pr;
      ref_wcc = wcc;
      ref_triangles = triangles;
    } else {
      if (!SameCsr(ref_csr, csr)) {
        std::fprintf(stderr, "DETERMINISM FAILURE: csr_build threads=%zu\n", t);
        deterministic = false;
      }
      if (pr.ranks != ref_pr.ranks || pr.iterations != ref_pr.iterations) {
        std::fprintf(stderr, "DETERMINISM FAILURE: pagerank threads=%zu\n", t);
        deterministic = false;
      }
      if (wcc.component != ref_wcc.component) {
        std::fprintf(stderr, "DETERMINISM FAILURE: wcc threads=%zu\n", t);
        deterministic = false;
      }
      if (triangles != ref_triangles) {
        std::fprintf(stderr, "DETERMINISM FAILURE: triangles threads=%zu\n",
                     t);
        deterministic = false;
      }
    }
  }
  for (const KernelObservation& r : results) {
    table.AddRow({r.kernel, std::to_string(r.threads),
                  TextTable::FormatDouble(r.millis, 2),
                  TextTable::FormatDouble(r.edges_per_sec, 0)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("determinism: every thread count %s the t=%zu reference\n",
              deterministic ? "bit-matched" : "DIVERGED FROM",
              sweep.front());

  if (!json_path.empty()) {
    WriteJson(json_path, results, graph.num_vertices(), edges, quick);
    std::printf("sweep results -> %s\n", json_path.c_str());
  }
  int failures = deterministic ? 0 : 1;
  if (!baseline_path.empty()) {
    failures += CheckBaseline(baseline_path, results);
  }
  return failures > 0 ? 1 : 0;
}
