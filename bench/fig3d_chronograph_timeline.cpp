// Figure 3d reproduction: stacked time series of a chronolite (Chronograph
// stand-in) experiment run with a social network workload.
//
// Paper setup (Table 4): four workers; converted LDBC SNB workload (persons
// and connections only), 190,518 events; online influence rank; base
// streaming rate 2000 events/s with a 20 s pause after 100,000 events and
// a doubled rate between events 100,001 and 150,000.
//
// Findings to reproduce: worker queues saturate toward the end of the
// stream; the system stays busy long after the stream stopped, working off
// the backlog of internal messages; the online rank is inaccurate with
// high delays while evolution and computation compete for the workers'
// communication resources.
#include <algorithm>
#include <cstdio>

#include "analysis/ascii_chart.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "harness/report.h"
#include "sut/chronolite/experiment.h"

using namespace graphtides;

int main() {
  std::printf("%s", SectionHeader(
      "Fig. 3d — chronolite stacked time series (social network "
      "workload)").c_str());

  // --- Workload: SNB-like social stream, 190,518 events (Table 4) --------
  SocialNetworkModel model;
  StreamGeneratorOptions gen;
  gen.seed = 4;
  gen.emit_phase_markers = false;
  // Rounds tuned so bootstrap + evolution = 190,518 total graph events:
  // bootstrap emits seed_users + edges; generate a bit more and trim.
  gen.rounds = 190518;
  auto generated = StreamGenerator(&model, gen).Generate();
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  std::vector<Event> stream;
  size_t graph_ops = 0;
  for (Event& e : generated->events) {
    if (!IsGraphOp(e.type)) continue;
    if (graph_ops >= 190518) break;
    stream.push_back(std::move(e));
    ++graph_ops;
  }
  // Table 4 control schedule: pause 20 s after event 100,000; doubled rate
  // for events 100,001..150,000. Watermark markers every 10,000 events
  // (the §4.5 pattern used to measure ingestion-to-visibility latency).
  std::vector<ScheduleEntry> schedule;
  for (size_t at = 10000; at < 190518; at += 10000) {
    schedule.push_back({at, Event::Marker("WM_" + std::to_string(at))});
  }
  schedule.push_back({100000, Event::Pause(Duration::FromSeconds(20.0))});
  schedule.push_back({100000, Event::SetRate(2.0)});
  schedule.push_back({150000, Event::SetRate(1.0)});
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const ScheduleEntry& a, const ScheduleEntry& b) {
                     return a.after_graph_events < b.after_graph_events;
                   });
  stream = ApplyControlSchedule(std::move(stream), std::move(schedule));

  ChronographExperimentConfig config;
  config.base_rate_eps = 2000.0;
  config.sample_interval = Duration::FromSeconds(1.0);
  config.error_interval = Duration::FromSeconds(10.0);
  config.track_top_k = 10;
  config.max_duration = Duration::FromSeconds(300.0);
  // Worker cost model tuned so the doubled-rate segment oversubscribes the
  // workers (the paper's run saturated about half the worker queues).
  config.engine.num_workers = 4;
  config.engine.update_cost = Duration::FromMicros(400);
  config.engine.residual_cost = Duration::FromMicros(60);
  config.engine.residual_entry_cost = Duration::FromMicros(12);
  config.engine.push_cost = Duration::FromMicros(30);
  config.engine.rank.push_threshold = 0.02;

  std::printf("%s", ConfigBlock({
      {"Machines", "4 simulated workers + broker (one link per pair)"},
      {"Workload", "social-network stream, " +
                       std::to_string(graph_ops) + " events"},
      {"Computation", "online influence rank (residual-push PageRank)"},
      {"Stream", "2000 ev/s base; pause 20 s after 100k events; 2x rate "
                 "for events 100k..150k"},
      {"Plot window", "300 virtual seconds"},
  }).c_str());

  auto result = RunChronographExperiment(stream, config);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // --- Stacked series, one row per 2 s ------------------------------------
  std::printf("\n%-6s %-10s %-10s %-7s %-32s %-s\n", "t[s]",
              "replay", "ops/s", "cpu%", "queue length w1..w4",
              "rank err");
  const size_t samples = result->replay_rate.size();
  auto error_at = [&](double t) {
    double err = -1.0;
    for (const RankErrorSample& s : result->rank_error) {
      if (s.time.seconds() <= t) err = s.median_relative_error;
    }
    return err;
  };
  for (size_t i = 0; i < samples; i += 2) {
    double ops = 0.0;
    double cpu = 0.0;
    char queues[128];
    size_t off = 0;
    for (size_t w = 0; w < result->worker_ops_rate.size(); ++w) {
      if (i < result->worker_ops_rate[w].size()) {
        ops += result->worker_ops_rate[w][i];
      }
      if (w < result->worker_cpu.size() &&
          i < result->worker_cpu[w].size()) {
        cpu += result->worker_cpu[w][i] * 100.0;
      }
      const double q = i < result->worker_queue_length[w].size()
                           ? result->worker_queue_length[w][i]
                           : 0.0;
      off += std::snprintf(queues + off, sizeof(queues) - off, "%-8.0f", q);
    }
    const double err = error_at(static_cast<double>(i));
    std::printf("%-6zu %-10.0f %-10.0f %-7.0f %-32s %s\n", i,
                result->replay_rate[i], ops, cpu, queues,
                err < 0 ? "-" : TextTable::FormatDouble(err, 3).c_str());
  }

  // --- Summary -------------------------------------------------------------
  double peak_queue = 0.0;
  for (const auto& series : result->worker_queue_length) {
    for (double q : series) peak_queue = std::max(peak_queue, q);
  }
  std::printf("\nstream finished at t=%.1f s; system drained at t=%.1f s "
              "(%.1f s of post-stream computation)\n",
              result->stream_finished_at.seconds(),
              result->drained_at.seconds(),
              (result->drained_at - result->stream_finished_at).seconds());
  std::printf("events ingested: %llu; residual batch messages: %llu "
              "(%llu deltas); peak worker queue length: %.0f\n",
              static_cast<unsigned long long>(result->events_ingested),
              static_cast<unsigned long long>(result->residual_messages),
              static_cast<unsigned long long>(result->residual_deltas),
              peak_queue);
  if (!result->rank_error.empty()) {
    double worst = 0.0;
    for (const RankErrorSample& s : result->rank_error) {
      worst = std::max(worst, s.median_relative_error);
    }
    std::printf("median relative rank error: worst %.3f, final %.3f\n",
                worst, result->rank_error.back().median_relative_error);
  }

  // --- Watermark latency (§4.5) --------------------------------------------
  if (!result->marker_latency.empty()) {
    std::printf("\nwatermark (marker) ingestion-to-visibility latency:\n");
    for (const MarkerLatencySample& m : result->marker_latency) {
      std::printf("  %-10s sent t=%6.1fs  visible after %7.2f s\n",
                  m.label.c_str(), m.sent.seconds(), m.latency.seconds());
    }
  }

  // --- Sparkline rendition of the stacked figure ----------------------------
  std::vector<ChartSeries> chart;
  chart.push_back({"replay rate", result->replay_rate});
  std::vector<double> total_ops;
  std::vector<double> total_cpu;
  const size_t n_samples = result->replay_rate.size();
  for (size_t i = 0; i < n_samples; ++i) {
    double ops = 0.0;
    double cpu = 0.0;
    for (size_t w = 0; w < result->worker_ops_rate.size(); ++w) {
      if (i < result->worker_ops_rate[w].size()) {
        ops += result->worker_ops_rate[w][i];
      }
      if (w < result->worker_cpu.size() && i < result->worker_cpu[w].size()) {
        cpu += result->worker_cpu[w][i] * 100.0;
      }
    }
    total_ops.push_back(ops);
    total_cpu.push_back(cpu);
  }
  chart.push_back({"internal ops", total_ops});
  chart.push_back({"cpu [%]", total_cpu});
  for (size_t w = 0; w < result->worker_queue_length.size(); ++w) {
    chart.push_back({"queue w" + std::to_string(w + 1),
                     result->worker_queue_length[w]});
  }
  std::vector<double> error_series;
  for (const RankErrorSample& e : result->rank_error) {
    error_series.push_back(e.median_relative_error);
  }
  chart.push_back({"rank error", error_series});
  std::printf("\n%s", RenderStackedChart(chart, 100).c_str());
  std::printf(
      "\nExpected shape (paper): queues fill during the doubled-rate\n"
      "segment and stay saturated at stream end; internal ops continue\n"
      "long after the replay stops while the backlog drains; rank errors\n"
      "stay high under load and recover only once the system catches up.\n");
  return 0;
}
