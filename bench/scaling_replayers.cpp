// Replayer-instance scaling (§3.2 Concurrency & Parallelism, §4.1): "a
// stream is only allowed to have a single event source ... In order to
// enable parallelism and horizontal scaling of input workload, we opt for
// concurrent streaming of disjunct streams by different event sources;
// multiple independent graphs are provided and changed concurrently."
//
// This bench drives chronolite with N concurrent virtual replayers, each
// owning a disjoint social graph (disjoint vertex-id ranges), and reports
// the aggregate sustained ingest rate and the engine's saturation behavior
// as the offered load scales with N.
// A second section measures the single-stream alternative added in the
// sharded replay pipeline: one stream hash-partitioned across N emitter
// lanes of a ShardedReplayer (wall-clock, unthrottled), which preserves
// per-entity order and marker semantics instead of requiring disjunct
// streams.
#include <cstdio>
#include <memory>
#include <thread>

#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "harness/report.h"
#include "replayer/sharded_replayer.h"
#include "sim/virtual_replayer.h"
#include "sut/chronolite/chronolite.h"

using namespace graphtides;

namespace {

/// A social stream whose vertex ids live in [offset, offset + range).
std::vector<Event> DisjointSocialStream(size_t rounds, uint64_t seed,
                                        VertexId offset) {
  SocialNetworkModel model;
  StreamGeneratorOptions gen;
  gen.rounds = rounds;
  gen.seed = seed;
  gen.emit_phase_markers = false;
  auto stream = StreamGenerator(&model, gen).Generate();
  if (!stream.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 stream.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<Event> events = std::move(stream).value().events;
  for (Event& e : events) {
    if (IsVertexOp(e.type)) {
      e.vertex += offset;
    } else if (IsEdgeOp(e.type)) {
      e.edge.src += offset;
      e.edge.dst += offset;
    }
  }
  return events;
}

}  // namespace

int main() {
  std::printf("%s", SectionHeader(
      "Scaling — concurrent replayer instances with disjunct streams "
      "(\xc2\xa7""3.2)").c_str());
  std::printf("%s", ConfigBlock({
      {"Engine", "chronolite, 4 workers"},
      {"Per-replayer stream", "social network, 20000 events @ 2000 ev/s"},
      {"Isolation", "disjoint vertex-id ranges (independent graphs)"},
  }).c_str());

  TextTable table({"replayers", "offered [ev/s]", "events", "ingest done [s]",
                   "drained [s]", "peak queue", "updates applied"});
  for (size_t n : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    Simulator sim;
    ChronoLiteOptions engine_options;
    engine_options.rank.push_threshold = 0.02;
    ChronoLite engine(&sim, engine_options);

    std::vector<std::unique_ptr<VirtualReplayer>> replayers;
    size_t finished = 0;
    Timestamp last_finish;
    for (size_t i = 0; i < n; ++i) {
      VirtualReplayerOptions options;
      options.base_rate_eps = 2000.0;
      auto replayer = std::make_unique<VirtualReplayer>(&sim, options);
      replayer->Start(
          DisjointSocialStream(20000, 100 + i, i * 10'000'000ULL),
          [&engine](const Event& e, size_t) { engine.Ingest(e); }, nullptr,
          [&finished, &last_finish, &sim] {
            ++finished;
            last_finish = sim.Now();
          });
      replayers.push_back(std::move(replayer));
    }

    // Sample peak queue while running; record the drain instant.
    double peak_queue = 0.0;
    double drained_at_s = -1.0;
    std::function<void()> sample = [&] {
      for (size_t w = 0; w < engine.num_workers(); ++w) {
        peak_queue = std::max(
            peak_queue, static_cast<double>(engine.WorkerQueueLength(w)));
      }
      if (finished == n && engine.Idle() && sim.pending() == 0) {
        drained_at_s = sim.Now().seconds();
        return;
      }
      if (sim.Now() > Timestamp::FromSeconds(600.0)) return;
      sim.ScheduleAfter(Duration::FromSeconds(1.0), sample);
    };
    sim.ScheduleAfter(Duration::FromSeconds(1.0), sample);
    sim.RunUntil(Timestamp::FromSeconds(600.0));

    table.AddRow({std::to_string(n),
                  TextTable::FormatDouble(2000.0 * static_cast<double>(n), 0),
                  std::to_string(engine.events_ingested()),
                  TextTable::FormatDouble(last_finish.seconds(), 1),
                  TextTable::FormatDouble(drained_at_s, 1),
                  TextTable::FormatDouble(peak_queue, 0),
                  std::to_string(engine.updates_applied())});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nReading: disjoint streams ingest without coordination (ingest-done\n"
      "time stays ~10 s regardless of N); the engine's drain time and queue\n"
      "backlog grow with aggregate offered load, surfacing the capacity\n"
      "boundary exactly as a single stream with N-fold rate would (the\n"
      "paper's equivalence argument).\n");

  std::printf("%s", SectionHeader(
      "Scaling — one stream, N sharded emitter lanes (wall clock)").c_str());
  {
    SocialNetworkModel model;
    StreamGeneratorOptions gen;
    gen.rounds = 60000;
    gen.seed = 100;
    auto stream = StreamGenerator(&model, gen).Generate();
    if (!stream.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   stream.status().ToString().c_str());
      return 1;
    }
    const std::vector<Event> events = std::move(stream).value().events;

    TextTable sharded_table({"lanes", "events/s", "wall [s]", "speedup"});
    double base_eps = 0.0;
    for (const size_t lanes : {1u, 2u, 4u, 8u}) {
      ShardedReplayerOptions options;
      options.shards = lanes;
      options.total_rate_eps = 1e9;  // unthrottled: measure emission capacity
      ShardedReplayer replayer(options);

      std::vector<std::FILE*> files;
      std::vector<std::unique_ptr<PipeSink>> pipes;
      std::vector<EventSink*> sinks;
      for (size_t s = 0; s < lanes; ++s) {
        files.push_back(std::fopen("/dev/null", "w"));
        pipes.push_back(std::make_unique<PipeSink>(files.back()));
        sinks.push_back(pipes.back().get());
      }
      auto stats = replayer.Replay(events, sinks);
      for (std::FILE* f : files) std::fclose(f);
      if (!stats.ok()) {
        std::fprintf(stderr, "sharded replay failed: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      const double wall = stats->aggregate.Elapsed().seconds();
      const double eps =
          wall > 0.0
              ? static_cast<double>(stats->aggregate.events_delivered) / wall
              : 0.0;
      if (lanes == 1) base_eps = eps;
      sharded_table.AddRow(
          {std::to_string(lanes), TextTable::FormatDouble(eps, 0),
           TextTable::FormatDouble(wall, 3),
           TextTable::FormatDouble(base_eps > 0.0 ? eps / base_eps : 0.0, 2)});
    }
    std::printf("%s", sharded_table.ToString().c_str());
    std::printf(
        "host cores: %u — lane speedup requires at least as many cores as\n"
        "lanes; on fewer cores the sweep shows the coordination overhead\n"
        "(barriers + queues) instead of parallel speedup.\n",
        std::thread::hardware_concurrency());
  }
  return 0;
}
