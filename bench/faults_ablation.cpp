// Stream-fault ablation (§3.2 Streaming Properties): the paper argues that
// "altered event orders or the loss of events may produce inconsistent
// graph topologies, as operations might fail due to violated preconditions
// caused by lost preceding events" — and that the framework should
// therefore replay reliable ordered streams and inject faults a priori.
//
// This bench quantifies the argument: a valid Table 3 stream is degraded
// with increasing drop / duplicate / reorder rates, and for each level we
// measure (i) precondition violations a consumer observes and (ii) the
// divergence of the resulting graph from the fault-free one.
//
// A second section moves from stream faults to *system* faults: the SUT
// itself is killed mid-stream and restarted after a fixed downtime, and we
// report recovery latency, rebuild workload, and post-recovery consistency
// (RunCrashRecoveryCase over a RecoverableConnector).
//
// A third section exercises the campaign supervision layer end to end: a
// 10-run campaign in which runs 3 and 7 deliberately wedge their SUT. The
// RunWatchdog must detect both hangs, the CampaignSupervisor must retry
// them with fresh seeds, and the final report must show effective n = 10
// with the hung/retried accounting — unattended §4.5 campaigns survive a
// wedged system under test.
#include <chrono>
#include <cstdio>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "faults/fault_injector.h"
#include "generator/models/event_mix_model.h"
#include "generator/stream_generator.h"
#include "graph/graph.h"
#include "harness/campaign.h"
#include "harness/report.h"
#include "sim/process.h"
#include "sim/simulator.h"
#include "stream/validator.h"
#include "suite/benchmark_suite.h"
#include "suite/connectors/online_connector.h"

using namespace graphtides;

namespace {

struct Divergence {
  size_t violations = 0;
  size_t vertex_diff = 0;
  size_t edge_diff = 0;
};

Divergence Evaluate(const std::vector<Event>& clean,
                    const std::vector<Event>& faulty) {
  Divergence out;
  Graph clean_graph;
  for (const Event& e : clean) (void)clean_graph.Apply(e);
  Graph faulty_graph;
  for (const Event& e : faulty) {
    if (!faulty_graph.Apply(e).ok()) ++out.violations;
  }
  // Symmetric difference of vertex sets and edge sets.
  clean_graph.ForEachVertex([&](VertexId v, const std::string&) {
    if (!faulty_graph.HasVertex(v)) ++out.vertex_diff;
  });
  faulty_graph.ForEachVertex([&](VertexId v, const std::string&) {
    if (!clean_graph.HasVertex(v)) ++out.vertex_diff;
  });
  clean_graph.ForEachEdge([&](VertexId s, VertexId d, const std::string&) {
    if (!faulty_graph.HasEdge(s, d)) ++out.edge_diff;
  });
  faulty_graph.ForEachEdge([&](VertexId s, VertexId d, const std::string&) {
    if (!clean_graph.HasEdge(s, d)) ++out.edge_diff;
  });
  return out;
}

}  // namespace

int main() {
  std::printf("%s", SectionHeader(
      "Fault-injection ablation — weakened stream guarantees vs graph "
      "consistency").c_str());

  EventMixModelOptions model_options;
  model_options.ba = {2000, 50, 10};
  EventMixModel model(model_options);
  StreamGeneratorOptions gen;
  gen.rounds = 50000;
  gen.seed = 17;
  gen.emit_phase_markers = false;
  auto generated = StreamGenerator(&model, gen).Generate();
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const std::vector<Event>& clean = generated->events;
  std::printf("base stream: %zu events (valid: %s)\n\n", clean.size(),
              ValidateStream(clean).valid() ? "yes" : "NO");

  TextTable table({"fault", "level", "events out", "violations",
                   "violation rate", "vertex diff", "edge diff"});
  auto run = [&](const char* kind, double level, const FaultOptions& opts) {
    FaultReport report;
    const std::vector<Event> faulty = InjectFaults(clean, opts, &report);
    const Divergence div = Evaluate(clean, faulty);
    table.AddRow({kind, TextTable::FormatDouble(level, 3),
                  std::to_string(faulty.size()),
                  std::to_string(div.violations),
                  TextTable::FormatDouble(
                      100.0 * static_cast<double>(div.violations) /
                          static_cast<double>(faulty.size()),
                      2) + "%",
                  std::to_string(div.vertex_diff),
                  std::to_string(div.edge_diff)});
  };

  for (double p : {0.001, 0.01, 0.05, 0.2}) {
    FaultOptions opts;
    opts.seed = 23;
    opts.drop_probability = p;
    run("drop", p, opts);
  }
  for (double p : {0.001, 0.01, 0.05, 0.2}) {
    FaultOptions opts;
    opts.seed = 23;
    opts.duplicate_probability = p;
    run("duplicate", p, opts);
  }
  for (double p : {0.001, 0.01, 0.05, 0.2}) {
    FaultOptions opts;
    opts.seed = 23;
    opts.reorder_probability = p;
    opts.reorder_window = 16;
    run("reorder(w=16)", p, opts);
  }
  {
    FaultOptions opts;
    opts.seed = 23;
    opts.drop_probability = 0.02;
    opts.duplicate_probability = 0.02;
    opts.reorder_probability = 0.05;
    opts.reorder_window = 16;
    run("combined", 0.02, opts);
  }

  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nReading: even sub-percent loss rates produce lasting topology\n"
      "divergence (dropped CREATEs invalidate later operations), which is\n"
      "why the framework replays with exactly-once semantics and injects\n"
      "faults deterministically a priori instead (\xc2\xa7""3.2).\n");

  // --- SUT crash–recovery: kill the system under test mid-stream ---------
  std::printf("%s", SectionHeader(
      "SUT crash\xe2\x80\x93recovery \xe2\x80\x94 kill at t=10s (virtual), "
      "restart after 2s downtime").c_str());

  SuiteWorkload workload;
  workload.name = "table3-mix-50k";
  workload.events = clean;
  for (const Event& e : clean) {
    if (IsGraphOp(e.type)) ++workload.graph_events;
  }
  workload.rate_eps = 2000.0;

  ConnectorFactory online_factory = [](Simulator* sim) {
    return std::make_unique<OnlineConnector>(sim, ChronoLiteOptions{});
  };

  TextTable crash_table({"recovery mode", "crash at", "recover at",
                         "journal events", "lost events", "catch-up (s)",
                         "drained (s)", "final rank err"});
  for (const bool journaled : {true, false}) {
    CrashRecoveryOptions crash_options;
    crash_options.journal_during_downtime = journaled;
    auto report = RunCrashRecoveryCase(workload, online_factory,
                                       crash_options);
    if (!report.ok()) {
      std::fprintf(stderr, "crash-recovery case failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    crash_table.AddRow(
        {journaled ? "journal + replay" : "lossy restart",
         TextTable::FormatDouble(report->crash_at_s, 2) + "s",
         TextTable::FormatDouble(report->recover_at_s, 2) + "s",
         std::to_string(report->journal_events),
         std::to_string(report->lost_events),
         report->recovered
             ? TextTable::FormatDouble(report->recovery_catchup_s, 3)
             : std::string("never"),
         report->drained ? TextTable::FormatDouble(report->drained_s, 2)
                         : std::string("no"),
         TextTable::FormatDouble(report->final_rank_error, 4)});
  }
  std::printf("%s", crash_table.ToString().c_str());
  std::printf(
      "\nReading: catch-up is the virtual time the restarted SUT needs to\n"
      "re-apply as many events as the dead instance had. With a durable\n"
      "journal nothing is lost (lost events = 0, full rebuild workload);\n"
      "a lossy restart permanently misses the downtime window's events.\n"
      "The residual rank error of the online engine dominates both final\n"
      "error figures; the lost-events column is the consistency signal.\n");

  // --- Campaign supervision: hung runs must not stall the campaign -------
  std::printf("%s", SectionHeader(
      "Campaign supervision \xe2\x80\x94 10 runs, forced hangs at runs 3 "
      "and 7, watchdog + retry").c_str());

  const std::set<size_t> hang_runs = {3, 7};  // 1-based run slots
  constexpr uint64_t kEventsPerRun = 200;

  CampaignOptions campaign_options;
  campaign_options.experiment.repetitions = 10;
  campaign_options.experiment.base_seed = 42;
  campaign_options.retry_budget = 2;
  campaign_options.watchdog.stall_deadline = Duration::FromMillis(250);

  CampaignSupervisor supervisor({}, campaign_options);
  auto campaign = supervisor.Run(
      [&](const ExperimentConfig&, const RunContext& ctx)
          -> Result<RunOutcome> {
        Simulator sim;
        SimProcess sut(&sim, "sut");
        Rng rng(ctx.seed);
        // First attempts of the chosen slots wedge halfway: the SUT is
        // killed, completions stop, and the progress heartbeat freezes.
        const bool wedge =
            hang_runs.contains(ctx.run_index + 1) && ctx.attempt == 0;
        const uint64_t stall_after = wedge ? kEventsPerRun / 2 : kEventsPerRun;
        uint64_t applied = 0;
        std::function<void()> submit_next = [&] {
          const double cost_ms = 0.5 + rng.NextDouble();
          sut.Submit(Duration::FromNanos(static_cast<int64_t>(cost_ms * 1e6)),
                     [&] {
                       ++applied;
                       if (wedge && applied >= stall_after) {
                         sut.Kill();
                         return;
                       }
                       if (applied < kEventsPerRun) submit_next();
                     });
        };
        submit_next();
        // Drive virtual time from the wall clock so a wedged SUT stalls in
        // real time, exactly like an external system under test.
        while (applied < kEventsPerRun) {
          if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
            return Status::Cancelled(ctx.cancel->reason());
          }
          if (!sim.Step()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          if (ctx.report_progress) ctx.report_progress(applied);
        }
        RunOutcome out;
        out["virtual_s"] = sim.Now().seconds();
        return out;
      });
  if (!campaign.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 campaign.status().ToString().c_str());
    return 1;
  }
  for (const AttemptRecord& a : campaign->attempts) {
    if (a.outcome == AttemptOutcome::kCompleted && a.attempt == 0) continue;
    std::printf("  run %zu attempt %zu: %s%s%s\n", a.run_index + 1, a.attempt,
                std::string(AttemptOutcomeName(a.outcome)).c_str(),
                a.detail.empty() ? "" : " — ", a.detail.c_str());
  }
  std::printf("%s", FormatCampaignReport(*campaign).c_str());
  std::printf(
      "\nReading: both wedged runs were declared hung by the watchdog,\n"
      "cancelled, and retried with fresh derived seeds; the campaign\n"
      "finished unattended with effective n = 10, and the CI is computed\n"
      "over completed runs only.\n");
  const bool supervised_ok = campaign->total_completed == 10 &&
                             campaign->total_hung == 2 &&
                             campaign->quarantined_configs == 0;
  if (!supervised_ok) {
    std::fprintf(stderr, "campaign supervision acceptance check FAILED\n");
    return 1;
  }

  // --- Crash-resume drill: crashed runs resume from their checkpoint -----
  std::printf("%s", SectionHeader(
      "Crash\xe2\x80\x93resume drill \xe2\x80\x94 10 runs, forced crashes at "
      "runs 2 and 5, auto-resume + MTTR").c_str());

  const std::set<size_t> crash_runs = {2, 5};  // 1-based run slots
  CampaignOptions resume_options = campaign_options;
  resume_options.auto_resume = true;
  std::vector<uint64_t> checkpoints(10, 0);

  CampaignSupervisor resume_supervisor({}, resume_options);
  auto drill = resume_supervisor.Run(
      [&](const ExperimentConfig&, const RunContext& ctx)
          -> Result<RunOutcome> {
        Simulator sim;
        SimProcess sut(&sim, "sut");
        Rng rng(ctx.seed);
        // First attempts of the chosen slots die two-thirds in, leaving a
        // checkpoint at the last 50-event boundary. The resumed attempt
        // keeps the attempt-0 seed and continues from that count.
        const bool crash =
            crash_runs.contains(ctx.run_index + 1) && ctx.attempt == 0;
        const uint64_t crash_after = (2 * kEventsPerRun) / 3;
        uint64_t applied = ctx.resume ? checkpoints[ctx.run_index] : 0;
        bool crashed = false;
        std::function<void()> submit_next = [&] {
          const double cost_ms = 0.5 + rng.NextDouble();
          sut.Submit(Duration::FromNanos(static_cast<int64_t>(cost_ms * 1e6)),
                     [&] {
                       ++applied;
                       if (crash && applied >= crash_after) {
                         crashed = true;
                         return;
                       }
                       if (applied < kEventsPerRun) submit_next();
                     });
        };
        submit_next();
        while (applied < kEventsPerRun) {
          if (crashed) {
            checkpoints[ctx.run_index] = applied - (applied % 50);
            return Status::IoError("simulated crash after " +
                                   std::to_string(applied) + " events");
          }
          if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
            return Status::Cancelled(ctx.cancel->reason());
          }
          if (!sim.Step()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          if (ctx.report_progress) ctx.report_progress(applied);
        }
        RunOutcome out;
        out["virtual_s"] = sim.Now().seconds();
        return out;
      });
  if (!drill.ok()) {
    std::fprintf(stderr, "crash-resume drill failed: %s\n",
                 drill.status().ToString().c_str());
    return 1;
  }
  for (const AttemptRecord& a : drill->attempts) {
    if (a.outcome == AttemptOutcome::kCompleted && a.attempt == 0) continue;
    std::printf("  run %zu attempt %zu%s: %s%s%s\n", a.run_index + 1,
                a.attempt, a.resume ? " (resume)" : "",
                std::string(AttemptOutcomeName(a.outcome)).c_str(),
                a.detail.empty() ? "" : " — ", a.detail.c_str());
  }
  std::printf("%s", FormatCampaignReport(*drill).c_str());
  std::printf(
      "\nReading: crashed slots are *resumed*, not rerun — the retry keeps\n"
      "the attempt-0 seed and continues from the checkpointed event count,\n"
      "so the slot remains the same logical run. Downtime is measured from\n"
      "the failure to the resumed attempt's first progress heartbeat; MTTR\n"
      "is the campaign-level mean over all recoveries.\n");
  const bool drill_ok = drill->total_completed == 10 &&
                        drill->total_resumed == 2 &&
                        drill->total_recoveries == 2 &&
                        drill->quarantined_configs == 0;
  if (!drill_ok) {
    std::fprintf(stderr, "crash-resume drill acceptance check FAILED\n");
    return 1;
  }
  return 0;
}
