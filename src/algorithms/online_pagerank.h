// Online (converging) PageRank-style influence rank over an evolving graph
// (§4.4.2 "Converging computations (e.g., online PageRank variants)").
//
// Algorithm: residual push with *invariant-preserving* corrections on
// topology changes (in the style of Ohsaka et al., "Efficient PageRank
// Tracking in Evolving Networks", KDD'15). The core maintains, per tracked
// vertex, a score x(v) and a signed residual r(v) with the invariant
//
//     r = b - (I - d * W^T) x
//
// where b is the teleport injection (one unit per live vertex), d the
// damping factor, and W the out-edge transition matrix (dangling columns
// are sinks; normalization at query time makes this the "renormalized
// sink" PageRank formulation). A push at v moves r(v) into x(v) and
// forwards d * r(v) split across v's current out-neighbors. When an edge
// at u is inserted or removed, residuals of u's (old and new) neighbors
// are adjusted by the exact difference d * x(u) * (W' - W) e_u, so the
// invariant — and therefore convergence to the rank of the *current*
// graph — is preserved. The remaining residual mass at any instant is
// exactly the staleness the framework's accuracy metrics quantify.
//
// OnlinePageRankCore is partition-friendly: it owns only local vertices
// (and their out-adjacency) and emits signed residual deltas for non-local
// targets through a callback. The chronolite SUT runs one core per worker
// and routes deltas as messages; OnlinePageRank wraps a single core with
// direct local routing.
#ifndef GRAPHTIDES_ALGORITHMS_ONLINE_PAGERANK_H_
#define GRAPHTIDES_ALGORITHMS_ONLINE_PAGERANK_H_

#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "stream/event.h"

namespace graphtides {

struct OnlinePageRankOptions {
  double damping = 0.85;
  /// Residuals with |r| below this threshold stay parked (no push).
  ///
  /// Unit: one vertex's teleport injection (every vertex injects exactly
  /// 1.0). Converged scores average 1/(1-d) ~ 6.7 per vertex, so a
  /// threshold of 0.01 parks residuals below ~0.15% of the mean score.
  /// Worst-case total pushes scale as n / ((1 - d) * threshold): for
  /// large graphs prefer 0.01-0.05; very small thresholds are only
  /// affordable on small graphs.
  double push_threshold = 1e-4;
};

/// \brief Partitionable dynamic-PageRank state.
class OnlinePageRankCore {
 public:
  /// True if a vertex is owned by this core.
  using IsLocalFn = std::function<bool(VertexId)>;
  /// Signed residual delta addressed to a non-local vertex.
  using EmitRemoteFn = std::function<void(VertexId, double)>;

  OnlinePageRankCore(OnlinePageRankOptions options, IsLocalFn is_local);

  // --- Topology notifications (all vertices below are local) -------------

  /// A new local vertex: injects one unit of teleport mass.
  void AddVertex(VertexId v);

  /// Removes a local vertex with exact residual corrections for its
  /// out-neighbors. `in_neighbors` (local vertices with an edge into v)
  /// enables the exact correction for their renormalized distributions;
  /// pass an empty list when unknown (distributed workers) — the resulting
  /// stale contribution is part of the measured approximation error.
  void RemoveVertex(VertexId v, const std::vector<VertexId>& in_neighbors);

  /// Edge u -> w inserted (u local; w may be remote).
  void AddEdge(VertexId u, VertexId w);
  /// Edge u -> w removed (u local; w may be remote).
  void RemoveEdge(VertexId u, VertexId w);

  /// Adds signed residual to a local vertex (local push or remote
  /// delivery).
  void AddResidual(VertexId v, double amount);

  // --- Computation --------------------------------------------------------

  /// Executes up to `max_pushes` pushes; returns how many ran. Remote
  /// residual deltas are forwarded through `emit_remote`.
  size_t ProcessPushes(size_t max_pushes, const EmitRemoteFn& emit_remote);

  bool HasPendingWork() const { return !queue_.empty(); }
  size_t pending_pushes() const { return queue_.size(); }

  // --- Results ------------------------------------------------------------

  /// Unnormalized score of a local vertex (0 if unknown).
  double EstimateOf(VertexId v) const;
  /// Sum of local scores (for cross-partition normalization).
  double EstimateMass() const { return estimate_mass_; }
  /// Snapshot of (vertex, unnormalized score) pairs.
  std::vector<std::pair<VertexId, double>> Estimates() const;

  size_t num_tracked() const { return state_.size(); }
  /// Current out-degree of a local vertex (adjacency mirror).
  size_t OutDegreeOf(VertexId v) const;

 private:
  struct VertexState {
    double score = 0.0;
    double residual = 0.0;
    bool queued = false;
    std::vector<VertexId> out;
  };

  void MaybeEnqueue(VertexId v, VertexState& state);
  /// Applies a signed residual delta, routing to local state or the remote
  /// emitter.
  void Adjust(VertexId target, double delta, const EmitRemoteFn& emit_remote);
  /// Deferred remote emissions issued outside ProcessPushes are buffered
  /// and flushed on the next ProcessPushes call.
  void AdjustBuffered(VertexId target, double delta);

  OnlinePageRankOptions options_;
  IsLocalFn is_local_;
  std::unordered_map<VertexId, VertexState> state_;
  std::deque<VertexId> queue_;
  double estimate_mass_ = 0.0;
  /// Remote deltas produced by topology notifications, flushed by
  /// ProcessPushes.
  std::vector<std::pair<VertexId, double>> pending_remote_;
};

/// \brief Single-process online PageRank over an event-defined graph.
///
/// Feed every applied event via OnEventApplied (after the corresponding
/// Graph::Apply succeeded), interleave ProcessPending with ingestion, and
/// query NormalizedRanks whenever an approximate result is needed. The
/// tracker keeps its own adjacency mirror, so vertex removals are handled
/// with exact corrections.
class OnlinePageRank {
 public:
  explicit OnlinePageRank(OnlinePageRankOptions options = {});

  /// Reacts to a successfully applied graph event.
  void OnEventApplied(const Event& event);

  /// Runs up to `max_pushes` pushes. Returns the number executed.
  size_t ProcessPending(size_t max_pushes);

  bool HasPendingWork() const { return core_.HasPendingWork(); }

  /// Normalized rank of one vertex (scores normalized to sum to 1).
  double RankOf(VertexId v) const;

  /// All normalized ranks.
  std::unordered_map<VertexId, double> NormalizedRanks() const;

 private:
  OnlinePageRankCore core_;
  /// In-adjacency mirror (out-adjacency lives in the core).
  std::unordered_map<VertexId, std::unordered_set<VertexId>> in_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_ALGORITHMS_ONLINE_PAGERANK_H_
