#include "algorithms/pagerank.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/stats.h"

namespace graphtides {

PageRankResult PageRank(const CsrGraph& graph, const PageRankOptions& options) {
  PageRankResult result;
  const size_t n = graph.num_vertices();
  if (n == 0) return result;

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Dangling vertices donate their rank uniformly.
    double dangling_mass = 0.0;
    for (size_t v = 0; v < n; ++v) {
      if (graph.OutDegree(static_cast<CsrGraph::Index>(v)) == 0) {
        dangling_mass += rank[v];
      }
    }
    const double base = (1.0 - options.damping) / static_cast<double>(n) +
                        options.damping * dangling_mass /
                            static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (size_t v = 0; v < n; ++v) {
      const size_t out_deg = graph.OutDegree(static_cast<CsrGraph::Index>(v));
      if (out_deg == 0) continue;
      const double share =
          options.damping * rank[v] / static_cast<double>(out_deg);
      for (CsrGraph::Index w :
           graph.OutNeighbors(static_cast<CsrGraph::Index>(v))) {
        next[w] += share;
      }
    }

    double delta = 0.0;
    for (size_t v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
    rank.swap(next);
    result.iterations = iter + 1;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.ranks = std::move(rank);
  return result;
}

std::vector<CsrGraph::Index> TopKByRank(const std::vector<double>& ranks,
                                        size_t k) {
  std::vector<CsrGraph::Index> order(ranks.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](CsrGraph::Index a, CsrGraph::Index b) {
                      if (ranks[a] != ranks[b]) return ranks[a] > ranks[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

double MedianRelativeError(const std::vector<double>& approx,
                           const std::vector<double>& exact) {
  std::vector<double> errors;
  const size_t n = std::min(approx.size(), exact.size());
  errors.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (exact[i] == 0.0) continue;
    errors.push_back(std::abs(approx[i] - exact[i]) / exact[i]);
  }
  return Median(std::move(errors));
}

}  // namespace graphtides
