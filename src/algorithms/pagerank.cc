#include "algorithms/pagerank.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "common/stats.h"

namespace graphtides {

PageRankResult PageRank(const CsrGraph& graph, const PageRankOptions& options) {
  PageRankResult result;
  const size_t n = graph.num_vertices();
  if (n == 0) return result;
  const size_t threads = ResolveThreads(options.threads);
  const double inv_n = 1.0 / static_cast<double>(n);

  std::vector<double> rank(n, inv_n);
  std::vector<double> next(n, 0.0);
  // contrib[u] = damping * rank[u] / out_deg(u): the per-edge share each
  // vertex offers, so the pull loop is a pure sum over in-neighbors.
  std::vector<double> contrib(n, 0.0);

  // Chunk layouts derive only from the graph, never from `threads`: the
  // reduction trees (dangling mass, delta) are identical at any thread
  // count, which is what makes the parallel ranks bit-deterministic.
  const auto vertex_chunks = UniformChunks(0, n, 4096);
  const auto pull_chunks = DegreeBalancedChunks(graph.in_offsets(), 8192);
  const auto plus = [](double a, double b) { return a + b; };

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Dangling vertices donate their rank uniformly.
    const double dangling_mass = ParallelReduceChunks(
        std::span(vertex_chunks), threads, 0.0,
        [&](size_t begin, size_t end) {
          double mass = 0.0;
          for (size_t v = begin; v < end; ++v) {
            const size_t out_deg =
                graph.OutDegree(static_cast<CsrGraph::Index>(v));
            if (out_deg == 0) {
              mass += rank[v];
              contrib[v] = 0.0;
            } else {
              contrib[v] =
                  options.damping * rank[v] / static_cast<double>(out_deg);
            }
          }
          return mass;
        },
        plus);
    const double base = (1.0 - options.damping) * inv_n +
                        options.damping * dangling_mass * inv_n;

    // Pull phase: each vertex sums its sorted in-neighbor contributions —
    // per-vertex results are schedule-independent by construction.
    const double delta = ParallelReduceChunks(
        std::span(pull_chunks), threads, 0.0,
        [&](size_t begin, size_t end) {
          double chunk_delta = 0.0;
          for (size_t v = begin; v < end; ++v) {
            double sum = base;
            for (CsrGraph::Index u :
                 graph.InNeighbors(static_cast<CsrGraph::Index>(v))) {
              sum += contrib[u];
            }
            next[v] = sum;
            chunk_delta += std::abs(sum - rank[v]);
          }
          return chunk_delta;
        },
        plus);

    rank.swap(next);
    result.iterations = iter + 1;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.ranks = std::move(rank);
  return result;
}

std::vector<CsrGraph::Index> TopKByRank(const std::vector<double>& ranks,
                                        size_t k) {
  std::vector<CsrGraph::Index> order(ranks.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](CsrGraph::Index a, CsrGraph::Index b) {
                      if (ranks[a] != ranks[b]) return ranks[a] > ranks[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

double MedianRelativeError(const std::vector<double>& approx,
                           const std::vector<double>& exact) {
  std::vector<double> errors;
  const size_t n = std::min(approx.size(), exact.size());
  errors.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (exact[i] == 0.0) continue;
    errors.push_back(std::abs(approx[i] - exact[i]) / exact[i]);
  }
  return Median(std::move(errors));
}

}  // namespace graphtides
