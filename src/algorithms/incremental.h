// Further online computations on evolving graphs (§4.4.2): an incremental
// weakly-connected-components tracker and an incremental degree-statistics
// tracker. Both consume applied stream events.
#ifndef GRAPHTIDES_ALGORITHMS_INCREMENTAL_H_
#define GRAPHTIDES_ALGORITHMS_INCREMENTAL_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "stream/event.h"

namespace graphtides {

/// \brief Online weakly-connected-components count.
///
/// Edge/vertex additions are handled incrementally with union-find; deletions
/// mark the structure dirty and trigger a rebuild from the tracked edge set
/// on the next query (deletions cannot be handled by plain union-find). The
/// rebuild cost is the accuracy/latency trade-off knob: queries between a
/// deletion and the rebuild would be stale, so this tracker always rebuilds
/// before answering.
class IncrementalWcc {
 public:
  void OnEventApplied(const Event& event);

  /// Number of weakly connected components (rebuilds if dirty).
  size_t NumComponents();
  /// Whether two vertices are currently in the same component.
  bool SameComponent(VertexId a, VertexId b);

  size_t num_vertices() const { return adjacency_.size(); }
  bool dirty() const { return dirty_; }

 private:
  void RebuildIfDirty();
  VertexId Find(VertexId v);
  void Union(VertexId a, VertexId b);

  // Full undirected adjacency is retained to support rebuilds.
  std::unordered_map<VertexId, std::vector<VertexId>> adjacency_;
  std::unordered_map<VertexId, VertexId> parent_;
  size_t components_ = 0;
  bool dirty_ = false;
};

/// \brief Online degree statistics: mean and maximum out-degree maintained
/// per event in O(1) amortized (max falls back to a scan after removals that
/// hit the maximum).
class IncrementalDegreeStats {
 public:
  void OnEventApplied(const Event& event);

  size_t num_vertices() const { return out_degree_.size(); }
  size_t num_edges() const { return num_edges_; }
  double MeanOutDegree() const;
  size_t MaxOutDegree();

 private:
  std::unordered_map<VertexId, size_t> out_degree_;
  std::unordered_map<VertexId, std::vector<VertexId>> in_neighbors_;
  std::unordered_map<VertexId, std::vector<VertexId>> out_neighbors_;
  size_t num_edges_ = 0;
  size_t max_out_degree_ = 0;
  bool max_dirty_ = false;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_ALGORITHMS_INCREMENTAL_H_
