// K-means clustering (Table 1: "Communities — ... k-means ..."): a generic
// Lloyd's-algorithm implementation with k-means++ seeding, plus a
// structural feature extractor so vertices of a graph snapshot can be
// clustered by their connectivity profile.
#ifndef GRAPHTIDES_ALGORITHMS_KMEANS_H_
#define GRAPHTIDES_ALGORITHMS_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "graph/csr.h"

namespace graphtides {

struct KMeansOptions {
  size_t max_iterations = 100;
  /// Stop when total centroid movement (L2) falls below this.
  double tolerance = 1e-6;
};

struct KMeansResult {
  /// Cluster index per point.
  std::vector<uint32_t> assignment;
  /// k centroids (dimension = input dimension).
  std::vector<std::vector<double>> centroids;
  /// Sum of squared distances of points to their centroid.
  double inertia = 0.0;
  size_t iterations = 0;
  bool converged = false;
};

/// \brief Lloyd's algorithm with k-means++ seeding.
///
/// All points must share one dimension; k must satisfy 1 <= k <= #points.
Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            size_t k, Rng& rng,
                            const KMeansOptions& options = {});

/// \brief Per-vertex structural features for clustering:
/// [log1p(out-degree), log1p(in-degree), log1p(2-hop out reach)].
std::vector<std::vector<double>> VertexStructuralFeatures(
    const CsrGraph& graph);

}  // namespace graphtides

#endif  // GRAPHTIDES_ALGORITHMS_KMEANS_H_
