// Triangle counting and clustering coefficient (Table 1: "Graph theory").
// Operates on the undirected view of the graph.
#ifndef GRAPHTIDES_ALGORITHMS_TRIANGLES_H_
#define GRAPHTIDES_ALGORITHMS_TRIANGLES_H_

#include <cstddef>
#include <cstdint>

#include "graph/csr.h"

namespace graphtides {

/// \brief Exact triangle count over the undirected view (each triangle
/// counted once), using degree-ordered neighbor intersection. `threads`
/// (0 = auto, 1 = sequential) parallelizes the adjacency build and the
/// intersection over degree-balanced vertex chunks; the count is an
/// integer sum folded in fixed chunk order, so it is identical at every
/// thread count.
uint64_t CountTriangles(const CsrGraph& graph, size_t threads = 0);

/// \brief Global clustering coefficient: 3 * triangles / open-or-closed
/// wedges. Returns 0 if the graph has no wedges. Deterministic for any
/// `threads` (0 = auto, 1 = sequential).
double GlobalClusteringCoefficient(const CsrGraph& graph, size_t threads = 0);

}  // namespace graphtides

#endif  // GRAPHTIDES_ALGORITHMS_TRIANGLES_H_
