// Triangle counting and clustering coefficient (Table 1: "Graph theory").
// Operates on the undirected view of the graph.
#ifndef GRAPHTIDES_ALGORITHMS_TRIANGLES_H_
#define GRAPHTIDES_ALGORITHMS_TRIANGLES_H_

#include <cstddef>
#include <cstdint>

#include "graph/csr.h"

namespace graphtides {

/// \brief Exact triangle count over the undirected view (each triangle
/// counted once), using degree-ordered neighbor intersection.
uint64_t CountTriangles(const CsrGraph& graph);

/// \brief Global clustering coefficient: 3 * triangles / open-or-closed
/// wedges. Returns 0 if the graph has no wedges.
double GlobalClusteringCoefficient(const CsrGraph& graph);

}  // namespace graphtides

#endif  // GRAPHTIDES_ALGORITHMS_TRIANGLES_H_
