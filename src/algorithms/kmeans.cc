#include "algorithms/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace graphtides {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// k-means++ seeding: first centroid uniform, subsequent ones sampled with
/// probability proportional to squared distance from the nearest chosen
/// centroid.
std::vector<std::vector<double>> SeedCentroids(
    const std::vector<std::vector<double>>& points, size_t k, Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.NextBounded(points.size())]);
  std::vector<double> best_dist(points.size(),
                                std::numeric_limits<double>::max());
  while (centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      best_dist[i] =
          std::min(best_dist[i], SquaredDistance(points[i], centroids.back()));
      total += best_dist[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one.
      centroids.push_back(points[rng.NextBounded(points.size())]);
      continue;
    }
    double x = rng.NextDouble() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      x -= best_dist[i];
      if (x <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            size_t k, Rng& rng,
                            const KMeansOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("KMeans requires at least one point");
  }
  if (k == 0 || k > points.size()) {
    return Status::InvalidArgument("KMeans requires 1 <= k <= #points");
  }
  const size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("inconsistent point dimensions");
    }
  }

  KMeansResult result;
  result.centroids = SeedCentroids(points, k, rng);
  result.assignment.assign(points.size(), 0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Assign.
    result.inertia = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      uint32_t best_cluster = 0;
      for (size_t c = 0; c < k; ++c) {
        const double d = SquaredDistance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_cluster = static_cast<uint32_t>(c);
        }
      }
      result.assignment[i] = best_cluster;
      result.inertia += best;
    }

    // Update.
    std::vector<std::vector<double>> next(k, std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      auto& acc = next[result.assignment[i]];
      for (size_t d = 0; d < dim; ++d) acc[d] += points[i][d];
      ++counts[result.assignment[i]];
    }
    double movement = 0.0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: reseed at the point farthest from its centroid.
        size_t farthest = 0;
        double far_dist = -1.0;
        for (size_t i = 0; i < points.size(); ++i) {
          const double d = SquaredDistance(
              points[i], result.centroids[result.assignment[i]]);
          if (d > far_dist) {
            far_dist = d;
            farthest = i;
          }
        }
        next[c] = points[farthest];
      } else {
        for (size_t d = 0; d < dim; ++d) {
          next[c][d] /= static_cast<double>(counts[c]);
        }
      }
      movement += std::sqrt(SquaredDistance(next[c], result.centroids[c]));
      result.centroids[c] = std::move(next[c]);
    }
    result.iterations = iter + 1;
    if (movement < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

std::vector<std::vector<double>> VertexStructuralFeatures(
    const CsrGraph& graph) {
  const size_t n = graph.num_vertices();
  std::vector<std::vector<double>> features(n);
  for (size_t v = 0; v < n; ++v) {
    const auto idx = static_cast<CsrGraph::Index>(v);
    // 2-hop out reach (bounded sampling of neighbor degrees).
    uint64_t two_hop = 0;
    for (CsrGraph::Index w : graph.OutNeighbors(idx)) {
      two_hop += graph.OutDegree(w);
    }
    features[v] = {std::log1p(static_cast<double>(graph.OutDegree(idx))),
                   std::log1p(static_cast<double>(graph.InDegree(idx))),
                   std::log1p(static_cast<double>(two_hop))};
  }
  return features;
}

}  // namespace graphtides
