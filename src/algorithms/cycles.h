// Directed cycle detection and topological ordering (Table 1: "Graph
// properties" — cycle detection).
#ifndef GRAPHTIDES_ALGORITHMS_CYCLES_H_
#define GRAPHTIDES_ALGORITHMS_CYCLES_H_

#include <optional>
#include <vector>

#include "graph/csr.h"

namespace graphtides {

/// \brief True if the directed graph contains at least one cycle.
bool HasCycle(const CsrGraph& graph);

/// \brief One directed cycle as a vertex sequence (first == last), or
/// std::nullopt if the graph is acyclic.
std::optional<std::vector<CsrGraph::Index>> FindCycle(const CsrGraph& graph);

/// \brief Topological order (Kahn), or std::nullopt if cyclic.
std::optional<std::vector<CsrGraph::Index>> TopologicalSort(
    const CsrGraph& graph);

}  // namespace graphtides

#endif  // GRAPHTIDES_ALGORITHMS_CYCLES_H_
