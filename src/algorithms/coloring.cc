#include "algorithms/coloring.h"

#include <algorithm>
#include <numeric>

namespace graphtides {

ColoringResult GreedyColoring(const CsrGraph& graph) {
  ColoringResult result;
  const size_t n = graph.num_vertices();
  constexpr uint32_t kUncolored = std::numeric_limits<uint32_t>::max();
  result.color.assign(n, kUncolored);
  if (n == 0) return result;

  auto undirected_degree = [&](size_t v) {
    return graph.OutDegree(static_cast<CsrGraph::Index>(v)) +
           graph.InDegree(static_cast<CsrGraph::Index>(v));
  };

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const size_t da = undirected_degree(a);
    const size_t db = undirected_degree(b);
    if (da != db) return da > db;
    return a < b;
  });

  std::vector<uint8_t> used;  // scratch: colors used by neighbors
  for (uint32_t v : order) {
    used.assign(undirected_degree(v) + 1, 0);
    auto mark = [&](CsrGraph::Index w) {
      const uint32_t c = result.color[w];
      if (c != kUncolored && c < used.size()) used[c] = 1;
    };
    for (CsrGraph::Index w : graph.OutNeighbors(v)) mark(w);
    for (CsrGraph::Index w : graph.InNeighbors(v)) mark(w);
    uint32_t c = 0;
    while (c < used.size() && used[c]) ++c;
    result.color[v] = c;
    result.num_colors = std::max<size_t>(result.num_colors, c + 1);
  }
  return result;
}

bool IsProperColoring(const CsrGraph& graph,
                      const std::vector<uint32_t>& color) {
  if (color.size() != graph.num_vertices()) return false;
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    for (CsrGraph::Index w :
         graph.OutNeighbors(static_cast<CsrGraph::Index>(v))) {
      if (color[v] == color[w]) return false;
    }
  }
  return true;
}

}  // namespace graphtides
