// Traversal computations (Table 1: "Routing & traversals"): breadth-first
// search, spanning trees, and diameter estimation.
#ifndef GRAPHTIDES_ALGORITHMS_TRAVERSAL_H_
#define GRAPHTIDES_ALGORITHMS_TRAVERSAL_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/random.h"
#include "graph/csr.h"

namespace graphtides {

/// Sentinel distance for unreachable vertices.
inline constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

/// \brief BFS hop distances from `source` (dense index) following out-edges.
/// Unreachable vertices get kUnreachable.
std::vector<uint32_t> BfsDistances(const CsrGraph& graph,
                                   CsrGraph::Index source);

/// \brief BFS over the undirected view (out- and in-edges).
std::vector<uint32_t> BfsDistancesUndirected(const CsrGraph& graph,
                                             CsrGraph::Index source);

/// \brief Whether a directed path source -> target exists — the dichotomous
/// "correctness" computation of §4.3.
bool PathExists(const CsrGraph& graph, CsrGraph::Index source,
                CsrGraph::Index target);

/// \brief BFS spanning tree: parent[v] is the BFS predecessor of v, the
/// source is its own parent, unreached vertices have parent kNoParent.
struct SpanningTree {
  static constexpr uint32_t kNoParent = std::numeric_limits<uint32_t>::max();
  CsrGraph::Index root = 0;
  std::vector<uint32_t> parent;
  size_t reached = 0;
};

SpanningTree BfsSpanningTree(const CsrGraph& graph, CsrGraph::Index root);

/// \brief Estimates the diameter of the undirected view by `samples`
/// double-sweep BFS probes (lower bound that is exact on trees and tight on
/// most real-world graphs). Returns 0 on graphs with < 2 vertices.
size_t EstimateDiameter(const CsrGraph& graph, size_t samples, Rng& rng);

/// \brief Exact eccentricity-based diameter of the undirected view —
/// O(n * (n + m)); test/reference use only.
size_t ExactDiameter(const CsrGraph& graph);

}  // namespace graphtides

#endif  // GRAPHTIDES_ALGORITHMS_TRAVERSAL_H_
