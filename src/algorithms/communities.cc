#include "algorithms/communities.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace graphtides {

namespace {

std::vector<std::vector<CsrGraph::Index>> UndirectedAdjacency(
    const CsrGraph& graph) {
  const size_t n = graph.num_vertices();
  std::vector<std::vector<CsrGraph::Index>> adj(n);
  for (size_t v = 0; v < n; ++v) {
    auto& list = adj[v];
    for (CsrGraph::Index w :
         graph.OutNeighbors(static_cast<CsrGraph::Index>(v))) {
      list.push_back(w);
    }
    for (CsrGraph::Index w :
         graph.InNeighbors(static_cast<CsrGraph::Index>(v))) {
      list.push_back(w);
    }
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

}  // namespace

CommunityResult LabelPropagation(const CsrGraph& graph, Rng& rng,
                                 const LabelPropagationOptions& options) {
  CommunityResult result;
  const size_t n = graph.num_vertices();
  result.community.resize(n);
  std::iota(result.community.begin(), result.community.end(), 0);
  if (n == 0) return result;

  const auto adj = UndirectedAdjacency(graph);

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::unordered_map<uint32_t, size_t> counts;
  for (size_t round = 0; round < options.max_rounds; ++round) {
    // Fisher–Yates shuffle of the visit order.
    for (size_t i = n - 1; i > 0; --i) {
      std::swap(order[i], order[rng.NextBounded(i + 1)]);
    }
    size_t changed = 0;
    for (uint32_t v : order) {
      if (adj[v].empty()) continue;
      counts.clear();
      for (CsrGraph::Index w : adj[v]) ++counts[result.community[w]];
      uint32_t best_label = result.community[v];
      size_t best_count = 0;
      for (const auto& [label, count] : counts) {
        if (count > best_count ||
            (count == best_count && label < best_label)) {
          best_count = count;
          best_label = label;
        }
      }
      if (best_label != result.community[v]) {
        result.community[v] = best_label;
        ++changed;
      }
    }
    result.rounds = round + 1;
    if (changed == 0 ||
        static_cast<double>(changed) <
            options.min_change_fraction * static_cast<double>(n)) {
      break;
    }
  }

  // Relabel to dense [0, k).
  std::unordered_map<uint32_t, uint32_t> dense;
  for (uint32_t& label : result.community) {
    auto [it, inserted] =
        dense.try_emplace(label, static_cast<uint32_t>(dense.size()));
    label = it->second;
  }
  result.num_communities = dense.size();
  return result;
}

std::vector<uint32_t> CoreNumbers(const CsrGraph& graph) {
  const size_t n = graph.num_vertices();
  const auto adj = UndirectedAdjacency(graph);
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (size_t v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(adj[v].size());
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort by degree (Batagelj–Zaveršnik).
  std::vector<uint32_t> bin(max_degree + 2, 0);
  for (size_t v = 0; v < n; ++v) ++bin[degree[v]];
  uint32_t start = 0;
  for (uint32_t d = 0; d <= max_degree; ++d) {
    const uint32_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<uint32_t> pos(n);
  std::vector<uint32_t> vert(n);
  {
    std::vector<uint32_t> cursor(bin.begin(), bin.end());
    for (size_t v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]];
      vert[pos[v]] = static_cast<uint32_t>(v);
      ++cursor[degree[v]];
    }
  }

  std::vector<uint32_t> core(degree);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t v = vert[i];
    for (CsrGraph::Index w : adj[v]) {
      if (core[w] > core[v]) {
        // Move w one bucket down.
        const uint32_t dw = core[w];
        const uint32_t pw = pos[w];
        const uint32_t pfirst = bin[dw];
        const uint32_t vfirst = vert[pfirst];
        if (vfirst != w) {
          std::swap(vert[pw], vert[pfirst]);
          pos[w] = pfirst;
          pos[vfirst] = pw;
        }
        ++bin[dw];
        --core[w];
      }
    }
  }
  return core;
}

double Modularity(const CsrGraph& graph,
                  const std::vector<uint32_t>& community) {
  const size_t n = graph.num_vertices();
  if (n == 0 || community.size() != n) return 0.0;
  const auto adj = UndirectedAdjacency(graph);
  double m2 = 0.0;  // sum of undirected degrees = 2m
  for (const auto& list : adj) m2 += static_cast<double>(list.size());
  if (m2 == 0.0) return 0.0;

  std::unordered_map<uint32_t, double> degree_sum;
  double intra = 0.0;  // directed count of intra-community adjacency entries
  for (size_t v = 0; v < n; ++v) {
    degree_sum[community[v]] += static_cast<double>(adj[v].size());
    for (CsrGraph::Index w : adj[v]) {
      if (community[v] == community[w]) intra += 1.0;
    }
  }
  double q = intra / m2;
  for (const auto& [label, dsum] : degree_sum) {
    q -= (dsum / m2) * (dsum / m2);
  }
  return q;
}

}  // namespace graphtides
