// Greedy vertex coloring (Table 1: "Graph theory"). Colors the undirected
// view so that no two adjacent vertices share a color.
#ifndef GRAPHTIDES_ALGORITHMS_COLORING_H_
#define GRAPHTIDES_ALGORITHMS_COLORING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace graphtides {

struct ColoringResult {
  /// Color per dense index.
  std::vector<uint32_t> color;
  size_t num_colors = 0;
};

/// \brief Greedy coloring in largest-degree-first order (Welsh–Powell),
/// which bounds colors by max_degree + 1.
ColoringResult GreedyColoring(const CsrGraph& graph);

/// \brief Verifies that no edge connects two same-colored vertices.
bool IsProperColoring(const CsrGraph& graph,
                      const std::vector<uint32_t>& color);

}  // namespace graphtides

#endif  // GRAPHTIDES_ALGORITHMS_COLORING_H_
