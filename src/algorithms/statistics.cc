#include "algorithms/statistics.h"

#include <algorithm>
#include <sstream>

namespace graphtides {

GraphStatistics ComputeGraphStatistics(const CsrGraph& graph) {
  GraphStatistics s;
  s.num_vertices = graph.num_vertices();
  s.num_edges = graph.num_edges();
  if (s.num_vertices == 0) return s;

  std::vector<size_t> out_degrees(s.num_vertices);
  size_t degree_sum = 0;
  for (size_t v = 0; v < s.num_vertices; ++v) {
    const size_t out = graph.OutDegree(static_cast<CsrGraph::Index>(v));
    const size_t in = graph.InDegree(static_cast<CsrGraph::Index>(v));
    out_degrees[v] = out;
    degree_sum += out;
    s.max_out_degree = std::max(s.max_out_degree, out);
    s.max_in_degree = std::max(s.max_in_degree, in);
    if (out == 0 && in == 0) ++s.isolated_vertices;
  }
  s.mean_out_degree =
      static_cast<double>(degree_sum) / static_cast<double>(s.num_vertices);
  if (s.num_vertices > 1) {
    s.density = static_cast<double>(s.num_edges) /
                (static_cast<double>(s.num_vertices) *
                 static_cast<double>(s.num_vertices - 1));
  }

  // Gini coefficient over sorted degrees.
  if (degree_sum > 0) {
    std::sort(out_degrees.begin(), out_degrees.end());
    double weighted = 0.0;
    for (size_t i = 0; i < out_degrees.size(); ++i) {
      weighted += static_cast<double>(i + 1) *
                  static_cast<double>(out_degrees[i]);
    }
    const double n = static_cast<double>(out_degrees.size());
    const double total = static_cast<double>(degree_sum);
    s.out_degree_gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n;
  }
  return s;
}

std::map<size_t, size_t> OutDegreeDistribution(const CsrGraph& graph) {
  std::map<size_t, size_t> dist;
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    ++dist[graph.OutDegree(static_cast<CsrGraph::Index>(v))];
  }
  return dist;
}

std::map<size_t, size_t> InDegreeDistribution(const CsrGraph& graph) {
  std::map<size_t, size_t> dist;
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    ++dist[graph.InDegree(static_cast<CsrGraph::Index>(v))];
  }
  return dist;
}

std::string GraphStatistics::ToString() const {
  std::ostringstream os;
  os << "n=" << num_vertices << " m=" << num_edges << " density=" << density
     << " mean_out_deg=" << mean_out_degree
     << " max_out_deg=" << max_out_degree << " max_in_deg=" << max_in_degree
     << " isolated=" << isolated_vertices << " gini=" << out_degree_gini;
  return os.str();
}

}  // namespace graphtides
