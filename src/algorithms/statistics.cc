#include "algorithms/statistics.h"

#include <algorithm>
#include <sstream>

#include "common/parallel.h"

namespace graphtides {

namespace {

/// Per-chunk partial of the degree scan; merged in chunk order. Every
/// field is an integer, so the merge is exact on any chunk layout.
struct DegreeScan {
  size_t degree_sum = 0;
  size_t max_out = 0;
  size_t max_in = 0;
  size_t isolated = 0;
};

}  // namespace

GraphStatistics ComputeGraphStatistics(const CsrGraph& graph, size_t threads) {
  GraphStatistics s;
  s.num_vertices = graph.num_vertices();
  s.num_edges = graph.num_edges();
  if (s.num_vertices == 0) return s;

  std::vector<size_t> out_degrees(s.num_vertices);
  const DegreeScan scan = ParallelReduce(
      0, s.num_vertices, {.threads = threads, .grain = 8192}, DegreeScan{},
      [&](size_t begin, size_t end) {
        DegreeScan part;
        for (size_t v = begin; v < end; ++v) {
          const size_t out = graph.OutDegree(static_cast<CsrGraph::Index>(v));
          const size_t in = graph.InDegree(static_cast<CsrGraph::Index>(v));
          out_degrees[v] = out;
          part.degree_sum += out;
          part.max_out = std::max(part.max_out, out);
          part.max_in = std::max(part.max_in, in);
          if (out == 0 && in == 0) ++part.isolated;
        }
        return part;
      },
      [](DegreeScan a, const DegreeScan& b) {
        a.degree_sum += b.degree_sum;
        a.max_out = std::max(a.max_out, b.max_out);
        a.max_in = std::max(a.max_in, b.max_in);
        a.isolated += b.isolated;
        return a;
      });
  const size_t degree_sum = scan.degree_sum;
  s.max_out_degree = scan.max_out;
  s.max_in_degree = scan.max_in;
  s.isolated_vertices = scan.isolated;
  s.mean_out_degree =
      static_cast<double>(degree_sum) / static_cast<double>(s.num_vertices);
  if (s.num_vertices > 1) {
    s.density = static_cast<double>(s.num_edges) /
                (static_cast<double>(s.num_vertices) *
                 static_cast<double>(s.num_vertices - 1));
  }

  // Gini coefficient over sorted degrees.
  if (degree_sum > 0) {
    std::sort(out_degrees.begin(), out_degrees.end());
    double weighted = 0.0;
    for (size_t i = 0; i < out_degrees.size(); ++i) {
      weighted += static_cast<double>(i + 1) *
                  static_cast<double>(out_degrees[i]);
    }
    const double n = static_cast<double>(out_degrees.size());
    const double total = static_cast<double>(degree_sum);
    s.out_degree_gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n;
  }
  return s;
}

std::map<size_t, size_t> OutDegreeDistribution(const CsrGraph& graph) {
  std::map<size_t, size_t> dist;
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    ++dist[graph.OutDegree(static_cast<CsrGraph::Index>(v))];
  }
  return dist;
}

std::map<size_t, size_t> InDegreeDistribution(const CsrGraph& graph) {
  std::map<size_t, size_t> dist;
  for (size_t v = 0; v < graph.num_vertices(); ++v) {
    ++dist[graph.InDegree(static_cast<CsrGraph::Index>(v))];
  }
  return dist;
}

std::string GraphStatistics::ToString() const {
  std::ostringstream os;
  os << "n=" << num_vertices << " m=" << num_edges << " density=" << density
     << " mean_out_deg=" << mean_out_degree
     << " max_out_deg=" << max_out_degree << " max_in_deg=" << max_in_degree
     << " isolated=" << isolated_vertices << " gini=" << out_degree_gini;
  return os.str();
}

}  // namespace graphtides
