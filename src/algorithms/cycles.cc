#include "algorithms/cycles.h"

#include <algorithm>
#include <deque>

namespace graphtides {

std::optional<std::vector<CsrGraph::Index>> TopologicalSort(
    const CsrGraph& graph) {
  const size_t n = graph.num_vertices();
  std::vector<size_t> in_degree(n);
  std::deque<CsrGraph::Index> ready;
  for (size_t v = 0; v < n; ++v) {
    in_degree[v] = graph.InDegree(static_cast<CsrGraph::Index>(v));
    if (in_degree[v] == 0) ready.push_back(static_cast<CsrGraph::Index>(v));
  }
  std::vector<CsrGraph::Index> order;
  order.reserve(n);
  while (!ready.empty()) {
    const CsrGraph::Index v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (CsrGraph::Index w : graph.OutNeighbors(v)) {
      if (--in_degree[w] == 0) ready.push_back(w);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool HasCycle(const CsrGraph& graph) {
  return !TopologicalSort(graph).has_value();
}

std::optional<std::vector<CsrGraph::Index>> FindCycle(const CsrGraph& graph) {
  const size_t n = graph.num_vertices();
  // Iterative DFS with colors: 0 = white, 1 = on stack, 2 = done.
  std::vector<uint8_t> color(n, 0);
  std::vector<CsrGraph::Index> parent(n, 0);

  for (size_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    // Stack of (vertex, next-neighbor cursor).
    std::vector<std::pair<CsrGraph::Index, size_t>> stack;
    stack.emplace_back(static_cast<CsrGraph::Index>(root), 0);
    color[root] = 1;
    while (!stack.empty()) {
      auto& [v, cursor] = stack.back();
      const auto neighbors = graph.OutNeighbors(v);
      if (cursor < neighbors.size()) {
        const CsrGraph::Index w = neighbors[cursor++];
        if (color[w] == 0) {
          color[w] = 1;
          parent[w] = v;
          stack.emplace_back(w, 0);
        } else if (color[w] == 1) {
          // Back edge v -> w closes a cycle w -> ... -> v -> w.
          std::vector<CsrGraph::Index> cycle;
          cycle.push_back(w);
          CsrGraph::Index cur = v;
          while (cur != w) {
            cycle.push_back(cur);
            cur = parent[cur];
          }
          cycle.push_back(w);
          std::reverse(cycle.begin() + 1, cycle.end() - 1);
          return cycle;
        }
      } else {
        color[v] = 2;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

}  // namespace graphtides
