#include "algorithms/incremental.h"

#include <algorithm>

namespace graphtides {

// ---------------------------------------------------------------------------
// IncrementalWcc
// ---------------------------------------------------------------------------

VertexId IncrementalWcc::Find(VertexId v) {
  VertexId root = v;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[v] != root) {
    const VertexId next = parent_[v];
    parent_[v] = root;
    v = next;
  }
  return root;
}

void IncrementalWcc::Union(VertexId a, VertexId b) {
  const VertexId ra = Find(a);
  const VertexId rb = Find(b);
  if (ra == rb) return;
  parent_[ra] = rb;
  --components_;
}

void IncrementalWcc::OnEventApplied(const Event& event) {
  switch (event.type) {
    case EventType::kAddVertex: {
      adjacency_.try_emplace(event.vertex);
      parent_[event.vertex] = event.vertex;
      ++components_;
      break;
    }
    case EventType::kRemoveVertex: {
      auto it = adjacency_.find(event.vertex);
      if (it == adjacency_.end()) break;
      // Remove the vertex from its neighbors' lists.
      for (VertexId w : it->second) {
        auto& list = adjacency_[w];
        list.erase(std::remove(list.begin(), list.end(), event.vertex),
                   list.end());
      }
      adjacency_.erase(it);
      dirty_ = true;
      break;
    }
    case EventType::kAddEdge: {
      adjacency_[event.edge.src].push_back(event.edge.dst);
      adjacency_[event.edge.dst].push_back(event.edge.src);
      if (!dirty_) Union(event.edge.src, event.edge.dst);
      break;
    }
    case EventType::kRemoveEdge: {
      auto& a = adjacency_[event.edge.src];
      a.erase(std::remove(a.begin(), a.end(), event.edge.dst), a.end());
      auto& b = adjacency_[event.edge.dst];
      b.erase(std::remove(b.begin(), b.end(), event.edge.src), b.end());
      dirty_ = true;
      break;
    }
    case EventType::kUpdateVertex:
    case EventType::kUpdateEdge:
    case EventType::kMarker:
    case EventType::kSetRate:
    case EventType::kPause:
      break;
  }
}

void IncrementalWcc::RebuildIfDirty() {
  if (!dirty_) return;
  parent_.clear();
  components_ = adjacency_.size();
  for (const auto& [v, neighbors] : adjacency_) parent_[v] = v;
  for (const auto& [v, neighbors] : adjacency_) {
    for (VertexId w : neighbors) Union(v, w);
  }
  dirty_ = false;
}

size_t IncrementalWcc::NumComponents() {
  RebuildIfDirty();
  return components_;
}

bool IncrementalWcc::SameComponent(VertexId a, VertexId b) {
  RebuildIfDirty();
  if (!parent_.contains(a) || !parent_.contains(b)) return false;
  return Find(a) == Find(b);
}

// ---------------------------------------------------------------------------
// IncrementalDegreeStats
// ---------------------------------------------------------------------------

void IncrementalDegreeStats::OnEventApplied(const Event& event) {
  switch (event.type) {
    case EventType::kAddVertex:
      out_degree_.try_emplace(event.vertex, 0);
      in_neighbors_.try_emplace(event.vertex);
      out_neighbors_.try_emplace(event.vertex);
      break;
    case EventType::kRemoveVertex: {
      auto it = out_degree_.find(event.vertex);
      if (it == out_degree_.end()) break;
      // Incident edges disappear with the vertex.
      for (VertexId dst : out_neighbors_[event.vertex]) {
        auto& in_list = in_neighbors_[dst];
        in_list.erase(
            std::remove(in_list.begin(), in_list.end(), event.vertex),
            in_list.end());
        --num_edges_;
      }
      for (VertexId src : in_neighbors_[event.vertex]) {
        auto& out_list = out_neighbors_[src];
        out_list.erase(
            std::remove(out_list.begin(), out_list.end(), event.vertex),
            out_list.end());
        if (out_degree_[src] == max_out_degree_) max_dirty_ = true;
        --out_degree_[src];
        --num_edges_;
      }
      if (it->second == max_out_degree_) max_dirty_ = true;
      out_degree_.erase(it);
      in_neighbors_.erase(event.vertex);
      out_neighbors_.erase(event.vertex);
      break;
    }
    case EventType::kAddEdge: {
      out_neighbors_[event.edge.src].push_back(event.edge.dst);
      in_neighbors_[event.edge.dst].push_back(event.edge.src);
      const size_t d = ++out_degree_[event.edge.src];
      max_out_degree_ = std::max(max_out_degree_, d);
      ++num_edges_;
      break;
    }
    case EventType::kRemoveEdge: {
      auto& out_list = out_neighbors_[event.edge.src];
      out_list.erase(
          std::remove(out_list.begin(), out_list.end(), event.edge.dst),
          out_list.end());
      auto& in_list = in_neighbors_[event.edge.dst];
      in_list.erase(
          std::remove(in_list.begin(), in_list.end(), event.edge.src),
          in_list.end());
      if (out_degree_[event.edge.src] == max_out_degree_) max_dirty_ = true;
      --out_degree_[event.edge.src];
      --num_edges_;
      break;
    }
    case EventType::kUpdateVertex:
    case EventType::kUpdateEdge:
    case EventType::kMarker:
    case EventType::kSetRate:
    case EventType::kPause:
      break;
  }
}

double IncrementalDegreeStats::MeanOutDegree() const {
  if (out_degree_.empty()) return 0.0;
  return static_cast<double>(num_edges_) /
         static_cast<double>(out_degree_.size());
}

size_t IncrementalDegreeStats::MaxOutDegree() {
  if (max_dirty_) {
    max_out_degree_ = 0;
    for (const auto& [v, d] : out_degree_) {
      max_out_degree_ = std::max(max_out_degree_, d);
    }
    max_dirty_ = false;
  }
  return max_out_degree_;
}

}  // namespace graphtides
