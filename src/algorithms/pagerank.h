// Batch PageRank by power iteration (Table 1: "Graph properties").
//
// This is the exact-result baseline the harness uses to score the accuracy
// of online rank approximations (§4.3 Computation Metrics: "Exact results
// ... need to be prespecified (i.e., by reconstructing the target graph and
// running a separate batch computation as reference)").
#ifndef GRAPHTIDES_ALGORITHMS_PAGERANK_H_
#define GRAPHTIDES_ALGORITHMS_PAGERANK_H_

#include <cstddef>
#include <vector>

#include "graph/csr.h"

namespace graphtides {

struct PageRankOptions {
  double damping = 0.85;
  size_t max_iterations = 100;
  /// Convergence threshold on the L1 norm of the rank delta.
  double tolerance = 1e-9;
  /// Worker threads (0 = auto, 1 = run inline). The iteration is
  /// pull-based — every vertex sums its in-neighbor contributions in
  /// sorted order — and the global reductions fold fixed chunk partials
  /// in chunk order, so ranks are bit-identical at every thread count.
  size_t threads = 0;
};

struct PageRankResult {
  /// Rank per dense vertex index; sums to 1 (dangling mass redistributed).
  std::vector<double> ranks;
  size_t iterations = 0;
  bool converged = false;
};

/// Runs power iteration until convergence or `max_iterations`.
PageRankResult PageRank(const CsrGraph& graph,
                        const PageRankOptions& options = {});

/// \brief Dense indices of the k highest-ranked vertices, descending; ties
/// broken by ascending index for determinism.
std::vector<CsrGraph::Index> TopKByRank(const std::vector<double>& ranks,
                                        size_t k);

/// \brief Median (over vertices) relative error |approx - exact| / exact.
/// Vertices whose exact rank is 0 are skipped. Vector sizes must match.
double MedianRelativeError(const std::vector<double>& approx,
                           const std::vector<double>& exact);

}  // namespace graphtides

#endif  // GRAPHTIDES_ALGORITHMS_PAGERANK_H_
