#include "algorithms/components.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace graphtides {

namespace {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
};

}  // namespace

ComponentsResult WeaklyConnectedComponents(const CsrGraph& graph) {
  ComponentsResult result;
  const size_t n = graph.num_vertices();
  result.component.assign(n, 0);
  if (n == 0) return result;

  UnionFind uf(n);
  for (size_t v = 0; v < n; ++v) {
    for (CsrGraph::Index w :
         graph.OutNeighbors(static_cast<CsrGraph::Index>(v))) {
      uf.Union(static_cast<uint32_t>(v), w);
    }
  }

  std::unordered_map<uint32_t, uint32_t> label_of_root;
  for (size_t v = 0; v < n; ++v) {
    const uint32_t root = uf.Find(static_cast<uint32_t>(v));
    auto [it, inserted] = label_of_root.try_emplace(
        root, static_cast<uint32_t>(label_of_root.size()));
    result.component[v] = it->second;
  }
  result.num_components = label_of_root.size();
  result.sizes.assign(result.num_components, 0);
  for (uint32_t label : result.component) ++result.sizes[label];
  return result;
}

size_t ComponentsResult::LargestSize() const {
  size_t best = 0;
  for (size_t s : sizes) best = std::max(best, s);
  return best;
}

}  // namespace graphtides
