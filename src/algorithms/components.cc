#include "algorithms/components.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <random>
#include <unordered_map>
#include <utility>

#include "common/parallel.h"

namespace graphtides {

namespace {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
};

uint32_t LoadComp(const std::vector<uint32_t>& comp, uint32_t v) {
  return std::atomic_ref<uint32_t>(const_cast<uint32_t&>(comp[v]))
      .load(std::memory_order_relaxed);
}

void StoreComp(std::vector<uint32_t>& comp, uint32_t v, uint32_t value) {
  std::atomic_ref<uint32_t>(comp[v]).store(value, std::memory_order_relaxed);
}

/// Hooks the trees of `u` and `v` together: the higher current parent is
/// pointed at the lower one via CAS, so parent values only ever decrease
/// and no cycles (beyond self-loops at roots) can form.
void Link(uint32_t u, uint32_t v, std::vector<uint32_t>& comp) {
  uint32_t p1 = LoadComp(comp, u);
  uint32_t p2 = LoadComp(comp, v);
  while (p1 != p2) {
    const uint32_t high = std::max(p1, p2);
    const uint32_t low = std::min(p1, p2);
    uint32_t expected = high;
    std::atomic_ref<uint32_t> ref(comp[high]);
    const uint32_t p_high = ref.load(std::memory_order_relaxed);
    if (p_high == low ||
        (p_high == high && ref.compare_exchange_strong(
                               expected, low, std::memory_order_relaxed))) {
      break;
    }
    p1 = LoadComp(comp, LoadComp(comp, high));
    p2 = LoadComp(comp, low);
  }
}

/// Full pointer jumping: afterwards comp[v] is the root of v's tree.
void Compress(std::vector<uint32_t>& comp, size_t threads) {
  ParallelFor(0, comp.size(), {.threads = threads},
              [&](size_t begin, size_t end) {
                for (size_t v = begin; v < end; ++v) {
                  uint32_t parent = LoadComp(comp, static_cast<uint32_t>(v));
                  while (parent != LoadComp(comp, parent)) {
                    parent = LoadComp(comp, parent);
                  }
                  StoreComp(comp, static_cast<uint32_t>(v), parent);
                }
              });
}

/// Most frequent component id in a fixed-seed sample — the likely largest
/// component, whose members can skip the exhaustive final link pass. Runs
/// sequentially between parallel phases, so the choice never depends on
/// the schedule (ties break toward the smaller id).
uint32_t SampleFrequentComponent(const std::vector<uint32_t>& comp) {
  std::unordered_map<uint32_t, size_t> counts;
  std::minstd_rand rng(27u);
  std::uniform_int_distribution<size_t> dist(0, comp.size() - 1);
  const size_t samples = std::min<size_t>(comp.size(), 1024);
  for (size_t i = 0; i < samples; ++i) ++counts[comp[dist(rng)]];
  uint32_t best = comp[0];
  size_t best_count = 0;
  for (const auto& [id, count] : counts) {
    if (count > best_count || (count == best_count && id < best)) {
      best = id;
      best_count = count;
    }
  }
  return best;
}

/// Afforest-style hooking: a few rounds linking only the i-th out-edge of
/// every vertex grow the giant component cheaply; after sampling it, only
/// vertices outside it process their remaining edges. Every edge is either
/// linked by one of its endpoints or has both endpoints already inside the
/// sampled component, so the resulting partition is exactly the weak
/// connectivity relation — independent of the schedule.
std::vector<uint32_t> AfforestComponents(const CsrGraph& graph,
                                         size_t threads) {
  constexpr size_t kNeighborRounds = 2;
  const size_t n = graph.num_vertices();
  std::vector<uint32_t> comp(n);
  std::iota(comp.begin(), comp.end(), 0);

  for (size_t r = 0; r < kNeighborRounds; ++r) {
    ParallelFor(0, n, {.threads = threads}, [&](size_t begin, size_t end) {
      for (size_t v = begin; v < end; ++v) {
        const auto out = graph.OutNeighbors(static_cast<CsrGraph::Index>(v));
        if (r < out.size()) Link(static_cast<uint32_t>(v), out[r], comp);
      }
    });
    Compress(comp, threads);
  }

  const uint32_t giant = SampleFrequentComponent(comp);
  const auto chunks = DegreeBalancedChunks(graph.in_offsets(), 8192);
  ParallelForChunks(chunks, threads, [&](size_t, size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      const auto u = static_cast<uint32_t>(v);
      if (LoadComp(comp, u) == giant) continue;
      const auto out = graph.OutNeighbors(static_cast<CsrGraph::Index>(v));
      for (size_t i = kNeighborRounds; i < out.size(); ++i) {
        Link(u, out[i], comp);
      }
      for (CsrGraph::Index w :
           graph.InNeighbors(static_cast<CsrGraph::Index>(v))) {
        Link(u, w, comp);
      }
    }
  });
  Compress(comp, threads);
  return comp;
}

/// Maps per-vertex representatives to dense labels in order of first
/// appearance by vertex index. Both the union-find and Afforest paths
/// funnel through this, so equal partitions yield bit-identical results.
ComponentsResult FinalizeLabels(const std::vector<uint32_t>& representative) {
  ComponentsResult result;
  const size_t n = representative.size();
  result.component.assign(n, 0);
  std::unordered_map<uint32_t, uint32_t> label_of_root;
  for (size_t v = 0; v < n; ++v) {
    auto [it, inserted] = label_of_root.try_emplace(
        representative[v], static_cast<uint32_t>(label_of_root.size()));
    result.component[v] = it->second;
  }
  result.num_components = label_of_root.size();
  result.sizes.assign(result.num_components, 0);
  for (uint32_t label : result.component) ++result.sizes[label];
  return result;
}

}  // namespace

ComponentsResult WeaklyConnectedComponents(const CsrGraph& graph,
                                           const ComponentsOptions& options) {
  const size_t n = graph.num_vertices();
  if (n == 0) return ComponentsResult{};

  const size_t threads = ResolveThreads(options.threads);
  if (threads > 1) return FinalizeLabels(AfforestComponents(graph, threads));

  UnionFind uf(n);
  for (size_t v = 0; v < n; ++v) {
    for (CsrGraph::Index w :
         graph.OutNeighbors(static_cast<CsrGraph::Index>(v))) {
      uf.Union(static_cast<uint32_t>(v), w);
    }
  }
  std::vector<uint32_t> representative(n);
  for (size_t v = 0; v < n; ++v) {
    representative[v] = uf.Find(static_cast<uint32_t>(v));
  }
  return FinalizeLabels(representative);
}

size_t ComponentsResult::LargestSize() const {
  size_t best = 0;
  for (size_t s : sizes) best = std::max(best, s);
  return best;
}

}  // namespace graphtides
