// Weighted shortest paths (Table 1: Bellman–Ford, Floyd–Warshall).
//
// Edge weights are supplied by a callback so callers can derive them from
// edge state strings (the graph model keeps state opaque).
#ifndef GRAPHTIDES_ALGORITHMS_SHORTEST_PATHS_H_
#define GRAPHTIDES_ALGORITHMS_SHORTEST_PATHS_H_

#include <functional>
#include <limits>
#include <vector>

#include "common/result.h"
#include "graph/csr.h"

namespace graphtides {

/// Sentinel for "no path".
inline constexpr double kInfiniteDistance =
    std::numeric_limits<double>::infinity();

/// Weight of the edge (src, dst), both dense indices.
using EdgeWeightFn =
    std::function<double(CsrGraph::Index src, CsrGraph::Index dst)>;

/// Unit weight for every edge.
EdgeWeightFn UnitWeights();

struct BellmanFordResult {
  std::vector<double> distance;
  /// Predecessor on a shortest path; kNoPredecessor if unreached/source.
  static constexpr uint32_t kNoPredecessor =
      std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> predecessor;
  bool has_negative_cycle = false;
  size_t relaxation_rounds = 0;
};

/// \brief Bellman–Ford from `source`. Handles negative weights; sets
/// `has_negative_cycle` if one is reachable from the source.
BellmanFordResult BellmanFord(const CsrGraph& graph, CsrGraph::Index source,
                              const EdgeWeightFn& weight);

/// \brief All-pairs shortest paths (Floyd–Warshall), O(n^3); reference and
/// small-graph use. Returns a row-major n*n distance matrix.
Result<std::vector<double>> FloydWarshall(const CsrGraph& graph,
                                          const EdgeWeightFn& weight);

}  // namespace graphtides

#endif  // GRAPHTIDES_ALGORITHMS_SHORTEST_PATHS_H_
