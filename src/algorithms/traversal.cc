#include "algorithms/traversal.h"

#include <algorithm>
#include <deque>

namespace graphtides {

namespace {

/// Generic BFS; `expand` yields the neighbor span(s) of a vertex.
template <typename ExpandFn>
std::vector<uint32_t> Bfs(size_t n, CsrGraph::Index source, ExpandFn expand) {
  std::vector<uint32_t> dist(n, kUnreachable);
  if (source >= n) return dist;
  std::deque<CsrGraph::Index> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const CsrGraph::Index v = queue.front();
    queue.pop_front();
    expand(v, [&](CsrGraph::Index w) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    });
  }
  return dist;
}

}  // namespace

std::vector<uint32_t> BfsDistances(const CsrGraph& graph,
                                   CsrGraph::Index source) {
  return Bfs(graph.num_vertices(), source,
             [&](CsrGraph::Index v, auto visit) {
               for (CsrGraph::Index w : graph.OutNeighbors(v)) visit(w);
             });
}

std::vector<uint32_t> BfsDistancesUndirected(const CsrGraph& graph,
                                             CsrGraph::Index source) {
  return Bfs(graph.num_vertices(), source,
             [&](CsrGraph::Index v, auto visit) {
               for (CsrGraph::Index w : graph.OutNeighbors(v)) visit(w);
               for (CsrGraph::Index w : graph.InNeighbors(v)) visit(w);
             });
}

bool PathExists(const CsrGraph& graph, CsrGraph::Index source,
                CsrGraph::Index target) {
  if (source >= graph.num_vertices() || target >= graph.num_vertices()) {
    return false;
  }
  const std::vector<uint32_t> dist = BfsDistances(graph, source);
  return dist[target] != kUnreachable;
}

SpanningTree BfsSpanningTree(const CsrGraph& graph, CsrGraph::Index root) {
  SpanningTree tree;
  tree.root = root;
  tree.parent.assign(graph.num_vertices(), SpanningTree::kNoParent);
  if (root >= graph.num_vertices()) return tree;
  std::deque<CsrGraph::Index> queue;
  tree.parent[root] = root;
  tree.reached = 1;
  queue.push_back(root);
  while (!queue.empty()) {
    const CsrGraph::Index v = queue.front();
    queue.pop_front();
    for (CsrGraph::Index w : graph.OutNeighbors(v)) {
      if (tree.parent[w] == SpanningTree::kNoParent) {
        tree.parent[w] = v;
        ++tree.reached;
        queue.push_back(w);
      }
    }
  }
  return tree;
}

size_t EstimateDiameter(const CsrGraph& graph, size_t samples, Rng& rng) {
  const size_t n = graph.num_vertices();
  if (n < 2) return 0;
  size_t best = 0;
  for (size_t i = 0; i < samples; ++i) {
    const auto start =
        static_cast<CsrGraph::Index>(rng.NextBounded(n));
    // Double sweep: BFS from a random start, then BFS from the farthest
    // reached vertex; the second eccentricity lower-bounds the diameter.
    std::vector<uint32_t> d1 = BfsDistancesUndirected(graph, start);
    CsrGraph::Index farthest = start;
    uint32_t far_dist = 0;
    for (size_t v = 0; v < n; ++v) {
      if (d1[v] != kUnreachable && d1[v] > far_dist) {
        far_dist = d1[v];
        farthest = static_cast<CsrGraph::Index>(v);
      }
    }
    std::vector<uint32_t> d2 = BfsDistancesUndirected(graph, farthest);
    for (uint32_t d : d2) {
      if (d != kUnreachable) best = std::max<size_t>(best, d);
    }
  }
  return best;
}

size_t ExactDiameter(const CsrGraph& graph) {
  const size_t n = graph.num_vertices();
  size_t diameter = 0;
  for (size_t v = 0; v < n; ++v) {
    const std::vector<uint32_t> dist =
        BfsDistancesUndirected(graph, static_cast<CsrGraph::Index>(v));
    for (uint32_t d : dist) {
      if (d != kUnreachable) diameter = std::max<size_t>(diameter, d);
    }
  }
  return diameter;
}

}  // namespace graphtides
