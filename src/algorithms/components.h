// Weakly connected components (Table 1: "Communities").
#ifndef GRAPHTIDES_ALGORITHMS_COMPONENTS_H_
#define GRAPHTIDES_ALGORITHMS_COMPONENTS_H_

#include <cstddef>
#include <vector>

#include "graph/csr.h"

namespace graphtides {

struct ComponentsResult {
  /// Component label per dense index; labels are dense in [0, num_components)
  /// and assigned in order of first appearance by vertex index.
  std::vector<uint32_t> component;
  size_t num_components = 0;
  /// Size of each component, indexed by label.
  std::vector<size_t> sizes;

  /// Size of the largest component (0 on an empty graph).
  size_t LargestSize() const;
};

struct ComponentsOptions {
  /// Worker threads (0 = auto). threads <= 1 runs the sequential
  /// union-find; more threads run Afforest-style parallel hooking. Both
  /// paths produce the identical normalized labeling (labels are dense,
  /// assigned in order of first appearance by vertex index), so the
  /// sequential path doubles as the golden reference for the parallel one.
  size_t threads = 0;
};

/// \brief Weakly connected components. Sequential: union-find with path
/// halving. Parallel: min-label hooking with compression (Afforest-style
/// neighbor-sampling rounds plus a largest-component skip), which reaches
/// the same partition on any schedule.
ComponentsResult WeaklyConnectedComponents(const CsrGraph& graph,
                                           const ComponentsOptions& options);
inline ComponentsResult WeaklyConnectedComponents(const CsrGraph& graph) {
  return WeaklyConnectedComponents(graph, ComponentsOptions{});
}

}  // namespace graphtides

#endif  // GRAPHTIDES_ALGORITHMS_COMPONENTS_H_
