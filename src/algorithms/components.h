// Weakly connected components (Table 1: "Communities").
#ifndef GRAPHTIDES_ALGORITHMS_COMPONENTS_H_
#define GRAPHTIDES_ALGORITHMS_COMPONENTS_H_

#include <cstddef>
#include <vector>

#include "graph/csr.h"

namespace graphtides {

struct ComponentsResult {
  /// Component label per dense index; labels are dense in [0, num_components)
  /// and assigned in order of first appearance by vertex index.
  std::vector<uint32_t> component;
  size_t num_components = 0;
  /// Size of each component, indexed by label.
  std::vector<size_t> sizes;

  /// Size of the largest component (0 on an empty graph).
  size_t LargestSize() const;
};

/// \brief Weakly connected components via union-find with path halving.
ComponentsResult WeaklyConnectedComponents(const CsrGraph& graph);

}  // namespace graphtides

#endif  // GRAPHTIDES_ALGORITHMS_COMPONENTS_H_
