#include "algorithms/shortest_paths.h"

#include <algorithm>

namespace graphtides {

EdgeWeightFn UnitWeights() {
  return [](CsrGraph::Index, CsrGraph::Index) { return 1.0; };
}

BellmanFordResult BellmanFord(const CsrGraph& graph, CsrGraph::Index source,
                              const EdgeWeightFn& weight) {
  BellmanFordResult result;
  const size_t n = graph.num_vertices();
  result.distance.assign(n, kInfiniteDistance);
  result.predecessor.assign(n, BellmanFordResult::kNoPredecessor);
  if (source >= n) return result;
  result.distance[source] = 0.0;

  const size_t max_rounds = n > 0 ? n - 1 : 0;
  for (size_t round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (size_t v = 0; v < n; ++v) {
      if (result.distance[v] == kInfiniteDistance) continue;
      for (CsrGraph::Index w :
           graph.OutNeighbors(static_cast<CsrGraph::Index>(v))) {
        const double cand =
            result.distance[v] +
            weight(static_cast<CsrGraph::Index>(v), w);
        if (cand < result.distance[w]) {
          result.distance[w] = cand;
          result.predecessor[w] = static_cast<uint32_t>(v);
          changed = true;
        }
      }
    }
    ++result.relaxation_rounds;
    if (!changed) break;
  }

  // One extra pass detects reachable negative cycles.
  for (size_t v = 0; v < n; ++v) {
    if (result.distance[v] == kInfiniteDistance) continue;
    for (CsrGraph::Index w :
         graph.OutNeighbors(static_cast<CsrGraph::Index>(v))) {
      if (result.distance[v] + weight(static_cast<CsrGraph::Index>(v), w) <
          result.distance[w]) {
        result.has_negative_cycle = true;
        return result;
      }
    }
  }
  return result;
}

Result<std::vector<double>> FloydWarshall(const CsrGraph& graph,
                                          const EdgeWeightFn& weight) {
  const size_t n = graph.num_vertices();
  if (n > 4096) {
    return Status::CapacityExceeded(
        "FloydWarshall limited to 4096 vertices; got " + std::to_string(n));
  }
  std::vector<double> dist(n * n, kInfiniteDistance);
  for (size_t v = 0; v < n; ++v) {
    dist[v * n + v] = 0.0;
    for (CsrGraph::Index w :
         graph.OutNeighbors(static_cast<CsrGraph::Index>(v))) {
      dist[v * n + w] = std::min(
          dist[v * n + w], weight(static_cast<CsrGraph::Index>(v), w));
    }
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      const double dik = dist[i * n + k];
      if (dik == kInfiniteDistance) continue;
      for (size_t j = 0; j < n; ++j) {
        const double cand = dik + dist[k * n + j];
        if (cand < dist[i * n + j]) dist[i * n + j] = cand;
      }
    }
  }
  return dist;
}

}  // namespace graphtides
