#include "algorithms/online_pagerank.h"

#include <algorithm>
#include <cmath>

namespace graphtides {

OnlinePageRankCore::OnlinePageRankCore(OnlinePageRankOptions options,
                                       IsLocalFn is_local)
    : options_(options), is_local_(std::move(is_local)) {}

void OnlinePageRankCore::MaybeEnqueue(VertexId v, VertexState& state) {
  if (!state.queued && std::abs(state.residual) > options_.push_threshold) {
    state.queued = true;
    queue_.push_back(v);
  }
}

void OnlinePageRankCore::AdjustBuffered(VertexId target, double delta) {
  if (delta == 0.0) return;
  if (is_local_(target)) {
    VertexState& state = state_[target];
    state.residual += delta;
    MaybeEnqueue(target, state);
  } else {
    pending_remote_.emplace_back(target, delta);
  }
}

void OnlinePageRankCore::Adjust(VertexId target, double delta,
                                const EmitRemoteFn& emit_remote) {
  if (delta == 0.0) return;
  if (is_local_(target)) {
    VertexState& state = state_[target];
    state.residual += delta;
    MaybeEnqueue(target, state);
  } else {
    emit_remote(target, delta);
  }
}

void OnlinePageRankCore::AddVertex(VertexId v) {
  VertexState& state = state_[v];
  state.residual += 1.0;  // teleport injection b_v = 1
  MaybeEnqueue(v, state);
}

void OnlinePageRankCore::RemoveVertex(
    VertexId v, const std::vector<VertexId>& in_neighbors) {
  auto it = state_.find(v);
  if (it == state_.end()) return;
  const double x = it->second.score;
  const std::vector<VertexId> out = std::move(it->second.out);
  estimate_mass_ -= x;
  state_.erase(it);  // drops b_v, x_v, r_v; a queued entry is skipped later

  // Column v of W disappears: out-neighbors lose d * x / deg.
  if (!out.empty() && x != 0.0) {
    const double share =
        options_.damping * x / static_cast<double>(out.size());
    for (VertexId w : out) AdjustBuffered(w, -share);
  }
  // In-neighbors' transition columns renormalize: equivalent to removing
  // the edge s -> v from each.
  for (VertexId s : in_neighbors) {
    if (s != v) RemoveEdge(s, v);
  }
}

void OnlinePageRankCore::AddEdge(VertexId u, VertexId w) {
  VertexState& state = state_[u];
  if (std::find(state.out.begin(), state.out.end(), w) != state.out.end()) {
    return;
  }
  const size_t k = state.out.size();
  state.out.push_back(w);
  const double x = state.score;
  if (x == 0.0) return;
  // d * x * (new_distribution - old_distribution):
  // old neighbors go from 1/k to 1/(k+1); w gains 1/(k+1).
  // Collect targets first: AdjustBuffered may rehash state_ and invalidate
  // the adjacency reference.
  const std::vector<VertexId> out_copy = state.out;
  const double m = static_cast<double>(k + 1);
  if (k > 0) {
    const double shrink =
        options_.damping * x * (1.0 / m - 1.0 / static_cast<double>(k));
    for (size_t i = 0; i + 1 < out_copy.size(); ++i) {
      AdjustBuffered(out_copy[i], shrink);
    }
  }
  AdjustBuffered(w, options_.damping * x / m);
}

void OnlinePageRankCore::RemoveEdge(VertexId u, VertexId w) {
  auto it = state_.find(u);
  if (it == state_.end()) return;
  auto& out = it->second.out;
  auto pos = std::find(out.begin(), out.end(), w);
  if (pos == out.end()) return;
  const size_t k = out.size();
  out.erase(pos);
  const double x = it->second.score;
  if (x == 0.0) return;
  const std::vector<VertexId> out_copy = out;  // see AddEdge rationale
  // Old neighbors went from 1/k each to 1/(k-1); w loses its 1/k.
  if (!out_copy.empty()) {
    const double grow = options_.damping * x *
                        (1.0 / static_cast<double>(out_copy.size()) -
                         1.0 / static_cast<double>(k));
    for (VertexId nw : out_copy) AdjustBuffered(nw, grow);
  }
  AdjustBuffered(w, -options_.damping * x / static_cast<double>(k));
}

void OnlinePageRankCore::AddResidual(VertexId v, double amount) {
  if (amount == 0.0) return;
  VertexState& state = state_[v];
  state.residual += amount;
  MaybeEnqueue(v, state);
}

size_t OnlinePageRankCore::ProcessPushes(size_t max_pushes,
                                         const EmitRemoteFn& emit_remote) {
  // Flush remote deltas accumulated by topology notifications.
  if (!pending_remote_.empty()) {
    std::vector<std::pair<VertexId, double>> pending;
    pending.swap(pending_remote_);
    for (const auto& [target, delta] : pending) emit_remote(target, delta);
  }

  size_t executed = 0;
  while (executed < max_pushes && !queue_.empty()) {
    const VertexId v = queue_.front();
    queue_.pop_front();
    auto it = state_.find(v);
    if (it == state_.end()) continue;  // removed while queued
    VertexState& state = it->second;
    state.queued = false;
    if (std::abs(state.residual) <= options_.push_threshold) continue;

    const double r = state.residual;
    state.residual = 0.0;
    state.score += r;
    estimate_mass_ += r;

    if (!state.out.empty()) {
      const double share =
          options_.damping * r / static_cast<double>(state.out.size());
      // state.out may reallocate if Adjust touches state_ for v itself;
      // copy defensively (self-loops are excluded by the graph model, but
      // rehashing of state_ invalidates the reference regardless).
      const std::vector<VertexId> targets = state.out;
      for (VertexId w : targets) Adjust(w, share, emit_remote);
    }
    // Dangling vertices forward nothing (sink semantics; normalization at
    // query time yields the renormalized-sink PageRank).
    ++executed;
  }
  return executed;
}

double OnlinePageRankCore::EstimateOf(VertexId v) const {
  auto it = state_.find(v);
  return it == state_.end() ? 0.0 : it->second.score;
}

std::vector<std::pair<VertexId, double>> OnlinePageRankCore::Estimates()
    const {
  std::vector<std::pair<VertexId, double>> out;
  out.reserve(state_.size());
  for (const auto& [v, state] : state_) out.emplace_back(v, state.score);
  return out;
}

size_t OnlinePageRankCore::OutDegreeOf(VertexId v) const {
  auto it = state_.find(v);
  return it == state_.end() ? 0 : it->second.out.size();
}

// ---------------------------------------------------------------------------
// OnlinePageRank (single-process wrapper)
// ---------------------------------------------------------------------------

OnlinePageRank::OnlinePageRank(OnlinePageRankOptions options)
    : core_(options, [](VertexId) { return true; }) {}

void OnlinePageRank::OnEventApplied(const Event& event) {
  switch (event.type) {
    case EventType::kAddVertex:
      core_.AddVertex(event.vertex);
      in_.try_emplace(event.vertex);
      break;
    case EventType::kRemoveVertex: {
      auto it = in_.find(event.vertex);
      std::vector<VertexId> in_neighbors;
      if (it != in_.end()) {
        in_neighbors.assign(it->second.begin(), it->second.end());
      }
      core_.RemoveVertex(event.vertex, in_neighbors);
      // Mirror maintenance: drop v everywhere.
      if (it != in_.end()) in_.erase(it);
      for (auto& [v, ins] : in_) ins.erase(event.vertex);
      break;
    }
    case EventType::kAddEdge:
      core_.AddEdge(event.edge.src, event.edge.dst);
      in_[event.edge.dst].insert(event.edge.src);
      break;
    case EventType::kRemoveEdge:
      core_.RemoveEdge(event.edge.src, event.edge.dst);
      in_[event.edge.dst].erase(event.edge.src);
      break;
    case EventType::kUpdateVertex:
    case EventType::kUpdateEdge:
    case EventType::kMarker:
    case EventType::kSetRate:
    case EventType::kPause:
      break;
  }
}

size_t OnlinePageRank::ProcessPending(size_t max_pushes) {
  return core_.ProcessPushes(max_pushes,
                             [](VertexId, double) { /* all local */ });
}

double OnlinePageRank::RankOf(VertexId v) const {
  const double mass = core_.EstimateMass();
  if (mass <= 0.0) return 0.0;
  return core_.EstimateOf(v) / mass;
}

std::unordered_map<VertexId, double> OnlinePageRank::NormalizedRanks() const {
  std::unordered_map<VertexId, double> out;
  const double mass = core_.EstimateMass();
  if (mass <= 0.0) return out;
  for (const auto& [v, estimate] : core_.Estimates()) {
    out.emplace(v, estimate / mass);
  }
  return out;
}

}  // namespace graphtides
