// Global graph statistics (Table 1: "Graph statistics" — global properties,
// degree distribution).
#ifndef GRAPHTIDES_ALGORITHMS_STATISTICS_H_
#define GRAPHTIDES_ALGORITHMS_STATISTICS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "graph/csr.h"

namespace graphtides {

/// \brief Aggregate structural properties of a graph snapshot.
struct GraphStatistics {
  size_t num_vertices = 0;
  size_t num_edges = 0;
  /// Directed density: m / (n * (n - 1)).
  double density = 0.0;
  double mean_out_degree = 0.0;
  size_t max_out_degree = 0;
  size_t max_in_degree = 0;
  /// Count of vertices with no incident edges at all.
  size_t isolated_vertices = 0;
  /// Gini coefficient of the out-degree distribution — a locality measure
  /// for how concentrated connectivity is (0 = perfectly even).
  double out_degree_gini = 0.0;

  std::string ToString() const;
};

/// Computes the aggregate statistics. `threads` (0 = auto, 1 = sequential)
/// parallelizes the degree scan; all parallel reductions are integer sums
/// and maxima folded in fixed chunk order, so the result is identical at
/// every thread count (the Gini sort stays sequential).
GraphStatistics ComputeGraphStatistics(const CsrGraph& graph,
                                       size_t threads = 0);

/// \brief Out-degree histogram: degree -> number of vertices.
std::map<size_t, size_t> OutDegreeDistribution(const CsrGraph& graph);

/// \brief In-degree histogram: degree -> number of vertices.
std::map<size_t, size_t> InDegreeDistribution(const CsrGraph& graph);

}  // namespace graphtides

#endif  // GRAPHTIDES_ALGORITHMS_STATISTICS_H_
