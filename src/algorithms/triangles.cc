#include "algorithms/triangles.h"

#include <algorithm>
#include <vector>

namespace graphtides {

namespace {

/// Undirected, deduplicated, sorted adjacency lists.
std::vector<std::vector<CsrGraph::Index>> BuildUndirectedAdjacency(
    const CsrGraph& graph) {
  const size_t n = graph.num_vertices();
  std::vector<std::vector<CsrGraph::Index>> adj(n);
  for (size_t v = 0; v < n; ++v) {
    auto& list = adj[v];
    for (CsrGraph::Index w :
         graph.OutNeighbors(static_cast<CsrGraph::Index>(v))) {
      list.push_back(w);
    }
    for (CsrGraph::Index w :
         graph.InNeighbors(static_cast<CsrGraph::Index>(v))) {
      list.push_back(w);
    }
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

}  // namespace

uint64_t CountTriangles(const CsrGraph& graph) {
  const size_t n = graph.num_vertices();
  const auto adj = BuildUndirectedAdjacency(graph);

  // Rank vertices by (degree, index); keep only forward edges. Every
  // triangle then has exactly one representation.
  auto rank_less = [&](CsrGraph::Index a, CsrGraph::Index b) {
    if (adj[a].size() != adj[b].size()) return adj[a].size() < adj[b].size();
    return a < b;
  };
  std::vector<std::vector<CsrGraph::Index>> forward(n);
  for (size_t v = 0; v < n; ++v) {
    for (CsrGraph::Index w : adj[v]) {
      if (rank_less(static_cast<CsrGraph::Index>(v), w)) {
        forward[v].push_back(w);
      }
    }
    std::sort(forward[v].begin(), forward[v].end());
  }

  uint64_t triangles = 0;
  for (size_t v = 0; v < n; ++v) {
    for (CsrGraph::Index w : forward[v]) {
      // Intersect forward[v] with forward[w].
      const auto& a = forward[v];
      const auto& b = forward[w];
      size_t i = 0;
      size_t j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
          ++i;
        } else if (a[i] > b[j]) {
          ++j;
        } else {
          ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

double GlobalClusteringCoefficient(const CsrGraph& graph) {
  const auto adj = BuildUndirectedAdjacency(graph);
  uint64_t wedges = 0;
  for (const auto& list : adj) {
    const uint64_t d = list.size();
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(graph)) /
         static_cast<double>(wedges);
}

}  // namespace graphtides
