#include "algorithms/triangles.h"

#include <algorithm>
#include <span>
#include <vector>

#include "common/parallel.h"

namespace graphtides {

namespace {

/// Undirected, deduplicated, sorted adjacency lists. Each vertex merges
/// its already-sorted out- and in-neighbor spans independently, so the
/// build parallelizes over degree-balanced vertex chunks without locks.
std::vector<std::vector<CsrGraph::Index>> BuildUndirectedAdjacency(
    const CsrGraph& graph, size_t threads) {
  const size_t n = graph.num_vertices();
  std::vector<std::vector<CsrGraph::Index>> adj(n);
  // Weight vertices by total incident degree for chunking.
  std::vector<size_t> weight(n + 1, 0);
  for (size_t v = 0; v <= n; ++v) {
    weight[v] = graph.out_offsets()[v] + graph.in_offsets()[v];
  }
  const auto chunks = DegreeBalancedChunks(weight, 8192);
  ParallelForChunks(chunks, threads, [&](size_t, size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      const auto out = graph.OutNeighbors(static_cast<CsrGraph::Index>(v));
      const auto in = graph.InNeighbors(static_cast<CsrGraph::Index>(v));
      auto& list = adj[v];
      list.resize(out.size() + in.size());
      std::merge(out.begin(), out.end(), in.begin(), in.end(), list.begin());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
  });
  return adj;
}

}  // namespace

uint64_t CountTriangles(const CsrGraph& graph, size_t threads) {
  const size_t n = graph.num_vertices();
  threads = ResolveThreads(threads);
  const auto adj = BuildUndirectedAdjacency(graph, threads);

  // Rank vertices by (degree, index); keep only forward edges. Every
  // triangle then has exactly one representation. Filtering a sorted list
  // keeps it sorted, so no per-vertex re-sort is needed.
  auto rank_less = [&](CsrGraph::Index a, CsrGraph::Index b) {
    if (adj[a].size() != adj[b].size()) return adj[a].size() < adj[b].size();
    return a < b;
  };
  std::vector<std::vector<CsrGraph::Index>> forward(n);
  ParallelFor(0, n, {.threads = threads}, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      for (CsrGraph::Index w : adj[v]) {
        if (rank_less(static_cast<CsrGraph::Index>(v), w)) {
          forward[v].push_back(w);
        }
      }
    }
  });

  // Chunk the intersection pass by forward degree — the hubs that
  // dominate the work land in their own chunks. The layout depends only
  // on the graph, so the chunk partials (and their in-order integer fold)
  // are identical at every thread count.
  std::vector<size_t> forward_prefix(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    forward_prefix[v + 1] = forward_prefix[v] + forward[v].size();
  }
  const auto chunks = DegreeBalancedChunks(forward_prefix, 4096);
  return ParallelReduceChunks(
      std::span<const std::pair<size_t, size_t>>(chunks), threads,
      static_cast<uint64_t>(0),
      [&](size_t begin, size_t end) {
        uint64_t triangles = 0;
        for (size_t v = begin; v < end; ++v) {
          for (CsrGraph::Index w : forward[v]) {
            // Intersect forward[v] with forward[w].
            const auto& a = forward[v];
            const auto& b = forward[w];
            size_t i = 0;
            size_t j = 0;
            while (i < a.size() && j < b.size()) {
              if (a[i] < b[j]) {
                ++i;
              } else if (a[i] > b[j]) {
                ++j;
              } else {
                ++triangles;
                ++i;
                ++j;
              }
            }
          }
        }
        return triangles;
      },
      [](uint64_t a, uint64_t b) { return a + b; });
}

double GlobalClusteringCoefficient(const CsrGraph& graph, size_t threads) {
  threads = ResolveThreads(threads);
  const auto adj = BuildUndirectedAdjacency(graph, threads);
  const uint64_t wedges = ParallelReduce(
      0, adj.size(), {.threads = threads}, static_cast<uint64_t>(0),
      [&](size_t begin, size_t end) {
        uint64_t chunk_wedges = 0;
        for (size_t v = begin; v < end; ++v) {
          const uint64_t d = adj[v].size();
          chunk_wedges += d * (d - 1) / 2;
        }
        return chunk_wedges;
      },
      [](uint64_t a, uint64_t b) { return a + b; });
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(graph, threads)) /
         static_cast<double>(wedges);
}

}  // namespace graphtides
