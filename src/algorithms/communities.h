// Community detection via synchronous label propagation and k-core
// decomposition (Table 1: "Communities").
#ifndef GRAPHTIDES_ALGORITHMS_COMMUNITIES_H_
#define GRAPHTIDES_ALGORITHMS_COMMUNITIES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/csr.h"

namespace graphtides {

struct LabelPropagationOptions {
  size_t max_rounds = 50;
  /// Stop when fewer than this fraction of vertices changed label in a
  /// round.
  double min_change_fraction = 0.0;
};

struct CommunityResult {
  /// Community label per dense index (labels relabeled to be dense).
  std::vector<uint32_t> community;
  size_t num_communities = 0;
  size_t rounds = 0;
};

/// \brief Label propagation over the undirected view. Ties are broken by
/// the smallest label for determinism; `rng` shuffles the visit order.
CommunityResult LabelPropagation(const CsrGraph& graph, Rng& rng,
                                 const LabelPropagationOptions& options = {});

/// \brief Core number per dense index (undirected view), by the standard
/// peeling algorithm.
std::vector<uint32_t> CoreNumbers(const CsrGraph& graph);

/// \brief Modularity of a partition over the undirected view (standard
/// Newman definition, each undirected edge counted once).
double Modularity(const CsrGraph& graph,
                  const std::vector<uint32_t>& community);

}  // namespace graphtides

#endif  // GRAPHTIDES_ALGORITHMS_COMMUNITIES_H_
