#include "common/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <nmmintrin.h>
#define GT_CRC32C_HW 1
#endif

namespace graphtides {

namespace {

// Eight tables for slicing-by-8: table 0 is the classic byte-at-a-time
// table; table s advances a byte past s more zero bytes, so eight input
// bytes fold into one XOR chain per iteration. Built once per reflected
// polynomial (0xEDB88320 for IEEE CRC-32, 0x82F63B78 for CRC-32C).
using Crc32Tables = std::array<std::array<uint32_t, 256>, 8>;

Crc32Tables BuildTables(uint32_t poly) {
  Crc32Tables t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? poly ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = t[0][i];
    for (size_t s = 1; s < 8; ++s) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[s][i] = c;
    }
  }
  return t;
}

// Core slicing-by-8 fold over pre-inverted `crc`; caller inverts in/out.
uint32_t SliceBy8(const Crc32Tables& kT, uint32_t crc, const unsigned char* p,
                  size_t n) {
  // Byte-composed loads keep the fold endian-independent; on little-endian
  // targets the compiler collapses them into one 32-bit load.
  while (n >= 8) {
    const uint32_t c0 = crc ^ (static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24);
    crc = kT[7][c0 & 0xFFu] ^ kT[6][(c0 >> 8) & 0xFFu] ^
          kT[5][(c0 >> 16) & 0xFFu] ^ kT[4][c0 >> 24] ^ kT[3][p[4]] ^
          kT[2][p[5]] ^ kT[1][p[6]] ^ kT[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = kT[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --n;
  }
  return crc;
}

#ifdef GT_CRC32C_HW
// Hardware CRC-32C over pre-inverted `crc`. Compiled with SSE4.2 enabled
// for this one function only; callers must gate on the runtime CPU check.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    uint32_t crc, const unsigned char* p, size_t n) {
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    c = _mm_crc32_u64(c, word);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (n > 0) {
    c32 = _mm_crc32_u8(c32, *p++);
    --n;
  }
  return c32;
}
#endif  // GT_CRC32C_HW

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view data) {
  static const Crc32Tables kT = BuildTables(0xEDB88320u);
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  return ~SliceBy8(kT, ~crc, p, data.size());
}

uint32_t Crc32cUpdate(uint32_t crc, std::string_view data) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
#ifdef GT_CRC32C_HW
  static const bool kHaveSse42 = __builtin_cpu_supports("sse4.2");
  if (kHaveSse42) return ~Crc32cHardware(~crc, p, data.size());
#endif
  static const Crc32Tables kT = BuildTables(0x82F63B78u);
  return ~SliceBy8(kT, ~crc, p, data.size());
}

}  // namespace graphtides
