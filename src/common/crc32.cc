#include "common/crc32.h"

#include <array>

namespace graphtides {

namespace {

// Reflected polynomial 0xEDB88320; table built once at first use.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  crc = ~crc;
  for (const char ch : data) {
    crc = kTable[(crc ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace graphtides
