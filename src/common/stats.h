// Descriptive statistics used by the metrics pipeline and the evaluation
// methodology (§4.5): running moments, percentiles, confidence intervals.
#ifndef GRAPHTIDES_COMMON_STATS_H_
#define GRAPHTIDES_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace graphtides {

/// \brief Streaming mean/variance/min/max via Welford's algorithm.
class RunningStats {
 public:
  void Add(double x);
  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Returns the q-quantile (0 <= q <= 1) of `values` by linear
/// interpolation between order statistics. Sorts a copy; returns 0 on empty
/// input.
double Percentile(std::vector<double> values, double q);

/// \brief Like Percentile but assumes `sorted` is already ascending.
double PercentileSorted(const std::vector<double>& sorted, double q);

/// \brief Median convenience wrapper.
double Median(std::vector<double> values);

/// \brief A two-sided confidence interval around a sample mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double level = 0.95;
  size_t n = 0;

  /// True if [lower, upper] does not intersect `other`'s interval — the
  /// paper's criterion for a significant difference between two systems.
  bool DisjointFrom(const ConfidenceInterval& other) const {
    return upper < other.lower || other.upper < lower;
  }
};

/// \brief Confidence interval for the mean of `values` at the given level
/// (0.90, 0.95, or 0.99), using Student's t critical values.
///
/// The methodology (§4.5) calls for n >= 30 runs; this function still
/// produces correct intervals for smaller n via the t table.
ConfidenceInterval MeanConfidenceInterval(const std::vector<double>& values,
                                          double level = 0.95);

/// \brief Two-sided Student's t critical value for the given confidence
/// level and degrees of freedom (interpolated from a standard table;
/// converges to the normal z value for large df).
double StudentTCritical(double level, size_t df);

/// \brief Fixed-width histogram over [lo, hi) with `buckets` buckets.
/// Out-of-range samples clamp into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t total() const { return total_; }
  const std::vector<size_t>& counts() const { return counts_; }
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;
  /// Approximate quantile from bucket boundaries.
  double ApproxPercentile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  size_t total_ = 0;
  std::vector<size_t> counts_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_STATS_H_
