// Status: lightweight error propagation without exceptions, in the style of
// Arrow / RocksDB. A Status is either OK (the common, cheap case) or carries
// an error code plus a human-readable message.
#ifndef GRAPHTIDES_COMMON_STATUS_H_
#define GRAPHTIDES_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace graphtides {

/// Error categories used across the framework.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kPreconditionFailed = 4,
  kIoError = 5,
  kParseError = 6,
  kCapacityExceeded = 7,
  kTimeout = 8,
  kUnsupported = 9,
  kInternal = 10,
  kCancelled = 11,
  /// Transient unavailability (injected chaos faults, overloaded peers):
  /// the operation is expected to succeed when retried.
  kUnavailable = 12,
};

/// \brief Returns a stable, human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code with a message.
///
/// OK is represented by a null state pointer, so returning and testing an OK
/// Status costs one pointer move / null check.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PreconditionFailed(std::string msg) {
    return Status(StatusCode::kPreconditionFailed, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Message text; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsPreconditionFailed() const {
    return code() == StatusCode::kPreconditionFailed;
  }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsCapacityExceeded() const {
    return code() == StatusCode::kCapacityExceeded;
  }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  /// \brief Prepends context to the message, keeping the code.
  ///
  /// No-op on OK statuses. Useful when bubbling errors up through layers:
  /// `return st.WithContext("while replaying line 12");`
  Status WithContext(std::string_view context) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& st) {
  return os << st.ToString();
}

/// Propagates a non-OK Status to the caller.
#define GT_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::graphtides::Status _st = (expr);         \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_STATUS_H_
