#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace graphtides {

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    GT_RETURN_NOT_OK(ParseValue(&v));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters after JSON value");
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Status::ParseError("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') return ParseBool(out);
    if (c == 'n') return ParseNull(out);
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipSpace();
      std::string key;
      GT_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Status::ParseError("expected ':' after object key");
      }
      ++pos_;
      JsonValue value;
      GT_RETURN_NOT_OK(ParseValue(&value));
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Status::ParseError("unclosed object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Status::ParseError("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      GT_RETURN_NOT_OK(ParseValue(&value));
      out->array.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Status::ParseError("unclosed array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Status::ParseError("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Status::ParseError("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u':
            if (text_.size() - pos_ < 4) {
              return Status::ParseError("truncated \\u escape");
            }
            pos_ += 4;  // labels are ASCII; placeholder for the code point
            out->push_back('?');
            break;
          default:
            return Status::ParseError("bad escape in string");
        }
        continue;
      }
      out->push_back(c);
    }
    return Status::ParseError("unclosed string");
  }

  Status ParseBool(JsonValue* out) {
    out->kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      out->boolean = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.substr(pos_, 5) == "false") {
      out->boolean = false;
      pos_ += 5;
      return Status::OK();
    }
    return Status::ParseError("bad literal");
  }

  Status ParseNull(JsonValue* out) {
    if (text_.substr(pos_, 4) != "null") {
      return Status::ParseError("bad literal");
    }
    out->kind = JsonValue::Kind::kNull;
    pos_ += 4;
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    out->number = std::strtod(begin, &end);
    if (end == begin) return Status::ParseError("expected number");
    out->kind = JsonValue::Kind::kNumber;
    pos_ += static_cast<size_t>(end - begin);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

Result<double> JsonRequireNumber(const JsonValue& obj, const std::string& key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end() ||
      it->second.kind != JsonValue::Kind::kNumber) {
    return Status::ParseError("missing numeric field \"" + key + "\"");
  }
  return it->second.number;
}

double JsonOptionalNumber(const JsonValue& obj, const std::string& key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end() ||
      it->second.kind != JsonValue::Kind::kNumber) {
    return 0.0;
  }
  return it->second.number;
}

Result<std::string> JsonRequireString(const JsonValue& obj,
                                      const std::string& key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end() ||
      it->second.kind != JsonValue::Kind::kString) {
    return Status::ParseError("missing string field \"" + key + "\"");
  }
  return it->second.str;
}

void JsonAppendNumber(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out->append(buf);
}

void JsonAppendNumber(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out->append(buf);
}

}  // namespace graphtides
