// Clock abstractions. All framework timestamps are nanoseconds held in a
// strong Timestamp type. Real experiments use MonotonicClock / WallClock;
// simulated experiments use VirtualClock driven by the sim/ scheduler.
#ifndef GRAPHTIDES_COMMON_CLOCK_H_
#define GRAPHTIDES_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <ostream>

namespace graphtides {

/// \brief Nanosecond-resolution point in time on some clock's axis.
///
/// A thin strong typedef over int64 nanoseconds: arithmetic between
/// timestamps yields Duration; Duration +/- Timestamp yields Timestamp.
class Timestamp {
 public:
  constexpr Timestamp() = default;
  constexpr explicit Timestamp(int64_t nanos) : nanos_(nanos) {}

  static constexpr Timestamp FromNanos(int64_t ns) { return Timestamp(ns); }
  static constexpr Timestamp FromMicros(int64_t us) {
    return Timestamp(us * 1000);
  }
  static constexpr Timestamp FromMillis(int64_t ms) {
    return Timestamp(ms * 1000000);
  }
  static constexpr Timestamp FromSeconds(double s) {
    return Timestamp(static_cast<int64_t>(s * 1e9));
  }

  constexpr int64_t nanos() const { return nanos_; }
  constexpr int64_t micros() const { return nanos_ / 1000; }
  constexpr int64_t millis() const { return nanos_ / 1000000; }
  constexpr double seconds() const { return static_cast<double>(nanos_) / 1e9; }

  constexpr auto operator<=>(const Timestamp&) const = default;

 private:
  int64_t nanos_ = 0;
};

/// \brief Signed span of time in nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(int64_t nanos) : nanos_(nanos) {}

  static constexpr Duration FromNanos(int64_t ns) { return Duration(ns); }
  static constexpr Duration FromMicros(int64_t us) {
    return Duration(us * 1000);
  }
  static constexpr Duration FromMillis(int64_t ms) {
    return Duration(ms * 1000000);
  }
  static constexpr Duration FromSeconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e9));
  }
  static constexpr Duration Zero() { return Duration(0); }

  constexpr int64_t nanos() const { return nanos_; }
  constexpr int64_t micros() const { return nanos_ / 1000; }
  constexpr int64_t millis() const { return nanos_ / 1000000; }
  constexpr double seconds() const { return static_cast<double>(nanos_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const {
    return Duration(nanos_ + o.nanos_);
  }
  constexpr Duration operator-(Duration o) const {
    return Duration(nanos_ - o.nanos_);
  }
  constexpr Duration operator*(int64_t k) const { return Duration(nanos_ * k); }
  constexpr Duration operator/(int64_t k) const { return Duration(nanos_ / k); }
  Duration& operator+=(Duration o) {
    nanos_ += o.nanos_;
    return *this;
  }
  Duration& operator-=(Duration o) {
    nanos_ -= o.nanos_;
    return *this;
  }

 private:
  int64_t nanos_ = 0;
};

constexpr Duration operator-(Timestamp a, Timestamp b) {
  return Duration(a.nanos() - b.nanos());
}
constexpr Timestamp operator+(Timestamp t, Duration d) {
  return Timestamp(t.nanos() + d.nanos());
}
constexpr Timestamp operator-(Timestamp t, Duration d) {
  return Timestamp(t.nanos() - d.nanos());
}

inline std::ostream& operator<<(std::ostream& os, Timestamp t) {
  return os << t.nanos() << "ns";
}
inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.nanos() << "ns";
}

/// \brief Source of timestamps; implemented by real and virtual clocks.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Timestamp Now() const = 0;
};

/// Monotonic clock (std::chrono::steady_clock). Suitable for interval
/// measurements; the epoch is arbitrary.
class MonotonicClock final : public Clock {
 public:
  Timestamp Now() const override {
    return Timestamp(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count());
  }
};

/// Wall clock (std::chrono::system_clock) for log record timestamps that are
/// merged across machines; the paper assumes PTP-synchronized wall clocks.
class WallClock final : public Clock {
 public:
  Timestamp Now() const override {
    return Timestamp(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count());
  }
};

/// \brief Manually advanced clock used by the discrete-event simulator.
class VirtualClock final : public Clock {
 public:
  Timestamp Now() const override { return now_; }

  /// Moves the clock forward to `t`. Never moves backward.
  void AdvanceTo(Timestamp t) {
    if (t > now_) now_ = t;
  }
  void Advance(Duration d) { now_ = now_ + d; }

 private:
  Timestamp now_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_CLOCK_H_
