#include "common/parallel.h"

#include <algorithm>

namespace graphtides {

namespace {

std::atomic<size_t> g_default_threads{0};

/// Set while a thread executes chunk work; nested parallel regions run
/// inline instead of deadlocking on the (serialized) pool.
thread_local bool t_in_parallel_region = false;

class RegionGuard {
 public:
  RegionGuard() : prev_(t_in_parallel_region) { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = prev_; }

 private:
  bool prev_;
};

}  // namespace

ThreadPool::ThreadPool(size_t initial_workers) {
  EnsureWorkers(std::min(initial_workers, kMaxThreads - 1));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

size_t ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(wake_mu_);
  return threads_.size();
}

void ThreadPool::EnsureWorkers(size_t count) {
  count = std::min(count, kMaxThreads - 1);
  std::lock_guard<std::mutex> lock(wake_mu_);
  while (threads_.size() < count) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

bool ThreadPool::PopTask(Job& job, size_t slot, size_t* out) {
  const size_t n = job.queues.size();
  {
    WorkDeque& own = *job.queues[slot % n];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *out = own.tasks.front();  // own block in ascending (cache) order
      own.tasks.pop_front();
      return true;
    }
  }
  for (size_t i = 1; i < n; ++i) {
    WorkDeque& victim = *job.queues[(slot + i) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *out = victim.tasks.back();  // steal from the cold end
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkOn(Job& job, size_t slot) {
  RegionGuard region;
  size_t task_index = 0;
  while (PopTask(job, slot, &task_index)) {
    if (!job.failed.load(std::memory_order_acquire)) {
      try {
        (*job.task)(task_index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.done_mu);
        if (!job.error) job.error = std::current_exception();
        job.failed.store(true, std::memory_order_release);
      }
    }
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(job.done_mu);
      job.done_cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (true) {
    wake_cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && generation_ != seen_generation);
    });
    if (stop_) return;
    seen_generation = generation_;
    Job* job = job_;
    const size_t slot = job->next_slot.fetch_add(1, std::memory_order_relaxed);
    if (slot >= job->queues.size()) continue;  // every slot already taken
    job->active_helpers.fetch_add(1, std::memory_order_acq_rel);
    lock.unlock();
    WorkOn(*job, slot);
    {
      std::lock_guard<std::mutex> done_lock(job->done_mu);
      job->active_helpers.fetch_sub(1, std::memory_order_acq_rel);
      job->done_cv.notify_all();
    }
    lock.lock();
  }
}

void ThreadPool::RunTasks(size_t num_tasks, size_t max_threads,
                          const std::function<void(size_t)>& task) {
  if (num_tasks == 0) return;
  if (max_threads == 0) max_threads = kMaxThreads;
  const size_t participants =
      std::min({max_threads, kMaxThreads, num_tasks});
  if (participants <= 1 || t_in_parallel_region) {
    RegionGuard region;
    for (size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  EnsureWorkers(participants - 1);

  std::lock_guard<std::mutex> run_lock(run_mu_);
  Job job;
  job.task = &task;
  job.queues.reserve(participants);
  for (size_t i = 0; i < participants; ++i) {
    job.queues.push_back(std::make_unique<WorkDeque>());
  }
  // Contiguous blocks per participant: owners walk their block in order
  // (cache-friendly); thieves take from the far end of a victim's block.
  for (size_t q = 0; q < participants; ++q) {
    const size_t begin = q * num_tasks / participants;
    const size_t end = (q + 1) * num_tasks / participants;
    for (size_t i = begin; i < end; ++i) job.queues[q]->tasks.push_back(i);
  }
  job.remaining.store(num_tasks, std::memory_order_release);

  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    job_ = &job;
    ++generation_;
  }
  wake_cv_.notify_all();

  WorkOn(job, 0);

  {
    std::unique_lock<std::mutex> done_lock(job.done_mu);
    job.done_cv.wait(done_lock, [&] {
      return job.remaining.load(std::memory_order_acquire) == 0;
    });
  }
  // Unpublish, then wait for helpers that had already joined; no new
  // helper can pick the job up once job_ is null.
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    job_ = nullptr;
  }
  {
    std::unique_lock<std::mutex> done_lock(job.done_mu);
    job.done_cv.wait(done_lock, [&] {
      return job.active_helpers.load(std::memory_order_acquire) == 0;
    });
  }
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::SetDefaultThreads(size_t threads) {
  g_default_threads.store(std::min(threads, kMaxThreads),
                          std::memory_order_relaxed);
}

size_t ThreadPool::DefaultThreads() {
  const size_t configured = g_default_threads.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  const size_t hw = std::thread::hardware_concurrency();
  return std::clamp<size_t>(hw, 1, kMaxThreads);
}

size_t ResolveThreads(size_t threads) {
  return threads > 0 ? std::min(threads, ThreadPool::kMaxThreads)
                     : ThreadPool::DefaultThreads();
}

std::vector<std::pair<size_t, size_t>> UniformChunks(size_t begin, size_t end,
                                                     size_t grain) {
  std::vector<std::pair<size_t, size_t>> chunks;
  if (begin >= end) return chunks;
  const size_t n = end - begin;
  if (grain == 0) grain = 1;
  const size_t count =
      std::clamp<size_t>((n + grain - 1) / grain, 1, kMaxParallelChunks);
  chunks.reserve(count);
  for (size_t c = 0; c < count; ++c) {
    const size_t lo = begin + c * n / count;
    const size_t hi = begin + (c + 1) * n / count;
    if (lo < hi) chunks.emplace_back(lo, hi);
  }
  return chunks;
}

std::vector<std::pair<size_t, size_t>> DegreeBalancedChunks(
    std::span<const size_t> offsets, size_t grain_weight) {
  std::vector<std::pair<size_t, size_t>> chunks;
  if (offsets.size() < 2) return chunks;
  const size_t n = offsets.size() - 1;
  // Weight of vertex v: its edge span plus 1, so zero-degree vertices
  // still count toward chunk sizes.
  const size_t total = (offsets[n] - offsets[0]) + n;
  if (grain_weight == 0) grain_weight = 1;
  const size_t count = std::clamp<size_t>(total / grain_weight, 1,
                                          kMaxParallelChunks);
  const size_t target = (total + count - 1) / count;
  chunks.reserve(count);
  size_t chunk_begin = 0;
  size_t weight = 0;
  for (size_t v = 0; v < n; ++v) {
    weight += offsets[v + 1] - offsets[v] + 1;
    if (weight >= target) {
      chunks.emplace_back(chunk_begin, v + 1);
      chunk_begin = v + 1;
      weight = 0;
    }
  }
  if (chunk_begin < n) chunks.emplace_back(chunk_begin, n);
  return chunks;
}

void ParallelForChunks(
    std::span<const std::pair<size_t, size_t>> chunks, size_t threads,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (chunks.empty()) return;
  threads = ResolveThreads(threads);
  if (threads <= 1 || chunks.size() == 1) {
    RegionGuard region;
    for (size_t i = 0; i < chunks.size(); ++i) {
      body(i, chunks[i].first, chunks[i].second);
    }
    return;
  }
  ThreadPool::Global().RunTasks(chunks.size(), threads, [&](size_t i) {
    body(i, chunks[i].first, chunks[i].second);
  });
}

void ParallelFor(size_t begin, size_t end, const ParallelOptions& options,
                 const std::function<void(size_t, size_t)>& body) {
  const auto chunks = UniformChunks(begin, end, options.grain);
  ParallelForChunks(chunks, options.threads,
                    [&](size_t, size_t b, size_t e) { body(b, e); });
}

}  // namespace graphtides
