#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace graphtides {

std::vector<std::string_view> SplitString(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Result<int64_t> ParseInt64(std::string_view s) {
  int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

Result<uint64_t> ParseUint64(std::string_view s) {
  uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError("not an unsigned integer: '" + std::string(s) +
                              "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  // std::from_chars for double is not universally available; strtod needs a
  // terminated buffer.
  const std::string buf(s);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty()) {
    return Status::ParseError("not a number: '" + buf + "'");
  }
  return value;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string JoinStrings(const std::vector<std::string>& items,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace graphtides
