#include "common/random.h"

#include <cassert>
#include <cmath>

namespace graphtides {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  has_cached_gaussian_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(NextU64()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(NextU64()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextExponential(double lambda) {
  assert(lambda > 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  return NextWeighted(weights.data(), weights.size());
}

size_t Rng::NextWeighted(const double* weights, size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += weights[i];
  if (total <= 0.0) return n;
  double x = NextDouble() * total;
  for (size_t i = 0; i < n; ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return n - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

ZipfSampler::ZipfSampler(size_t n, double exponent) : exponent_(exponent) {
  assert(n > 0);
  cum_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cum_[i] = acc;
  }
  for (auto& c : cum_) c /= acc;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  size_t lo = 0;
  size_t hi = cum_.size() - 1;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (cum_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::Pmf(size_t rank) const {
  assert(rank < cum_.size());
  return rank == 0 ? cum_[0] : cum_[rank] - cum_[rank - 1];
}

}  // namespace graphtides
