#include "common/fault_plan.h"

#include <csignal>
#include <cstdlib>

#include <unistd.h>

#include "common/random.h"
#include "common/string_util.h"

namespace graphtides {

namespace {

// Stable per-point salt for the torn-write fraction draw.
uint64_t PointSalt(std::string_view point) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const char c : point) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

FaultPlan& FaultPlan::Global() {
  static FaultPlan plan;
  return plan;
}

const std::vector<std::string_view>& FaultPlan::KnownCrashPoints() {
  static const std::vector<std::string_view> kPoints = {
      kCrashPostDelivery,     kCrashMidCheckpointWrite,
      kCrashPreCheckpointRename, kCrashPostCheckpoint,
      kCrashEpochBarrier,     kCrashCoordPostAssign,
      kCrashCoordEpochRelease, kCrashWorkerPostHello,
      kCrashWorkerEpochReport};
  return kPoints;
}

Status FaultPlan::Configure(std::string_view spec) {
  if (TrimWhitespace(spec).empty()) return Status::OK();
  for (const std::string_view raw : SplitString(spec, ',')) {
    const std::string_view entry = TrimWhitespace(raw);
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault-plan entry '" + std::string(entry) +
                                     "': expected key=value");
    }
    const std::string_view key = entry.substr(0, eq);
    const std::string_view value = entry.substr(eq + 1);
    if (key == "crash" || key == "torn") {
      CrashEntry crash;
      crash.torn = key == "torn";
      std::string_view point = value;
      const size_t colon = value.find(':');
      if (colon != std::string_view::npos) {
        point = value.substr(0, colon);
        auto n = ParseUint64(value.substr(colon + 1));
        if (!n.ok() || *n == 0) {
          return Status::InvalidArgument(
              "fault-plan '" + std::string(entry) +
              "': hit count must be a positive integer");
        }
        crash.at_hit = *n;
      }
      bool known = false;
      for (const std::string_view p : KnownCrashPoints()) {
        if (point == p) known = true;
      }
      // Torn writes only make sense at checkpoint-publish boundaries.
      if (crash.torn && point != kCrashPreCheckpointRename &&
          point != kCrashPostCheckpoint) {
        return Status::InvalidArgument(
            "fault-plan '" + std::string(entry) +
            "': torn= applies to pre-checkpoint-rename or post-checkpoint");
      }
      if (!known) {
        std::string names;
        for (const std::string_view p : KnownCrashPoints()) {
          if (!names.empty()) names += ", ";
          names += std::string(p);
        }
        return Status::InvalidArgument("unknown crash point '" +
                                       std::string(point) + "' (known: " +
                                       names + ")");
      }
      crash.point = std::string(point);
      crashes_.push_back(crash);
    } else if (key == "enospc") {
      auto bytes = ParseUint64(value);
      if (!bytes.ok()) {
        return bytes.status().WithContext("fault-plan enospc budget");
      }
      enospc_budget_.store(static_cast<int64_t>(*bytes),
                           std::memory_order_relaxed);
    } else if (key == "short-write") {
      auto nth = ParseUint64(value);
      if (!nth.ok() || *nth == 0) {
        return Status::InvalidArgument(
            "fault-plan short-write: expected a positive write ordinal");
      }
      short_write_at_.store(*nth, std::memory_order_relaxed);
    } else if (key == "fail") {
      auto attempt = ParseUint64(value);
      if (!attempt.ok()) {
        return attempt.status().WithContext("fault-plan fail point");
      }
      fail_points_.push_back(*attempt);
    } else if (key == "seed") {
      auto seed = ParseUint64(value);
      if (!seed.ok()) return seed.status().WithContext("fault-plan seed");
      seed_ = *seed;
    } else {
      return Status::InvalidArgument("unknown fault-plan key '" +
                                     std::string(key) + "'");
    }
  }
  armed_.store(true, std::memory_order_release);
  return Status::OK();
}

Status FaultPlan::ConfigureFromEnv() {
  if (const char* plan = std::getenv("GT_FAULT_PLAN")) {
    GT_RETURN_NOT_OK(Configure(plan).WithContext("GT_FAULT_PLAN"));
  }
  if (const char* crash_at = std::getenv("GT_CRASH_AT")) {
    for (const std::string_view part : SplitString(crash_at, ',')) {
      if (TrimWhitespace(part).empty()) continue;
      GT_RETURN_NOT_OK(Configure("crash=" + std::string(TrimWhitespace(part)))
                           .WithContext("GT_CRASH_AT"));
    }
  }
  return Status::OK();
}

void FaultPlan::Reset() {
  armed_.store(false, std::memory_order_release);
  crashes_.clear();
  fail_points_.clear();
  seed_ = 1;
  enospc_budget_.store(-1, std::memory_order_relaxed);
  short_write_at_.store(0, std::memory_order_relaxed);
  writes_seen_.store(0, std::memory_order_relaxed);
  write_fault_latched_.store(false, std::memory_order_relaxed);
  hits_observed_.store(0, std::memory_order_relaxed);
  write_faults_.store(0, std::memory_order_relaxed);
  crash_ = nullptr;
}

void FaultPlan::CrashNow(std::string_view point) {
  if (crash_) {
    crash_(point);
    return;
  }
  // Abrupt death, deliberately without flushing stdio: a real crash loses
  // buffered sink output, and that loss is exactly what resume-truncation
  // must cope with. The note goes straight to fd 2 for post-mortems.
  std::string note = "fault-plan: crash at ";
  note.append(point);
  note.push_back('\n');
  (void)!::write(STDERR_FILENO, note.data(), note.size());
  ::raise(SIGKILL);
}

void FaultPlan::HitSlow(std::string_view point) {
  for (CrashEntry& crash : crashes_) {
    if (crash.torn || crash.point != point) continue;
    hits_observed_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t n = crash.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n == crash.at_hit && !crash.fired.exchange(true)) {
      CrashNow(point);
    }
  }
}

bool FaultPlan::TornCheckpointAt(std::string_view point,
                                 double* keep_fraction) {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  for (CrashEntry& crash : crashes_) {
    if (!crash.torn || crash.point != point) continue;
    hits_observed_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t n = crash.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n == crash.at_hit && !crash.fired.exchange(true)) {
      // Seeded fraction in (0, 1): always a proper prefix, so the CRC
      // footer can never survive the tear.
      Rng rng(seed_ ^ PointSalt(point) ^ crash.at_hit);
      *keep_fraction = 0.05 + 0.9 * rng.NextDouble();
      return true;
    }
  }
  return false;
}

bool FaultPlan::ClipFileWrite(size_t want, size_t* allowed,
                              std::string* error) {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  if (write_fault_latched_.load(std::memory_order_relaxed)) {
    *allowed = 0;
    *error = "injected write fault (latched)";
    return true;
  }
  const uint64_t nth = writes_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t short_at = short_write_at_.load(std::memory_order_relaxed);
  if (short_at != 0 && nth == short_at) {
    write_fault_latched_.store(true, std::memory_order_relaxed);
    write_faults_.fetch_add(1, std::memory_order_relaxed);
    *allowed = want / 2;
    *error = "short write (injected): " + std::to_string(want / 2) + " of " +
             std::to_string(want) + " bytes";
    return true;
  }
  const int64_t budget = enospc_budget_.load(std::memory_order_relaxed);
  if (budget >= 0) {
    const int64_t before = enospc_budget_.fetch_sub(
        static_cast<int64_t>(want), std::memory_order_relaxed);
    if (before < static_cast<int64_t>(want)) {
      write_fault_latched_.store(true, std::memory_order_relaxed);
      write_faults_.fetch_add(1, std::memory_order_relaxed);
      *allowed = static_cast<size_t>(before > 0 ? before : 0);
      *error = "No space left on device (injected ENOSPC)";
      return true;
    }
  }
  return false;
}

std::vector<uint64_t> FaultPlan::delivery_fail_points() const {
  return fail_points_;
}

}  // namespace graphtides
