#include "common/status.h"

namespace graphtides {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kPreconditionFailed:
      return "PreconditionFailed";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string combined(context);
  combined += ": ";
  combined += message();
  return Status(code(), std::move(combined));
}

}  // namespace graphtides
