// FaultPlan: a seeded, deterministic script of *process-level* faults,
// unifying the delivery-level chaos schedule (faults/chaos_sink.h) with
// crash points compiled into the replay pipeline. Where ChaosSink degrades
// individual deliveries, a FaultPlan kills or starves the whole process at
// named boundaries so crash-consistency (durable checkpoints, resume
// exactly-once) can be exercised against a real SIGKILL, a torn checkpoint
// publish, or a file sink hitting ENOSPC — the failure classes the paper's
// robustness methodology demands a harness measure rather than assume.
//
// Spec grammar (comma-separated entries; `--fault-plan` / GT_FAULT_PLAN,
// with `--crash-at P[:N]` / GT_CRASH_AT as sugar for `crash=P[:N]`):
//   crash=<point>[:<n>]   raise SIGKILL at the n-th hit (default 1) of the
//                         named crash point; points are compiled into the
//                         replayer (see kCrashPoint* below)
//   torn=<point>[:<n>]    like crash=, but the checkpoint being published
//                         is first truncated to a seeded fraction of its
//                         bytes — the on-disk state a mid-rename power
//                         loss leaves behind
//   enospc=<bytes>        file-sink writes fail with an injected ENOSPC
//                         after a cumulative byte budget (latched)
//   short-write=<nth>     the nth file-sink write delivers only half its
//                         bytes, then fails
//   fail=<attempt>        delivery attempt index that always fails; feeds
//                         ChaosOptions::fail_points (see
//                         delivery_fail_points())
//   seed=<s>              RNG seed for the torn-write fraction (default 1)
#ifndef GRAPHTIDES_COMMON_FAULT_PLAN_H_
#define GRAPHTIDES_COMMON_FAULT_PLAN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace graphtides {

// Named crash points compiled into the replay pipeline. Each marks a
// boundary whose crash-window the recovery machinery must survive.
/// After a sink acknowledged a delivery, before the accounting update.
inline constexpr std::string_view kCrashPostDelivery = "post-delivery";
/// Inside a checkpoint publish, after part of the temp file was written.
inline constexpr std::string_view kCrashMidCheckpointWrite =
    "mid-checkpoint-write";
/// After the temp checkpoint is durable, before the rename publishes it.
inline constexpr std::string_view kCrashPreCheckpointRename =
    "pre-checkpoint-rename";
/// After the rename + directory sync published the checkpoint.
inline constexpr std::string_view kCrashPostCheckpoint = "post-checkpoint";
/// Inside a cross-shard epoch-barrier completion, all lanes quiesced.
inline constexpr std::string_view kCrashEpochBarrier = "epoch-barrier";

// Distributed-replay crash points (coordinator + worker control plane).
/// Coordinator: after a shard-range ASSIGN/REASSIGN was sent to a worker.
inline constexpr std::string_view kCrashCoordPostAssign = "coord-post-assign";
/// Coordinator: after broadcasting an epoch release to the fleet.
inline constexpr std::string_view kCrashCoordEpochRelease =
    "coord-epoch-release";
/// Worker: after the HELLO handshake registered it with the coordinator.
inline constexpr std::string_view kCrashWorkerPostHello = "worker-post-hello";
/// Worker: after reporting an epoch, before waiting for its release —
/// lanes quiesced at the barrier, checkpoint state durable.
inline constexpr std::string_view kCrashWorkerEpochReport =
    "worker-epoch-report";

/// \brief One armed process-fault script. Thread-safe after Configure.
///
/// The process-global instance (Global()) is what the instrumentation
/// sites consult; it is disarmed by default, and the disarmed fast path is
/// a single relaxed atomic load.
class FaultPlan {
 public:
  /// Crash override for in-process tests (default: raise(SIGKILL)).
  using CrashFn = std::function<void(std::string_view point)>;

  FaultPlan() = default;

  /// The process-wide plan consulted by instrumentation sites.
  static FaultPlan& Global();

  /// Parses and arms `spec` (grammar above). InvalidArgument on unknown
  /// points or malformed entries; an empty spec leaves the plan disarmed.
  Status Configure(std::string_view spec);

  /// Arms from GT_FAULT_PLAN and GT_CRASH_AT (both honored, GT_CRASH_AT
  /// entries are crash= sugar). No-op when neither is set.
  Status ConfigureFromEnv();

  /// Disarms and clears everything (tests reset the global instance).
  void Reset();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// \brief Crash-point instrumentation: counts a hit of `point` and, when
  /// an armed crash entry's hit count is reached, kills the process (or
  /// invokes the test override). Near-zero cost while disarmed.
  void Hit(std::string_view point) {
    if (!armed_.load(std::memory_order_relaxed)) return;
    HitSlow(point);
  }

  /// \brief True when the checkpoint publish at `point` should be torn:
  /// outputs the seeded fraction of bytes to keep, then the caller
  /// truncates the published file and calls Hit-style crash via
  /// CrashNow(). Consumes the entry's hit budget like Hit does.
  bool TornCheckpointAt(std::string_view point, double* keep_fraction);

  /// \brief File-sink write-fault gate. Returns true when an armed
  /// ENOSPC/short-write fault fires for this write: `*allowed` is the byte
  /// count the sink should still write before failing, `*error` the
  /// message for the IoError. Latched: once fired, every later write
  /// fails with 0 allowed bytes.
  bool ClipFileWrite(size_t want, size_t* allowed, std::string* error);

  /// Deterministic delivery fail points for ChaosOptions::fail_points.
  std::vector<uint64_t> delivery_fail_points() const;

  /// Immediately executes the crash action for `point` (used by the torn
  /// path after the truncation is on disk).
  void CrashNow(std::string_view point);

  /// Test hook: replaces raise(SIGKILL).
  void set_crash_fn(CrashFn fn) { crash_ = std::move(fn); }

  /// Total crash-point hits observed while armed (telemetry/report).
  uint64_t hits_observed() const {
    return hits_observed_.load(std::memory_order_relaxed);
  }
  /// Injected file-write faults (ENOSPC / short writes) fired so far.
  uint64_t write_faults_fired() const {
    return write_faults_.load(std::memory_order_relaxed);
  }

  /// The crash points the replay pipeline implements, for spec validation
  /// and `--help` text.
  static const std::vector<std::string_view>& KnownCrashPoints();

 private:
  struct CrashEntry {
    std::string point;
    uint64_t at_hit = 1;  // crash on the at_hit-th Hit of this point
    bool torn = false;    // tear the checkpoint being published first
    std::atomic<uint64_t> hits{0};
    std::atomic<bool> fired{false};

    CrashEntry() = default;
    CrashEntry(const CrashEntry& other)
        : point(other.point),
          at_hit(other.at_hit),
          torn(other.torn),
          hits(other.hits.load()),
          fired(other.fired.load()) {}
  };

  void HitSlow(std::string_view point);

  std::atomic<bool> armed_{false};
  std::vector<CrashEntry> crashes_;
  std::vector<uint64_t> fail_points_;
  uint64_t seed_ = 1;
  // ENOSPC: byte budget before writes start failing (-1 = disabled).
  std::atomic<int64_t> enospc_budget_{-1};
  // Short write: fires on the nth file-sink write (0 = disabled).
  std::atomic<uint64_t> short_write_at_{0};
  std::atomic<uint64_t> writes_seen_{0};
  std::atomic<bool> write_fault_latched_{false};
  std::atomic<uint64_t> hits_observed_{0};
  std::atomic<uint64_t> write_faults_{0};
  CrashFn crash_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_FAULT_PLAN_H_
