// Deterministic, seedable random number generation for workload generators
// and experiments. Uses xoshiro256** internally; all experiment randomness
// must flow through Rng so runs are reproducible from a single seed.
#ifndef GRAPHTIDES_COMMON_RANDOM_H_
#define GRAPHTIDES_COMMON_RANDOM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace graphtides {

/// \brief Fast, seedable PRNG (xoshiro256**, seeded via splitmix64).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound) using Lemire's method. bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool NextBool(double p);

  /// Standard normal via Box–Muller (cached second value).
  double NextGaussian();

  /// Exponential with rate lambda (> 0).
  double NextExponential(double lambda);

  /// Index sampled from unnormalized non-negative `weights`.
  /// Returns weights.size() if all weights are zero.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Same over a raw array — lets hot paths sample from stack buffers
  /// without building a vector. Returns n if all weights are zero.
  size_t NextWeighted(const double* weights, size_t n);

  /// Derives an independent child generator (for parallel components).
  Rng Fork();

  /// \brief Snapshot of the raw generator state, for checkpoint/resume.
  ///
  /// Restoring a snapshot reproduces the exact uniform-draw sequence; a
  /// half-consumed Box–Muller pair is not carried over (the next Gaussian
  /// draws a fresh pair).
  std::array<uint64_t, 4> SaveState() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void RestoreState(const std::array<uint64_t, 4>& state) {
    for (size_t i = 0; i < 4; ++i) s_[i] = state[i];
    has_cached_gaussian_ = false;
  }

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// \brief Samples from a Zipf distribution over ranks {0, ..., n-1}.
///
/// Rank 0 is the most probable. Uses precomputed cumulative weights plus
/// binary search; rebuildable when n changes. Exponent s >= 0 (s = 0 gives
/// the uniform distribution).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);

  size_t n() const { return cum_.size(); }
  double exponent() const { return exponent_; }

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

  /// Probability mass of a given rank.
  double Pmf(size_t rank) const;

 private:
  double exponent_;
  std::vector<double> cum_;  // cumulative, normalized to cum_.back() == 1.
};

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_RANDOM_H_
