// Small string helpers shared across modules.
#ifndef GRAPHTIDES_COMMON_STRING_UTIL_H_
#define GRAPHTIDES_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace graphtides {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> SplitString(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Parses a base-10 signed integer occupying the whole string.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a base-10 unsigned integer occupying the whole string.
Result<uint64_t> ParseUint64(std::string_view s);

/// Parses a floating-point number occupying the whole string.
Result<double> ParseDouble(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins items with a separator.
std::string JoinStrings(const std::vector<std::string>& items,
                        std::string_view sep);

/// Uppercases ASCII letters.
std::string ToUpperAscii(std::string_view s);

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_STRING_UTIL_H_
