// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant) and CRC-32C
// (Castagnoli polynomial), table-driven with a hardware CRC-32C path.
//
// CRC-32 seals durable artifacts (replay checkpoints, GTDP frames): a
// crash mid-write leaves a prefix whose checksum cannot match, so torn
// records are detected instead of silently parsed. CRC-32C seals
// gt-stream-v2 blocks — it checksums every byte on the replay hot path,
// and the Castagnoli polynomial has a dedicated x86 instruction (SSE4.2
// `crc32`) that runs an order of magnitude faster than any table walk,
// which is why storage wire formats standardize on it.
#ifndef GRAPHTIDES_COMMON_CRC32_H_
#define GRAPHTIDES_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace graphtides {

/// Incremental update: feed `crc` from a previous call (or 0 to start).
uint32_t Crc32Update(uint32_t crc, std::string_view data);

/// One-shot CRC-32 of `data`.
inline uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

/// Incremental CRC-32C update: feed `crc` from a previous call (or 0 to
/// start). Uses the SSE4.2 `crc32` instruction when the CPU has it;
/// the software fallback produces bit-identical values.
uint32_t Crc32cUpdate(uint32_t crc, std::string_view data);

/// One-shot CRC-32C of `data`.
inline uint32_t Crc32c(std::string_view data) { return Crc32cUpdate(0, data); }

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_CRC32_H_
