// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant), table-driven.
// Used as the integrity footer of durable artifacts (replay checkpoints):
// a crash mid-write leaves a prefix whose checksum cannot match, so torn
// records are detected instead of silently parsed.
#ifndef GRAPHTIDES_COMMON_CRC32_H_
#define GRAPHTIDES_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace graphtides {

/// Incremental update: feed `crc` from a previous call (or 0 to start).
uint32_t Crc32Update(uint32_t crc, std::string_view data);

/// One-shot CRC-32 of `data`.
inline uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_CRC32_H_
