// Cooperative cancellation: a thread-safe token that a supervisor (e.g. the
// harness RunWatchdog) fires and long-running work (replayer emitter loops,
// simulation drivers, retry loops) polls. Cancellation is a request, not a
// kill — observers are expected to stop at the next safe boundary and
// surface Status::Cancelled so checkpoints and accounting stay consistent.
#ifndef GRAPHTIDES_COMMON_CANCELLATION_H_
#define GRAPHTIDES_COMMON_CANCELLATION_H_

#include <atomic>
#include <mutex>
#include <string>

namespace graphtides {

/// \brief Shared cancel flag plus a human-readable reason.
///
/// `cancelled()` is a lock-free acquire load, cheap enough for per-event
/// polling; the reason string is mutex-guarded and only touched on the
/// (rare) cancel and report paths. The first RequestCancel wins — later
/// calls are no-ops, so concurrent supervisors cannot race on the reason.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Fires the token. Only the first call records its reason.
  void RequestCancel(std::string reason) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cancelled_.load(std::memory_order_relaxed)) return;
      reason_ = std::move(reason);
    }
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// The first RequestCancel's reason; empty while not cancelled.
  std::string reason() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reason_;
  }

  /// Rearms the token for the next run. Must not race RequestCancel.
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    reason_.clear();
    cancelled_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  std::string reason_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_CANCELLATION_H_
