#include "common/csv.h"

namespace graphtides {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  // NUL bytes are never legal in the stream format; they typically indicate
  // binary garbage or an interrupted write, and silently accepting them
  // would let a truncated field masquerade as valid data downstream.
  if (line.find('\0') != std::string_view::npos) {
    return Status::ParseError("NUL byte in CSV input");
  }
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;  // current field started with a quote
  size_t i = 0;
  const size_t n = line.size();
  while (i < n) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        current.push_back(c);
        ++i;
      }
    } else if (c == '"') {
      if (!current.empty() || was_quoted) {
        return Status::ParseError("unexpected quote inside unquoted field");
      }
      in_quotes = true;
      was_quoted = true;
      ++i;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      was_quoted = false;
      ++i;
    } else {
      if (was_quoted) {
        return Status::ParseError("characters after closing quote");
      }
      current.push_back(c);
      ++i;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field");
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string EscapeCsvField(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += EscapeCsvField(fields[i]);
  }
  return out;
}

}  // namespace graphtides
