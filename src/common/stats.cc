#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace graphtides {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const size_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          static_cast<double>(total);
  count_ = total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PercentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t idx = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

double Percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return PercentileSorted(values, q);
}

double Median(std::vector<double> values) {
  return Percentile(std::move(values), 0.5);
}

double StudentTCritical(double level, size_t df) {
  if (df == 0) df = 1;
  // Two-sided critical values for common confidence levels. Rows: df.
  struct Row {
    size_t df;
    double t90, t95, t99;
  };
  static const Row kTable[] = {
      {1, 6.314, 12.706, 63.657}, {2, 2.920, 4.303, 9.925},
      {3, 2.353, 3.182, 5.841},   {4, 2.132, 2.776, 4.604},
      {5, 2.015, 2.571, 4.032},   {6, 1.943, 2.447, 3.707},
      {7, 1.895, 2.365, 3.499},   {8, 1.860, 2.306, 3.355},
      {9, 1.833, 2.262, 3.250},   {10, 1.812, 2.228, 3.169},
      {12, 1.782, 2.179, 3.055},  {15, 1.753, 2.131, 2.947},
      {20, 1.725, 2.086, 2.845},  {25, 1.708, 2.060, 2.787},
      {30, 1.697, 2.042, 2.750},  {40, 1.684, 2.021, 2.704},
      {60, 1.671, 2.000, 2.660},  {120, 1.658, 1.980, 2.617},
      {1000000, 1.645, 1.960, 2.576},
  };
  auto pick = [&](const Row& r) {
    if (level >= 0.985) return r.t99;
    if (level >= 0.925) return r.t95;
    return r.t90;
  };
  const Row* prev = &kTable[0];
  for (const Row& row : kTable) {
    if (df == row.df) return pick(row);
    if (df < row.df) {
      // Linear interpolation in 1/df, the conventional approach.
      const double x = 1.0 / static_cast<double>(df);
      const double x0 = 1.0 / static_cast<double>(prev->df);
      const double x1 = 1.0 / static_cast<double>(row.df);
      const double f = (x - x0) / (x1 - x0);
      return pick(*prev) * (1.0 - f) + pick(row) * f;
    }
    prev = &row;
  }
  return pick(kTable[std::size(kTable) - 1]);
}

ConfidenceInterval MeanConfidenceInterval(const std::vector<double>& values,
                                          double level) {
  ConfidenceInterval ci;
  ci.level = level;
  ci.n = values.size();
  if (values.empty()) return ci;
  RunningStats rs;
  for (double v : values) rs.Add(v);
  ci.mean = rs.mean();
  if (values.size() < 2) {
    ci.lower = ci.upper = ci.mean;
    return ci;
  }
  const double se = rs.stddev() / std::sqrt(static_cast<double>(values.size()));
  const double t = StudentTCritical(level, values.size() - 1);
  ci.lower = ci.mean - t * se;
  ci.upper = ci.mean + t * se;
  return ci;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
  width_ = (hi - lo) / static_cast<double>(buckets);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++counts_.front();
    return;
  }
  size_t idx = static_cast<size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

double Histogram::BucketLow(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::BucketHigh(size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::ApproxPercentile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double acc = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = acc + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0
              ? 0.0
              : (target - acc) / static_cast<double>(counts_[i]);
      return BucketLow(i) + frac * width_;
    }
    acc = next;
  }
  return hi_;
}

}  // namespace graphtides
