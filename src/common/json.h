// Minimal JSON reader/writer helpers shared by the framework's line-based
// artifact schemas (gt-telemetry-v1 snapshots, gt-frontier-v1 capacity
// artifacts): objects/arrays/strings/numbers/bools, just enough to parse
// and validate without a dependency. Not a general-purpose JSON library —
// \u escapes decode to a placeholder (labels are ASCII).
#ifndef GRAPHTIDES_COMMON_JSON_H_
#define GRAPHTIDES_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace graphtides {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

/// \brief Parses one complete JSON value; trailing characters are an error.
Result<JsonValue> ParseJson(std::string_view text);

/// Required numeric field of an object; ParseError when missing or not a
/// number.
Result<double> JsonRequireNumber(const JsonValue& obj, const std::string& key);
/// Numeric field with a 0.0 fallback when missing or mistyped.
double JsonOptionalNumber(const JsonValue& obj, const std::string& key);
/// Required string field of an object.
Result<std::string> JsonRequireString(const JsonValue& obj,
                                      const std::string& key);

/// Writer helpers: append a number in the canonical compact form the
/// artifact schemas use (%.10g keeps doubles round-trippable at the
/// precision the validators check).
void JsonAppendNumber(std::string* out, double v);
void JsonAppendNumber(std::string* out, uint64_t v);

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_JSON_H_
