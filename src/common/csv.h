// Minimal CSV reading/writing for the GraphTides stream format (§4.2).
//
// The format is comma-separated with optional double-quote quoting: a field
// containing a comma, quote, or newline is wrapped in quotes, and embedded
// quotes are doubled (RFC 4180 style). This matters because vertex/edge
// states are "user-defined strings (e.g., stringified JSON)" and JSON
// contains commas and quotes.
#ifndef GRAPHTIDES_COMMON_CSV_H_
#define GRAPHTIDES_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace graphtides {

/// \brief Splits one CSV line into fields, honoring quoting.
///
/// Returns ParseError on unbalanced quotes, characters trailing a closing
/// quote, or embedded NUL bytes. The input must not contain the line
/// terminator.
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

/// \brief Joins fields into one CSV line, quoting where necessary.
std::string FormatCsvLine(const std::vector<std::string>& fields);

/// \brief Escapes a single field if it needs quoting; otherwise returns it
/// verbatim.
std::string EscapeCsvField(std::string_view field);

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_CSV_H_
