// Diagnostic logging for framework components (distinct from the harness's
// measurement logs, which live in harness/). Thread-safe, leveled, writes to
// stderr by default.
#ifndef GRAPHTIDES_COMMON_LOGGING_H_
#define GRAPHTIDES_COMMON_LOGGING_H_

#include <mutex>
#include <sstream>
#include <string>

namespace graphtides {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide diagnostic logger.
class Logger {
 public:
  static Logger& Instance();

  void SetMinLevel(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  void Log(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  std::mutex mu_;
  LogLevel min_level_ = LogLevel::kWarning;
};

namespace internal {

/// Builds one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define GT_LOG(level)                                            \
  ::graphtides::internal::LogMessage(::graphtides::LogLevel::level, \
                                     __FILE__, __LINE__)

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_LOGGING_H_
