// Minimal command-line flag parsing for the framework's standalone tools
// (generator, replayer, validator, fault injector, analyzer). Flags take
// the form `--name value` or `--name=value`; bare `--name` sets a boolean.
#ifndef GRAPHTIDES_COMMON_FLAGS_H_
#define GRAPHTIDES_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace graphtides {

/// \brief Parsed command line: flag map + positional arguments.
class Flags {
 public:
  /// Parses argv (excluding argv[0]). ParseError on malformed flags.
  static Result<Flags> Parse(int argc, const char* const* argv);
  static Result<Flags> Parse(const std::vector<std::string>& args);

  bool Has(const std::string& name) const { return values_.contains(name); }

  /// Typed accessors with defaults; ParseError if present but malformed.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;
  Result<double> GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of flags that were provided but are not in `known` — for
  /// catching typos.
  std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_FLAGS_H_
