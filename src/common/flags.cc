#include "common/flags.h"

#include "common/string_util.h"

namespace graphtides {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args);
}

Result<Flags> Flags::Parse(const std::vector<std::string>& args) {
  Flags flags;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!StartsWith(arg, "--")) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::ParseError("bare '--' is not a valid flag");
    }
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string name = body.substr(0, eq);
      if (name.empty()) return Status::ParseError("flag with empty name");
      flags.values_[name] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another flag (or absent):
    // then it is a boolean.
    if (i + 1 < args.size() && !StartsWith(args[i + 1], "--")) {
      flags.values_[body] = args[i + 1];
      ++i;
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<int64_t> Flags::GetInt(const std::string& name,
                              int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  Result<int64_t> parsed = ParseInt64(it->second);
  if (!parsed.ok()) {
    return parsed.status().WithContext("flag --" + name);
  }
  return parsed;
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  Result<double> parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return parsed.status().WithContext("flag --" + name);
  }
  return parsed;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::vector<std::string> Flags::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == name) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace graphtides
