#include "common/logging.h"

#include <chrono>
#include <cstdio>

namespace graphtides {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (level < min_level_) return;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%lld.%03lld %s] %s\n",
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), LevelName(level),
               message.c_str());
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << base << ":" << line << " ";
}

LogMessage::~LogMessage() {
  Logger::Instance().Log(level_, stream_.str());
}

}  // namespace internal

}  // namespace graphtides
