// Work-stealing parallel-compute substrate for the CSR batch kernels
// (Table 1 computations) and the snapshot builders that feed them.
//
// Design constraints, in order:
//  1. Bit-determinism at any thread count. Chunk boundaries are derived
//     only from the input (size, degree prefix sums) and fixed constants —
//     never from the thread count — and ParallelReduce folds per-chunk
//     partials in chunk-index order. Running with 1, 2, or 64 threads
//     therefore executes the identical floating-point reduction tree.
//  2. threads == 1 means *inline*: no pool, no queues, no atomics — the
//     sequential path pays nothing for the parallel machinery.
//  3. Exceptions propagate: the first exception thrown by any chunk is
//     rethrown on the calling thread; remaining chunks are skipped.
//
// The pool itself is a lazily-grown set of workers sleeping on a condition
// variable. Each parallel region deals contiguous chunk blocks into
// per-participant deques; owners pop from the front of their own deque and
// idle participants steal from the back of a victim's, so skewed chunks
// (hub vertices) rebalance without a central queue. The calling thread is
// always participant 0 and does its share of the work.
#ifndef GRAPHTIDES_COMMON_PARALLEL_H_
#define GRAPHTIDES_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

namespace graphtides {

/// \brief Work-stealing thread pool. One shared process-global instance
/// (`Global()`) serves all kernels; independent instances can be built for
/// tests. Destruction joins every worker.
class ThreadPool {
 public:
  /// Workers beyond the calling thread; they start immediately. The
  /// global pool starts empty and grows on demand instead.
  explicit ThreadPool(size_t initial_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Currently spawned worker threads (excludes callers).
  size_t workers() const;

  /// Executes `task(i)` for every i in [0, num_tasks) across at most
  /// `max_threads` threads (the calling thread included; 0 = no limit)
  /// and blocks until all complete. Reentrant calls from inside a task
  /// run inline. The first exception any task throws is rethrown here.
  void RunTasks(size_t num_tasks, size_t max_threads,
                const std::function<void(size_t)>& task);

  /// The process-global pool used by ParallelFor/ParallelReduce.
  static ThreadPool& Global();

  /// Overrides the default thread count used when a kernel passes
  /// threads = 0 (auto). 0 restores hardware_concurrency.
  static void SetDefaultThreads(size_t threads);
  static size_t DefaultThreads();

  /// Hard cap on pool size, and thereby on useful `threads` values.
  static constexpr size_t kMaxThreads = 64;

 private:
  struct WorkDeque {
    std::mutex mu;
    std::deque<size_t> tasks;
  };

  struct Job {
    std::vector<std::unique_ptr<WorkDeque>> queues;
    std::atomic<size_t> next_slot{1};  // slot 0 is the calling thread
    std::atomic<size_t> remaining{0};
    std::atomic<size_t> active_helpers{0};
    std::atomic<bool> failed{false};
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::exception_ptr error;  // guarded by done_mu
    const std::function<void(size_t)>* task = nullptr;
  };

  void WorkerLoop();
  void EnsureWorkers(size_t count);
  static bool PopTask(Job& job, size_t slot, size_t* out);
  static void WorkOn(Job& job, size_t slot);

  std::mutex run_mu_;  // one parallel region at a time per pool
  mutable std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  Job* job_ = nullptr;  // guarded by wake_mu_
  uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;  // guarded by wake_mu_ for growth
};

/// 0 = auto: ThreadPool::DefaultThreads().
size_t ResolveThreads(size_t threads);

struct ParallelOptions {
  /// Max threads for this region; 0 = ThreadPool::DefaultThreads(),
  /// 1 = run inline.
  size_t threads = 0;
  /// Minimum items (ParallelFor) or weight (degree-balanced chunking)
  /// per chunk. Part of the deterministic chunk layout — changing it
  /// changes reduction trees, changing `threads` never does.
  size_t grain = 2048;
};

/// Upper bound on chunks per region; a fixed constant so chunk layouts
/// are independent of the machine.
inline constexpr size_t kMaxParallelChunks = 256;

/// [begin, end) split into at most kMaxParallelChunks near-equal chunks of
/// at least `grain` items (except possibly the sole chunk of a small
/// range). Deterministic in the inputs.
std::vector<std::pair<size_t, size_t>> UniformChunks(size_t begin, size_t end,
                                                     size_t grain);

/// Degree-aware chunking: `offsets` is a prefix-sum array (n + 1 entries,
/// CSR-style); vertex v has weight offsets[v+1] - offsets[v] + 1. Returns
/// contiguous vertex ranges of near-equal total weight, so chunks cover
/// similar edge counts even when degrees are heavily skewed.
/// Deterministic in the inputs.
std::vector<std::pair<size_t, size_t>> DegreeBalancedChunks(
    std::span<const size_t> offsets, size_t grain_weight);

/// Runs body(chunk_index, begin, end) over precomputed chunks. With
/// threads <= 1 runs inline in chunk order.
void ParallelForChunks(
    std::span<const std::pair<size_t, size_t>> chunks, size_t threads,
    const std::function<void(size_t, size_t, size_t)>& body);

/// Chunked parallel loop: body(begin, end) over deterministic uniform
/// chunks of [begin, end).
void ParallelFor(size_t begin, size_t end, const ParallelOptions& options,
                 const std::function<void(size_t, size_t)>& body);

/// Chunk-ordered reduction: partials[i] = chunk_fn(chunks[i]) computed in
/// parallel, then folded left-to-right in chunk-index order — the fold
/// tree depends only on the chunk layout, so results are bit-identical at
/// any thread count.
template <typename T, typename ChunkFn, typename FoldFn>
T ParallelReduceChunks(std::span<const std::pair<size_t, size_t>> chunks,
                       size_t threads, T init, const ChunkFn& chunk_fn,
                       const FoldFn& fold) {
  std::vector<T> partials(chunks.size());
  ParallelForChunks(chunks, threads,
                    [&](size_t i, size_t begin, size_t end) {
                      partials[i] = chunk_fn(begin, end);
                    });
  T acc = std::move(init);
  for (T& partial : partials) acc = fold(std::move(acc), std::move(partial));
  return acc;
}

/// ParallelReduceChunks over uniform chunks of [begin, end).
template <typename T, typename ChunkFn, typename FoldFn>
T ParallelReduce(size_t begin, size_t end, const ParallelOptions& options,
                 T init, const ChunkFn& chunk_fn, const FoldFn& fold) {
  const auto chunks = UniformChunks(begin, end, options.grain);
  return ParallelReduceChunks(chunks, options.threads, std::move(init),
                              chunk_fn, fold);
}

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_PARALLEL_H_
