// Result<T>: a value or a Status, in the style of arrow::Result.
#ifndef GRAPHTIDES_COMMON_RESULT_H_
#define GRAPHTIDES_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace graphtides {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Construct from a T (success) or from a Status (failure). Constructing from
/// an OK status is a programming error and is converted to an Internal error.
template <typename T>
class Result {
 public:
  using ValueType = T;

  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error Status; OK() if this Result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Access to the held value. Undefined if !ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<Status, T> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define GT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#define GT_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define GT_ASSIGN_OR_RETURN_CONCAT(a, b) GT_ASSIGN_OR_RETURN_CONCAT_(a, b)
#define GT_ASSIGN_OR_RETURN(lhs, expr) \
  GT_ASSIGN_OR_RETURN_IMPL(            \
      GT_ASSIGN_OR_RETURN_CONCAT(_gt_result_, __COUNTER__), lhs, expr)

}  // namespace graphtides

#endif  // GRAPHTIDES_COMMON_RESULT_H_
