#include "faults/fault_injector.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace graphtides {

std::vector<Event> InjectFaults(const std::vector<Event>& events,
                                const FaultOptions& options,
                                FaultReport* report) {
  Rng rng(options.seed);
  FaultReport local;
  local.input_events = events.size();

  // Pending displaced events: target position -> events due there.
  std::multimap<size_t, Event> displaced;
  std::vector<Event> out;
  out.reserve(events.size());

  auto flush_due = [&](size_t position) {
    auto end = displaced.upper_bound(position);
    for (auto it = displaced.begin(); it != end; ++it) {
      out.push_back(std::move(it->second));
    }
    displaced.erase(displaced.begin(), end);
  };

  for (size_t i = 0; i < events.size(); ++i) {
    flush_due(i);
    const Event& e = events[i];
    const bool protect =
        options.protect_non_graph_events && !IsGraphOp(e.type);
    if (!protect && rng.NextBool(options.drop_probability)) {
      ++local.dropped;
      continue;
    }
    const bool duplicate =
        !protect && rng.NextBool(options.duplicate_probability);
    if (!protect && options.reorder_window > 0 &&
        rng.NextBool(options.reorder_probability)) {
      const size_t shift = 1 + rng.NextBounded(options.reorder_window);
      displaced.emplace(i + shift, e);
      ++local.displaced;
    } else {
      out.push_back(e);
    }
    if (duplicate) {
      out.push_back(e);
      ++local.duplicated;
    }
  }
  // Flush any remaining displaced events in due order.
  for (auto& [pos, event] : displaced) out.push_back(std::move(event));

  local.output_events = out.size();
  if (report != nullptr) *report = local;
  return out;
}

std::vector<Event> ShuffleWindow(std::vector<Event> events, size_t begin,
                                 size_t end, Rng& rng) {
  begin = std::min(begin, events.size());
  end = std::min(end, events.size());
  if (begin >= end) return events;
  for (size_t i = end - 1; i > begin; --i) {
    const size_t j = begin + rng.NextBounded(i - begin + 1);
    std::swap(events[i], events[j]);
  }
  return events;
}

std::string FaultReport::ToString() const {
  std::ostringstream os;
  os << "faults: in=" << input_events << " out=" << output_events
     << " dropped=" << dropped << " duplicated=" << duplicated
     << " displaced=" << displaced;
  return os.str();
}

}  // namespace graphtides
