#include "faults/chaos_sink.h"

#include <chrono>
#include <thread>

namespace graphtides {

ChaosSink::ChaosSink(EventSink* inner, ChaosOptions options,
                     DisconnectFn disconnect)
    : inner_(inner),
      options_(std::move(options)),
      disconnect_(std::move(disconnect)),
      rng_(options_.seed),
      fail_points_(options_.fail_points.begin(), options_.fail_points.end()) {
  sleep_ = [](Duration d) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(d.nanos()));
  };
}

Status ChaosSink::Deliver(const Event& event) {
  const uint64_t attempt = stats_.attempts++;
  // Always draw every fault class, even when a draw earlier in the
  // priority order already fired: a fixed number of draws per attempt
  // keeps the schedule aligned with the attempt index.
  const bool disconnect = rng_.NextBool(options_.disconnect_probability);
  const bool fail = rng_.NextBool(options_.fail_probability);
  const bool stall = rng_.NextBool(options_.stall_probability);
  const bool spike = rng_.NextBool(options_.latency_probability);

  if (disconnect) {
    ++stats_.injected_disconnects;
    if (disconnect_) disconnect_();
    return Status::IoError("chaos: forced disconnect at attempt " +
                           std::to_string(attempt));
  }
  if (fail || fail_points_.contains(attempt)) {
    ++stats_.injected_failures;
    return Status::Unavailable("chaos: injected delivery failure at attempt " +
                               std::to_string(attempt));
  }
  if (stall) {
    ++stats_.stalls;
    stats_.stall_time += options_.stall;
    sleep_(options_.stall);
  } else if (spike) {
    ++stats_.latency_spikes;
    stats_.stall_time += options_.latency;
    sleep_(options_.latency);
  }
  ++stats_.forwarded;
  return inner_->Deliver(event);
}

SinkTelemetry ChaosSink::Telemetry() const {
  SinkTelemetry t = inner_->Telemetry();
  SinkTelemetry own;
  own.injected_failures = stats_.injected_failures;
  own.injected_disconnects = stats_.injected_disconnects;
  own.injected_stalls = stats_.stalls;
  own.injected_latency_spikes = stats_.latency_spikes;
  own.stall_s = stats_.stall_time.seconds();
  return t.Merge(own);
}

}  // namespace graphtides
