// Runtime fault injection (the counterpart of fault_injector.h): instead of
// rewriting the stream a priori (§3.2 "faults as input preprocessing"), a
// ChaosSink degrades *delivery itself* while the replayer runs — transient
// Deliver failures, latency spikes, stalls, and forced transport
// disconnects, all driven by a deterministic seeded schedule. Paired with
// replayer/resilient_sink.h this turns fault tolerance into a runtime,
// measurable dimension: the harness observes how the delivery pipeline and
// the system under test behave *while* misbehaving, which is what the
// paper's evaluation methodology (§4.1, §4.5) demands of a robust harness.
#ifndef GRAPHTIDES_FAULTS_CHAOS_SINK_H_
#define GRAPHTIDES_FAULTS_CHAOS_SINK_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "replayer/event_sink.h"

namespace graphtides {

/// \brief Deterministic schedule of runtime delivery faults.
///
/// Decisions are drawn per *delivery attempt* from a seeded RNG, one draw
/// per fault class, so the decision sequence — and therefore every fault
/// count — is stable under a given seed regardless of wall-clock timing or
/// how an outer retry layer paces the attempts.
struct ChaosOptions {
  uint64_t seed = 1;
  /// Per-attempt probability of a transient delivery failure
  /// (Status::Unavailable; the event is not forwarded).
  double fail_probability = 0.0;
  /// Per-attempt probability of severing the transport via the disconnect
  /// hook and failing the attempt with IoError.
  double disconnect_probability = 0.0;
  /// Per-attempt probability of stalling (sleeping) before forwarding.
  double stall_probability = 0.0;
  Duration stall = Duration::FromMillis(2);
  /// Per-attempt probability of a short latency spike before forwarding.
  double latency_probability = 0.0;
  Duration latency = Duration::FromMicros(100);
  /// Attempt indices (0-based) that always fail, independent of the
  /// probabilities — deterministic fail points for targeted tests.
  std::vector<uint64_t> fail_points;
};

/// \brief What the chaos layer actually injected during a run.
struct ChaosStats {
  uint64_t attempts = 0;
  uint64_t forwarded = 0;
  uint64_t injected_failures = 0;
  uint64_t injected_disconnects = 0;
  uint64_t stalls = 0;
  uint64_t latency_spikes = 0;
  Duration stall_time;
};

/// \brief EventSink decorator that injects runtime delivery faults.
class ChaosSink final : public EventSink {
 public:
  /// Severs the underlying transport (e.g. TcpSink::Sever).
  using DisconnectFn = std::function<void()>;
  using SleepFn = std::function<void(Duration)>;

  ChaosSink(EventSink* inner, ChaosOptions options,
            DisconnectFn disconnect = {});

  /// Replaces the real sleep (test hook; virtual-time harnesses).
  void set_sleep_fn(SleepFn fn) { sleep_ = std::move(fn); }

  Status Deliver(const Event& event) override;
  Status Finish() override { return inner_->Finish(); }
  Status Flush() override { return inner_->Flush(); }
  uint64_t bytes_delivered() const override {
    return inner_->bytes_delivered();
  }
  SinkTelemetry Telemetry() const override;

  const ChaosStats& stats() const { return stats_; }

 private:
  EventSink* inner_;
  ChaosOptions options_;
  DisconnectFn disconnect_;
  SleepFn sleep_;
  Rng rng_;
  std::unordered_set<uint64_t> fail_points_;
  ChaosStats stats_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_FAULTS_CHAOS_SINK_H_
