// A-priori stream fault injection (§3.2 Streaming Properties): the replayer
// itself always delivers an ordered, reliable, exactly-once stream, so
// weaker delivery semantics are modeled by deterministically rewriting the
// input stream *before* a run — dropping events (loss), duplicating events
// (at-least-once), and displacing events within a bounded window
// (reordering).
#ifndef GRAPHTIDES_FAULTS_FAULT_INJECTOR_H_
#define GRAPHTIDES_FAULTS_FAULT_INJECTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "stream/event.h"

namespace graphtides {

struct FaultOptions {
  uint64_t seed = 1;
  /// Per-event probability of being dropped.
  double drop_probability = 0.0;
  /// Per-event probability of being emitted twice (back to back).
  double duplicate_probability = 0.0;
  /// Per-event probability of being displaced.
  double reorder_probability = 0.0;
  /// Maximum forward displacement (in positions) of a reordered event.
  size_t reorder_window = 8;
  /// Keep marker and control events intact: they steer the replayer and
  /// the analysis, not the graph.
  bool protect_non_graph_events = true;
};

struct FaultReport {
  size_t input_events = 0;
  size_t output_events = 0;
  size_t dropped = 0;
  size_t duplicated = 0;
  size_t displaced = 0;

  std::string ToString() const;
};

/// \brief Applies the configured faults; deterministic in `options.seed`.
///
/// Order of application per event: drop, else duplicate, and independently
/// displacement. Displacement pushes the event up to `reorder_window`
/// positions later in the output.
std::vector<Event> InjectFaults(const std::vector<Event>& events,
                                const FaultOptions& options,
                                FaultReport* report = nullptr);

/// \brief Uniformly shuffles the slice [begin, end) of the stream — the
/// paper's "shuffling partial streams". Indices clamp to the stream size.
std::vector<Event> ShuffleWindow(std::vector<Event> events, size_t begin,
                                 size_t end, Rng& rng);

}  // namespace graphtides

#endif  // GRAPHTIDES_FAULTS_FAULT_INJECTOR_H_
