#include "replayer/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace graphtides {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("socket write");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

TcpSink::~TcpSink() {
  if (fd_ >= 0) ::close(fd_);
}

Status TcpSink::Connect(const std::string& host, uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return Errno("connect " + resolved + ":" + std::to_string(port));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  buffer_.reserve(2 * kFlushBytes);
  return Status::OK();
}

Status TcpSink::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  GT_RETURN_NOT_OK(WriteAll(fd_, buffer_.data(), buffer_.size()));
  buffer_.clear();
  return Status::OK();
}

Status TcpSink::Deliver(const Event& event) {
  if (fd_ < 0) return Status::PreconditionFailed("TcpSink not connected");
  buffer_ += event.ToCsvLine();
  buffer_.push_back('\n');
  if (buffer_.size() >= kFlushBytes) return FlushBuffer();
  return Status::OK();
}

Status TcpSink::Finish() {
  if (fd_ < 0) return Status::OK();
  GT_RETURN_NOT_OK(FlushBuffer());
  ::shutdown(fd_, SHUT_WR);
  ::close(fd_);
  fd_ = -1;
  return Status::OK();
}

TcpLineServer::~TcpLineServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (thread_.joinable()) thread_.join();
}

Result<uint16_t> TcpLineServer::Start(LineFn on_line, uint16_t port) {
  on_line_ = std::move(on_line);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 1) != 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  thread_ = std::thread([this] { Serve(); });
  return ntohs(addr.sin_port);
}

void TcpLineServer::Serve() {
  const int conn = ::accept(listen_fd_, nullptr, nullptr);
  if (conn < 0) return;
  std::string pending;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(conn, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client closed
    pending.append(buf, static_cast<size_t>(n));
    size_t start = 0;
    while (true) {
      const size_t nl = pending.find('\n', start);
      if (nl == std::string::npos) break;
      if (on_line_) {
        on_line_(std::string_view(pending).substr(start, nl - start));
      }
      lines_.fetch_add(1, std::memory_order_relaxed);
      start = nl + 1;
    }
    pending.erase(0, start);
  }
  ::close(conn);
}

void TcpLineServer::Join() {
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace graphtides
