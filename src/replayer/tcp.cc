#include "replayer/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/fault_plan.h"

namespace graphtides {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

// MSG_NOSIGNAL: a peer reset must surface as a Status, not a SIGPIPE that
// kills the replayer process mid-run.
Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("socket write");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<int> DialTcp(const std::string& host, uint16_t port,
                    int connect_timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  const std::string where = resolved + ":" + std::to_string(port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  if (connect_timeout_ms <= 0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const Status s = Errno("connect " + where);
      ::close(fd);
      return s;
    }
  } else {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (errno != EINPROGRESS) {
        const Status s = Errno("connect " + where);
        ::close(fd);
        return s;
      }
      pollfd pfd{fd, POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, connect_timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        ::close(fd);
        return Status::Timeout("connect " + where + " timed out after " +
                               std::to_string(connect_timeout_ms) + " ms");
      }
      if (rc < 0) {
        const Status s = Errno("connect poll " + where);
        ::close(fd);
        return s;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        ::close(fd);
        return Status::IoError("connect " + where + ": " +
                               std::strerror(err != 0 ? err : errno));
      }
    }
    // The deadline only governs the dial; delivery keeps the blocking
    // flow-control semantics.
    ::fcntl(fd, F_SETFL, flags);
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

TcpSink::~TcpSink() {
  if (fd_ >= 0) ::close(fd_);
}

Status TcpSink::Dial() {
  Status last = Status::OK();
  for (int attempt = 0; attempt < connect_attempts_; ++attempt) {
    if (attempt > 0) {
      int backoff_ms = 50 * attempt;
      if (backoff_ms > 1000) backoff_ms = 1000;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    Result<int> fd = DialTcp(host_, port_, connect_timeout_ms_);
    if (fd.ok()) {
      fd_ = fd.value();
      buffer_.reserve(2 * kFlushBytes);
      return Status::OK();
    }
    last = fd.status();
    if (last.code() == StatusCode::kInvalidArgument) break;  // not retryable
  }
  fd_ = -1;
  return last;
}

Status TcpSink::Connect(const std::string& host, uint16_t port) {
  host_ = host;
  port_ = port;
  GT_RETURN_NOT_OK(Dial());
  ever_connected_ = true;
  return Status::OK();
}

Status TcpSink::Reconnect() {
  if (!ever_connected_) {
    return Status::PreconditionFailed("TcpSink was never connected");
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  GT_RETURN_NOT_OK(Dial());
  ++reconnects_;
  return Status::OK();
}

void TcpSink::Sever() {
  if (fd_ < 0) return;
  ::shutdown(fd_, SHUT_RDWR);
  ::close(fd_);
  fd_ = -1;
}

void TcpSink::Abort() {
  // shutdown() only — the blocked send() in the owning thread returns with
  // an error at once, and that thread keeps sole responsibility for
  // close(), so an fd recycled by the kernel cannot be shut down by
  // mistake.
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

Status TcpSink::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  // Injected ENOSPC/short-write gate (same contract as PipeSink): the
  // allowed prefix lands on the socket, then the fault latches and every
  // later flush fails with 0 allowed bytes.
  size_t allowed = buffer_.size();
  std::string fault;
  const bool clipped =
      FaultPlan::Global().ClipFileWrite(buffer_.size(), &allowed, &fault);
  const size_t to_write = clipped ? allowed : buffer_.size();
  if (to_write > 0) {
    // On failure the buffer is kept: a retry after Reconnect re-sends it
    // (at-least-once semantics on the fault path).
    GT_RETURN_NOT_OK(WriteAll(fd_, buffer_.data(), to_write));
    bytes_.fetch_add(to_write, std::memory_order_relaxed);
    buffer_.erase(0, to_write);
  }
  if (clipped) return Status::IoError("socket write failed: " + fault);
  return Status::OK();
}

Status TcpSink::Deliver(const Event& event) {
  if (fd_ < 0) return Status::PreconditionFailed("TcpSink not connected");
  if (wire_ == WireFormat::kV2) {
    // Per-event callers on a v2-negotiated connection still produce a
    // valid v2 byte stream: one sealed single-record block per event.
    v2_encoder_.Add(event.type, event.vertex, event.edge, event.payload,
                    event.rate_factor, event.pause);
    v2_encoder_.SealTo(&buffer_);
  } else {
    // Serialize straight into the send buffer — no per-event temporary.
    AppendEventLine(event, &buffer_);
  }
  if (buffer_.size() >= kFlushBytes) return FlushBuffer();
  return Status::OK();
}

Result<WireFormat> TcpSink::NegotiateWireFormat(WireFormat preferred) {
  if (preferred != WireFormat::kV2 || !allow_v2_) return WireFormat::kCsv;
  if (wire_ != WireFormat::kV2) {
    wire_ = WireFormat::kV2;
    // The preamble enters the send buffer like any payload, so it is the
    // first bytes on the wire and survives a pre-flush reconnect.
    AppendV2Preamble(&buffer_);
  }
  return WireFormat::kV2;
}

Status TcpSink::DeliverSerialized(std::string_view lines, size_t count) {
  (void)count;
  if (fd_ < 0) return Status::PreconditionFailed("TcpSink not connected");
  buffer_ += lines;
  if (buffer_.size() >= kFlushBytes) return FlushBuffer();
  return Status::OK();
}

Status TcpSink::Finish() {
  if (fd_ < 0) return Status::OK();
  if (wire_ == WireFormat::kV2 && !sentinel_written_) {
    sentinel_written_ = true;
    AppendV2SentinelBlock(&buffer_);
  }
  GT_RETURN_NOT_OK(FlushBuffer());
  ::shutdown(fd_, SHUT_WR);
  ::close(fd_);
  fd_ = -1;
  return Status::OK();
}

TcpLineServer::~TcpLineServer() {
  if (thread_.joinable()) {
    Stop();
    thread_.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Result<uint16_t> TcpLineServer::Start(LineFn on_line, uint16_t port) {
  on_line_ = std::move(on_line);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 8) != 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { Serve(); });
  return port_;
}

bool TcpLineServer::ServeConnection(int conn) {
  std::string pending;
  char buf[64 * 1024];
  bool keep_accepting = true;
  while (true) {
    const ssize_t n = ::read(conn, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client closed
    pending.append(buf, static_cast<size_t>(n));
    size_t start = 0;
    while (true) {
      const size_t nl = pending.find('\n', start);
      if (nl == std::string::npos) break;
      if (on_line_) {
        on_line_(std::string_view(pending).substr(start, nl - start));
      }
      lines_.fetch_add(1, std::memory_order_relaxed);
      start = nl + 1;
    }
    pending.erase(0, start);
    if (close_after_lines_ != 0 &&
        lines_.load(std::memory_order_relaxed) >= close_after_lines_) {
      // Simulated crash of the measurement process: drop the connection
      // (and stop serving) while the client may still be sending.
      keep_accepting = false;
      break;
    }
  }
  // A final line without a trailing newline still counts: the peer's
  // disconnect terminates it.
  if (!pending.empty()) {
    if (on_line_) on_line_(std::string_view(pending));
    lines_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    ::close(conn);
    conn_fd_ = -1;
  }
  return keep_accepting;
}

void TcpLineServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed) &&
         connections_.load(std::memory_order_relaxed) < max_connections_) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (stop_.load(std::memory_order_relaxed)) {
      ::close(conn);  // wake-up connection from Stop()
      return;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fd_ = conn;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    if (!ServeConnection(conn)) return;
  }
}

void TcpLineServer::Stop() {
  if (stop_.exchange(true)) return;
  // Unblock a connection stuck in read(). shutdown() under the lock, never
  // close() — the server thread owns the close, and closing here could
  // shut down an unrelated recycled fd.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (conn_fd_ >= 0) ::shutdown(conn_fd_, SHUT_RDWR);
  }
  // Wake a blocked accept with a throwaway connection.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  (void)::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  ::close(fd);
}

void TcpLineServer::Join() {
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace graphtides
