// Event sinks: where the replayer delivers the stream. Platform-specific
// connectors (§3.3, §4.1) implement this interface; the framework ships a
// callback sink (in-process SUTs), a pipe/stdio sink, and a TCP sink
// matching the paper's replayer evaluation setups (Table 2).
#ifndef GRAPHTIDES_REPLAYER_EVENT_SINK_H_
#define GRAPHTIDES_REPLAYER_EVENT_SINK_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "harness/telemetry/snapshot.h"
#include "stream/event.h"
#include "stream/v2_format.h"

namespace graphtides {

/// \brief Wire encodings a byte-oriented sink can carry.
///
/// kCsv is '\n'-terminated canonical CSV lines — the interchange/golden
/// format every transport speaks. kV2 is gt-stream-v2 sealed blocks
/// (stream/v2_format.h): preamble on negotiation, blocks per batch,
/// end-of-stream sentinel at Finish.
enum class WireFormat : uint8_t { kCsv = 0, kV2 = 1 };

/// \brief Runtime-fault telemetry accumulated along a sink chain.
///
/// Decorator sinks (faults/ChaosSink, ResilientSink) report what happened
/// on the delivery path during a run; StreamReplayer copies the chain's
/// telemetry into ReplayStats so fault behaviour is measurable end to end
/// (§4.3 streaming metrics, extended to the delivery dimension).
struct SinkTelemetry {
  // Resilience layer (replayer/resilient_sink.h).
  uint64_t retries = 0;
  uint64_t reconnects = 0;
  uint64_t drops_after_retry = 0;
  uint64_t giveups = 0;
  /// Total time spent sleeping in retry backoff, seconds.
  double backoff_s = 0.0;
  // Chaos layer (faults/chaos_sink.h).
  uint64_t injected_failures = 0;
  uint64_t injected_disconnects = 0;
  uint64_t injected_stalls = 0;
  uint64_t injected_latency_spikes = 0;
  /// Total injected stall + latency-spike time, seconds.
  double stall_s = 0.0;

  /// Field-wise sum; used to fold a decorated sink's own counters into its
  /// inner sink's.
  SinkTelemetry& Merge(const SinkTelemetry& other);
  std::string ToString() const;
};

/// Projects sink-chain counters into the live-telemetry schema (injected
/// stalls and latency spikes are already folded into stall_s).
inline DeliveryCounters ToDeliveryCounters(const SinkTelemetry& t) {
  DeliveryCounters c;
  c.retries = t.retries;
  c.reconnects = t.reconnects;
  c.drops_after_retry = t.drops_after_retry;
  c.giveups = t.giveups;
  c.injected_failures = t.injected_failures;
  c.injected_disconnects = t.injected_disconnects;
  c.backoff_s = t.backoff_s;
  c.stall_s = t.stall_s;
  return c;
}

/// \brief Destination for replayed graph events.
///
/// Deliver may block — blocking is the natural backpressure channel (§3.2:
/// "the flow control mechanism of TCP can be used to indicate overload").
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Delivers one graph event. Called from the replayer's emitter thread.
  virtual Status Deliver(const Event& event) = 0;

  /// \brief Delivery tagged with the event's global stream sequence number
  /// (0-based position among the source's graph events).
  ///
  /// The sharded replayer uses this so per-shard capture sinks can merge
  /// their outputs back into total stream order. The default forwards to
  /// Deliver, so ordinary sinks and decorators need not care.
  virtual Status DeliverSequenced(const Event& event, uint64_t seq) {
    (void)seq;
    return Deliver(event);
  }

  /// \brief True when this sink can accept pre-serialized CSV event lines
  /// via DeliverSerialized — the zero-copy fast path for byte-oriented
  /// transports (pipe, TCP). Decorator sinks must NOT advertise support:
  /// the per-event Deliver path is where faults and retries are applied.
  virtual bool SupportsSerialized() const { return false; }

  /// \brief Delivers a batch of `count` events pre-serialized as
  /// '\n'-terminated canonical CSV lines. Only called when
  /// SupportsSerialized() is true.
  virtual Status DeliverSerialized(std::string_view lines, size_t count) {
    (void)lines;
    (void)count;
    return Status::Internal("sink does not support serialized delivery");
  }

  /// \brief Per-sink wire-format negotiation (the pipe/TCP "handshake").
  ///
  /// The replayer offers its preferred wire format once, before any
  /// delivery; the sink answers with what it will actually carry. The
  /// default — and the only answer decorators may give — is kCsv: faults
  /// and retries operate on the per-event path, so anything wrapped stays
  /// on the golden CSV form. A transport that answers kV2 emits the v2
  /// preamble immediately, expects DeliverSerialized batches to be sealed
  /// v2 blocks, and appends the end-of-stream sentinel in Finish().
  virtual Result<WireFormat> NegotiateWireFormat(WireFormat preferred) {
    (void)preferred;
    return WireFormat::kCsv;
  }

  /// Called once after the last event.
  virtual Status Finish() { return Status::OK(); }

  /// \brief Pushes buffered bytes to the OS. The replayer calls this
  /// before recording a checkpoint so a crash immediately after cannot
  /// lose output the checkpoint counts as delivered. Unbuffered sinks
  /// need not override.
  virtual Status Flush() { return Status::OK(); }

  /// \brief Cumulative payload bytes this sink has accepted (0 when the
  /// transport does not account bytes). Decorators forward to their inner
  /// sink. With Flush(), this is what checkpoint `sink_bytes` records.
  virtual uint64_t bytes_delivered() const { return 0; }

  /// Fault telemetry for this sink and everything it wraps. Plain
  /// transports report nothing.
  virtual SinkTelemetry Telemetry() const { return {}; }
};

/// \brief Invokes a user function per event (in-process connector).
class CallbackSink final : public EventSink {
 public:
  explicit CallbackSink(std::function<Status(const Event&)> fn)
      : fn_(std::move(fn)) {}

  Status Deliver(const Event& event) override { return fn_(event); }

 private:
  std::function<Status(const Event&)> fn_;
};

/// \brief Writes CSV event lines to a stdio stream (e.g. stdout for the
/// Table 2 "Pipe: STDOUT to STDIN" setup). Does not own the FILE*.
class PipeSink final : public EventSink {
 public:
  explicit PipeSink(std::FILE* out) : out_(out) {}

  /// Opt-in to v2 wire delivery: a later NegotiateWireFormat(kV2) is
  /// answered with kV2 (without this call the answer stays kCsv). Call
  /// before the replayer starts.
  void EnableV2Wire() { allow_v2_ = true; }

  Status Deliver(const Event& event) override;
  /// One fwrite for the whole batch. stdio locks the FILE internally, so
  /// several shard lanes may share one FILE* and lines stay whole.
  bool SupportsSerialized() const override { return true; }
  Status DeliverSerialized(std::string_view lines, size_t count) override;
  Result<WireFormat> NegotiateWireFormat(WireFormat preferred) override;
  Status Finish() override;
  Status Flush() override;
  uint64_t bytes_delivered() const override {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  /// Writes `data` through the FaultPlan write gate: an armed ENOSPC or
  /// short-write fault clips the write and returns IoError after the
  /// allowed prefix hit the stream.
  Status WriteBytes(std::string_view data);

  std::FILE* out_;
  std::string line_buf_;  // reused across Deliver calls
  std::atomic<uint64_t> bytes_{0};
  bool allow_v2_ = false;
  WireFormat wire_ = WireFormat::kCsv;
  bool sentinel_written_ = false;
  V2BlockEncoder v2_encoder_;  // per-event fallback when wire_ is kV2
};

/// \brief Discards events (replayer self-benchmarking).
class NullSink final : public EventSink {
 public:
  Status Deliver(const Event&) override { return Status::OK(); }
};

}  // namespace graphtides

#endif  // GRAPHTIDES_REPLAYER_EVENT_SINK_H_
