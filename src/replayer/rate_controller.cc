#include "replayer/rate_controller.h"

#include <cassert>
#include <thread>

namespace graphtides {

RateController::RateController(double base_rate_eps, const Clock* clock)
    : base_rate_eps_(base_rate_eps), clock_(clock) {
  assert(base_rate_eps > 0.0);
}

void RateController::SetFactor(double factor) {
  if (factor <= 0.0) return;
  factor_ = factor;
}

void RateController::Defer(Duration pause) { pending_defer_ += pause; }

Timestamp RateController::NextDeadline() {
  Timestamp deadline;
  if (!started_) {
    deadline = clock_->Now() + pending_defer_;
    started_ = true;
  } else {
    // The interval is evaluated now, so SET_RATE applies to the very next
    // emission.
    deadline = prev_deadline_ + Interval() + pending_defer_;
  }
  pending_defer_ = Duration::Zero();
  prev_deadline_ = deadline;
  return deadline;
}

Timestamp RateController::WaitForNextSlot() {
  const Timestamp deadline = NextDeadline();
  // Two-stage wait: yield while far from the deadline, spin when close.
  // Yielding keeps the reader thread runnable on loaded machines; the final
  // busy-wait gives microsecond-precision release times.
  constexpr Duration kSpinWindow = Duration::FromMicros(50);
  while (true) {
    const Timestamp now = clock_->Now();
    if (now >= deadline) break;
    if (deadline - now > kSpinWindow) {
      std::this_thread::yield();
    }
    // else: pure busy-wait
  }
  return deadline;
}

Duration RateController::Lag() const {
  if (!started_) return Duration::Zero();
  const Timestamp upcoming = prev_deadline_ + Interval() + pending_defer_;
  const Timestamp now = clock_->Now();
  return now >= upcoming ? now - upcoming : Duration::Zero();
}

}  // namespace graphtides
