#include "replayer/rate_controller.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <thread>

namespace graphtides {

RateController::RateController(double base_rate_eps, const Clock* clock)
    : base_rate_eps_(base_rate_eps), clock_(clock) {
  assert(base_rate_eps > 0.0);
}

void RateController::SetFactor(double factor) {
  if (factor <= 0.0) return;
  // Re-anchor so the new interval applies from the previous deadline:
  // SET_RATE takes effect on the very next emission, and the fractional
  // schedule restarts cleanly at the rate-change point.
  if (started_) {
    anchor_ = prev_deadline_;
    events_since_anchor_ = 0;
  }
  factor_ = factor;
}

void RateController::Retarget(double rate_eps) {
  if (rate_eps <= 0.0) return;
  if (started_) {
    // No burst catch-up: when emission lags, prev_deadline_ is in the
    // past; anchoring there would schedule the first new-rate deadlines
    // in the past too and the emitter would blast through them. The last
    // observed clock value is the latest instant proven to have passed —
    // anchoring at whichever is later keeps an ahead-of-schedule run
    // seamless (anchor = prev deadline, exactly like SetFactor) and turns
    // a lagging run into "resume at the new rate from now".
    anchor_ = std::max(prev_deadline_, observed_now_);
    prev_deadline_ = anchor_;
    events_since_anchor_ = 0;
  }
  base_rate_eps_ = rate_eps;
  factor_ = 1.0;
}

void RateController::Defer(Duration pause) { pending_defer_ += pause; }

Timestamp RateController::NextDeadline() {
  Timestamp deadline;
  if (!started_) {
    observed_now_ = clock_->Now();
    deadline = observed_now_ + pending_defer_;
    anchor_ = deadline;
    events_since_anchor_ = 0;
    started_ = true;
  } else {
    ++events_since_anchor_;
    deadline = anchor_ +
               Duration::FromNanos(static_cast<int64_t>(std::llround(
                   static_cast<double>(events_since_anchor_) *
                   IntervalNanos()))) +
               pending_defer_;
    if (pending_defer_ != Duration::Zero()) {
      // A pause shifts the whole schedule; restart the fractional count at
      // the deferred deadline.
      anchor_ = deadline;
      events_since_anchor_ = 0;
    }
  }
  pending_defer_ = Duration::Zero();
  prev_deadline_ = deadline;
  return deadline;
}

Timestamp RateController::WaitForNextSlot() {
  const Timestamp deadline = NextDeadline();
  // Lag fast path: time already observed at/past the deadline means the
  // slot is open — no clock read. When replay runs behind schedule this
  // releases whole stretches of slots off one observation (~35 ns per
  // steady_clock read saved per event on a typical VM).
  if (observed_now_ >= deadline) return deadline;
  // Two-stage wait: yield while far from the deadline, spin when close.
  // Yielding keeps the reader thread runnable on loaded machines; the final
  // busy-wait gives microsecond-precision release times.
  constexpr Duration kSpinWindow = Duration::FromMicros(50);
  while (true) {
    const Timestamp now = clock_->Now();
    observed_now_ = now;
    if (now >= deadline) break;
    if (deadline - now > kSpinWindow) {
      std::this_thread::yield();
    }
    // else: pure busy-wait
  }
  return deadline;
}

Duration RateController::Lag() const {
  if (!started_) return Duration::Zero();
  const Timestamp upcoming =
      anchor_ +
      Duration::FromNanos(static_cast<int64_t>(
          std::llround(static_cast<double>(events_since_anchor_ + 1) *
                       IntervalNanos()))) +
      pending_defer_;
  const Timestamp now = clock_->Now();
  return now >= upcoming ? now - upcoming : Duration::Zero();
}

}  // namespace graphtides
