#include "replayer/replayer.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "replayer/spsc_queue.h"
#include "stream/stream_file.h"

namespace graphtides {

Result<ReplayStats> StreamReplayer::Replay(const std::vector<Event>& events,
                                           EventSink* sink) {
  size_t index = 0;
  return Run(
      [&events, index]() mutable -> Result<std::optional<Event>> {
        if (index >= events.size()) return std::optional<Event>(std::nullopt);
        return std::optional<Event>(events[index++]);
      },
      sink);
}

Result<ReplayStats> StreamReplayer::ReplayFile(const std::string& path,
                                               EventSink* sink) {
  auto reader = std::make_shared<StreamFileReader>();
  GT_RETURN_NOT_OK(reader->Open(path));
  return Run([reader]() { return reader->Next(); }, sink);
}

Result<ReplayStats> StreamReplayer::Run(const SourceFn& source,
                                        EventSink* sink) {
  SpscQueue<Event> queue(options_.queue_capacity);
  std::atomic<bool> reader_done{false};
  std::atomic<bool> abort{false};
  Status reader_status;  // written by reader thread before reader_done

  std::thread reader([&] {
    while (!abort.load(std::memory_order_relaxed)) {
      Result<std::optional<Event>> next = source();
      if (!next.ok()) {
        reader_status = next.status();
        break;
      }
      if (!next->has_value()) break;  // end of stream
      Event event = std::move(**next);
      while (!queue.TryPush(std::move(event))) {
        if (abort.load(std::memory_order_relaxed)) {
          reader_done.store(true, std::memory_order_release);
          return;
        }
        std::this_thread::yield();
      }
    }
    reader_done.store(true, std::memory_order_release);
  });

  MonotonicClock clock;
  RateController rate(options_.base_rate_eps, &clock);
  ReplayStats stats;
  stats.started = clock.Now();

  Timestamp bin_start = stats.started;
  size_t bin_count = 0;
  auto roll_bins = [&](Timestamp now) {
    while (now - bin_start >= options_.stats_bin) {
      stats.rate_series.push_back({bin_start, bin_count});
      bin_start = bin_start + options_.stats_bin;
      bin_count = 0;
    }
  };

  Status emit_status;
  while (true) {
    std::optional<Event> popped = queue.TryPop();
    if (!popped.has_value()) {
      if (reader_done.load(std::memory_order_acquire)) {
        // Drain anything pushed between the failed pop and the flag read.
        popped = queue.TryPop();
        if (!popped.has_value()) break;
      } else {
        std::this_thread::yield();
        continue;
      }
    }
    const Event& event = *popped;

    if (IsControl(event.type)) {
      ++stats.controls;
      if (options_.honor_control_events) {
        if (event.type == EventType::kSetRate) {
          rate.SetFactor(event.rate_factor);
        } else {
          rate.Defer(event.pause);
        }
      }
      continue;
    }
    if (event.type == EventType::kMarker) {
      ++stats.markers;
      stats.marker_log.push_back(
          {event.payload, clock.Now(), stats.events_delivered});
      continue;
    }

    const Timestamp slot = rate.WaitForNextSlot();
    emit_status = sink->Deliver(event);
    if (!emit_status.ok()) {
      abort.store(true, std::memory_order_relaxed);
      break;
    }
    ++stats.events_delivered;
    stats.lag_us.push_back((clock.Now() - slot).seconds() * 1e6);
    roll_bins(slot);
    ++bin_count;
  }

  reader.join();
  stats.finished = clock.Now();
  if (bin_count > 0) stats.rate_series.push_back({bin_start, bin_count});

  if (!emit_status.ok()) return emit_status.WithContext("sink delivery");
  if (!reader_status.ok()) return reader_status.WithContext("stream source");
  GT_RETURN_NOT_OK(sink->Finish());
  stats.telemetry = sink->Telemetry();
  return stats;
}

}  // namespace graphtides
