#include "replayer/replayer.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "common/fault_plan.h"
#include "replayer/spsc_queue.h"
#include "stream/stream_file.h"
#include "stream/v2_format.h"
#include "stream/v2_reader.h"

namespace graphtides {

Result<ReplayStats> StreamReplayer::Replay(const std::vector<Event>& events,
                                           EventSink* sink,
                                           const ReplayCheckpoint* resume) {
  size_t index = 0;
  return Run(
      [&events, index]() mutable -> Result<std::optional<Event>> {
        if (index >= events.size()) return std::optional<Event>(std::nullopt);
        return std::optional<Event>(events[index++]);
      },
      sink, resume);
}

Result<ReplayStats> StreamReplayer::ReplayFile(const std::string& path,
                                               EventSink* sink,
                                               const ReplayCheckpoint* resume) {
  // Auto-detect by magic: v2 streams decode through the block reader,
  // anything else parses as CSV. Both sources feed the same Run(), so
  // replay semantics are format-independent.
  GT_ASSIGN_OR_RETURN(const StreamFormat format, DetectStreamFormat(path));
  if (format == StreamFormat::kV2) {
    auto reader = std::make_shared<V2StreamReader>();
    GT_RETURN_NOT_OK(reader->Open(path));
    return Run(
        [reader]() -> Result<std::optional<Event>> {
          GT_ASSIGN_OR_RETURN(const std::optional<EventView> view,
                              reader->Next());
          if (!view.has_value()) return std::optional<Event>(std::nullopt);
          return std::optional<Event>(view->Materialize());
        },
        sink, resume);
  }
  auto reader = std::make_shared<StreamFileReader>();
  GT_RETURN_NOT_OK(reader->Open(path));
  return Run([reader]() { return reader->Next(); }, sink, resume);
}

Result<ReplayStats> StreamReplayer::Run(const SourceFn& source,
                                        EventSink* sink,
                                        const ReplayCheckpoint* resume) {
  if (options_.checkpoint_every > 0 && options_.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "checkpoint_every requires checkpoint_path");
  }
  const uint64_t skip_entries = resume ? resume->entries_consumed : 0;

  RunTelemetry* const telem =
      kTelemetryCompiled ? options_.telemetry : nullptr;
  const size_t tshard = options_.telemetry_shard;

  SpscQueue<Event> queue(options_.queue_capacity);
  std::atomic<bool> reader_done{false};
  std::atomic<bool> abort{false};
  Status reader_status;  // written by reader thread before reader_done

  std::thread reader([&] {
    // Resume: fast-forward over the entries a previous segment already
    // emitted. Every source entry counts (graph + marker + control);
    // blank/comment lines never reach the source interface.
    uint64_t to_skip = skip_entries;
    MonotonicClock read_clock;
    uint32_t read_tick = 0;
    while (!abort.load(std::memory_order_relaxed)) {
      // Read-stage span, sampled 1-in-N: how long the source parse/pull
      // takes (RecordStage is internally locked, so the reader thread may
      // share the emitter's slot).
      const bool sample_read =
          telem != nullptr && ++read_tick % telem->sample_every() == 0;
      const Timestamp read_start =
          sample_read ? read_clock.Now() : Timestamp{};
      Result<std::optional<Event>> next = source();
      if (sample_read) {
        telem->RecordStage(tshard, ReplayStage::kRead,
                           read_clock.Now() - read_start);
      }
      if (!next.ok()) {
        reader_status = next.status();
        break;
      }
      if (!next->has_value()) {  // end of stream
        if (to_skip > 0) {
          reader_status = Status::InvalidArgument(
              "resume checkpoint lies beyond the end of the stream (" +
              std::to_string(to_skip) + " entries short)");
        }
        break;
      }
      if (to_skip > 0) {
        --to_skip;
        continue;
      }
      Event event = std::move(**next);
      while (!queue.TryPush(std::move(event))) {
        if (abort.load(std::memory_order_relaxed)) {
          reader_done.store(true, std::memory_order_release);
          return;
        }
        std::this_thread::yield();
      }
    }
    reader_done.store(true, std::memory_order_release);
  });

  MonotonicClock clock;
  RateController rate(options_.base_rate_eps, &clock);
  double rate_target = options_.base_rate_eps;
  ReplayStats stats;
  if (resume != nullptr) {
    stats.events_delivered = resume->events_delivered;
    stats.markers = resume->markers;
    stats.controls = resume->controls;
    if (options_.honor_control_events) rate.SetFactor(resume->rate_factor);
    if (options_.checkpoint_rng != nullptr) {
      options_.checkpoint_rng->RestoreState(resume->rng_state);
    }
  }
  // Resume baseline: a resumed run uses a fresh sink chain whose own
  // counters start at zero, so the checkpointed telemetry is added back in.
  const SinkTelemetry telemetry_base =
      resume != nullptr ? resume->telemetry : SinkTelemetry{};
  progress_.store(stats.events_delivered, std::memory_order_relaxed);
  uint64_t entries = skip_entries;
  const uint64_t stop_at = options_.stop_after_events > 0
                               ? stats.events_delivered +
                                     options_.stop_after_events
                               : 0;
  stats.started = clock.Now();

  Timestamp bin_start = stats.started;
  size_t bin_count = 0;
  auto roll_bins = [&](Timestamp now) {
    while (now - bin_start >= options_.stats_bin) {
      stats.rate_series.push_back({bin_start, bin_count});
      bin_start = bin_start + options_.stats_bin;
      bin_count = 0;
    }
  };

  auto current_telemetry = [&] {
    SinkTelemetry t = telemetry_base;
    t.Merge(sink->Telemetry());
    return t;
  };
  // Byte offset the sink chain had already flushed when this segment
  // resumed; the checkpoint records cumulative offsets across segments.
  const uint64_t sink_bytes_base =
      resume != nullptr && !resume->sink_bytes.empty() ? resume->sink_bytes[0]
                                                       : 0;
  const CheckpointStore store(
      {options_.checkpoint_path,
       std::max<size_t>(1, options_.checkpoint_generations)});
  Status checkpoint_status;
  auto write_checkpoint = [&]() -> bool {
    if (options_.checkpoint_path.empty()) return true;
    ReplayCheckpoint cp;
    cp.entries_consumed = entries;
    cp.events_delivered = stats.events_delivered;
    cp.markers = stats.markers;
    cp.controls = stats.controls;
    cp.rate_factor = rate.factor();
    if (options_.checkpoint_rng != nullptr) {
      cp.rng_state = options_.checkpoint_rng->SaveState();
    }
    cp.telemetry = current_telemetry();
    if (options_.record_sink_bytes) {
      // Flush before recording: a crash right after this checkpoint must
      // not be able to lose bytes the record counts as delivered.
      checkpoint_status = sink->Flush();
      if (!checkpoint_status.ok()) return false;
      cp.sink_bytes = {sink_bytes_base + sink->bytes_delivered()};
    }
    checkpoint_status = store.Save(cp);
    if (checkpoint_status.ok()) ++stats.checkpoints_written;
    return checkpoint_status.ok();
  };

  Status emit_status;
  bool cancelled = false;
  bool stopped = false;
  while (true) {
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      cancelled = true;
      break;
    }
    std::optional<Event> popped = queue.TryPop();
    if (!popped.has_value()) {
      if (reader_done.load(std::memory_order_acquire)) {
        // Drain anything pushed between the failed pop and the flag read.
        popped = queue.TryPop();
        if (!popped.has_value()) break;
      } else {
        std::this_thread::yield();
        continue;
      }
    }
    const Event& event = *popped;
    ++entries;

    if (IsControl(event.type)) {
      ++stats.controls;
      if (options_.honor_control_events) {
        if (event.type == EventType::kSetRate) {
          rate.SetFactor(event.rate_factor);
        } else {
          rate.Defer(event.pause);
        }
      }
      continue;
    }
    if (event.type == EventType::kMarker) {
      ++stats.markers;
      const Timestamp now = clock.Now();
      stats.marker_log.push_back({event.payload, now, stats.events_delivered});
      if (telem != nullptr) telem->markers().MarkerSent(event.payload, now);
      continue;
    }

    if (options_.rate_target_eps != nullptr) {
      const double target =
          options_.rate_target_eps->load(std::memory_order_relaxed);
      if (target > 0.0 && target != rate_target) {
        rate.Retarget(target);
        rate_target = target;
      }
    }

    // Sampled per-stage spans: the decision is made once per event, then
    // every stage of that event is timed (throttle -> deliver -> ack).
    const bool sampled = telem != nullptr && telem->ShouldSample(tshard);
    const Timestamp span_start = sampled ? clock.Now() : Timestamp{};
    const Timestamp slot = rate.WaitForNextSlot();
    Timestamp deliver_start;
    if (sampled) {
      deliver_start = clock.Now();
      telem->RecordStage(tshard, ReplayStage::kThrottle,
                         deliver_start - span_start);
    }
    emit_status = sink->Deliver(event);
    Timestamp ack_start;
    if (sampled) {
      ack_start = clock.Now();
      telem->RecordStage(tshard, ReplayStage::kDeliver,
                         ack_start - deliver_start);
    }
    if (!emit_status.ok()) {
      break;
    }
    // Crash window: the sink acknowledged the event, the accounting has
    // not seen it yet. A resume must not re-deliver it past a flushed
    // checkpoint (resume truncation handles the unflushed tail).
    FaultPlan::Global().Hit(kCrashPostDelivery);
    ++stats.events_delivered;
    progress_.store(stats.events_delivered, std::memory_order_relaxed);
    stats.lag.Record(clock.Now() - slot);
    roll_bins(slot);
    ++bin_count;
    if (telem != nullptr) {
      telem->AddDelivered(tshard, 1);
      if (sampled) {
        telem->UpdateDeliveryCounters(tshard,
                                      ToDeliveryCounters(current_telemetry()));
        telem->RecordStage(tshard, ReplayStage::kAck, clock.Now() - ack_start);
      }
    }
    if (options_.checkpoint_every > 0 &&
        stats.events_delivered % options_.checkpoint_every == 0 &&
        !write_checkpoint()) {
      break;
    }
    if (stop_at != 0 && stats.events_delivered >= stop_at) {
      stopped = true;
      break;
    }
  }

  abort.store(true, std::memory_order_relaxed);
  reader.join();
  stats.finished = clock.Now();
  if (bin_count > 0) stats.rate_series.push_back({bin_start, bin_count});
  stats.entries_consumed = entries;

  if (cancelled || stopped) {
    // Clean abort: flush the sink so every delivered event is durable,
    // then record the exact abort point — the resumed segment starts
    // where this one verifiably ended (exactly-once across the boundary).
    const Status finish_status = sink->Finish();
    stats.telemetry = current_telemetry();
    if (telem != nullptr) {
      telem->UpdateDeliveryCounters(tshard,
                                    ToDeliveryCounters(stats.telemetry));
    }
    write_checkpoint();
    stats.stopped_early = true;
    if (cancelled) {
      const std::string reason = options_.cancel->reason();
      return Status::Cancelled(reason.empty() ? "replay cancelled" : reason);
    }
    GT_RETURN_NOT_OK(checkpoint_status.WithContext("final checkpoint"));
    GT_RETURN_NOT_OK(finish_status.WithContext("sink finish"));
    return stats;
  }

  if (!emit_status.ok()) return emit_status.WithContext("sink delivery");
  if (!checkpoint_status.ok()) {
    return checkpoint_status.WithContext("periodic checkpoint");
  }
  if (!reader_status.ok()) return reader_status.WithContext("stream source");
  GT_RETURN_NOT_OK(sink->Finish());
  stats.telemetry = current_telemetry();
  if (telem != nullptr) {
    telem->UpdateDeliveryCounters(tshard, ToDeliveryCounters(stats.telemetry));
  }
  if (options_.checkpoint_every > 0 && !write_checkpoint()) {
    return checkpoint_status.WithContext("final checkpoint");
  }
  return stats;
}

}  // namespace graphtides
