// Bounded single-producer/single-consumer queue used to decouple stream
// reading from paced emission (§5.1: "We use a multi-threaded design to
// decouple both tasks and to ensure high throughput").
#ifndef GRAPHTIDES_REPLAYER_SPSC_QUEUE_H_
#define GRAPHTIDES_REPLAYER_SPSC_QUEUE_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace graphtides {

/// \brief Lock-free bounded SPSC ring buffer.
///
/// Exactly one producer thread may call TryPush and exactly one consumer
/// thread may call TryPop. Capacity is rounded up to a power of two.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  /// \brief Non-blocking push; false when full.
  ///
  /// The rvalue overload consumes `value` only on success, so a failed push
  /// leaves it intact for the retry — by-value would move into the doomed
  /// parameter and silently gut the payload on a full queue.
  bool TryPush(T&& value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;  // full
    buffer_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool TryPush(const T& value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;  // full
    buffer_[head & mask_] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking pop; nullopt when empty.
  std::optional<T> TryPop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;  // empty
    T value = std::move(buffer_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  size_t capacity() const { return mask_ + 1; }

  /// Approximate size (safe to call from either thread).
  size_t SizeApprox() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> buffer_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace graphtides

#endif  // GRAPHTIDES_REPLAYER_SPSC_QUEUE_H_
