#include "replayer/event_sink.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/fault_plan.h"

namespace graphtides {

SinkTelemetry& SinkTelemetry::Merge(const SinkTelemetry& other) {
  retries += other.retries;
  reconnects += other.reconnects;
  drops_after_retry += other.drops_after_retry;
  giveups += other.giveups;
  backoff_s += other.backoff_s;
  injected_failures += other.injected_failures;
  injected_disconnects += other.injected_disconnects;
  injected_stalls += other.injected_stalls;
  injected_latency_spikes += other.injected_latency_spikes;
  stall_s += other.stall_s;
  return *this;
}

std::string SinkTelemetry::ToString() const {
  std::ostringstream os;
  os << "retries=" << retries << " reconnects=" << reconnects
     << " drops=" << drops_after_retry << " giveups=" << giveups
     << " backoff_s=" << backoff_s << " injected_failures=" << injected_failures
     << " injected_disconnects=" << injected_disconnects
     << " injected_stalls=" << injected_stalls
     << " injected_latency_spikes=" << injected_latency_spikes
     << " stall_s=" << stall_s;
  return os.str();
}

Status PipeSink::WriteBytes(std::string_view data) {
  if (data.empty()) return Status::OK();
  size_t allowed = data.size();
  std::string fault;
  const bool clipped =
      FaultPlan::Global().ClipFileWrite(data.size(), &allowed, &fault);
  const std::string_view to_write = clipped ? data.substr(0, allowed) : data;
  if (!to_write.empty()) {
    if (std::fwrite(to_write.data(), 1, to_write.size(), out_) !=
        to_write.size()) {
      return Status::IoError(std::string("pipe write failed: ") +
                             std::strerror(errno));
    }
    bytes_.fetch_add(to_write.size(), std::memory_order_relaxed);
  }
  if (clipped) return Status::IoError("pipe write failed: " + fault);
  return Status::OK();
}

Status PipeSink::Deliver(const Event& event) {
  line_buf_.clear();
  if (wire_ == WireFormat::kV2) {
    // Per-event callers on a v2-negotiated stream still produce a valid
    // v2 byte stream: one sealed single-record block per event. Batched
    // callers use DeliverSerialized with replayer-sealed blocks instead.
    v2_encoder_.Add(event.type, event.vertex, event.edge, event.payload,
                    event.rate_factor, event.pause);
    v2_encoder_.SealTo(&line_buf_);
  } else {
    // Reused line buffer + to_chars formatting; one fwrite per event.
    AppendEventLine(event, &line_buf_);
  }
  return WriteBytes(line_buf_);
}

Status PipeSink::DeliverSerialized(std::string_view lines, size_t count) {
  (void)count;
  return WriteBytes(lines);
}

Result<WireFormat> PipeSink::NegotiateWireFormat(WireFormat preferred) {
  if (preferred != WireFormat::kV2 || !allow_v2_) return WireFormat::kCsv;
  if (wire_ != WireFormat::kV2) {
    wire_ = WireFormat::kV2;
    std::string preamble;
    AppendV2Preamble(&preamble);
    GT_RETURN_NOT_OK(WriteBytes(preamble));
  }
  return WireFormat::kV2;
}

Status PipeSink::Finish() {
  if (wire_ == WireFormat::kV2 && !sentinel_written_) {
    sentinel_written_ = true;
    std::string sentinel;
    AppendV2SentinelBlock(&sentinel);
    GT_RETURN_NOT_OK(WriteBytes(sentinel));
  }
  return Flush();
}

Status PipeSink::Flush() {
  if (std::fflush(out_) != 0) {
    return Status::IoError(std::string("pipe flush failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace graphtides
