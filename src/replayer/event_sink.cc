#include "replayer/event_sink.h"

#include <cerrno>
#include <cstring>

namespace graphtides {

Status PipeSink::Deliver(const Event& event) {
  const std::string line = event.ToCsvLine();
  if (std::fwrite(line.data(), 1, line.size(), out_) != line.size() ||
      std::fputc('\n', out_) == EOF) {
    return Status::IoError(std::string("pipe write failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status PipeSink::Finish() {
  if (std::fflush(out_) != 0) {
    return Status::IoError(std::string("pipe flush failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace graphtides
