#include "replayer/event_sink.h"

#include <cerrno>
#include <cstring>
#include <sstream>

namespace graphtides {

SinkTelemetry& SinkTelemetry::Merge(const SinkTelemetry& other) {
  retries += other.retries;
  reconnects += other.reconnects;
  drops_after_retry += other.drops_after_retry;
  giveups += other.giveups;
  backoff_s += other.backoff_s;
  injected_failures += other.injected_failures;
  injected_disconnects += other.injected_disconnects;
  injected_stalls += other.injected_stalls;
  injected_latency_spikes += other.injected_latency_spikes;
  stall_s += other.stall_s;
  return *this;
}

std::string SinkTelemetry::ToString() const {
  std::ostringstream os;
  os << "retries=" << retries << " reconnects=" << reconnects
     << " drops=" << drops_after_retry << " giveups=" << giveups
     << " backoff_s=" << backoff_s << " injected_failures=" << injected_failures
     << " injected_disconnects=" << injected_disconnects
     << " injected_stalls=" << injected_stalls
     << " injected_latency_spikes=" << injected_latency_spikes
     << " stall_s=" << stall_s;
  return os.str();
}

Status PipeSink::Deliver(const Event& event) {
  // Reused line buffer + to_chars formatting; one fwrite per event.
  line_buf_.clear();
  AppendEventLine(event, &line_buf_);
  if (std::fwrite(line_buf_.data(), 1, line_buf_.size(), out_) !=
      line_buf_.size()) {
    return Status::IoError(std::string("pipe write failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status PipeSink::DeliverSerialized(std::string_view lines, size_t count) {
  (void)count;
  if (lines.empty()) return Status::OK();
  if (std::fwrite(lines.data(), 1, lines.size(), out_) != lines.size()) {
    return Status::IoError(std::string("pipe write failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status PipeSink::Finish() {
  if (std::fflush(out_) != 0) {
    return Status::IoError(std::string("pipe flush failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace graphtides
