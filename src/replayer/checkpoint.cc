#include "replayer/checkpoint.h"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/crc32.h"
#include "common/fault_plan.h"
#include "common/string_util.h"

namespace graphtides {

namespace {

constexpr std::string_view kHeader = "# graphtides replay checkpoint";
constexpr std::string_view kCrcKey = "crc32";
// A resume never spans more lanes than this; bounds the sink_bytes vector
// a hostile or corrupt record could ask us to allocate.
constexpr uint64_t kMaxSinkShards = 4096;

std::string FormatDoubleExact(double v) {
  // %.17g round-trips every double, so resume pacing is bit-identical.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string ErrnoText(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoText("checkpoint write failure:", path));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// fsyncs the directory containing `path`, so the rename that published a
/// checkpoint is itself durable (a crash cannot resurrect the old name).
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(ErrnoText("cannot open checkpoint directory", dir));
  }
  Status st;
  if (::fsync(fd) != 0) {
    st = Status::IoError(ErrnoText("directory fsync failed:", dir));
  }
  ::close(fd);
  return st;
}

Result<uint32_t> ParseHex32(std::string_view s) {
  uint32_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, 16);
  if (ec != std::errc() || ptr != end || s.empty()) {
    return Status::ParseError("bad crc32 value '" + std::string(s) + "'");
  }
  return value;
}

}  // namespace

bool ReplayCheckpoint::operator==(const ReplayCheckpoint& other) const {
  const SinkTelemetry& a = telemetry;
  const SinkTelemetry& b = other.telemetry;
  return version == other.version &&
         entries_consumed == other.entries_consumed &&
         events_delivered == other.events_delivered &&
         local_events == other.local_events &&
         markers == other.markers && controls == other.controls &&
         rate_factor == other.rate_factor && rng_state == other.rng_state &&
         sink_bytes == other.sink_bytes && a.retries == b.retries &&
         a.reconnects == b.reconnects &&
         a.drops_after_retry == b.drops_after_retry &&
         a.giveups == b.giveups && a.backoff_s == b.backoff_s &&
         a.injected_failures == b.injected_failures &&
         a.injected_disconnects == b.injected_disconnects &&
         a.injected_stalls == b.injected_stalls &&
         a.injected_latency_spikes == b.injected_latency_spikes &&
         a.stall_s == b.stall_s;
}

std::string ReplayCheckpoint::ToText() const {
  std::string out(kHeader);
  out += "\nversion=" + std::to_string(version);
  out += "\nentries_consumed=" + std::to_string(entries_consumed);
  out += "\nevents_delivered=" + std::to_string(events_delivered);
  // Emitted only by distributed shard-range writers; older readers skip
  // the unknown key (it still sits under the crc).
  if (local_events != 0) {
    out += "\nlocal_events=" + std::to_string(local_events);
  }
  out += "\nmarkers=" + std::to_string(markers);
  out += "\ncontrols=" + std::to_string(controls);
  out += "\nrate_factor=" + FormatDoubleExact(rate_factor);
  for (size_t i = 0; i < rng_state.size(); ++i) {
    out += "\nrng_state" + std::to_string(i) + "=" +
           std::to_string(rng_state[i]);
  }
  for (size_t i = 0; i < sink_bytes.size(); ++i) {
    out += "\nsink_bytes" + std::to_string(i) + "=" +
           std::to_string(sink_bytes[i]);
  }
  out += "\nretries=" + std::to_string(telemetry.retries);
  out += "\nreconnects=" + std::to_string(telemetry.reconnects);
  out += "\ndrops_after_retry=" + std::to_string(telemetry.drops_after_retry);
  out += "\ngiveups=" + std::to_string(telemetry.giveups);
  out += "\nbackoff_s=" + FormatDoubleExact(telemetry.backoff_s);
  out += "\ninjected_failures=" + std::to_string(telemetry.injected_failures);
  out += "\ninjected_disconnects=" +
         std::to_string(telemetry.injected_disconnects);
  out += "\ninjected_stalls=" + std::to_string(telemetry.injected_stalls);
  out += "\ninjected_latency_spikes=" +
         std::to_string(telemetry.injected_latency_spikes);
  out += "\nstall_s=" + FormatDoubleExact(telemetry.stall_s);
  out += "\n";
  if (version >= 2) {
    // The footer covers every byte before its own line, so truncation at
    // any offset and any bit flip (including inside the footer) fails.
    char crc[16];
    std::snprintf(crc, sizeof(crc), "%08x", Crc32(out));
    out += std::string(kCrcKey) + "=" + crc + "\n";
  }
  return out;
}

Result<ReplayCheckpoint> ReplayCheckpoint::FromText(const std::string& text) {
  ReplayCheckpoint cp;
  bool header_seen = false;
  bool crc_seen = false;
  size_t line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    if (pos == text.size()) break;
    const size_t line_start = pos;
    const size_t nl = text.find('\n', pos);
    const size_t line_end = nl == std::string::npos ? text.size() : nl;
    const std::string_view line(text.data() + line_start,
                                line_end - line_start);
    pos = nl == std::string::npos ? text.size() : nl + 1;
    ++line_number;
    const std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) continue;
    if (crc_seen) {
      // The footer must be the final record content: trailing data was
      // either appended after publish or spliced from another record.
      return Status::ParseError("checkpoint has content after crc32 footer");
    }
    if (trimmed.front() == '#') {
      if (StartsWith(trimmed, kHeader)) header_seen = true;
      continue;
    }
    const size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError("checkpoint line " +
                                std::to_string(line_number) + ": missing '='");
    }
    const std::string_view key = trimmed.substr(0, eq);
    const std::string_view value = trimmed.substr(eq + 1);
    if (key == kCrcKey) {
      // A published record always ends "crc32=XXXXXXXX\n"; a footer line
      // missing its newline (or with the newline corrupted into other
      // whitespace) is a torn tail even though the checksum still verifies.
      if (nl == std::string::npos || line_end + 1 != text.size() ||
          line.size() != kCrcKey.size() + 1 + 8) {
        return Status::ParseError(
            "checkpoint crc32 footer is damaged (truncated record)");
      }
      // The writer emits canonical lowercase hex; accepting variants would
      // let some footer bit flips alias to the same checksum value.
      for (const char c : value) {
        if ((c < '0' || c > '9') && (c < 'a' || c > 'f')) {
          return Status::ParseError(
              "checkpoint crc32 footer is damaged (non-canonical hex)");
        }
      }
      auto expected = ParseHex32(value);
      GT_RETURN_NOT_OK(expected.status());
      const uint32_t computed =
          Crc32(std::string_view(text.data(), line_start));
      if (computed != *expected) {
        return Status::ParseError("checkpoint checksum mismatch (torn or "
                                  "corrupt record)");
      }
      crc_seen = true;
      continue;
    }
    auto u64 = [&]() { return ParseUint64(value); };
    auto f64 = [&]() { return ParseDouble(value); };
    Status st;
    auto assign_u64 = [&](uint64_t* out) {
      auto parsed = u64();
      if (!parsed.ok()) {
        st = parsed.status();
        return;
      }
      *out = *parsed;
    };
    auto assign_f64 = [&](double* out) {
      auto parsed = f64();
      if (!parsed.ok()) {
        st = parsed.status();
        return;
      }
      *out = *parsed;
    };
    if (key == "version") {
      assign_u64(&cp.version);
    } else if (key == "entries_consumed") {
      assign_u64(&cp.entries_consumed);
    } else if (key == "events_delivered") {
      assign_u64(&cp.events_delivered);
    } else if (key == "local_events") {
      assign_u64(&cp.local_events);
    } else if (key == "markers") {
      assign_u64(&cp.markers);
    } else if (key == "controls") {
      assign_u64(&cp.controls);
    } else if (key == "rate_factor") {
      assign_f64(&cp.rate_factor);
    } else if (StartsWith(key, "rng_state")) {
      auto index = ParseUint64(key.substr(9));
      if (!index.ok() || *index >= cp.rng_state.size()) {
        return Status::ParseError("bad checkpoint key: " + std::string(key));
      }
      assign_u64(&cp.rng_state[*index]);
    } else if (StartsWith(key, "sink_bytes")) {
      auto index = ParseUint64(key.substr(10));
      if (!index.ok() || *index >= kMaxSinkShards) {
        return Status::ParseError("bad checkpoint key: " + std::string(key));
      }
      if (cp.sink_bytes.size() <= *index) cp.sink_bytes.resize(*index + 1, 0);
      assign_u64(&cp.sink_bytes[*index]);
    } else if (key == "retries") {
      assign_u64(&cp.telemetry.retries);
    } else if (key == "reconnects") {
      assign_u64(&cp.telemetry.reconnects);
    } else if (key == "drops_after_retry") {
      assign_u64(&cp.telemetry.drops_after_retry);
    } else if (key == "giveups") {
      assign_u64(&cp.telemetry.giveups);
    } else if (key == "backoff_s") {
      assign_f64(&cp.telemetry.backoff_s);
    } else if (key == "injected_failures") {
      assign_u64(&cp.telemetry.injected_failures);
    } else if (key == "injected_disconnects") {
      assign_u64(&cp.telemetry.injected_disconnects);
    } else if (key == "injected_stalls") {
      assign_u64(&cp.telemetry.injected_stalls);
    } else if (key == "injected_latency_spikes") {
      assign_u64(&cp.telemetry.injected_latency_spikes);
    } else if (key == "stall_s") {
      assign_f64(&cp.telemetry.stall_s);
    } else {
      // Unknown keys from newer writers are skipped (forward compatible;
      // a v2 writer includes them under its crc, so integrity still holds).
      continue;
    }
    if (!st.ok()) {
      return st.WithContext("checkpoint key " + std::string(key));
    }
  }
  if (!header_seen) {
    return Status::ParseError("not a replay checkpoint (missing header)");
  }
  if (cp.version != 1 && cp.version != 2) {
    return Status::ParseError("unsupported checkpoint version " +
                              std::to_string(cp.version));
  }
  if (cp.version >= 2 && !crc_seen) {
    return Status::ParseError(
        "checkpoint missing crc32 footer (truncated record)");
  }
  if (cp.events_delivered + cp.markers + cp.controls > cp.entries_consumed) {
    return Status::ParseError("checkpoint counts exceed entries_consumed");
  }
  if (cp.local_events > cp.events_delivered) {
    return Status::ParseError(
        "checkpoint local_events exceeds events_delivered");
  }
  return cp;
}

Status ReplayCheckpoint::SaveTo(const std::string& path) const {
  FaultPlan& plan = FaultPlan::Global();
  const std::string text = ToText();
  const std::string tmp = path + ".tmp";

  // Scripted torn publish: keep only a seeded prefix of the record, then
  // die after the rename — the on-disk state a power loss mid-publish
  // leaves behind, which LoadLatestGood must reject and fall back past.
  double keep_fraction = 1.0;
  std::string_view torn_point;
  if (plan.TornCheckpointAt(kCrashPreCheckpointRename, &keep_fraction)) {
    torn_point = kCrashPreCheckpointRename;
  } else if (plan.TornCheckpointAt(kCrashPostCheckpoint, &keep_fraction)) {
    torn_point = kCrashPostCheckpoint;
  }
  const size_t write_len =
      torn_point.empty()
          ? text.size()
          : std::max<size_t>(
                1, static_cast<size_t>(keep_fraction *
                                       static_cast<double>(text.size())));

  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoText("cannot create checkpoint file:", tmp));
  }
  const std::string_view payload(text.data(), write_len);
  // The mid-write crash point sits between the two halves of the record:
  // the temp file holds a prefix, the published generation is untouched.
  const size_t half = payload.size() / 2;
  Status st = WriteAll(fd, payload.substr(0, half), tmp);
  if (st.ok()) {
    plan.Hit(kCrashMidCheckpointWrite);
    st = WriteAll(fd, payload.substr(half), tmp);
  }
  // fsync before rename is the durability half of "atomic replace": an
  // un-synced rename can publish a name whose content never reached disk.
  // The error is latched into the returned status, never ignored.
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::IoError(ErrnoText("checkpoint fsync failed:", tmp));
  }
  if (::close(fd) != 0 && st.ok()) {
    st = Status::IoError(ErrnoText("checkpoint close failed:", tmp));
  }
  if (!st.ok()) return st;

  plan.Hit(kCrashPreCheckpointRename);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError(ErrnoText("cannot publish checkpoint:", path));
  }
  GT_RETURN_NOT_OK(SyncParentDir(path));
  if (!torn_point.empty()) plan.CrashNow(torn_point);
  plan.Hit(kCrashPostCheckpoint);
  return Status::OK();
}

Result<ReplayCheckpoint> ReplayCheckpoint::LoadFrom(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open checkpoint file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("checkpoint read failure: " + path);
  Result<ReplayCheckpoint> parsed = FromText(buffer.str());
  if (!parsed.ok()) return parsed.status().WithContext(path);
  return parsed;
}

std::string CheckpointStore::GenerationPath(const std::string& path,
                                            size_t g) {
  return g == 0 ? path : path + "." + std::to_string(g);
}

Status CheckpointStore::Save(const ReplayCheckpoint& cp) const {
  const size_t generations = std::max<size_t>(1, options_.generations);
  // Rotate oldest-first so each rename has a free target. A crash inside
  // the rotation leaves the newest record at `path` or `path.1` — both
  // within LoadLatestGood's scan.
  for (size_t g = generations - 1; g >= 1; --g) {
    const std::string from = GenerationPath(options_.path, g - 1);
    const std::string to = GenerationPath(options_.path, g);
    if (std::rename(from.c_str(), to.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError(
          ErrnoText("cannot rotate checkpoint generation:", from));
    }
  }
  return cp.SaveTo(options_.path);
}

Result<CheckpointStore::Loaded> CheckpointStore::LoadLatestGood(
    const std::string& path, size_t max_generations) {
  Loaded loaded;
  bool any_file = false;
  Status last_error;
  for (size_t g = 0; g < std::max<size_t>(1, max_generations); ++g) {
    const std::string gen_path = GenerationPath(path, g);
    if (::access(gen_path.c_str(), F_OK) != 0) continue;
    any_file = true;
    auto cp = ReplayCheckpoint::LoadFrom(gen_path);
    if (cp.ok()) {
      loaded.checkpoint = *cp;
      loaded.generation = g;
      loaded.fallbacks = g;
      return loaded;
    }
    loaded.rejected.push_back(cp.status().ToString());
    last_error = cp.status();
  }
  if (!any_file) {
    return Status::NotFound("no checkpoint generation at " + path);
  }
  return last_error.WithContext("no good checkpoint generation (tried " +
                                std::to_string(loaded.rejected.size()) +
                                ")");
}

}  // namespace graphtides
