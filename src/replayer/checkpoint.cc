#include "replayer/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace graphtides {

namespace {

constexpr std::string_view kHeader = "# graphtides replay checkpoint";

std::string FormatDoubleExact(double v) {
  // %.17g round-trips every double, so resume pacing is bit-identical.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

bool ReplayCheckpoint::operator==(const ReplayCheckpoint& other) const {
  const SinkTelemetry& a = telemetry;
  const SinkTelemetry& b = other.telemetry;
  return version == other.version &&
         entries_consumed == other.entries_consumed &&
         events_delivered == other.events_delivered &&
         markers == other.markers && controls == other.controls &&
         rate_factor == other.rate_factor && rng_state == other.rng_state &&
         a.retries == b.retries && a.reconnects == b.reconnects &&
         a.drops_after_retry == b.drops_after_retry &&
         a.giveups == b.giveups && a.backoff_s == b.backoff_s &&
         a.injected_failures == b.injected_failures &&
         a.injected_disconnects == b.injected_disconnects &&
         a.injected_stalls == b.injected_stalls &&
         a.injected_latency_spikes == b.injected_latency_spikes &&
         a.stall_s == b.stall_s;
}

std::string ReplayCheckpoint::ToText() const {
  std::string out(kHeader);
  out += "\nversion=" + std::to_string(version);
  out += "\nentries_consumed=" + std::to_string(entries_consumed);
  out += "\nevents_delivered=" + std::to_string(events_delivered);
  out += "\nmarkers=" + std::to_string(markers);
  out += "\ncontrols=" + std::to_string(controls);
  out += "\nrate_factor=" + FormatDoubleExact(rate_factor);
  for (size_t i = 0; i < rng_state.size(); ++i) {
    out += "\nrng_state" + std::to_string(i) + "=" +
           std::to_string(rng_state[i]);
  }
  out += "\nretries=" + std::to_string(telemetry.retries);
  out += "\nreconnects=" + std::to_string(telemetry.reconnects);
  out += "\ndrops_after_retry=" + std::to_string(telemetry.drops_after_retry);
  out += "\ngiveups=" + std::to_string(telemetry.giveups);
  out += "\nbackoff_s=" + FormatDoubleExact(telemetry.backoff_s);
  out += "\ninjected_failures=" + std::to_string(telemetry.injected_failures);
  out += "\ninjected_disconnects=" +
         std::to_string(telemetry.injected_disconnects);
  out += "\ninjected_stalls=" + std::to_string(telemetry.injected_stalls);
  out += "\ninjected_latency_spikes=" +
         std::to_string(telemetry.injected_latency_spikes);
  out += "\nstall_s=" + FormatDoubleExact(telemetry.stall_s);
  out += "\n";
  return out;
}

Result<ReplayCheckpoint> ReplayCheckpoint::FromText(const std::string& text) {
  ReplayCheckpoint cp;
  std::istringstream in(text);
  std::string line;
  bool header_seen = false;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == '#') {
      if (StartsWith(trimmed, kHeader)) header_seen = true;
      continue;
    }
    const size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError("checkpoint line " +
                                std::to_string(line_number) + ": missing '='");
    }
    const std::string_view key = trimmed.substr(0, eq);
    const std::string_view value = trimmed.substr(eq + 1);
    auto u64 = [&]() { return ParseUint64(value); };
    auto f64 = [&]() { return ParseDouble(value); };
    Status st;
    auto assign_u64 = [&](uint64_t* out) {
      auto parsed = u64();
      if (!parsed.ok()) {
        st = parsed.status();
        return;
      }
      *out = *parsed;
    };
    auto assign_f64 = [&](double* out) {
      auto parsed = f64();
      if (!parsed.ok()) {
        st = parsed.status();
        return;
      }
      *out = *parsed;
    };
    if (key == "version") {
      assign_u64(&cp.version);
    } else if (key == "entries_consumed") {
      assign_u64(&cp.entries_consumed);
    } else if (key == "events_delivered") {
      assign_u64(&cp.events_delivered);
    } else if (key == "markers") {
      assign_u64(&cp.markers);
    } else if (key == "controls") {
      assign_u64(&cp.controls);
    } else if (key == "rate_factor") {
      assign_f64(&cp.rate_factor);
    } else if (StartsWith(key, "rng_state")) {
      auto index = ParseUint64(key.substr(9));
      if (!index.ok() || *index >= cp.rng_state.size()) {
        return Status::ParseError("bad checkpoint key: " + std::string(key));
      }
      assign_u64(&cp.rng_state[*index]);
    } else if (key == "retries") {
      assign_u64(&cp.telemetry.retries);
    } else if (key == "reconnects") {
      assign_u64(&cp.telemetry.reconnects);
    } else if (key == "drops_after_retry") {
      assign_u64(&cp.telemetry.drops_after_retry);
    } else if (key == "giveups") {
      assign_u64(&cp.telemetry.giveups);
    } else if (key == "backoff_s") {
      assign_f64(&cp.telemetry.backoff_s);
    } else if (key == "injected_failures") {
      assign_u64(&cp.telemetry.injected_failures);
    } else if (key == "injected_disconnects") {
      assign_u64(&cp.telemetry.injected_disconnects);
    } else if (key == "injected_stalls") {
      assign_u64(&cp.telemetry.injected_stalls);
    } else if (key == "injected_latency_spikes") {
      assign_u64(&cp.telemetry.injected_latency_spikes);
    } else if (key == "stall_s") {
      assign_f64(&cp.telemetry.stall_s);
    } else {
      // Unknown keys from newer writers are skipped (forward compatible).
      continue;
    }
    if (!st.ok()) {
      return st.WithContext("checkpoint key " + std::string(key));
    }
  }
  if (!header_seen) {
    return Status::ParseError("not a replay checkpoint (missing header)");
  }
  if (cp.version != 1) {
    return Status::ParseError("unsupported checkpoint version " +
                              std::to_string(cp.version));
  }
  if (cp.events_delivered + cp.markers + cp.controls > cp.entries_consumed) {
    return Status::ParseError("checkpoint counts exceed entries_consumed");
  }
  return cp;
}

Status ReplayCheckpoint::SaveTo(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) {
      return Status::IoError("cannot create checkpoint file: " + tmp);
    }
    out << ToText();
    out.flush();
    if (!out.good()) return Status::IoError("checkpoint write failure: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot publish checkpoint: " + path);
  }
  return Status::OK();
}

Result<ReplayCheckpoint> ReplayCheckpoint::LoadFrom(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open checkpoint file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("checkpoint read failure: " + path);
  Result<ReplayCheckpoint> parsed = FromText(buffer.str());
  if (!parsed.ok()) return parsed.status().WithContext(path);
  return parsed;
}

}  // namespace graphtides
