// RateController: paces event emission at a uniform, tunable rate (§5.1:
// "emitting stream events is handled by a dedicated thread that uses high
// precision timestamps and busy-waiting for timeliness").
#ifndef GRAPHTIDES_REPLAYER_RATE_CONTROLLER_H_
#define GRAPHTIDES_REPLAYER_RATE_CONTROLLER_H_

#include <cstdint>

#include "common/clock.h"

namespace graphtides {

/// \brief Computes and enforces per-event emission deadlines.
///
/// The schedule is deadline-based rather than sleep-based: the next
/// deadline advances by exactly one interval per event, so transient delays
/// are caught up instead of accumulating drift. SET_RATE control events map
/// to SetFactor, PAUSE control events to Defer.
///
/// Deadlines are computed as anchor + k * interval with the interval held
/// in fractional nanoseconds, not by repeatedly adding a truncated integer
/// interval — per-event truncation would otherwise accumulate without bound
/// (e.g. a 3x factor at 1 kHz truncates 1/3 ns per event, several µs of
/// schedule drift over a 10k-event run). SetFactor/Defer re-anchor the
/// schedule at the previous deadline, so rate changes stay exact too.
class RateController {
 public:
  /// `base_rate_eps` is the initial rate in events per second (factor 1.0).
  RateController(double base_rate_eps, const Clock* clock);

  /// Changes the speed-up factor (1.0 = base rate).
  void SetFactor(double factor);
  double factor() const { return factor_; }
  double current_rate_eps() const { return base_rate_eps_ * factor_; }

  /// \brief Changes the base rate mid-run (capacity search): the new
  /// interval applies from the next emission, re-anchored like SetFactor
  /// so the fractional schedule stays exact.
  ///
  /// Unlike SetFactor (driven by in-stream SET_RATE controls, which arrive
  /// paced), Retarget is driven externally and can land while emission
  /// lags the schedule — deadlines in the past. Re-anchoring at the stale
  /// previous deadline would put the whole new-rate schedule in the past
  /// and release a catch-up burst at unbounded speed; Retarget therefore
  /// anchors at max(previous deadline, last observed time), so the new
  /// rate takes effect from "now" without a burst and without drifting
  /// the anchored-deadline spacing. The speed-up factor resets to 1.0, so
  /// a later SET_RATE control scales the new base.
  void Retarget(double rate_eps);

  /// Pushes the schedule into the future (PAUSE control event).
  void Defer(Duration pause);

  /// Blocks (busy-waits near the deadline) until the next emission slot,
  /// then advances the schedule. Returns the deadline that was enforced.
  ///
  /// Clock reads are amortized when emission lags the schedule: a
  /// previously observed clock value at/past the deadline proves the slot
  /// is open without reading again (the clock is monotone), so a
  /// saturated replay pays one clock read per elapsed wait, not per
  /// event.
  Timestamp WaitForNextSlot();

  /// Non-blocking variant for virtual-time use: the deadline for the next
  /// event; the caller advances its own clock.
  Timestamp NextDeadline();

  /// Positive when emission lags behind the schedule.
  Duration Lag() const;

 private:
  double IntervalNanos() const { return 1e9 / (base_rate_eps_ * factor_); }

  double base_rate_eps_;
  double factor_ = 1.0;
  const Clock* clock_;
  /// Schedule origin: deadlines are anchor_ + round(k * interval).
  Timestamp anchor_;
  /// Events scheduled since the last re-anchor.
  int64_t events_since_anchor_ = 0;
  Timestamp prev_deadline_;
  Duration pending_defer_;
  /// Largest clock value observed so far; deadlines at/below it have
  /// provably passed without another clock read.
  Timestamp observed_now_;
  bool started_ = false;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_REPLAYER_RATE_CONTROLLER_H_
