#include "replayer/resilient_sink.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace graphtides {

Result<DegradationPolicy> ParseDegradationPolicy(const std::string& name) {
  if (name == "fail" || name == "failfast") return DegradationPolicy::kFailFast;
  if (name == "drop") return DegradationPolicy::kDropAndCount;
  if (name == "block") return DegradationPolicy::kBlock;
  return Status::InvalidArgument("unknown degradation policy: " + name +
                                 " (expected fail|drop|block)");
}

std::string_view DegradationPolicyName(DegradationPolicy policy) {
  switch (policy) {
    case DegradationPolicy::kFailFast:
      return "fail";
    case DegradationPolicy::kDropAndCount:
      return "drop";
    case DegradationPolicy::kBlock:
      return "block";
  }
  return "unknown";
}

ResilientSink::ResilientSink(EventSink* inner, ResilientSinkOptions options,
                             ReconnectFn reconnect)
    : inner_(inner),
      options_(options),
      reconnect_(std::move(reconnect)),
      clock_(&default_clock_),
      jitter_rng_(options.jitter_seed) {
  sleep_ = [](Duration d) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(d.nanos()));
  };
}

bool ResilientSink::Retryable(const Status& status) const {
  if (status.IsUnavailable() || status.IsIoError() || status.IsTimeout() ||
      status.IsCapacityExceeded()) {
    return true;
  }
  // A disconnected transport reports PreconditionFailed; retryable only if
  // we can actually reconnect it.
  return status.IsPreconditionFailed() && reconnect_ != nullptr;
}

Duration ResilientSink::BackoffFor(uint32_t retry) {
  const double max_ns = static_cast<double>(options_.max_backoff.nanos());
  double ns = static_cast<double>(options_.initial_backoff.nanos());
  for (uint32_t i = 0; i < retry && ns < max_ns; ++i) {
    ns *= options_.backoff_multiplier;
  }
  ns = std::min(ns, max_ns);
  if (options_.jitter > 0.0) {
    ns *= 1.0 + options_.jitter * (2.0 * jitter_rng_.NextDouble() - 1.0);
  }
  return Duration::FromNanos(std::max<int64_t>(0, static_cast<int64_t>(ns)));
}

Status ResilientSink::Deliver(const Event& event) {
  ++stats_.deliveries;
  const Timestamp start = clock_->Now();
  uint32_t retry = 0;
  while (true) {
    ++stats_.attempts;
    Status last = inner_->Deliver(event);
    if (last.ok()) return last;
    if (!Retryable(last)) {
      ++stats_.giveups;
      return last;
    }
    const bool timed_out =
        options_.deliver_timeout > Duration::Zero() &&
        clock_->Now() - start >= options_.deliver_timeout;
    const bool budget_left = options_.policy == DegradationPolicy::kBlock ||
                             retry < options_.retry_budget;
    if (timed_out || !budget_left) {
      if (options_.policy == DegradationPolicy::kDropAndCount) {
        ++stats_.drops;
        return Status::OK();
      }
      ++stats_.giveups;
      if (timed_out) {
        return Status::Timeout("delivery timed out after " +
                               std::to_string(stats_.attempts) +
                               " attempts; last: " + last.ToString());
      }
      return last.WithContext("retry budget exhausted (" +
                              std::to_string(options_.retry_budget) +
                              " retries)");
    }
    const Duration backoff = BackoffFor(retry);
    ++retry;
    ++stats_.retries;
    stats_.backoff_time += backoff;
    sleep_(backoff);
    // IoError: the transport broke mid-write (peer reset, chaos
    // disconnect). PreconditionFailed: it is down already. Both need a
    // fresh connection before the next attempt.
    if (reconnect_ && (last.IsIoError() || last.IsPreconditionFailed())) {
      if (reconnect_().ok()) {
        ++stats_.reconnects;
      } else {
        ++stats_.failed_reconnects;
      }
    }
  }
}

SinkTelemetry ResilientSink::Telemetry() const {
  SinkTelemetry t = inner_->Telemetry();
  SinkTelemetry own;
  own.retries = stats_.retries;
  own.reconnects = stats_.reconnects;
  own.drops_after_retry = stats_.drops;
  own.giveups = stats_.giveups;
  own.backoff_s = stats_.backoff_time.seconds();
  return t.Merge(own);
}

}  // namespace graphtides
