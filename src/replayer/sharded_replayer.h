// Sharded parallel replay (§5.1–§5.2 scaled out in-process): one reader
// hash-partitions the stream into N per-shard SPSC lanes, each lane paced
// and emitted by its own thread into its own sink — the multi-replayer
// horizontal-scaling setup of §5.2 collapsed into one process on one
// multi-core machine.
//
// Partitioning and ordering guarantees:
//   * vertex events are routed by hash(vertex id); edge events by
//     hash(source id). All events touching the same source entity
//     serialize through one lane, so per-entity order is preserved and a
//     lane's output is a subsequence of the input stream.
//   * marker and control events are broadcast to every lane together with
//     a cross-shard epoch barrier: every lane finishes emitting all graph
//     events enqueued before the marker/control, then all lanes cross it
//     together. Marker semantics ("all events before the marker have been
//     emitted, none after") and SET_RATE/PAUSE positions are therefore
//     identical to a single-lane replay.
//   * every graph event carries its global sequence number (0-based among
//     graph events), delivered to sinks via DeliverSequenced, so per-shard
//     captures can be merged back into total stream order.
//
// Hot path: the reader parses with the zero-copy ParseEventLineView over a
// BlockLineReader, appends payload bytes into a per-batch arena (batches
// are recycled through a per-lane return queue, so steady state allocates
// nothing), and lanes either serialize canonical CSV into a reusable
// buffer handed to the sink once per batch (SupportsSerialized transports:
// pipe, TCP) or materialize into one reusable Event for decorated sinks.
// Telemetry (progress counter, achieved-rate bins, lag samples) is flushed
// once per batch, not per event.
#ifndef GRAPHTIDES_REPLAYER_SHARDED_REPLAYER_H_
#define GRAPHTIDES_REPLAYER_SHARDED_REPLAYER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "replayer/checkpoint.h"
#include "replayer/event_sink.h"
#include "replayer/replayer.h"
#include "stream/event.h"
#include "stream/event_view.h"

namespace graphtides {

/// Stable hash-partition of a vertex id over `shards` lanes (splitmix64
/// finalizer, so nearly-sequential generator ids still spread evenly).
size_t ShardOfVertex(VertexId id, size_t shards);

/// Routing rule: vertex ops by vertex id, edge ops by source id (same hash
/// as the source vertex, so edge ops order with their source's vertex
/// ops). Markers/controls have no shard — callers broadcast them.
size_t ShardOfEvent(EventType type, VertexId vertex, const EdgeId& edge,
                    size_t shards);

struct ShardedReplayerOptions {
  /// Number of lanes (and sinks). 1 degenerates to a single-lane pipeline.
  size_t shards = 1;
  /// Aggregate target emission rate in events/second across all lanes;
  /// each lane paces at total_rate_eps / shards (SET_RATE factors apply
  /// per lane, so the aggregate scales the same way).
  double total_rate_eps = 10000.0;
  /// Graph events per lane batch (the telemetry-flush granularity).
  size_t batch_events = 256;
  /// Per-lane queue capacity in items (batches + barrier tokens).
  size_t lane_queue_items = 1 << 8;
  /// Bin width for the achieved-rate time series.
  Duration stats_bin = Duration::FromMillis(100);
  /// When false, SET_RATE / PAUSE are counted but not applied (and no
  /// barrier is paid for them).
  bool honor_control_events = true;
  /// \brief Preferred wire format offered to every sink before delivery
  /// starts (EventSink::NegotiateWireFormat).
  ///
  /// kCsv (default) skips the handshake entirely. kV2 asks each sink to
  /// carry gt-stream-v2 blocks on the serialized path; a lane whose sink
  /// declines (decorated chains always do) stays on CSV, so formats are
  /// negotiated per sink, not per run.
  WireFormat wire_format = WireFormat::kCsv;

  /// Mid-run offered-rate control (same contract as
  /// ReplayerOptions::rate_target_eps): the *aggregate* target in
  /// events/s. Each lane polls at batch granularity and retargets its own
  /// controller to target / shards, preserving per-lane anchored-deadline
  /// schedules (no catch-up burst). Values <= 0 are ignored; not owned.
  const std::atomic<double>* rate_target_eps = nullptr;

  // --- Distributed shard-range replay ----------------------------------
  /// Size of the global hash-partition space (0 = `shards`, the
  /// single-process default). When larger, this process drives only the
  /// lanes for global shards [shard_offset, shard_offset + shards): it
  /// still reads and counts the whole stream (global accounting —
  /// events_delivered, checkpoint cadence, epochs — is identical on every
  /// process), but events hashing outside the range are skipped, so a
  /// fleet of processes over disjoint ranges reproduces the
  /// single-process per-lane output byte-for-byte.
  size_t total_shards = 0;
  /// First global shard this process owns (only with total_shards > 0).
  size_t shard_offset = 0;
  /// \brief Distributed epoch hold point: called inside every marker /
  /// control barrier completion — all local lanes quiesced, nothing past
  /// the epoch emitted — with the global epoch ordinal (1-based count of
  /// markers + honored controls, stable across processes and resumes).
  /// The callback blocks until the cross-process epoch is released; a
  /// non-OK return aborts the run like a cancellation: lanes drain, a
  /// final exact checkpoint is written, and Run returns the hook's
  /// status (the worker's quiesce-and-wait partition rule builds on
  /// this).
  std::function<Status(uint64_t epoch)> epoch_hook;

  // --- Supervision (same contract as ReplayerOptions) ------------------
  const CancellationToken* cancel = nullptr;
  /// Write a checkpoint every N enqueued graph events via a cross-shard
  /// checkpoint barrier (0 = disabled): all lanes quiesce at the barrier,
  /// so the record is exactly-once — every counted event was acknowledged
  /// by its sink, none past the barrier was emitted.
  uint64_t checkpoint_every = 0;
  std::string checkpoint_path;
  /// Stop cleanly after this many graph events (counted from the resume
  /// base; 0 = run to end of stream) and flush a final checkpoint.
  uint64_t stop_after_events = 0;
  /// RNG snapshotted into checkpoints and restored on resume.
  Rng* checkpoint_rng = nullptr;
  /// Rotated checkpoint generations kept at checkpoint_path (>= 1).
  size_t checkpoint_generations = 1;
  /// When true, checkpoints flush every lane's sink and record per-shard
  /// cumulative flushed byte counts (ReplayCheckpoint::sink_bytes) so a
  /// resume over per-shard output files can truncate each file back to
  /// the checkpointed offset. Resuming then requires the same shard count
  /// the checkpoint was written with.
  bool record_sink_bytes = false;

  // --- Live telemetry --------------------------------------------------

  /// Optional telemetry hub (not owned); must be built with at least
  /// `shards` slots. Each lane records sampled per-stage spans and its
  /// delivered/fault counters into its own slot (sampling is 1-in-N
  /// batches on the lane hot path); the reader records read-stage spans
  /// into slot 0 and feeds marker sends to the hub's correlator. No-op
  /// under -DGT_TELEMETRY_OFF.
  RunTelemetry* telemetry = nullptr;
};

/// \brief Outcome of a sharded run: the merged aggregate plus each lane's
/// own stats (its sink's telemetry, its delivered count, its lag samples).
struct ShardedReplayStats {
  ReplayStats aggregate;
  std::vector<ReplayStats> per_shard;
};

/// \brief Replays one stream against N sinks, one lane per sink.
///
/// Replay/ReplayFile block until the stream is exhausted or the run fails.
/// `sinks.size()` must equal `options.shards`; each sink is driven only by
/// its own lane thread.
class ShardedReplayer {
 public:
  explicit ShardedReplayer(ShardedReplayerOptions options)
      : options_(options) {}

  Result<ShardedReplayStats> Replay(const std::vector<Event>& events,
                                    const std::vector<EventSink*>& sinks,
                                    const ReplayCheckpoint* resume = nullptr);

  /// Streams a file through the zero-copy block reader without loading it.
  Result<ShardedReplayStats> ReplayFile(
      const std::string& path, const std::vector<EventSink*>& sinks,
      const ReplayCheckpoint* resume = nullptr);

  /// Graph events delivered so far across all lanes (cumulative across a
  /// resume); the liveness probe a RunWatchdog polls.
  uint64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }

  /// Graph events delivered by THIS process's lanes (cumulative across a
  /// resume via ReplayCheckpoint::local_events). Equals progress() minus
  /// the global resume base in single-process runs; in shard-range runs it
  /// is the range's share of the stream — what exactly-once accounting
  /// sums across a fleet.
  uint64_t local_delivered() const {
    return local_delivered_.load(std::memory_order_relaxed);
  }

 private:
  /// Pull source yielding borrowed views; a view is valid until the next
  /// call. nullopt signals end of stream.
  using SourceFn = std::function<Result<std::optional<EventView>>()>;

  Result<ShardedReplayStats> Run(const SourceFn& source,
                                 const std::vector<EventSink*>& sinks,
                                 const ReplayCheckpoint* resume);

  ShardedReplayerOptions options_;
  std::atomic<uint64_t> progress_{0};
  std::atomic<uint64_t> local_delivered_{0};
};

}  // namespace graphtides

#endif  // GRAPHTIDES_REPLAYER_SHARDED_REPLAYER_H_
