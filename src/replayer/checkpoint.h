// Replay checkpoints: periodic durable records of a replay run's position
// and accounting, so an aborted run (watchdog cancel, controlled stop, or a
// crash that left the last periodic checkpoint behind) can resume from the
// last record instead of restarting the stream.
//
// The invariant that makes resume exactly-once: a checkpoint is written
// only at entry boundaries, *after* the sink acknowledged every event the
// record counts. Entries before `entries_consumed` are never re-emitted on
// resume; entries at or after it have never been emitted under the
// checkpointed accounting. Clean aborts (cancellation / stop_after_events)
// flush a final checkpoint at the exact abort point, so a resumed run's
// sink output concatenates byte-identically with the aborted run's.
//
// Crash durability (format version 2): the record carries a CRC-32 footer
// over every preceding byte, the publish path fsyncs the temp file and its
// directory before the atomic rename, and CheckpointStore keeps N rotated
// generations — a SIGKILL or power loss at any instant leaves either the
// new record, the previous one, or a torn file the loader rejects and
// falls back past. Per-shard `sink_bytes` record how many payload bytes
// each sink had durably absorbed at the checkpoint, so a resume over file
// sinks can truncate away bytes delivered (but not checkpointed) after it.
#ifndef GRAPHTIDES_REPLAYER_CHECKPOINT_H_
#define GRAPHTIDES_REPLAYER_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "replayer/event_sink.h"

namespace graphtides {

/// \brief One durable snapshot of replay progress.
struct ReplayCheckpoint {
  /// Format version; readers reject versions they do not understand.
  /// Version 2 adds the mandatory crc32 footer (version-1 records are
  /// still read, without integrity protection).
  uint64_t version = 2;
  /// Source entries consumed (graph events + markers + controls): the
  /// stream offset emission resumes from.
  uint64_t entries_consumed = 0;
  /// Graph events delivered to (and acknowledged by) the sink.
  uint64_t events_delivered = 0;
  /// Graph events delivered by THIS process's shard range (distributed
  /// shard-range runs, where events_delivered counts the whole stream).
  /// 0 in single-process records — their local share IS events_delivered.
  uint64_t local_events = 0;
  uint64_t markers = 0;
  uint64_t controls = 0;
  /// Pacing state at the checkpoint: the active SET_RATE factor.
  double rate_factor = 1.0;
  /// Raw state of the sink chain's RNG (retry jitter), if one was
  /// registered for checkpointing; all zeros otherwise.
  std::array<uint64_t, 4> rng_state{};
  /// Sink-chain fault telemetry accumulated up to the checkpoint.
  SinkTelemetry telemetry;
  /// Cumulative payload bytes each shard's sink had flushed when the
  /// checkpoint was taken (empty when the run's sinks do not count
  /// bytes). A resume over per-shard output files truncates each file to
  /// its entry before appending, discarding bytes a crash delivered past
  /// the record.
  std::vector<uint64_t> sink_bytes;

  bool operator==(const ReplayCheckpoint& other) const;

  /// Renders the checkpoint as '#'-headed key=value text, ending with the
  /// crc32 footer line (version >= 2).
  std::string ToText() const;
  /// Inverse of ToText. ParseError on malformed, truncated, corrupt, or
  /// unknown-version input — any byte-level damage to a version-2 record
  /// fails its checksum.
  static Result<ReplayCheckpoint> FromText(const std::string& text);

  /// \brief Writes the checkpoint to `path` durably and atomically: temp
  /// file + fsync + rename + parent-directory fsync, so a reader never
  /// observes a torn record and a crash immediately after return cannot
  /// roll it back. I/O errors (including fsync failures) are returned,
  /// never swallowed.
  Status SaveTo(const std::string& path) const;
  static Result<ReplayCheckpoint> LoadFrom(const std::string& path);
};

/// \brief Rotated multi-generation checkpoint store.
///
/// `path` always names the newest published record; `path.1` the previous
/// one, up to `generations - 1` ancestors. Save rotates then publishes, so
/// a crash anywhere in the sequence leaves at least one intact generation;
/// LoadLatestGood scans newest-first and falls back past torn or corrupt
/// records instead of aborting the resume.
class CheckpointStore {
 public:
  struct Options {
    std::string path;
    /// Published generations kept, >= 1 (1 = classic single file).
    size_t generations = 1;
  };

  explicit CheckpointStore(Options options) : options_(std::move(options)) {}

  /// Rotates existing generations one slot down, then publishes `cp` as
  /// the newest.
  Status Save(const ReplayCheckpoint& cp) const;

  struct Loaded {
    ReplayCheckpoint checkpoint;
    /// Generation index the record came from (0 = newest).
    size_t generation = 0;
    /// Generations skipped (missing, torn, or corrupt) before this one.
    size_t fallbacks = 0;
    /// Reject reason per skipped generation that existed on disk.
    std::vector<std::string> rejected;
  };

  /// \brief Loads the newest generation that parses and verifies,
  /// scanning `path`, `path.1`, ... up to `max_generations` slots.
  /// NotFound when no generation exists at all; the last parse failure
  /// when files exist but none is good.
  static Result<Loaded> LoadLatestGood(const std::string& path,
                                       size_t max_generations = 16);

  /// Slot path for generation `g` (0 = `path` itself).
  static std::string GenerationPath(const std::string& path, size_t g);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_REPLAYER_CHECKPOINT_H_
