// Replay checkpoints: periodic durable records of a replay run's position
// and accounting, so an aborted run (watchdog cancel, controlled stop, or a
// crash that left the last periodic checkpoint behind) can resume from the
// last record instead of restarting the stream.
//
// The invariant that makes resume exactly-once: a checkpoint is written
// only at entry boundaries, *after* the sink acknowledged every event the
// record counts. Entries before `entries_consumed` are never re-emitted on
// resume; entries at or after it have never been emitted under the
// checkpointed accounting. Clean aborts (cancellation / stop_after_events)
// flush a final checkpoint at the exact abort point, so a resumed run's
// sink output concatenates byte-identically with the aborted run's.
#ifndef GRAPHTIDES_REPLAYER_CHECKPOINT_H_
#define GRAPHTIDES_REPLAYER_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "replayer/event_sink.h"

namespace graphtides {

/// \brief One durable snapshot of replay progress.
struct ReplayCheckpoint {
  /// Format version; readers reject versions they do not understand.
  uint64_t version = 1;
  /// Source entries consumed (graph events + markers + controls): the
  /// stream offset emission resumes from.
  uint64_t entries_consumed = 0;
  /// Graph events delivered to (and acknowledged by) the sink.
  uint64_t events_delivered = 0;
  uint64_t markers = 0;
  uint64_t controls = 0;
  /// Pacing state at the checkpoint: the active SET_RATE factor.
  double rate_factor = 1.0;
  /// Raw state of the sink chain's RNG (retry jitter), if one was
  /// registered for checkpointing; all zeros otherwise.
  std::array<uint64_t, 4> rng_state{};
  /// Sink-chain fault telemetry accumulated up to the checkpoint.
  SinkTelemetry telemetry;

  bool operator==(const ReplayCheckpoint& other) const;

  /// Renders the checkpoint as '#'-headed key=value text.
  std::string ToText() const;
  /// Inverse of ToText. ParseError on malformed or unknown-version input.
  static Result<ReplayCheckpoint> FromText(const std::string& text);

  /// \brief Writes the checkpoint to `path` atomically (temp file +
  /// rename), so a reader never observes a torn record.
  Status SaveTo(const std::string& path) const;
  static Result<ReplayCheckpoint> LoadFrom(const std::string& path);
};

}  // namespace graphtides

#endif  // GRAPHTIDES_REPLAYER_CHECKPOINT_H_
