// TCP transport: a client sink (connector side) and a minimal line-oriented
// server (system-under-test side / benchmark counterpart). Matches the
// Table 2 "TCP: local socket to measurement process" setup.
#ifndef GRAPHTIDES_REPLAYER_TCP_H_
#define GRAPHTIDES_REPLAYER_TCP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/result.h"
#include "replayer/event_sink.h"

namespace graphtides {

/// \brief EventSink that writes CSV event lines over a TCP connection.
///
/// Writes go through a small user-space buffer and the kernel socket
/// buffer; when the receiver falls behind, writes block — TCP flow control
/// is the backpressure signal.
class TcpSink final : public EventSink {
 public:
  TcpSink() = default;
  ~TcpSink() override;

  TcpSink(const TcpSink&) = delete;
  TcpSink& operator=(const TcpSink&) = delete;

  /// Connects to host:port (IPv4 dotted quad or "localhost").
  Status Connect(const std::string& host, uint16_t port);

  Status Deliver(const Event& event) override;
  Status Finish() override;

  bool connected() const { return fd_ >= 0; }

 private:
  Status FlushBuffer();

  int fd_ = -1;
  std::string buffer_;
  /// Flush threshold; one syscall per ~16 KiB rather than per event.
  static constexpr size_t kFlushBytes = 16 * 1024;
};

/// \brief Minimal single-connection line server: accepts one client and
/// feeds every received line to a callback on a background thread.
///
/// Used by benchmarks and tests as the "measurement process" counterpart of
/// the TCP setup.
class TcpLineServer {
 public:
  using LineFn = std::function<void(std::string_view line)>;

  TcpLineServer() = default;
  ~TcpLineServer();

  TcpLineServer(const TcpLineServer&) = delete;
  TcpLineServer& operator=(const TcpLineServer&) = delete;

  /// Binds to 127.0.0.1 on an ephemeral (or given) port and starts
  /// listening. Returns the bound port.
  Result<uint16_t> Start(LineFn on_line, uint16_t port = 0);

  /// Waits for the client to disconnect and joins the service thread.
  void Join();

  /// Lines received so far.
  uint64_t lines_received() const {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();

  int listen_fd_ = -1;
  std::thread thread_;
  LineFn on_line_;
  std::atomic<uint64_t> lines_{0};
};

}  // namespace graphtides

#endif  // GRAPHTIDES_REPLAYER_TCP_H_
