// TCP transport: a client sink (connector side) and a minimal line-oriented
// server (system-under-test side / benchmark counterpart). Matches the
// Table 2 "TCP: local socket to measurement process" setup.
#ifndef GRAPHTIDES_REPLAYER_TCP_H_
#define GRAPHTIDES_REPLAYER_TCP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "replayer/event_sink.h"

namespace graphtides {

/// \brief Dials host:port (IPv4 dotted quad or "localhost") and returns a
/// connected fd with TCP_NODELAY set.
///
/// With `connect_timeout_ms > 0` the connect is non-blocking + poll, so a
/// black-holed peer surfaces as a Timeout after the deadline instead of
/// blocking for the kernel's multi-minute SYN retry budget; the fd is
/// restored to blocking mode before it is returned. `connect_timeout_ms <=
/// 0` keeps the historic blocking connect.
Result<int> DialTcp(const std::string& host, uint16_t port,
                    int connect_timeout_ms);

/// \brief EventSink that writes CSV event lines over a TCP connection.
///
/// Writes go through a small user-space buffer and the kernel socket
/// buffer; when the receiver falls behind, writes block — TCP flow control
/// is the backpressure signal.
///
/// Failure semantics: sends use MSG_NOSIGNAL, so a peer that resets the
/// connection mid-replay surfaces as an IoError Status instead of a
/// process-killing SIGPIPE. Unflushed buffered lines survive a failure and
/// a Reconnect(), giving at-least-once delivery when a ResilientSink
/// drives the retry loop.
class TcpSink final : public EventSink {
 public:
  TcpSink() = default;
  ~TcpSink() override;

  TcpSink(const TcpSink&) = delete;
  TcpSink& operator=(const TcpSink&) = delete;

  /// \brief Dial deadline per connect attempt, milliseconds (0 = block
  /// indefinitely, the historic default). Call before Connect; applies to
  /// Reconnect too.
  void set_connect_timeout_ms(int ms) { connect_timeout_ms_ = ms; }
  /// Connect attempts per Connect/Reconnect call (default 1). Failed
  /// attempts back off linearly (50 ms * attempt, capped at 1 s) — bounded,
  /// never an indefinite dial loop.
  void set_connect_attempts(int attempts) {
    connect_attempts_ = attempts < 1 ? 1 : attempts;
  }

  /// Connects to host:port (IPv4 dotted quad or "localhost").
  Status Connect(const std::string& host, uint16_t port);

  /// \brief Re-dials the address of the last successful Connect.
  ///
  /// Closes any half-dead socket first; the user-space buffer is kept, so
  /// lines accepted but not yet flushed are re-sent on the new connection.
  /// PreconditionFailed if Connect never succeeded.
  Status Reconnect();

  /// \brief Severs the connection immediately (no flush, fd closed).
  ///
  /// Used as the chaos "forced disconnect" hook: after Sever, Deliver
  /// fails until Reconnect() re-establishes the connection. Must be called
  /// from the thread that owns the sink.
  void Sever();

  /// \brief Thread-safe abort: shuts the socket down WITHOUT closing it.
  ///
  /// Safe to call from a watchdog/supervisor thread while the owning
  /// thread is blocked in send() — the blocked call returns with an error
  /// immediately. The fd itself is only ever closed by the owning thread
  /// (Sever/Finish/destructor); closing here would race fd reuse.
  void Abort();

  /// Opt-in to v2 wire delivery: a later NegotiateWireFormat(kV2) is
  /// answered with kV2 (without this call the answer stays kCsv). Call
  /// before the replayer starts.
  void EnableV2Wire() { allow_v2_ = true; }

  Status Deliver(const Event& event) override;
  /// Appends the pre-serialized batch to the user-space buffer in one go;
  /// flushed on the same 16 KiB threshold as per-event delivery.
  bool SupportsSerialized() const override { return true; }
  Status DeliverSerialized(std::string_view lines, size_t count) override;
  Result<WireFormat> NegotiateWireFormat(WireFormat preferred) override;
  Status Finish() override;
  /// Drains the user-space buffer into the socket (checkpoint boundary).
  Status Flush() override { return FlushBuffer(); }
  uint64_t bytes_delivered() const override {
    return bytes_.load(std::memory_order_relaxed);
  }

  bool connected() const {
    return fd_.load(std::memory_order_acquire) >= 0;
  }
  uint64_t reconnects() const { return reconnects_; }

 private:
  Status Dial();
  Status FlushBuffer();

  /// Owned (open/close) by the sink's thread; atomic so Abort can observe
  /// it from another thread.
  std::atomic<int> fd_{-1};
  std::string host_;
  uint16_t port_ = 0;
  int connect_timeout_ms_ = 0;
  int connect_attempts_ = 1;
  bool ever_connected_ = false;
  uint64_t reconnects_ = 0;
  std::string buffer_;
  bool allow_v2_ = false;
  WireFormat wire_ = WireFormat::kCsv;
  bool sentinel_written_ = false;
  V2BlockEncoder v2_encoder_;  // per-event fallback when wire_ is kV2
  /// Payload bytes pushed into the socket (counted at flush).
  std::atomic<uint64_t> bytes_{0};
  /// Flush threshold; one syscall per ~16 KiB rather than per event.
  static constexpr size_t kFlushBytes = 16 * 1024;
};

/// \brief Minimal line server: accepts clients sequentially and feeds every
/// received line to a callback on a background thread.
///
/// Used by benchmarks and tests as the "measurement process" counterpart of
/// the TCP setup. By default exactly one connection is served (the historic
/// behaviour); raise `set_max_connections` to let a resilient client
/// reconnect after forced disconnects. A final line without a trailing
/// newline is still delivered when the peer disconnects.
class TcpLineServer {
 public:
  using LineFn = std::function<void(std::string_view line)>;

  TcpLineServer() = default;
  ~TcpLineServer();

  TcpLineServer(const TcpLineServer&) = delete;
  TcpLineServer& operator=(const TcpLineServer&) = delete;

  /// Maximum sequential connections to serve before the server thread
  /// exits (default 1). Call before Start.
  void set_max_connections(size_t n) { max_connections_ = n; }

  /// Close each connection after this many total lines were received
  /// (0 = never) — simulates a measurement process dying mid-replay.
  void set_close_after_lines(uint64_t n) { close_after_lines_ = n; }

  /// Binds to 127.0.0.1 on an ephemeral (or given) port and starts
  /// listening. Returns the bound port.
  Result<uint16_t> Start(LineFn on_line, uint16_t port = 0);

  /// Asks the server thread to exit: wakes a blocked accept AND shuts down
  /// any connection currently blocked in read, so a watchdog abort can
  /// never leave the server thread wedged. Needed before Join when
  /// max_connections was not exhausted.
  void Stop();

  /// Waits for the service thread to finish and joins it.
  void Join();

  /// Lines received so far (across all connections).
  uint64_t lines_received() const {
    return lines_.load(std::memory_order_relaxed);
  }

  /// Connections accepted so far.
  uint64_t connections_served() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  /// Reads one connection until EOF / close trigger. Returns false when
  /// the server should stop accepting.
  bool ServeConnection(int conn);

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  size_t max_connections_ = 1;
  uint64_t close_after_lines_ = 0;
  std::thread thread_;
  LineFn on_line_;
  std::atomic<uint64_t> lines_{0};
  std::atomic<uint64_t> connections_{0};
  std::atomic<bool> stop_{false};
  /// Active connection fd; guarded by conn_mu_ so Stop can shut it down
  /// without racing the server thread's close.
  std::mutex conn_mu_;
  int conn_fd_ = -1;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_REPLAYER_TCP_H_
