#include "replayer/sharded_replayer.h"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/fault_plan.h"
#include "replayer/event_batch.h"
#include "replayer/rate_controller.h"
#include "replayer/spsc_queue.h"
#include "stream/block_reader.h"
#include "stream/v2_format.h"
#include "stream/v2_reader.h"

namespace graphtides {

namespace {

// splitmix64 finalizer: generator ids are nearly sequential, so a plain
// modulo would stripe entities across lanes in lockstep with the stream's
// own structure; the mix decorrelates them.
uint64_t MixBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Lane batches are the shared batch-arena unit (replayer/event_batch.h),
// so the generator's pipelined writer and the sharded reader recycle the
// same structure.
using LaneRecord = EventRecord;
using LaneBatch = EventBatch;

/// Broadcast token: every live lane receives one copy and meets the others
/// at the epoch barrier before anyone emits past it.
struct BarrierCmd {
  enum class Kind : uint8_t { kMarker, kControl, kCheckpoint };
  Kind kind = Kind::kMarker;
  uint64_t epoch = 0;
  /// Global epoch ordinal for marker/control barriers: 1-based count of
  /// markers + honored controls, identical on every process replaying the
  /// stream (and across resumes) — the id the distributed epoch_hook
  /// reports to the coordinator.
  uint64_t global_epoch = 0;
  // kMarker:
  std::string label;
  // kControl:
  EventType control = EventType::kSetRate;
  double rate_factor = 1.0;
  Duration pause;
  // Reader-side accounting at the barrier point (cumulative, including a
  // resume base) for the marker record / checkpoint written at the epoch.
  uint64_t entries_consumed = 0;
  uint64_t events_before = 0;
  uint64_t markers = 0;
  uint64_t controls = 0;
  double factor_at = 1.0;
};

enum class ItemKind : uint8_t { kBatch, kBarrier, kEnd };

struct LaneItem {
  ItemKind kind = ItemKind::kEnd;
  LaneBatch batch;
  BarrierCmd barrier;
};

/// \brief Barrier with a per-phase completion run by the last arriver while
/// the others are parked — the quiescent point where markers are recorded
/// and checkpoints written. A failing lane Drop()s out of every future
/// phase so the healthy lanes never wait for it. Contended only at
/// marker/control/checkpoint epochs, never on the batch hot path.
class EpochBarrier {
 public:
  explicit EpochBarrier(size_t parties) : parties_(parties) {}

  void ArriveAndWait(const std::function<void()>& completion) {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t phase = phase_;
    ++arrived_;
    if (arrived_ >= parties_) {
      if (completion) completion();
      arrived_ = 0;
      ++phase_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return phase_ != phase; });
  }

  /// \brief Removes the caller from all future phases.
  ///
  /// If the drop makes the current phase complete, the phase advances
  /// WITHOUT its completion: a run with a failed lane must not record a
  /// marker or checkpoint that claims events the failed lane never
  /// delivered.
  void Drop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (parties_ > 0) --parties_;
    if (parties_ > 0 && arrived_ >= parties_) {
      arrived_ = 0;
      ++phase_;
      cv_.notify_all();
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t parties_;
  size_t arrived_ = 0;
  uint64_t phase_ = 0;
};

struct LaneState {
  explicit LaneState(size_t queue_items)
      : queue(queue_items), recycle(queue_items) {}

  SpscQueue<LaneItem> queue;
  /// Lane -> reader batch return path: consumed batches come back with
  /// their capacity intact, so the steady state recycles arenas instead of
  /// allocating.
  SpscQueue<LaneBatch> recycle;
  std::thread thread;
  /// Lane-local stats: events_delivered / lag / rate_series / telemetry
  /// cover only this lane (markers, controls and entries are stream-global
  /// and live in the aggregate).
  ReplayStats stats;
  Status status;
  std::atomic<bool> failed{false};
};

}  // namespace

size_t ShardOfVertex(VertexId id, size_t shards) {
  if (shards <= 1) return 0;
  return static_cast<size_t>(MixBits(id) % shards);
}

size_t ShardOfEvent(EventType type, VertexId vertex, const EdgeId& edge,
                    size_t shards) {
  return ShardOfVertex(IsEdgeOp(type) ? edge.src : vertex, shards);
}

Result<ShardedReplayStats> ShardedReplayer::Replay(
    const std::vector<Event>& events, const std::vector<EventSink*>& sinks,
    const ReplayCheckpoint* resume) {
  size_t index = 0;
  return Run(
      [&events, index]() mutable -> Result<std::optional<EventView>> {
        if (index >= events.size()) {
          return std::optional<EventView>(std::nullopt);
        }
        const Event& e = events[index++];
        EventView view;
        view.type = e.type;
        view.vertex = e.vertex;
        view.edge = e.edge;
        view.payload = e.payload;
        view.rate_factor = e.rate_factor;
        view.pause = e.pause;
        return std::optional<EventView>(view);
      },
      sinks, resume);
}

Result<ShardedReplayStats> ShardedReplayer::ReplayFile(
    const std::string& path, const std::vector<EventSink*>& sinks,
    const ReplayCheckpoint* resume) {
  // Auto-detect by magic. A v2 stream feeds Run() borrowed views straight
  // out of the mmap'd block reader — no parse, no copy; CSV goes through
  // the zero-copy line parser. Either way Run() is format-blind, so
  // sharding, barriers and checkpoints behave identically (the golden
  // equivalence tests in tests/stream/v2_replay_equivalence_test.cc hold
  // the two byte-for-byte equal).
  GT_ASSIGN_OR_RETURN(const StreamFormat format, DetectStreamFormat(path));
  if (format == StreamFormat::kV2) {
    auto reader = std::make_shared<V2StreamReader>();
    GT_RETURN_NOT_OK(reader->Open(path));
    return Run([reader]() { return reader->Next(); }, sinks, resume);
  }
  auto reader = std::make_shared<BlockLineReader>();
  GT_RETURN_NOT_OK(reader->Open(path));
  auto scratch = std::make_shared<std::string>();
  return Run(
      [reader, scratch]() -> Result<std::optional<EventView>> {
        while (true) {
          bool terminated = true;
          Result<std::optional<std::string_view>> line =
              reader->NextLine(&terminated);
          if (!line.ok()) return line.status();
          if (!line->has_value()) return std::optional<EventView>(std::nullopt);
          Result<EventView> view = ParseEventLineView(**line, scratch.get());
          if (view.ok()) return std::optional<EventView>(*view);
          if (view.status().IsNotFound()) continue;  // blank / comment line
          return view.status().WithContext(
              "line " + std::to_string(reader->line_number()));
        }
      },
      sinks, resume);
}

Result<ShardedReplayStats> ShardedReplayer::Run(
    const SourceFn& source, const std::vector<EventSink*>& sinks,
    const ReplayCheckpoint* resume) {
  const size_t shards = options_.shards;
  if (shards == 0) return Status::InvalidArgument("shards must be >= 1");
  if (sinks.size() != shards) {
    return Status::InvalidArgument(
        "need exactly one sink per shard (" + std::to_string(shards) +
        " shards, " + std::to_string(sinks.size()) + " sinks)");
  }
  for (EventSink* sink : sinks) {
    if (sink == nullptr) return Status::InvalidArgument("null sink");
  }
  if (options_.total_rate_eps <= 0.0) {
    return Status::InvalidArgument("total_rate_eps must be positive");
  }
  if (options_.batch_events == 0) {
    return Status::InvalidArgument("batch_events must be >= 1");
  }
  if (options_.checkpoint_every > 0 && options_.checkpoint_path.empty()) {
    return Status::InvalidArgument("checkpoint_every requires checkpoint_path");
  }
  const size_t hash_shards =
      options_.total_shards == 0 ? shards : options_.total_shards;
  const size_t shard_offset = options_.shard_offset;
  if (shard_offset + shards > hash_shards) {
    return Status::InvalidArgument(
        "shard range [" + std::to_string(shard_offset) + ", " +
        std::to_string(shard_offset + shards) + ") exceeds total_shards " +
        std::to_string(hash_shards));
  }
  RunTelemetry* const telem =
      kTelemetryCompiled ? options_.telemetry : nullptr;
  if (telem != nullptr && telem->shards() < shards) {
    return Status::InvalidArgument(
        "telemetry hub has " + std::to_string(telem->shards()) +
        " slots for " + std::to_string(shards) + " shards");
  }

  // Per-sink wire handshake, before any lane starts: a sink answering kV2
  // has already emitted its preamble and its lane will hand it sealed v2
  // blocks; decliners stay on canonical CSV lines.
  std::vector<WireFormat> lane_wire(shards, WireFormat::kCsv);
  if (options_.wire_format != WireFormat::kCsv) {
    for (size_t s = 0; s < shards; ++s) {
      GT_ASSIGN_OR_RETURN(lane_wire[s], sinks[s]->NegotiateWireFormat(
                                            options_.wire_format));
    }
  }

  // Byte offsets each lane's sink chain had flushed when this segment
  // resumed; checkpoints record cumulative offsets across segments.
  std::vector<uint64_t> sink_bytes_base(shards, 0);
  if (resume != nullptr && !resume->sink_bytes.empty()) {
    if (resume->sink_bytes.size() != shards) {
      return Status::InvalidArgument(
          "resume checkpoint records sink bytes for " +
          std::to_string(resume->sink_bytes.size()) + " shards, run has " +
          std::to_string(shards));
    }
    sink_bytes_base = resume->sink_bytes;
  }

  // --- Counters seeded from the resume checkpoint (same accounting model
  // as StreamReplayer::Run: the final stats match an uninterrupted run).
  const uint64_t skip_entries = resume != nullptr ? resume->entries_consumed : 0;
  uint64_t entries = skip_entries;
  uint64_t events_enqueued = resume != nullptr ? resume->events_delivered : 0;
  uint64_t markers = resume != nullptr ? resume->markers : 0;
  uint64_t controls = resume != nullptr ? resume->controls : 0;
  double current_factor = (resume != nullptr && options_.honor_control_events)
                              ? resume->rate_factor
                              : 1.0;
  if (resume != nullptr && options_.checkpoint_rng != nullptr) {
    options_.checkpoint_rng->RestoreState(resume->rng_state);
  }
  const SinkTelemetry telemetry_base =
      resume != nullptr ? resume->telemetry : SinkTelemetry{};
  const uint64_t resume_base = events_enqueued;
  progress_.store(resume_base, std::memory_order_relaxed);
  local_delivered_.store(resume != nullptr ? resume->local_events : 0,
                         std::memory_order_relaxed);
  const uint64_t stop_at = options_.stop_after_events > 0
                               ? resume_base + options_.stop_after_events
                               : 0;

  MonotonicClock clock;
  const Timestamp run_started = clock.Now();
  const double per_lane_rate =
      options_.total_rate_eps / static_cast<double>(shards);

  EpochBarrier barrier(shards);
  std::atomic<bool> sink_failed{false};
  std::atomic<bool> checkpoint_failed{false};
  std::atomic<bool> hook_failed{false};
  // Written only inside barrier completions (serial under the barrier
  // mutex), read by this thread after the lanes are joined.
  Status hook_status;
  // Written only inside barrier completions (which run serially under the
  // barrier mutex) and by this thread after the lanes are joined.
  std::vector<MarkerRecord> marker_log;
  uint64_t checkpoints_written = 0;
  Status checkpoint_status;

  std::vector<std::unique_ptr<LaneState>> lanes;
  lanes.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    lanes.push_back(std::make_unique<LaneState>(options_.lane_queue_items));
  }

  auto current_telemetry = [&] {
    SinkTelemetry t = telemetry_base;
    for (EventSink* sink : sinks) t.Merge(sink->Telemetry());
    return t;
  };

  // Writes a checkpoint for a quiescent point: called from barrier
  // completions (all live lanes parked, their sinks idle — which is what
  // makes flushing every sink from the completing thread safe) and after
  // the final join. `false` on write failure.
  const CheckpointStore store(
      {options_.checkpoint_path,
       std::max<size_t>(1, options_.checkpoint_generations)});
  auto write_checkpoint_at = [&](const BarrierCmd& at) -> bool {
    if (options_.checkpoint_path.empty()) return true;
    ReplayCheckpoint cp;
    cp.entries_consumed = at.entries_consumed;
    cp.events_delivered = at.events_before;
    cp.markers = at.markers;
    cp.controls = at.controls;
    cp.rate_factor = at.factor_at;
    // Exact at a quiescent point: every enqueued in-range event up to the
    // barrier has been acknowledged by its sink.
    cp.local_events = local_delivered_.load(std::memory_order_relaxed);
    if (options_.checkpoint_rng != nullptr) {
      cp.rng_state = options_.checkpoint_rng->SaveState();
    }
    cp.telemetry = current_telemetry();
    if (options_.record_sink_bytes) {
      cp.sink_bytes.resize(shards);
      for (size_t s = 0; s < shards; ++s) {
        checkpoint_status = sinks[s]->Flush();
        if (!checkpoint_status.ok()) {
          checkpoint_failed.store(true, std::memory_order_release);
          return false;
        }
        cp.sink_bytes[s] = sink_bytes_base[s] + sinks[s]->bytes_delivered();
      }
    }
    checkpoint_status = store.Save(cp);
    if (checkpoint_status.ok()) {
      ++checkpoints_written;
      return true;
    }
    checkpoint_failed.store(true, std::memory_order_release);
    return false;
  };

  auto complete_barrier = [&](const BarrierCmd& cmd) {
    if (sink_failed.load(std::memory_order_acquire)) return;
    // Crash window: every lane is quiesced behind the barrier; for a
    // checkpoint epoch the record has not been published yet — a kill
    // here must resume from the previous checkpoint exactly-once.
    FaultPlan::Global().Hit(kCrashEpochBarrier);
    if (cmd.kind == BarrierCmd::Kind::kMarker) {
      const Timestamp now = clock.Now();
      marker_log.push_back(
          {cmd.label, now, static_cast<size_t>(cmd.events_before)});
      if (telem != nullptr) telem->markers().MarkerSent(cmd.label, now);
    } else if (cmd.kind == BarrierCmd::Kind::kCheckpoint) {
      write_checkpoint_at(cmd);
    }
    // Distributed hold point: every local lane is quiesced at this epoch;
    // block here until the coordinator releases it fleet-wide. Failure
    // aborts the run like a cancellation (drain + final checkpoint).
    if (options_.epoch_hook && cmd.kind != BarrierCmd::Kind::kCheckpoint &&
        !hook_failed.load(std::memory_order_acquire)) {
      const Status hs = options_.epoch_hook(cmd.global_epoch);
      if (!hs.ok()) {
        hook_status = hs;
        hook_failed.store(true, std::memory_order_release);
      }
    }
  };

  auto lane_main = [&](size_t shard) {
    LaneState& lane = *lanes[shard];
    EventSink* sink = sinks[shard];
    RateController rate(per_lane_rate, &clock);
    double lane_target = options_.total_rate_eps;
    if (resume != nullptr && options_.honor_control_events) {
      rate.SetFactor(resume->rate_factor);
    }
    ReplayStats& st = lane.stats;
    st.started = clock.Now();
    Timestamp bin_start = st.started;
    size_t bin_count = 0;
    auto roll_bins = [&](Timestamp now) {
      while (now - bin_start >= options_.stats_bin) {
        st.rate_series.push_back({bin_start, bin_count});
        bin_start = bin_start + options_.stats_bin;
        bin_count = 0;
      }
    };
    const bool serialized = sink->SupportsSerialized();
    const bool v2_wire = serialized && lane_wire[shard] == WireFormat::kV2;
    std::string out;
    V2BlockEncoder v2_encoder;
    EventView view;
    Event scratch;
    Status emit;
    // Serializes the current `view` into `out` in the negotiated wire
    // format: one sealed v2 block per batch (oversize batches seal and
    // continue — several blocks per delivery is still one valid stream)
    // or one canonical CSV line per event.
    auto serialize_one = [&] {
      if (v2_wire) {
        v2_encoder.Add(view.type, view.vertex, view.edge, view.payload,
                       view.rate_factor, view.pause);
        if (v2_encoder.Full()) v2_encoder.SealTo(&out);
      } else {
        view.AppendLine(&out);
      }
    };
    while (true) {
      std::optional<LaneItem> popped = lane.queue.TryPop();
      if (!popped.has_value()) {
        std::this_thread::yield();
        continue;
      }
      LaneItem item = std::move(*popped);
      if (item.kind == ItemKind::kEnd) break;
      if (item.kind == ItemKind::kBarrier) {
        const BarrierCmd& cmd = item.barrier;
        barrier.ArriveAndWait([&] { complete_barrier(cmd); });
        if (cmd.kind == BarrierCmd::Kind::kControl &&
            options_.honor_control_events) {
          if (cmd.control == EventType::kSetRate) {
            rate.SetFactor(cmd.rate_factor);
          } else {
            rate.Defer(cmd.pause);
          }
        }
        continue;
      }

      LaneBatch batch = std::move(item.batch);
      // Retarget at batch granularity: cheap enough to never touch the
      // per-event fast path, fine-grained enough for capacity windows
      // (a batch is ~256 events).
      if (options_.rate_target_eps != nullptr) {
        const double target =
            options_.rate_target_eps->load(std::memory_order_relaxed);
        if (target > 0.0 && target != lane_target) {
          rate.Retarget(target / static_cast<double>(shards));
          lane_target = target;
        }
      }
      Timestamp last_slot;
      size_t delivered = 0;
      // Lane sampling is per batch (the telemetry-flush granularity): the
      // first event of a sampled batch donates the throttle and serialize
      // spans; deliver covers the sink handoff; ack the post-batch flush.
      const bool sampled = telem != nullptr && telem->ShouldSample(shard);
      Timestamp span_start;
      if (serialized) {
        // Zero-copy path: pace each slot, serialize the canonical line
        // into the reusable buffer, hand the sink the whole batch once.
        out.clear();
        bool first = true;
        for (const LaneRecord& r : batch.records) {
          if (sampled && first) span_start = clock.Now();
          last_slot = rate.WaitForNextSlot();
          view.type = r.type;
          view.vertex = r.vertex;
          view.edge = r.edge;
          view.payload = batch.PayloadOf(r);
          if (sampled && first) {
            const Timestamp serialize_start = clock.Now();
            telem->RecordStage(shard, ReplayStage::kThrottle,
                               serialize_start - span_start);
            serialize_one();
            telem->RecordStage(shard, ReplayStage::kSerialize,
                               clock.Now() - serialize_start);
            first = false;
          } else {
            serialize_one();
          }
        }
        if (v2_wire) v2_encoder.SealTo(&out);
        const Timestamp deliver_start = sampled ? clock.Now() : Timestamp{};
        emit = sink->DeliverSerialized(out, batch.records.size());
        if (sampled) {
          telem->RecordStage(shard, ReplayStage::kDeliver,
                             clock.Now() - deliver_start);
        }
        if (emit.ok()) {
          delivered = batch.records.size();
          // Sink acked the whole batch; lane accounting not updated yet.
          // One Hit per record (not per batch) so a scripted crash index
          // counts delivered events regardless of batching.
          for (size_t i = 0; i < delivered; ++i) {
            FaultPlan::Global().Hit(kCrashPostDelivery);
          }
        }
      } else {
        // Decorated sinks (chaos/resilient/callback) need the per-event
        // path; one reusable Event keeps it allocation-free in steady
        // state too.
        bool first = true;
        for (const LaneRecord& r : batch.records) {
          if (sampled && first) span_start = clock.Now();
          last_slot = rate.WaitForNextSlot();
          scratch.type = r.type;
          scratch.vertex = r.vertex;
          scratch.edge = r.edge;
          scratch.payload.assign(batch.arena, r.payload_offset, r.payload_len);
          if (sampled && first) {
            const Timestamp deliver_start = clock.Now();
            telem->RecordStage(shard, ReplayStage::kThrottle,
                               deliver_start - span_start);
            emit = sink->DeliverSequenced(scratch, r.seq);
            telem->RecordStage(shard, ReplayStage::kDeliver,
                               clock.Now() - deliver_start);
            first = false;
          } else {
            emit = sink->DeliverSequenced(scratch, r.seq);
          }
          if (!emit.ok()) break;
          FaultPlan::Global().Hit(kCrashPostDelivery);
          ++delivered;
        }
      }
      if (delivered > 0) {
        // One telemetry flush per batch, not per event.
        const Timestamp ack_start = sampled ? clock.Now() : Timestamp{};
        st.events_delivered += delivered;
        progress_.fetch_add(delivered, std::memory_order_relaxed);
        local_delivered_.fetch_add(delivered, std::memory_order_relaxed);
        st.lag.Record(clock.Now() - last_slot);
        roll_bins(last_slot);
        bin_count += delivered;
        if (telem != nullptr) {
          telem->AddDelivered(shard, delivered);
          if (sampled) {
            telem->UpdateDeliveryCounters(
                shard, ToDeliveryCounters(sink->Telemetry()));
            telem->RecordStage(shard, ReplayStage::kAck,
                               clock.Now() - ack_start);
          }
        }
      }
      batch.Clear();
      (void)lane.recycle.TryPush(std::move(batch));
      if (!emit.ok()) {
        lane.status = emit.WithContext("shard " + std::to_string(shard));
        lane.failed.store(true, std::memory_order_release);
        sink_failed.store(true, std::memory_order_release);
        barrier.Drop();
        break;
      }
    }
    if (bin_count > 0) st.rate_series.push_back({bin_start, bin_count});
    st.finished = clock.Now();
    st.telemetry = sink->Telemetry();
    if (telem != nullptr) {
      telem->UpdateDeliveryCounters(shard, ToDeliveryCounters(st.telemetry));
    }
  };

  for (size_t s = 0; s < shards; ++s) {
    lanes[s]->thread = std::thread(lane_main, s);
  }

  // --- Reader: parse, partition, batch. ---------------------------------
  auto acquire_batch = [&](size_t s) -> LaneBatch {
    if (std::optional<LaneBatch> recycled = lanes[s]->recycle.TryPop()) {
      return std::move(*recycled);
    }
    LaneBatch batch;
    batch.Reserve(options_.batch_events);
    return batch;
  };
  std::vector<LaneBatch> open;
  open.reserve(shards);
  for (size_t s = 0; s < shards; ++s) open.push_back(acquire_batch(s));

  // Spins while the lane's queue is full (the lane is draining); false when
  // the lane failed, so the reader never wedges on a dead consumer.
  auto push_item = [&](size_t s, LaneItem&& item) -> bool {
    LaneState& lane = *lanes[s];
    while (!lane.queue.TryPush(std::move(item))) {
      if (lane.failed.load(std::memory_order_acquire)) return false;
      std::this_thread::yield();
    }
    return true;
  };
  auto flush_lane = [&](size_t s) {
    if (open[s].records.empty()) return;
    LaneItem item;
    item.kind = ItemKind::kBatch;
    item.batch = std::move(open[s]);
    push_item(s, std::move(item));
    open[s] = acquire_batch(s);
  };
  uint64_t epoch = 0;
  // Open batches flush first, so the barrier token follows every graph
  // event enqueued before it in every lane's FIFO queue.
  auto broadcast = [&](BarrierCmd cmd) {
    cmd.epoch = epoch++;
    for (size_t s = 0; s < shards; ++s) flush_lane(s);
    for (size_t s = 0; s < shards; ++s) {
      LaneItem item;
      item.kind = ItemKind::kBarrier;
      item.barrier = cmd;
      push_item(s, std::move(item));
    }
  };

  Status reader_status;
  bool cancelled = false;
  bool stopped = false;
  uint64_t to_skip = skip_entries;
  uint32_t read_tick = 0;
  while (true) {
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      cancelled = true;
      break;
    }
    if (sink_failed.load(std::memory_order_relaxed) ||
        checkpoint_failed.load(std::memory_order_relaxed) ||
        hook_failed.load(std::memory_order_relaxed)) {
      break;
    }
    // Read-stage span, sampled 1-in-N source pulls. The reader is
    // pipeline-global, so its samples land in slot 0 (RecordStage locks
    // the slot, sharing it with lane 0 is safe).
    const bool sample_read =
        telem != nullptr && ++read_tick % telem->sample_every() == 0;
    const Timestamp read_start = sample_read ? clock.Now() : Timestamp{};
    Result<std::optional<EventView>> next = source();
    if (sample_read) {
      telem->RecordStage(0, ReplayStage::kRead, clock.Now() - read_start);
    }
    if (!next.ok()) {
      reader_status = next.status();
      break;
    }
    if (!next->has_value()) {  // end of stream
      if (to_skip > 0) {
        reader_status = Status::InvalidArgument(
            "resume checkpoint lies beyond the end of the stream (" +
            std::to_string(to_skip) + " entries short)");
      }
      break;
    }
    if (to_skip > 0) {
      --to_skip;
      continue;
    }
    const EventView& e = **next;
    ++entries;

    if (IsControl(e.type)) {
      ++controls;
      if (options_.honor_control_events) {
        BarrierCmd cmd;
        cmd.kind = BarrierCmd::Kind::kControl;
        cmd.global_epoch = markers + controls;
        cmd.control = e.type;
        cmd.rate_factor = e.rate_factor;
        cmd.pause = e.pause;
        if (e.type == EventType::kSetRate) current_factor = e.rate_factor;
        broadcast(std::move(cmd));
      }
      continue;
    }
    if (e.type == EventType::kMarker) {
      ++markers;
      BarrierCmd cmd;
      cmd.kind = BarrierCmd::Kind::kMarker;
      cmd.global_epoch = markers + controls;
      cmd.label = std::string(e.payload);
      cmd.events_before = events_enqueued;
      broadcast(std::move(cmd));
      continue;
    }

    // Global shard first: every process counts every event (checkpoint
    // cadence, sequence numbers and epochs stay fleet-identical); only
    // the owner of the hash slot emits it.
    const size_t g = ShardOfEvent(e.type, e.vertex, e.edge, hash_shards);
    if (g >= shard_offset && g - shard_offset < shards) {
      const size_t s = g - shard_offset;
      if (!lanes[s]->failed.load(std::memory_order_relaxed)) {
        LaneBatch& batch = open[s];
        batch.Append(e.type, e.vertex, e.edge, e.payload, e.rate_factor,
                     e.pause, events_enqueued);
        if (batch.Full(options_.batch_events)) flush_lane(s);
      }
    }
    ++events_enqueued;
    if (options_.checkpoint_every > 0 &&
        events_enqueued % options_.checkpoint_every == 0) {
      BarrierCmd cmd;
      cmd.kind = BarrierCmd::Kind::kCheckpoint;
      cmd.entries_consumed = entries;
      cmd.events_before = events_enqueued;
      cmd.markers = markers;
      cmd.controls = controls;
      cmd.factor_at = current_factor;
      broadcast(std::move(cmd));
    }
    if (stop_at != 0 && events_enqueued >= stop_at) {
      stopped = true;
      break;
    }
  }

  // Drain: everything already enqueued (and counted) must reach its sink
  // before the final accounting — that is what makes the post-run
  // checkpoint exactly-once even for cancel/stop aborts.
  for (size_t s = 0; s < shards; ++s) flush_lane(s);
  for (size_t s = 0; s < shards; ++s) {
    LaneItem item;
    item.kind = ItemKind::kEnd;
    push_item(s, std::move(item));
  }
  for (size_t s = 0; s < shards; ++s) lanes[s]->thread.join();

  // --- Assemble the aggregate. ------------------------------------------
  ShardedReplayStats result;
  ReplayStats& agg = result.aggregate;
  agg.started = run_started;
  agg.finished = clock.Now();
  agg.events_delivered = resume_base;
  std::map<int64_t, size_t> merged_bins;
  const int64_t bin_nanos = options_.stats_bin.nanos();
  for (size_t s = 0; s < shards; ++s) {
    ReplayStats& lane_stats = lanes[s]->stats;
    agg.events_delivered += lane_stats.events_delivered;
    agg.lag.Merge(lane_stats.lag);
    for (const RateSample& sample : lane_stats.rate_series) {
      merged_bins[(sample.bin_start - run_started).nanos() / bin_nanos] +=
          sample.events;
    }
    result.per_shard.push_back(std::move(lane_stats));
  }
  for (const auto& [index, events] : merged_bins) {
    agg.rate_series.push_back(
        {run_started + options_.stats_bin * index, events});
  }
  if (hash_shards > shards) {
    // Shard-range runs keep stream-global accounting in the aggregate
    // (markers, controls, entries already are): every enqueued event was
    // counted exactly once fleet-wide. This range's own share is
    // local_delivered().
    agg.events_delivered = events_enqueued;
  }
  agg.markers = markers;
  agg.controls = controls;
  agg.marker_log = std::move(marker_log);
  agg.entries_consumed = entries;

  Status lane_error;
  for (size_t s = 0; s < shards; ++s) {
    if (!lanes[s]->status.ok()) {
      lane_error = lanes[s]->status;
      break;
    }
  }
  // The abort-point checkpoint: all enqueued events were drained, so the
  // record is exact — unless a lane failed, in which case no record that
  // claims them may be written.
  BarrierCmd final_at;
  final_at.entries_consumed = entries;
  final_at.events_before = events_enqueued;
  final_at.markers = markers;
  final_at.controls = controls;
  final_at.factor_at = current_factor;

  const bool hook_aborted = hook_failed.load(std::memory_order_acquire);
  if (cancelled || stopped || hook_aborted) {
    Status finish_status;
    for (EventSink* sink : sinks) {
      const Status st = sink->Finish();
      if (!st.ok() && finish_status.ok()) finish_status = st;
    }
    agg.telemetry = current_telemetry();
    if (lane_error.ok()) write_checkpoint_at(final_at);
    agg.checkpoints_written = checkpoints_written;
    agg.stopped_early = true;
    if (cancelled) {
      const std::string reason = options_.cancel->reason();
      return Status::Cancelled(reason.empty() ? "replay cancelled" : reason);
    }
    if (hook_aborted) {
      // Quiesce-and-wait abort: everything enqueued was drained and the
      // final checkpoint is exact, so a later resume continues
      // byte-exactly — the caller decides whether to re-dial or give up.
      return hook_status.WithContext("epoch hook");
    }
    GT_RETURN_NOT_OK(checkpoint_status.WithContext("final checkpoint"));
    GT_RETURN_NOT_OK(finish_status.WithContext("sink finish"));
    return result;
  }

  if (!lane_error.ok()) return lane_error.WithContext("sink delivery");
  if (!checkpoint_status.ok()) {
    return checkpoint_status.WithContext("periodic checkpoint");
  }
  if (!reader_status.ok()) return reader_status.WithContext("stream source");
  for (EventSink* sink : sinks) GT_RETURN_NOT_OK(sink->Finish());
  agg.telemetry = current_telemetry();
  if (options_.checkpoint_every > 0 && !write_checkpoint_at(final_at)) {
    return checkpoint_status.WithContext("final checkpoint");
  }
  agg.checkpoints_written = checkpoints_written;
  return result;
}

}  // namespace graphtides
