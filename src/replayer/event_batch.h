// The batch-arena unit shared by the stream producers and consumers that
// hand events between threads: the sharded replayer's reader -> lane queues
// and the generator's engine -> writer pipeline (§5.1 multi-threaded
// design). A batch is a vector of fixed-size records whose variable-size
// payload bytes live in one contiguous arena string; recycling batches
// through a return queue keeps the steady state allocation-free.
#ifndef GRAPHTIDES_REPLAYER_EVENT_BATCH_H_
#define GRAPHTIDES_REPLAYER_EVENT_BATCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "stream/event.h"

namespace graphtides {

/// \brief One event routed through a batch; payload bytes live in the
/// owning batch's arena.
struct EventRecord {
  EventType type = EventType::kAddVertex;
  VertexId vertex = 0;
  EdgeId edge;
  /// Global 0-based sequence number among the stream's graph events (used
  /// by the sharded replayer's DeliverSequenced path; 0 when unused).
  uint64_t seq = 0;
  size_t payload_offset = 0;
  size_t payload_len = 0;
  /// Control fields, carried so a batch can transport a full stream
  /// (markers/controls included), as the generator pipeline requires.
  double rate_factor = 1.0;
  Duration pause;
};

/// \brief A batch of records plus the arena backing their payloads.
struct EventBatch {
  std::vector<EventRecord> records;
  std::string arena;

  /// Sizing heuristic for a fresh batch's arena.
  static constexpr size_t kArenaReserveBytesPerEvent = 32;
  /// Producers should flush a batch early once its arena holds this much
  /// payload, so a batch never grows without bound on pathological
  /// payload sizes.
  static constexpr size_t kMaxArenaBytes = size_t{4} << 20;

  void Reserve(size_t batch_events) {
    records.reserve(batch_events);
    arena.reserve(batch_events * kArenaReserveBytesPerEvent);
  }

  /// Appends one record, copying `payload` into the arena.
  void Append(EventType type, VertexId vertex, const EdgeId& edge,
              std::string_view payload, double rate_factor, Duration pause,
              uint64_t seq = 0) {
    EventRecord record;
    record.type = type;
    record.vertex = vertex;
    record.edge = edge;
    record.seq = seq;
    record.payload_offset = arena.size();
    record.payload_len = payload.size();
    record.rate_factor = rate_factor;
    record.pause = pause;
    arena.append(payload);
    records.push_back(record);
  }

  std::string_view PayloadOf(const EventRecord& record) const {
    return std::string_view(arena).substr(record.payload_offset,
                                          record.payload_len);
  }

  /// True when a producer should hand the batch off (count or arena cap).
  bool Full(size_t batch_events) const {
    return records.size() >= batch_events || arena.size() >= kMaxArenaBytes;
  }

  /// Empties the batch, keeping records/arena capacity for recycling.
  void Clear() {
    records.clear();
    arena.clear();
  }
};

}  // namespace graphtides

#endif  // GRAPHTIDES_REPLAYER_EVENT_BATCH_H_
