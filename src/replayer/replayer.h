// The graph stream replayer (§4.1, §5.1): replays a stream file or an
// in-memory stream against an EventSink at a uniform, tunable rate.
//
// Architecture (mirrors the paper's Java implementation):
//   * a reader thread parses/loads events and fills a bounded SPSC queue,
//   * an emitter thread paces each event with a deadline-based
//     RateController (busy-waiting near deadlines) and delivers it,
//   * marker events are timestamped and logged (not delivered),
//   * control events retune the rate (SET_RATE) or suspend emission
//     (PAUSE).
#ifndef GRAPHTIDES_REPLAYER_REPLAYER_H_
#define GRAPHTIDES_REPLAYER_REPLAYER_H_

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "harness/telemetry/latency_histogram.h"
#include "harness/telemetry/run_telemetry.h"
#include "replayer/checkpoint.h"
#include "replayer/event_sink.h"
#include "replayer/rate_controller.h"
#include "stream/event.h"

namespace graphtides {

struct ReplayerOptions {
  /// Base emission rate in events/second (SET_RATE factor 1.0).
  double base_rate_eps = 10000.0;
  /// SPSC queue capacity between reader and emitter threads.
  size_t queue_capacity = 1 << 14;
  /// Bin width for the achieved-rate time series.
  Duration stats_bin = Duration::FromMillis(100);
  /// When false, controls (SET_RATE / PAUSE) are ignored — events stream
  /// at the base rate throughout.
  bool honor_control_events = true;

  // --- Supervision: cancellation + checkpoint/resume -------------------

  /// Cooperative cancellation (e.g. fired by a RunWatchdog). Polled before
  /// every emission; when fired the run writes a final checkpoint (if
  /// checkpointing is configured), flushes the sink, and returns
  /// Status::Cancelled.
  const CancellationToken* cancel = nullptr;
  /// Write a checkpoint every N delivered graph events (0 = disabled).
  /// Checkpoints are written after the Nth event was acknowledged, so a
  /// resume from one is exactly-once.
  uint64_t checkpoint_every = 0;
  /// Destination for checkpoints (atomic replace). Required when
  /// checkpoint_every > 0 or `cancel` should leave a resumable record.
  std::string checkpoint_path;
  /// Stop cleanly after delivering this many graph events (counted from
  /// the resume base; 0 = run to end of stream), flushing a final
  /// checkpoint. Models a controlled kill for resume tests and drills.
  uint64_t stop_after_events = 0;
  /// RNG whose state is snapshotted into checkpoints and restored on
  /// resume (e.g. the resilient sink's jitter RNG). Optional, not owned.
  Rng* checkpoint_rng = nullptr;
  /// Rotated checkpoint generations kept at checkpoint_path (>= 1). With
  /// more than one, a torn/corrupt newest record falls back to an intact
  /// ancestor on load (CheckpointStore::LoadLatestGood).
  size_t checkpoint_generations = 1;
  /// When true, every checkpoint first calls sink->Flush() and records the
  /// sink's cumulative flushed byte count into ReplayCheckpoint::sink_bytes
  /// — required for kill–resume byte-equivalence over file sinks (resume
  /// truncates the output to the checkpointed offset).
  bool record_sink_bytes = false;

  // --- Live rate retargeting (capacity search) -------------------------

  /// Mid-run offered-rate control: when set, the emitter polls this target
  /// (events/s) before every throttle and calls RateController::Retarget
  /// on change. The anchored-deadline schedule is re-anchored at the later
  /// of the previous deadline and now, so lowering the rate never triggers
  /// a catch-up burst and raising it takes effect on the next slot.
  /// Values <= 0 are ignored. Written by a capacity-search controller
  /// thread; not owned.
  const std::atomic<double>* rate_target_eps = nullptr;

  // --- Live telemetry --------------------------------------------------

  /// Optional telemetry hub (not owned). When set, the run records sampled
  /// per-stage spans, delivered counts, sink fault counters, and marker
  /// sends into it; a TelemetrySnapshotter attached to the same hub turns
  /// them into JSONL progress records. No-op under -DGT_TELEMETRY_OFF.
  RunTelemetry* telemetry = nullptr;
  /// Slot in the hub this replayer records into (hubs are per-run; a
  /// single replayer normally uses slot 0 of a 1-shard hub).
  size_t telemetry_shard = 0;
};

/// \brief One marker observation: the wall-clock instant the marker passed
/// through the emitter, for later correlation (§4.5 "watermark events").
struct MarkerRecord {
  std::string label;
  Timestamp time;
  /// Graph events delivered before this marker.
  size_t events_before = 0;
};

/// \brief Per-bin achieved throughput sample.
struct RateSample {
  Timestamp bin_start;
  size_t events = 0;
};

/// \brief Outcome of one replay run.
struct ReplayStats {
  size_t events_delivered = 0;
  size_t markers = 0;
  size_t controls = 0;
  Timestamp started;
  Timestamp finished;
  std::vector<MarkerRecord> marker_log;
  std::vector<RateSample> rate_series;
  /// Per-event emission lag: how far behind its scheduled deadline each
  /// event left the emitter (0 = perfectly timed). The spread of this
  /// distribution is the "range of rates" effect Fig. 3a reports at high
  /// target rates. A fixed-footprint histogram (not raw samples), so
  /// arbitrarily long runs cost constant memory and shard lanes merge
  /// losslessly into the aggregate.
  LatencyHistogram lag;
  /// Runtime-fault telemetry collected from the sink chain (retries,
  /// reconnects, counted drops, injected chaos faults). All zeros for
  /// plain sinks.
  SinkTelemetry telemetry;
  /// Source entries consumed across the whole logical run, including the
  /// segment replayed before a resume checkpoint.
  uint64_t entries_consumed = 0;
  /// True when the run ended at stop_after_events instead of the stream's
  /// end (cancellation instead returns Status::Cancelled).
  bool stopped_early = false;
  /// Checkpoints written during the run (periodic + final).
  uint64_t checkpoints_written = 0;

  Duration Elapsed() const { return finished - started; }
  /// Mean achieved rate over the whole run (events/second).
  double AchievedRateEps() const {
    const double secs = Elapsed().seconds();
    return secs > 0.0 ? static_cast<double>(events_delivered) / secs : 0.0;
  }
};

/// \brief Replays one stream against one sink (one event source per stream,
/// per the paper's concurrency model; run several replayers for parallel
/// load).
class StreamReplayer {
 public:
  explicit StreamReplayer(ReplayerOptions options) : options_(options) {}

  /// \brief Replays an in-memory stream. Blocks until done or failed.
  ///
  /// With `resume`, emission starts at the checkpoint's stream offset and
  /// all counters (events_delivered, markers, controls, telemetry baseline,
  /// rate factor, checkpoint RNG) continue from the checkpointed values, so
  /// the final stats match an uninterrupted run; started/finished and the
  /// rate/lag series cover only the resumed segment.
  Result<ReplayStats> Replay(const std::vector<Event>& events, EventSink* sink,
                             const ReplayCheckpoint* resume = nullptr);

  /// Streams a file without loading it fully (reader thread parses lines
  /// while the emitter drains the queue).
  Result<ReplayStats> ReplayFile(const std::string& path, EventSink* sink,
                                 const ReplayCheckpoint* resume = nullptr);

  /// \brief Live progress counter: graph events delivered so far in the
  /// current run (cumulative across a resume). Safe to read from another
  /// thread — this is the probe a RunWatchdog polls for liveness.
  uint64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }

 private:
  /// Pull-based event source; nullopt signals end of stream.
  using SourceFn = std::function<Result<std::optional<Event>>()>;

  Result<ReplayStats> Run(const SourceFn& source, EventSink* sink,
                          const ReplayCheckpoint* resume);

  ReplayerOptions options_;
  std::atomic<uint64_t> progress_{0};
};

}  // namespace graphtides

#endif  // GRAPHTIDES_REPLAYER_REPLAYER_H_
