// The graph stream replayer (§4.1, §5.1): replays a stream file or an
// in-memory stream against an EventSink at a uniform, tunable rate.
//
// Architecture (mirrors the paper's Java implementation):
//   * a reader thread parses/loads events and fills a bounded SPSC queue,
//   * an emitter thread paces each event with a deadline-based
//     RateController (busy-waiting near deadlines) and delivers it,
//   * marker events are timestamped and logged (not delivered),
//   * control events retune the rate (SET_RATE) or suspend emission
//     (PAUSE).
#ifndef GRAPHTIDES_REPLAYER_REPLAYER_H_
#define GRAPHTIDES_REPLAYER_REPLAYER_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "replayer/event_sink.h"
#include "replayer/rate_controller.h"
#include "stream/event.h"

namespace graphtides {

struct ReplayerOptions {
  /// Base emission rate in events/second (SET_RATE factor 1.0).
  double base_rate_eps = 10000.0;
  /// SPSC queue capacity between reader and emitter threads.
  size_t queue_capacity = 1 << 14;
  /// Bin width for the achieved-rate time series.
  Duration stats_bin = Duration::FromMillis(100);
  /// When false, controls (SET_RATE / PAUSE) are ignored — events stream
  /// at the base rate throughout.
  bool honor_control_events = true;
};

/// \brief One marker observation: the wall-clock instant the marker passed
/// through the emitter, for later correlation (§4.5 "watermark events").
struct MarkerRecord {
  std::string label;
  Timestamp time;
  /// Graph events delivered before this marker.
  size_t events_before = 0;
};

/// \brief Per-bin achieved throughput sample.
struct RateSample {
  Timestamp bin_start;
  size_t events = 0;
};

/// \brief Outcome of one replay run.
struct ReplayStats {
  size_t events_delivered = 0;
  size_t markers = 0;
  size_t controls = 0;
  Timestamp started;
  Timestamp finished;
  std::vector<MarkerRecord> marker_log;
  std::vector<RateSample> rate_series;
  /// Per-event emission lag in microseconds: how far behind its scheduled
  /// deadline each event left the emitter (0 = perfectly timed). The
  /// spread of this distribution is the "range of rates" effect Fig. 3a
  /// reports at high target rates.
  std::vector<double> lag_us;
  /// Runtime-fault telemetry collected from the sink chain (retries,
  /// reconnects, counted drops, injected chaos faults). All zeros for
  /// plain sinks.
  SinkTelemetry telemetry;

  Duration Elapsed() const { return finished - started; }
  /// Mean achieved rate over the whole run (events/second).
  double AchievedRateEps() const {
    const double secs = Elapsed().seconds();
    return secs > 0.0 ? static_cast<double>(events_delivered) / secs : 0.0;
  }
};

/// \brief Replays one stream against one sink (one event source per stream,
/// per the paper's concurrency model; run several replayers for parallel
/// load).
class StreamReplayer {
 public:
  explicit StreamReplayer(ReplayerOptions options) : options_(options) {}

  /// Replays an in-memory stream. Blocks until done or failed.
  Result<ReplayStats> Replay(const std::vector<Event>& events,
                             EventSink* sink);

  /// Streams a file without loading it fully (reader thread parses lines
  /// while the emitter drains the queue).
  Result<ReplayStats> ReplayFile(const std::string& path, EventSink* sink);

 private:
  /// Pull-based event source; nullopt signals end of stream.
  using SourceFn = std::function<Result<std::optional<Event>>()>;

  Result<ReplayStats> Run(const SourceFn& source, EventSink* sink);

  ReplayerOptions options_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_REPLAYER_REPLAYER_H_
