// Resilient delivery: an EventSink decorator that gives any inner sink
// retry with exponential backoff + jitter, transport reconnection, a
// per-delivery timeout, and a configurable degradation policy. This is the
// harness-side half of runtime fault tolerance (§4.1: the test harness must
// survive — and measure — misbehaving systems under test): transient
// failures, peer resets, and overload surface as retries, reconnects, and
// counted drops instead of aborted runs.
#ifndef GRAPHTIDES_REPLAYER_RESILIENT_SINK_H_
#define GRAPHTIDES_REPLAYER_RESILIENT_SINK_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "replayer/event_sink.h"

namespace graphtides {

/// \brief What happens when a delivery's retry budget (or timeout) is
/// exhausted.
enum class DegradationPolicy {
  /// Return the last error; the replayer aborts the run (strictest — the
  /// historic behaviour, but after the configured retries).
  kFailFast,
  /// Drop the event, count it, and report success: the run continues with
  /// a known, measured loss (at-most-once under sustained faults).
  kDropAndCount,
  /// Keep retrying past the budget (capped backoff) until the delivery
  /// succeeds or the per-delivery timeout expires — blocking is the
  /// backpressure channel (§3.2).
  kBlock,
};

/// Parses "fail" / "drop" / "block" (CLI vocabulary).
Result<DegradationPolicy> ParseDegradationPolicy(const std::string& name);
std::string_view DegradationPolicyName(DegradationPolicy policy);

struct ResilientSinkOptions {
  /// Retries per delivery before the degradation policy kicks in
  /// (ignored by kBlock).
  uint32_t retry_budget = 5;
  Duration initial_backoff = Duration::FromMillis(1);
  double backoff_multiplier = 2.0;
  Duration max_backoff = Duration::FromMillis(100);
  /// Uniform jitter as a fraction of the backoff (0.2 = ±20%); decorrelates
  /// retry storms across parallel replayers.
  double jitter = 0.2;
  uint64_t jitter_seed = 7;
  /// Wall-clock budget for one delivery across all its attempts
  /// (zero = unlimited). Expiry is terminal under every policy.
  Duration deliver_timeout = Duration::Zero();
  DegradationPolicy policy = DegradationPolicy::kFailFast;
};

/// \brief Per-run resilience counters.
struct ResilienceStats {
  uint64_t deliveries = 0;
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t reconnects = 0;
  uint64_t failed_reconnects = 0;
  /// Deliveries abandoned under kDropAndCount.
  uint64_t drops = 0;
  /// Deliveries whose error was returned to the caller.
  uint64_t giveups = 0;
  Duration backoff_time;
};

/// \brief EventSink decorator that retries transient inner failures.
///
/// Retryable codes: Unavailable, IoError, Timeout, CapacityExceeded — and
/// PreconditionFailed when a reconnect hook is present (a disconnected
/// transport reports its state that way). Everything else is a programming
/// error and is returned immediately, regardless of policy.
class ResilientSink final : public EventSink {
 public:
  /// Re-establishes the underlying transport (e.g. TcpSink::Reconnect).
  using ReconnectFn = std::function<Status()>;
  using SleepFn = std::function<void(Duration)>;

  ResilientSink(EventSink* inner, ResilientSinkOptions options,
                ReconnectFn reconnect = {});

  /// Replaces the real sleep (test hook); the backoff_time stat still
  /// accounts the requested durations.
  void set_sleep_fn(SleepFn fn) { sleep_ = std::move(fn); }
  /// Replaces the timeout clock (test hook). Not owned.
  void set_clock(const Clock* clock) { clock_ = clock; }

  Status Deliver(const Event& event) override;
  Status Finish() override { return inner_->Finish(); }
  Status Flush() override { return inner_->Flush(); }
  uint64_t bytes_delivered() const override {
    return inner_->bytes_delivered();
  }
  SinkTelemetry Telemetry() const override;

  const ResilienceStats& stats() const { return stats_; }

  /// \brief The jitter RNG, exposed so a checkpointing replayer can
  /// snapshot and restore it (ReplayerOptions::checkpoint_rng) — resumed
  /// runs then reproduce the exact backoff-jitter sequence.
  Rng* mutable_jitter_rng() { return &jitter_rng_; }

 private:
  /// True for errors worth retrying.
  bool Retryable(const Status& status) const;
  /// Backoff for the given retry ordinal (0-based), jittered and capped.
  Duration BackoffFor(uint32_t retry);

  EventSink* inner_;
  ResilientSinkOptions options_;
  ReconnectFn reconnect_;
  SleepFn sleep_;
  const Clock* clock_;
  MonotonicClock default_clock_;
  Rng jitter_rng_;
  ResilienceStats stats_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_REPLAYER_RESILIENT_SINK_H_
