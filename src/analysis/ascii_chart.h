// Terminal-friendly time-series rendering (§4.5: "Tools for the assessment
// include appropriate visualizations (e.g., time series plots)"). Renders
// series as Unicode block sparklines and multi-series stacked charts, the
// textual analogue of the paper's Fig. 3 plots.
#ifndef GRAPHTIDES_ANALYSIS_ASCII_CHART_H_
#define GRAPHTIDES_ANALYSIS_ASCII_CHART_H_

#include <string>
#include <vector>

namespace graphtides {

/// \brief Renders `values` as a one-line sparkline (8 block levels).
///
/// Values are scaled to [min, max] of the series; negative-to-positive
/// series render relative to their own range. Empty input yields "".
/// If `width` > 0 and the series is longer, it is downsampled by averaging
/// consecutive buckets.
std::string RenderSparkline(const std::vector<double>& values,
                            size_t width = 0);

/// \brief One labelled series for a stacked chart.
struct ChartSeries {
  std::string label;
  std::vector<double> values;
};

/// \brief Renders aligned sparkline rows with labels and [min..max]
/// annotations — a stacked time-series "plot" like Fig. 3d.
std::string RenderStackedChart(const std::vector<ChartSeries>& series,
                               size_t width = 80);

}  // namespace graphtides

#endif  // GRAPHTIDES_ANALYSIS_ASCII_CHART_H_
