#include "analysis/trend.h"

#include <algorithm>

namespace graphtides {

void TrendDetector::Observe(uint64_t key, Timestamp time) {
  std::deque<Timestamp>& times = observations_[key];
  times.push_back(time);
  Prune(times, time);
}

void TrendDetector::Prune(std::deque<Timestamp>& times, Timestamp now) const {
  // Keep two windows of history: [now - 2W, now].
  const Timestamp cutoff = now - options_.window - options_.window;
  while (!times.empty() && times.front() < cutoff) times.pop_front();
}

uint64_t TrendDetector::CountInWindow(uint64_t key, Timestamp now) const {
  auto it = observations_.find(key);
  if (it == observations_.end()) return 0;
  const Timestamp window_start = now - options_.window;
  uint64_t count = 0;
  for (Timestamp t : it->second) {
    if (t >= window_start && t <= now) ++count;
  }
  return count;
}

std::vector<Trend> TrendDetector::TrendingAt(Timestamp now) const {
  std::vector<Trend> trends;
  const Timestamp window_start = now - options_.window;
  const Timestamp prev_start = window_start - options_.window;
  for (const auto& [key, times] : observations_) {
    uint64_t current = 0;
    uint64_t previous = 0;
    for (Timestamp t : times) {
      if (t > now) continue;
      if (t >= window_start) {
        ++current;
      } else if (t >= prev_start) {
        ++previous;
      }
    }
    if (current < options_.min_count) continue;
    const double growth =
        previous == 0 ? static_cast<double>(current)
                      : static_cast<double>(current) /
                            static_cast<double>(previous);
    if (previous == 0 || growth >= options_.growth_factor) {
      trends.push_back({key, current, previous, growth});
    }
  }
  std::sort(trends.begin(), trends.end(), [](const Trend& a, const Trend& b) {
    if (a.growth != b.growth) return a.growth > b.growth;
    return a.key < b.key;
  });
  return trends;
}

}  // namespace graphtides
