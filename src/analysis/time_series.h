// Time-series containers and statistics for result-log analysis (§4.5:
// "appropriate visualizations (e.g., time series plots) and statistical
// time series analyses (e.g., cross-correlations)").
#ifndef GRAPHTIDES_ANALYSIS_TIME_SERIES_H_
#define GRAPHTIDES_ANALYSIS_TIME_SERIES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/stats.h"

namespace graphtides {

/// \brief One timestamped observation.
struct TimePoint {
  Timestamp time;
  double value = 0.0;
};

/// \brief Ordered sequence of timestamped samples of one metric.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Appends a sample; samples may arrive unordered and are sorted lazily.
  void Add(Timestamp time, double value);

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Samples in time order.
  const std::vector<TimePoint>& points() const;

  Timestamp start() const;
  Timestamp end() const;

  RunningStats ValueStats() const;

  /// \brief Mean of samples per fixed-width bin over [from, to).
  /// Bins without samples get `fill`.
  std::vector<double> ResampleMean(Timestamp from, Timestamp to, Duration bin,
                                   double fill = 0.0) const;

  /// \brief Sum of samples per bin (for count-style metrics; divide by the
  /// bin width for a rate).
  std::vector<double> ResampleSum(Timestamp from, Timestamp to,
                                  Duration bin) const;

 private:
  void EnsureSorted() const;

  std::string name_;
  mutable std::vector<TimePoint> points_;
  mutable bool sorted_ = true;
};

/// \brief Pearson correlation of two equal-length vectors; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// \brief Cross-correlation of two binned series at integer lag `k`
/// (b shifted k bins later than a). |k| must be < min(size).
double CrossCorrelationAtLag(const std::vector<double>& a,
                             const std::vector<double>& b, int lag);

/// \brief Lag in [-max_lag, max_lag] with the strongest absolute
/// cross-correlation; also outputs that correlation.
int BestCrossCorrelationLag(const std::vector<double>& a,
                            const std::vector<double>& b, int max_lag,
                            double* correlation);

}  // namespace graphtides

#endif  // GRAPHTIDES_ANALYSIS_TIME_SERIES_H_
