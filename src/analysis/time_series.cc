#include "analysis/time_series.h"

#include <algorithm>
#include <cmath>

namespace graphtides {

void TimeSeries::Add(Timestamp time, double value) {
  if (!points_.empty() && time < points_.back().time) sorted_ = false;
  points_.push_back({time, value});
}

void TimeSeries::EnsureSorted() const {
  if (sorted_) return;
  std::stable_sort(
      points_.begin(), points_.end(),
      [](const TimePoint& a, const TimePoint& b) { return a.time < b.time; });
  sorted_ = true;
}

const std::vector<TimePoint>& TimeSeries::points() const {
  EnsureSorted();
  return points_;
}

Timestamp TimeSeries::start() const {
  EnsureSorted();
  return points_.empty() ? Timestamp() : points_.front().time;
}

Timestamp TimeSeries::end() const {
  EnsureSorted();
  return points_.empty() ? Timestamp() : points_.back().time;
}

RunningStats TimeSeries::ValueStats() const {
  RunningStats rs;
  for (const TimePoint& p : points_) rs.Add(p.value);
  return rs;
}

std::vector<double> TimeSeries::ResampleMean(Timestamp from, Timestamp to,
                                             Duration bin, double fill) const {
  EnsureSorted();
  std::vector<double> out;
  if (to <= from || bin <= Duration::Zero()) return out;
  const size_t bins = static_cast<size_t>(
      ((to - from).nanos() + bin.nanos() - 1) / bin.nanos());
  std::vector<double> sums(bins, 0.0);
  std::vector<size_t> counts(bins, 0);
  for (const TimePoint& p : points_) {
    if (p.time < from || p.time >= to) continue;
    const size_t idx =
        static_cast<size_t>((p.time - from).nanos() / bin.nanos());
    sums[idx] += p.value;
    ++counts[idx];
  }
  out.resize(bins);
  for (size_t i = 0; i < bins; ++i) {
    out[i] = counts[i] > 0 ? sums[i] / static_cast<double>(counts[i]) : fill;
  }
  return out;
}

std::vector<double> TimeSeries::ResampleSum(Timestamp from, Timestamp to,
                                            Duration bin) const {
  EnsureSorted();
  std::vector<double> out;
  if (to <= from || bin <= Duration::Zero()) return out;
  const size_t bins = static_cast<size_t>(
      ((to - from).nanos() + bin.nanos() - 1) / bin.nanos());
  out.assign(bins, 0.0);
  for (const TimePoint& p : points_) {
    if (p.time < from || p.time >= to) continue;
    const size_t idx =
        static_cast<size_t>((p.time - from).nanos() / bin.nanos());
    out[idx] += p.value;
  }
  return out;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double CrossCorrelationAtLag(const std::vector<double>& a,
                             const std::vector<double>& b, int lag) {
  // Positive lag: b lags behind a by `lag` bins -> compare a[i] to b[i+lag].
  std::vector<double> xa;
  std::vector<double> xb;
  const int na = static_cast<int>(a.size());
  const int nb = static_cast<int>(b.size());
  for (int i = 0; i < na; ++i) {
    const int j = i + lag;
    if (j < 0 || j >= nb) continue;
    xa.push_back(a[i]);
    xb.push_back(b[j]);
  }
  return PearsonCorrelation(xa, xb);
}

int BestCrossCorrelationLag(const std::vector<double>& a,
                            const std::vector<double>& b, int max_lag,
                            double* correlation) {
  int best_lag = 0;
  double best = 0.0;
  for (int lag = -max_lag; lag <= max_lag; ++lag) {
    const double c = CrossCorrelationAtLag(a, b, lag);
    if (std::abs(c) > std::abs(best)) {
      best = c;
      best_lag = lag;
    }
  }
  if (correlation != nullptr) *correlation = best;
  return best_lag;
}

}  // namespace graphtides
