#include "analysis/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace graphtides {

namespace {

// Eight block glyphs from lowest to full.
const char* const kBlocks[] = {"▁", "▂", "▃",
                               "▄", "▅", "▆",
                               "▇", "█"};

std::vector<double> Downsample(const std::vector<double>& values,
                               size_t width) {
  if (width == 0 || values.size() <= width) return values;
  std::vector<double> out(width, 0.0);
  std::vector<size_t> counts(width, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    const size_t bucket = i * width / values.size();
    out[bucket] += values[i];
    ++counts[bucket];
  }
  for (size_t b = 0; b < width; ++b) {
    if (counts[b] > 0) out[b] /= static_cast<double>(counts[b]);
  }
  return out;
}

}  // namespace

std::string RenderSparkline(const std::vector<double>& values, size_t width) {
  if (values.empty()) return "";
  const std::vector<double> sampled = Downsample(values, width);
  double lo = sampled[0];
  double hi = sampled[0];
  for (double v : sampled) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  const double span = hi - lo;
  for (double v : sampled) {
    size_t level = 0;
    if (span > 0) {
      level = static_cast<size_t>((v - lo) / span * 7.999);
      level = std::min<size_t>(level, 7);
    }
    out += kBlocks[level];
  }
  return out;
}

std::string RenderStackedChart(const std::vector<ChartSeries>& series,
                               size_t width) {
  size_t label_width = 0;
  for (const ChartSeries& s : series) {
    label_width = std::max(label_width, s.label.size());
  }
  std::string out;
  for (const ChartSeries& s : series) {
    double lo = 0.0;
    double hi = 0.0;
    if (!s.values.empty()) {
      lo = hi = s.values[0];
      for (double v : s.values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    char range[64];
    std::snprintf(range, sizeof(range), "  [%.3g .. %.3g]", lo, hi);
    out += s.label;
    out.append(label_width - s.label.size() + 2, ' ');
    out += RenderSparkline(s.values, width);
    out += range;
    out += '\n';
  }
  return out;
}

}  // namespace graphtides
