// Sliding-window trend detection (Table 1: "Temporal analyses — trend
// analyses on graph properties"; §2.4: "individuals that attract a lot of
// new friends within a specified period").
#ifndef GRAPHTIDES_ANALYSIS_TREND_H_
#define GRAPHTIDES_ANALYSIS_TREND_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/clock.h"

namespace graphtides {

struct TrendDetectorOptions {
  /// Width of the current and reference windows.
  Duration window = Duration::FromSeconds(10.0);
  /// A key is trending if current-window count >= growth_factor *
  /// previous-window count (and >= min_count).
  double growth_factor = 3.0;
  uint64_t min_count = 5;
};

struct Trend {
  uint64_t key = 0;
  uint64_t current_count = 0;
  uint64_t previous_count = 0;
  double growth = 0.0;
};

/// \brief Streams (key, time) observations and reports keys whose recent
/// activity outgrows their own baseline.
class TrendDetector {
 public:
  explicit TrendDetector(TrendDetectorOptions options = {})
      : options_(options) {}

  /// Records one observation (e.g. "vertex gained a follower at t").
  /// Observations must arrive in non-decreasing time order.
  void Observe(uint64_t key, Timestamp time);

  /// Keys trending at `now`, sorted by descending growth.
  std::vector<Trend> TrendingAt(Timestamp now) const;

  /// Observations of `key` inside the current window [now - W, now].
  uint64_t CountInWindow(uint64_t key, Timestamp now) const;

  size_t tracked_keys() const { return observations_.size(); }

 private:
  void Prune(std::deque<Timestamp>& times, Timestamp now) const;

  TrendDetectorOptions options_;
  std::unordered_map<uint64_t, std::deque<Timestamp>> observations_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_ANALYSIS_TREND_H_
