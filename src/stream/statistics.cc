#include "stream/statistics.h"

#include <algorithm>
#include <sstream>

#include "stream/validator.h"

namespace graphtides {

void StreamStatisticsBuilder::Add(const Event& e) {
  StreamStatistics& s = stats_;
  ++s.total_entries;
  ++s.by_type[static_cast<size_t>(e.type)];
  if (e.type == EventType::kMarker) {
    ++s.markers;
    return;
  }
  if (IsControl(e.type)) {
    ++s.controls;
    return;
  }
  ++s.graph_ops;
  const bool is_topology = IsTopologyChange(e.type);
  if (is_topology) {
    ++s.topology_changes;
  } else {
    ++s.state_updates;
  }
  if (IsVertexOp(e.type)) ++s.vertex_ops;
  if (IsEdgeOp(e.type)) ++s.edge_ops;
  if (IsAddOp(e.type)) ++s.add_ops;
  if (IsRemoveOp(e.type)) ++s.remove_ops;

  // Interleaving run-length accounting over graph ops only.
  if (!have_prev_class_ || is_topology != prev_is_topology_) {
    if (have_prev_class_) {
      run_total_ += current_run_;
      ++run_count_;
    }
    current_run_ = 1;
    prev_is_topology_ = is_topology;
    have_prev_class_ = true;
  } else {
    ++current_run_;
  }

  // Track sizes; ignore invalid events the same way a SUT would reject
  // them.
  if (shadow_.Check(e).ok()) {
    s.peak_vertices = std::max(s.peak_vertices, shadow_.num_vertices());
    s.peak_edges = std::max(s.peak_edges, shadow_.num_edges());
  }
}

StreamStatistics StreamStatisticsBuilder::Snapshot() const {
  StreamStatistics s = stats_;
  size_t run_count = run_count_;
  size_t run_total = run_total_;
  if (have_prev_class_) {
    run_total += current_run_;
    ++run_count;
  }
  if (s.graph_ops > 0) {
    s.topology_ratio = static_cast<double>(s.topology_changes) /
                       static_cast<double>(s.graph_ops);
    s.vertex_op_ratio =
        static_cast<double>(s.vertex_ops) / static_cast<double>(s.graph_ops);
  }
  if (s.add_ops + s.remove_ops > 0) {
    s.add_ratio = static_cast<double>(s.add_ops) /
                  static_cast<double>(s.add_ops + s.remove_ops);
  }
  if (run_count > 0) {
    s.mean_run_length =
        static_cast<double>(run_total) / static_cast<double>(run_count);
  }
  s.final_vertices = shadow_.num_vertices();
  s.final_edges = shadow_.num_edges();
  return s;
}

StreamStatistics ComputeStreamStatistics(const std::vector<Event>& events) {
  StreamStatisticsBuilder builder;
  for (const Event& e : events) builder.Add(e);
  return builder.Snapshot();
}

std::string StreamStatistics::ToString() const {
  std::ostringstream os;
  os << "stream entries: " << total_entries << " (graph ops " << graph_ops
     << ", markers " << markers << ", controls " << controls << ")\n";
  os << "event mix: topology " << topology_changes << " / state "
     << state_updates << " (topology ratio " << topology_ratio << ")\n";
  os << "direction: adds " << add_ops << " / removes " << remove_ops
     << " (add ratio " << add_ratio << ")\n";
  os << "types: vertex ops " << vertex_ops << " / edge ops " << edge_ops
     << " (vertex ratio " << vertex_op_ratio << ")\n";
  os << "interleaving: mean run length " << mean_run_length << "\n";
  os << "final graph: " << final_vertices << " vertices, " << final_edges
     << " edges (peak " << peak_vertices << "/" << peak_edges << ")";
  return os.str();
}

}  // namespace graphtides
