// Descriptive statistics of a graph stream, mirroring the workload property
// taxonomy of §4.4.1: stream composition (event mix, interleaving), topology
// changes (direction, types), and state changes (types).
#ifndef GRAPHTIDES_STREAM_STATISTICS_H_
#define GRAPHTIDES_STREAM_STATISTICS_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "stream/event.h"
#include "stream/validator.h"

namespace graphtides {

/// \brief Aggregate properties of a stream.
struct StreamStatistics {
  size_t total_entries = 0;
  size_t graph_ops = 0;
  size_t markers = 0;
  size_t controls = 0;

  /// Count per EventType (indexed by the enum's underlying value).
  std::array<size_t, 9> by_type{};

  size_t topology_changes = 0;  // add/remove vertex/edge
  size_t state_updates = 0;     // update vertex/edge
  size_t vertex_ops = 0;
  size_t edge_ops = 0;
  size_t add_ops = 0;
  size_t remove_ops = 0;

  /// §4.4.1 "Event mix": topology-changing / graph ops.
  double topology_ratio = 0.0;
  /// §4.4.1 "Direction": adds / (adds + removes).
  double add_ratio = 0.0;
  /// §4.4.1 "Types": vertex ops / graph ops.
  double vertex_op_ratio = 0.0;

  /// §4.4.1 "Interleaving": mean run length of consecutive events of the
  /// same class (topology vs. state). A perfectly alternating stream has
  /// mean run length 1; a two-phase stream has very long runs.
  double mean_run_length = 0.0;

  /// Graph size after the full stream (valid events only).
  size_t final_vertices = 0;
  size_t final_edges = 0;
  /// Peak sizes during the stream.
  size_t peak_vertices = 0;
  size_t peak_edges = 0;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// \brief Incremental single-pass computation of StreamStatistics.
///
/// Feed events one at a time with Add(); Snapshot() finalizes the derived
/// ratios at any point. Streaming callers (gt_generate --stream-out) tee
/// events through a builder instead of materializing the stream.
class StreamStatisticsBuilder {
 public:
  void Add(const Event& event);

  /// Statistics over everything added so far.
  StreamStatistics Snapshot() const;

 private:
  StreamStatistics stats_;
  StreamValidator shadow_;
  // Interleaving run-length accounting over graph ops only.
  bool have_prev_class_ = false;
  bool prev_is_topology_ = false;
  size_t run_count_ = 0;
  size_t run_total_ = 0;
  size_t current_run_ = 0;
};

/// \brief Single-pass computation of StreamStatistics.
StreamStatistics ComputeStreamStatistics(const std::vector<Event>& events);

}  // namespace graphtides

#endif  // GRAPHTIDES_STREAM_STATISTICS_H_
