#include "stream/event_view.h"

#include "common/string_util.h"

namespace graphtides {

namespace {

/// Scans one CSV field of `line` starting at *i, honoring the same quoting
/// rules as ParseCsvLine (common/csv.cc). On success *field views either
/// into `line` (unquoted, or quoted without escapes) or into `scratch`
/// (quoted with doubled quotes, unescaped by appending — the caller must
/// have reserved enough scratch capacity that appends cannot reallocate),
/// and *i is left on the terminating ',' or at end of line.
Status ScanCsvField(std::string_view line, size_t* i, std::string* scratch,
                    std::string_view* field) {
  const size_t n = line.size();
  size_t pos = *i;
  if (pos < n && line[pos] == '"') {
    ++pos;
    const size_t content_start = pos;
    bool has_escapes = false;
    while (pos < n) {
      if (line[pos] != '"') {
        ++pos;
      } else if (pos + 1 < n && line[pos + 1] == '"') {
        has_escapes = true;
        pos += 2;
      } else {
        break;  // closing quote
      }
    }
    if (pos >= n) return Status::ParseError("unterminated quoted field");
    if (!has_escapes) {
      *field = line.substr(content_start, pos - content_start);
    } else {
      const size_t offset = scratch->size();
      for (size_t j = content_start; j < pos; ++j) {
        scratch->push_back(line[j]);
        if (line[j] == '"') ++j;  // collapse the doubled quote
      }
      *field = std::string_view(*scratch).substr(offset);
    }
    ++pos;  // past the closing quote
    if (pos < n && line[pos] != ',') {
      return Status::ParseError("characters after closing quote");
    }
    *i = pos;
    return Status::OK();
  }
  const size_t start = pos;
  while (pos < n && line[pos] != ',') {
    if (line[pos] == '"') {
      return Status::ParseError("unexpected quote inside unquoted field");
    }
    ++pos;
  }
  *field = line.substr(start, pos - start);
  *i = pos;
  return Status::OK();
}

}  // namespace

Event EventView::Materialize() const {
  Event e;
  e.type = type;
  e.vertex = vertex;
  e.edge = edge;
  e.payload = std::string(payload);
  e.rate_factor = rate_factor;
  e.pause = pause;
  return e;
}

void EventView::AppendLine(std::string* out) const {
  event_internal::AppendEventFields(type, vertex, edge, payload, rate_factor,
                                    pause, out);
  out->push_back('\n');
}

Result<EventView> ParseEventLineView(std::string_view line,
                                     std::string* scratch) {
  const std::string_view trimmed = TrimWhitespace(line);
  if (trimmed.empty() || trimmed.front() == '#') {
    return Status::NotFound("blank or comment line");
  }
  if (trimmed.find('\0') != std::string_view::npos) {
    return Status::ParseError("NUL byte in CSV input");
  }
  scratch->clear();
  // Unescaped content is never longer than the input, so one reservation
  // guarantees field views into scratch survive later appends.
  if (scratch->capacity() < trimmed.size()) scratch->reserve(trimmed.size());

  std::string_view fields[3];
  size_t count = 0;
  size_t i = 0;
  while (true) {
    std::string_view field;
    GT_RETURN_NOT_OK(ScanCsvField(trimmed, &i, scratch, &field));
    if (count < 3) fields[count] = field;
    ++count;
    if (i >= trimmed.size()) break;
    ++i;  // skip the comma
  }
  if (count != 3) {
    return Status::ParseError("expected 3 fields, got " +
                              std::to_string(count));
  }
  GT_ASSIGN_OR_RETURN(const EventType type, EventTypeFromName(fields[0]));

  EventView v;
  v.type = type;
  switch (type) {
    case EventType::kAddVertex:
    case EventType::kUpdateVertex:
    case EventType::kRemoveVertex: {
      GT_ASSIGN_OR_RETURN(v.vertex, ParseUint64(fields[1]));
      v.payload = fields[2];
      break;
    }
    case EventType::kAddEdge:
    case EventType::kUpdateEdge:
    case EventType::kRemoveEdge: {
      GT_ASSIGN_OR_RETURN(v.edge, ParseEdgeId(fields[1]));
      v.payload = fields[2];
      break;
    }
    case EventType::kMarker:
      v.payload = fields[2];
      break;
    case EventType::kSetRate: {
      GT_ASSIGN_OR_RETURN(v.rate_factor, ParseDouble(fields[2]));
      if (v.rate_factor <= 0.0) {
        return Status::ParseError("rate factor must be positive");
      }
      break;
    }
    case EventType::kPause: {
      GT_ASSIGN_OR_RETURN(const int64_t ms, ParseInt64(fields[2]));
      if (ms < 0) return Status::ParseError("pause must be non-negative");
      v.pause = Duration::FromMillis(ms);
      break;
    }
  }
  return v;
}

}  // namespace graphtides
