// Block-buffered line reading for the replayer hot path.
//
// StreamFileReader (stream/stream_file.h) pulls one character at a time
// through an ifstream and copies every line into a std::string — robust,
// but the per-byte virtual calls and per-line copies dominate a fast parse
// loop. BlockLineReader reads the file in large blocks into one reusable
// buffer and yields each line as a string_view into that buffer: steady
// state does no per-line allocation and one read(2) per block.
#ifndef GRAPHTIDES_STREAM_BLOCK_READER_H_
#define GRAPHTIDES_STREAM_BLOCK_READER_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"

namespace graphtides {

struct BlockLineReaderOptions {
  /// Bytes per read(2) call.
  size_t block_bytes = 256 << 10;
  /// Same bound as StreamFileReaderOptions: a line longer than this is a
  /// ParseError (and is skipped to its newline), never an unbounded buffer.
  size_t max_line_bytes = 1 << 20;
};

/// \brief Sequential zero-copy line reader over a file.
///
/// Usage:
///   BlockLineReader reader;
///   GT_RETURN_NOT_OK(reader.Open(path));
///   while (true) {
///     auto next = reader.NextLine();
///     if (!next.ok()) ...;           // I/O error or over-long line
///     if (!next->has_value()) break; // end of file
///     Consume(**next);               // view valid until the next call
///   }
class BlockLineReader {
 public:
  explicit BlockLineReader(BlockLineReaderOptions options = {});
  ~BlockLineReader();

  BlockLineReader(const BlockLineReader&) = delete;
  BlockLineReader& operator=(const BlockLineReader&) = delete;

  Status Open(const std::string& path);

  /// \brief The next line without its '\n', or nullopt at end of file.
  ///
  /// The returned view is invalidated by the next NextLine call. A final
  /// line without a trailing newline is still returned; `terminated` (when
  /// non-null) reports whether a '\n' was actually seen. Over-long lines
  /// yield ParseError with the reader positioned at the following line.
  Result<std::optional<std::string_view>> NextLine(bool* terminated = nullptr);

  /// 1-based number of the last line returned (or skipped as over-long).
  size_t line_number() const { return line_number_; }

 private:
  /// Refills the tail of the buffer, compacting the unconsumed remainder
  /// to the front first. Returns false at end of file.
  Result<bool> Refill();

  BlockLineReaderOptions options_;
  int fd_ = -1;
  std::vector<char> buffer_;
  size_t pos_ = 0;  // next unconsumed byte
  size_t end_ = 0;  // one past the last valid byte
  bool eof_ = false;
  size_t line_number_ = 0;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_STREAM_BLOCK_READER_H_
