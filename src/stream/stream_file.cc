#include "stream/stream_file.h"

#include <sstream>

namespace graphtides {

Status StreamFileReader::Open(const std::string& path) {
  in_.open(path);
  if (!in_.is_open()) {
    return Status::IoError("cannot open stream file: " + path);
  }
  line_number_ = 0;
  return Status::OK();
}

namespace {

enum class LineRead { kLine, kEof, kTooLong };

// Reads up to the next '\n' into *line, never buffering more than max_bytes.
// An over-long line is drained to its newline so the caller can resume at
// the next record. *terminated reports whether a '\n' was actually seen —
// false on the final line of a file cut off mid-record.
LineRead ReadBoundedLine(std::istream& in, std::string* line, size_t max_bytes,
                         bool* terminated) {
  line->clear();
  *terminated = false;
  constexpr int kEofCh = std::char_traits<char>::eof();
  int c;
  while ((c = in.get()) != kEofCh) {
    if (c == '\n') {
      *terminated = true;
      return LineRead::kLine;
    }
    if (line->size() >= max_bytes) {
      while ((c = in.get()) != kEofCh && c != '\n') {
      }
      return LineRead::kTooLong;
    }
    line->push_back(static_cast<char>(c));
  }
  return line->empty() ? LineRead::kEof : LineRead::kLine;
}

}  // namespace

Result<std::optional<Event>> StreamFileReader::Next() {
  std::string line;
  while (true) {
    bool terminated = false;
    const LineRead read =
        ReadBoundedLine(in_, &line, options_.max_line_bytes, &terminated);
    if (read == LineRead::kEof) {
      if (in_.bad()) return Status::IoError("read failure");
      return std::optional<Event>(std::nullopt);
    }
    ++line_number_;
    if (read == LineRead::kTooLong) {
      return Status::ParseError(
                 "line exceeds " + std::to_string(options_.max_line_bytes) +
                 " bytes")
          .WithContext("line " + std::to_string(line_number_));
    }
    Result<Event> parsed = ParseEventLine(line);
    if (parsed.ok()) return std::optional<Event>(std::move(parsed).value());
    if (parsed.status().IsNotFound()) continue;  // blank/comment line
    std::string context = "line " + std::to_string(line_number_);
    if (!terminated) context += " (truncated final record)";
    return parsed.status().WithContext(context);
  }
}

Status StreamFileWriter::Open(const std::string& path) {
  out_.open(path, std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IoError("cannot create stream file: " + path);
  }
  events_written_ = 0;
  return Status::OK();
}

Status StreamFileWriter::Append(const Event& event) {
  line_buf_.clear();
  AppendEventLine(event, &line_buf_);
  out_.write(line_buf_.data(), static_cast<std::streamsize>(line_buf_.size()));
  if (!out_.good()) return Status::IoError("write failure");
  ++events_written_;
  return Status::OK();
}

Status StreamFileWriter::AppendComment(const std::string& comment) {
  out_ << "# " << comment << '\n';
  if (!out_.good()) return Status::IoError("write failure");
  return Status::OK();
}

Status StreamFileWriter::Flush() {
  out_.flush();
  if (!out_.good()) return Status::IoError("flush failure");
  return Status::OK();
}

Status StreamFileWriter::Close() {
  if (out_.is_open()) {
    out_.close();
    if (out_.fail()) return Status::IoError("close failure");
  }
  return Status::OK();
}

Result<std::vector<Event>> ReadStreamFile(const std::string& path) {
  StreamFileReader reader;
  GT_RETURN_NOT_OK(reader.Open(path));
  std::vector<Event> events;
  while (true) {
    GT_ASSIGN_OR_RETURN(std::optional<Event> next, reader.Next());
    if (!next.has_value()) break;
    events.push_back(std::move(*next));
  }
  return events;
}

Status WriteStreamFile(const std::string& path,
                       const std::vector<Event>& events) {
  StreamFileWriter writer;
  GT_RETURN_NOT_OK(writer.Open(path));
  for (const Event& e : events) {
    GT_RETURN_NOT_OK(writer.Append(e));
  }
  return writer.Close();
}

Result<std::vector<Event>> ParseStreamText(const std::string& text) {
  std::vector<Event> events;
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    Result<Event> parsed = ParseEventLine(line);
    if (parsed.ok()) {
      events.push_back(std::move(parsed).value());
      continue;
    }
    if (parsed.status().IsNotFound()) continue;
    return parsed.status().WithContext("line " + std::to_string(line_number));
  }
  return events;
}

std::string FormatStreamText(const std::vector<Event>& events) {
  std::string out;
  for (const Event& e : events) {
    AppendEventLine(e, &out);
  }
  return out;
}

}  // namespace graphtides
