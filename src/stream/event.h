// The GraphTides event model (§3.1, §4.2).
//
// A graph stream is an ordered sequence of entries of three classes:
//   * graph-changing events — the six localized operations
//     add/remove/update x vertex/edge,
//   * marker events — flags for specific points in the stream, correlated
//     with wall-clock timestamps during analysis,
//   * control events — replayer directives: a rate (speed-up) factor and a
//     pause of fixed duration.
#ifndef GRAPHTIDES_STREAM_EVENT_H_
#define GRAPHTIDES_STREAM_EVENT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/result.h"

namespace graphtides {

/// Vertices are identified by a unique numeric ID (§3.2 Graph Types).
using VertexId = uint64_t;

/// \brief Edge identity: the ordered (source, destination) pair.
///
/// The stream format renders this as "src-dst" (§4.2). Graphs are directed
/// without multi-edges or self-loops, so the pair is a unique key.
struct EdgeId {
  VertexId src = 0;
  VertexId dst = 0;

  constexpr auto operator<=>(const EdgeId&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, const EdgeId& e) {
  return os << e.src << "-" << e.dst;
}

/// Entry types appearing in a graph stream file.
enum class EventType : uint8_t {
  // Graph-changing events.
  kAddVertex = 0,
  kRemoveVertex = 1,
  kUpdateVertex = 2,
  kAddEdge = 3,
  kRemoveEdge = 4,
  kUpdateEdge = 5,
  // Marker events (§4.2).
  kMarker = 6,
  // Control events (§4.2): SET_RATE carries a speed-up factor relative to
  // the replayer's base rate (1.0 = base); PAUSE suspends emission.
  kSetRate = 7,
  kPause = 8,
};

/// Stream-format command names (Table 3 vocabulary).
std::string_view EventTypeName(EventType type);

/// Inverse of EventTypeName; ParseError for unknown commands.
Result<EventType> EventTypeFromName(std::string_view name);

bool IsGraphOp(EventType type);
/// Add/remove vertex/edge — changes the topology.
bool IsTopologyChange(EventType type);
/// Update vertex/edge — changes only entity state.
bool IsStateUpdate(EventType type);
bool IsVertexOp(EventType type);
bool IsEdgeOp(EventType type);
bool IsControl(EventType type);
bool IsAddOp(EventType type);
bool IsRemoveOp(EventType type);

/// \brief One entry of a graph stream.
///
/// The fields used depend on `type`:
///  * vertex ops: `vertex`, and `payload` as the state string (adds/updates),
///  * edge ops: `edge`, and `payload` as the state string (adds/updates),
///  * kMarker: `payload` is the marker label,
///  * kSetRate: `rate_factor`,
///  * kPause: `pause`.
struct Event {
  EventType type = EventType::kAddVertex;
  VertexId vertex = 0;
  EdgeId edge;
  std::string payload;
  double rate_factor = 1.0;
  Duration pause;

  static Event AddVertex(VertexId id, std::string state = "");
  static Event RemoveVertex(VertexId id);
  static Event UpdateVertex(VertexId id, std::string state);
  static Event AddEdge(VertexId src, VertexId dst, std::string state = "");
  static Event RemoveEdge(VertexId src, VertexId dst);
  static Event UpdateEdge(VertexId src, VertexId dst, std::string state);
  static Event Marker(std::string label);
  static Event SetRate(double factor);
  static Event Pause(Duration duration);

  bool operator==(const Event& other) const;

  /// Renders the stream-file line for this event (no newline).
  std::string ToCsvLine() const;
};

/// \brief Parses one stream-file line. Empty lines and lines starting with
/// '#' yield NotFound (callers skip those); malformed lines yield ParseError.
Result<Event> ParseEventLine(std::string_view line);

/// Renders the canonical stream-file line (no newline); identical bytes to
/// `event.ToCsvLine()`. Inverse of ParseEventLine for every valid Event.
std::string FormatEventLine(const Event& event);

/// \brief Appends the canonical stream-file line for `event` plus a trailing
/// '\n' to *out.
///
/// Formats numeric fields with std::to_chars directly into *out, so a warm
/// reused buffer makes repeated serialization allocation-free — the hot path
/// shared by the replayer transports and the generator's pipelined writer.
void AppendEventLine(const Event& event, std::string* out);

namespace event_internal {
/// Field-level serializer shared by Event::ToCsvLine, AppendEventLine and
/// EventView::AppendLine: appends the canonical line (no newline) to *out.
void AppendEventFields(EventType type, VertexId vertex, const EdgeId& edge,
                       std::string_view payload, double rate_factor,
                       Duration pause, std::string* out);
}  // namespace event_internal

/// Parses a "src-dst" edge id; ParseError if malformed.
Result<EdgeId> ParseEdgeId(std::string_view s);

std::ostream& operator<<(std::ostream& os, const Event& e);

}  // namespace graphtides

#endif  // GRAPHTIDES_STREAM_EVENT_H_
