// Stream validation: checks that every graph-changing event in a stream
// satisfies its precondition when the stream is applied in order (§3.2
// Streaming Properties — altered orders or lost events produce inconsistent
// topologies because preconditions of later events are violated).
//
// Preconditions enforced (matching graph::Graph semantics):
//   CREATE_VERTEX v      — v must not exist
//   REMOVE_VERTEX v      — v must exist (incident edges are removed with it)
//   UPDATE_VERTEX v      — v must exist
//   CREATE_EDGE a-b      — a and b exist, a != b, edge a-b must not exist
//   REMOVE_EDGE a-b      — edge a-b must exist
//   UPDATE_EDGE a-b      — edge a-b must exist
#ifndef GRAPHTIDES_STREAM_VALIDATOR_H_
#define GRAPHTIDES_STREAM_VALIDATOR_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "stream/event.h"

namespace graphtides {

/// \brief One precondition violation found during validation.
struct StreamViolation {
  size_t index = 0;  // 0-based position in the stream
  Event event;
  std::string reason;
};

/// \brief Result of validating a stream.
struct StreamValidationReport {
  std::vector<StreamViolation> violations;
  size_t events_checked = 0;
  /// Topology size after applying all *valid* events.
  size_t final_vertices = 0;
  size_t final_edges = 0;

  bool valid() const { return violations.empty(); }
};

/// \brief Incremental stream validator; also usable as a cheap topology
/// shadow (existence and adjacency only, no state).
class StreamValidator {
 public:
  /// Checks (and on success applies) one event. Marker and control events
  /// always pass. Invalid events are not applied.
  Status Check(const Event& event);

  size_t num_vertices() const { return out_.size(); }
  size_t num_edges() const { return num_edges_; }
  bool HasVertex(VertexId v) const { return out_.contains(v); }
  bool HasEdge(EdgeId e) const {
    auto it = out_.find(e.src);
    return it != out_.end() && it->second.contains(e.dst);
  }

 private:
  // Adjacency by direction; a vertex exists iff it has entries in both maps
  // (possibly with empty sets).
  std::unordered_map<VertexId, std::unordered_set<VertexId>> out_;
  std::unordered_map<VertexId, std::unordered_set<VertexId>> in_;
  size_t num_edges_ = 0;
};

/// \brief Validates an entire stream, collecting up to `max_violations`
/// violations (0 = unlimited).
StreamValidationReport ValidateStream(const std::vector<Event>& events,
                                      size_t max_violations = 0);

/// \brief One problem found while validating a stream *file*: either a
/// malformed line (parse error) or a precondition violation, with the
/// 1-based line number it occurred on.
struct StreamFileIssue {
  size_t line = 0;
  /// True for malformed input (bad CSV, NUL bytes, over-long or truncated
  /// lines, non-numeric ids); false for a precondition violation.
  bool parse_error = false;
  std::string reason;
};

struct StreamFileValidationReport {
  std::vector<StreamFileIssue> issues;
  size_t events_checked = 0;
  size_t final_vertices = 0;
  size_t final_edges = 0;

  bool valid() const { return issues.empty(); }
};

/// \brief Validates a stream file end to end, collecting up to `max_issues`
/// problems (0 = unlimited) instead of stopping at the first. Malformed
/// lines are skipped and validation resumes on the next line, so one bad
/// record does not hide later violations. Returns an error only for I/O
/// failures (e.g. the file cannot be opened).
Result<StreamFileValidationReport> ValidateStreamFile(
    const std::string& path, size_t max_issues = 0,
    size_t max_line_bytes = 1 << 20);

}  // namespace graphtides

#endif  // GRAPHTIDES_STREAM_VALIDATOR_H_
