#include "stream/v2_format.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/crc32.h"

namespace graphtides {

namespace {

// The largest pause (in ms) whose nanosecond count fits a Duration.
constexpr uint64_t kMaxPauseMillis =
    static_cast<uint64_t>(std::numeric_limits<int64_t>::max() / 1000000);

void AppendU32(uint32_t v, std::string* out) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFFu);
  buf[1] = static_cast<char>((v >> 8) & 0xFFu);
  buf[2] = static_cast<char>((v >> 16) & 0xFFu);
  buf[3] = static_cast<char>(v >> 24);
  out->append(buf, 4);
}

void AppendU64(uint64_t v, std::string* out) {
  AppendU32(static_cast<uint32_t>(v), out);
  AppendU32(static_cast<uint32_t>(v >> 32), out);
}

// memcpy-free byte composition: endian-independent, no alignment
// requirement (block bodies start at arbitrary offsets), and the
// compiler collapses it into a single load on little-endian targets —
// the "bounds-checked pointer cast" of the hot path.
uint32_t LoadU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t LoadU64(const unsigned char* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

// "BLK2" as a little-endian u32.
constexpr uint32_t kV2BlockMagic = 0x324B4C42u;

/// True for types whose CSV rendering carries the payload field; all
/// others must encode (0, 0).
bool TypeHasPayload(EventType type) {
  switch (type) {
    case EventType::kAddVertex:
    case EventType::kUpdateVertex:
    case EventType::kAddEdge:
    case EventType::kUpdateEdge:
    case EventType::kMarker:
      return true;
    default:
      return false;
  }
}

void AppendBlockHeader(uint32_t flags, uint32_t record_count,
                       uint32_t payload_bytes, uint32_t body_crc,
                       std::string* out) {
  const size_t start = out->size();
  AppendU32(kV2BlockMagic, out);
  AppendU32(flags, out);
  AppendU32(record_count, out);
  AppendU32(payload_bytes, out);
  AppendU32(body_crc, out);
  AppendU32(Crc32c(std::string_view(out->data() + start, 20)), out);
}

}  // namespace

std::string_view StreamFormatName(StreamFormat format) {
  return format == StreamFormat::kV2 ? "v2" : "csv";
}

void AppendV2Preamble(std::string* out) {
  out->append(kV2Magic, sizeof(kV2Magic));
  AppendU32(kV2Version, out);
  AppendU32(0, out);  // preamble flags, reserved
}

Status CheckV2Preamble(std::string_view preamble) {
  if (preamble.size() < kV2PreambleBytes) {
    return Status::ParseError("truncated v2 preamble (" +
                              std::to_string(preamble.size()) + " of " +
                              std::to_string(kV2PreambleBytes) + " bytes)");
  }
  if (std::memcmp(preamble.data(), kV2Magic, sizeof(kV2Magic)) != 0) {
    return Status::ParseError("bad v2 magic");
  }
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(preamble.data());
  const uint32_t version = LoadU32(p + 8);
  if (version != kV2Version) {
    return Status::ParseError("unsupported v2 version " +
                              std::to_string(version));
  }
  if (const uint32_t flags = LoadU32(p + 12); flags != 0) {
    return Status::ParseError("unsupported v2 preamble flags " +
                              std::to_string(flags));
  }
  return Status::OK();
}

Result<V2BlockHeader> ParseV2BlockHeader(std::string_view header) {
  if (header.size() < kV2BlockHeaderBytes) {
    return Status::ParseError("truncated v2 block header (" +
                              std::to_string(header.size()) + " of " +
                              std::to_string(kV2BlockHeaderBytes) + " bytes)");
  }
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(header.data());
  if (LoadU32(p) != kV2BlockMagic) {
    return Status::ParseError("bad v2 block magic");
  }
  const uint32_t header_crc = LoadU32(p + 20);
  if (Crc32c(header.substr(0, 20)) != header_crc) {
    return Status::ParseError("v2 block header CRC mismatch");
  }
  V2BlockHeader h;
  h.flags = LoadU32(p + 4);
  h.record_count = LoadU32(p + 8);
  h.payload_bytes = LoadU32(p + 12);
  h.body_crc = LoadU32(p + 16);
  if ((h.flags & ~kV2BlockFlagEnd) != 0) {
    return Status::ParseError("unsupported v2 block flags " +
                              std::to_string(h.flags));
  }
  if (h.record_count > kV2MaxBlockRecords) {
    return Status::ParseError("v2 block record count " +
                              std::to_string(h.record_count) +
                              " exceeds the format cap");
  }
  if (h.payload_bytes > kV2MaxBlockPayloadBytes) {
    return Status::ParseError("v2 block trailer of " +
                              std::to_string(h.payload_bytes) +
                              " bytes exceeds the format cap");
  }
  if (h.end_of_stream() && (h.record_count != 0 || h.payload_bytes != 0)) {
    return Status::ParseError("v2 end-of-stream block must be empty");
  }
  if (!h.end_of_stream() && h.record_count == 0) {
    return Status::ParseError("empty v2 data block");
  }
  return h;
}

Status CheckV2BlockBody(const V2BlockHeader& header, std::string_view body) {
  if (body.size() != header.body_bytes()) {
    return Status::ParseError(
        "truncated v2 block body (" + std::to_string(body.size()) + " of " +
        std::to_string(header.body_bytes()) + " bytes)");
  }
  if (Crc32c(body) != header.body_crc) {
    return Status::ParseError("v2 block body CRC mismatch");
  }
  return Status::OK();
}

Result<EventView> DecodeV2Record(std::string_view record,
                                 std::string_view trailer) {
  if (record.size() != kV2RecordBytes) {
    return Status::ParseError("v2 record must be " +
                              std::to_string(kV2RecordBytes) + " bytes, got " +
                              std::to_string(record.size()));
  }
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(record.data());
  const uint8_t type_byte = p[0];
  if (type_byte > static_cast<uint8_t>(EventType::kPause)) {
    return Status::ParseError("unknown v2 event type " +
                              std::to_string(type_byte));
  }
  if ((p[1] | p[2] | p[3]) != 0) {
    return Status::ParseError("nonzero reserved bytes in v2 record");
  }
  const uint64_t len = LoadU32(p + 4);
  const uint64_t off = LoadU64(p + 8);
  const uint64_t a = LoadU64(p + 16);
  const uint64_t b = LoadU64(p + 24);
  // Bounds before anything dereferences the trailer; written to be
  // overflow-proof for any off/len combination.
  if (off > trailer.size() || len > trailer.size() - off) {
    return Status::ParseError("v2 payload reference out of trailer bounds");
  }
  EventView v;
  v.type = static_cast<EventType>(type_byte);
  if (!TypeHasPayload(v.type) && (len != 0 || off != 0)) {
    return Status::ParseError("v2 payload on a payload-free event type");
  }
  if (TypeHasPayload(v.type)) {
    v.payload = trailer.substr(static_cast<size_t>(off),
                               static_cast<size_t>(len));
  }
  switch (v.type) {
    case EventType::kAddVertex:
    case EventType::kUpdateVertex:
    case EventType::kRemoveVertex:
      if (b != 0) return Status::ParseError("nonzero b field on a vertex op");
      v.vertex = a;
      break;
    case EventType::kAddEdge:
    case EventType::kUpdateEdge:
    case EventType::kRemoveEdge:
      v.edge = {a, b};
      break;
    case EventType::kMarker:
      if (a != 0 || b != 0) {
        return Status::ParseError("nonzero id fields on a marker");
      }
      break;
    case EventType::kSetRate: {
      if (b != 0) return Status::ParseError("nonzero b field on SET_RATE");
      const double factor = std::bit_cast<double>(a);
      if (!std::isfinite(factor) || factor <= 0.0) {
        return Status::ParseError("rate factor must be positive");
      }
      v.rate_factor = factor;
      break;
    }
    case EventType::kPause:
      if (b != 0) return Status::ParseError("nonzero b field on PAUSE");
      if (a > kMaxPauseMillis) {
        return Status::ParseError("pause of " + std::to_string(a) +
                                  " ms overflows");
      }
      v.pause = Duration::FromMillis(static_cast<int64_t>(a));
      break;
  }
  return v;
}

void AppendV2SentinelBlock(std::string* out) {
  AppendBlockHeader(kV2BlockFlagEnd, 0, 0, Crc32c(""), out);
}

void V2BlockEncoder::Add(EventType type, VertexId vertex, const EdgeId& edge,
                         std::string_view payload, double rate_factor,
                         Duration pause) {
  uint64_t off = 0;
  uint32_t len = 0;
  if (TypeHasPayload(type) && !payload.empty()) {
    off = InternPayload(payload);
    len = static_cast<uint32_t>(payload.size());
  }
  uint64_t a = 0;
  uint64_t b = 0;
  switch (type) {
    case EventType::kAddVertex:
    case EventType::kUpdateVertex:
    case EventType::kRemoveVertex:
      a = vertex;
      break;
    case EventType::kAddEdge:
    case EventType::kUpdateEdge:
    case EventType::kRemoveEdge:
      a = edge.src;
      b = edge.dst;
      break;
    case EventType::kMarker:
      break;
    case EventType::kSetRate:
      a = std::bit_cast<uint64_t>(rate_factor);
      break;
    case EventType::kPause:
      a = static_cast<uint64_t>(pause.millis());
      break;
  }
  records_.push_back(static_cast<char>(type));
  records_.append(3, '\0');
  AppendU32(len, &records_);
  AppendU64(off, &records_);
  AppendU64(a, &records_);
  AppendU64(b, &records_);
  ++count_;
}

uint64_t V2BlockEncoder::InternPayload(std::string_view payload) {
  // FNV-1a over 8-byte words: ~4 multiplies for a typical payload, fast
  // enough to sit on the encode hot path.
  uint64_t h = 0xcbf29ce484222325ull ^ payload.size();
  size_t i = 0;
  for (; i + 8 <= payload.size(); i += 8) {
    uint64_t w;
    std::memcpy(&w, payload.data() + i, 8);
    h = (h ^ w) * 0x100000001b3ull;
    h ^= h >> 29;
  }
  if (i < payload.size()) {
    uint64_t w = 0;
    std::memcpy(&w, payload.data() + i, payload.size() - i);
    h = (h ^ w) * 0x100000001b3ull;
    h ^= h >> 29;
  }
  InternSlot& slot = intern_[h & (kInternSlots - 1)];
  if (slot.hash == h && slot.len == payload.size() &&
      std::memcmp(trailer_.data() + slot.off, payload.data(),
                  payload.size()) == 0) {
    return slot.off;
  }
  const uint64_t off = trailer_.size();
  trailer_.append(payload);
  slot.hash = h;
  slot.off = off;
  slot.len = static_cast<uint32_t>(payload.size());
  return off;
}

void V2BlockEncoder::SealTo(std::string* out) {
  if (count_ == 0) return;
  const uint32_t body_crc = Crc32cUpdate(Crc32c(records_), trailer_);
  AppendBlockHeader(0, static_cast<uint32_t>(count_),
                    static_cast<uint32_t>(trailer_.size()), body_crc, out);
  out->append(records_);
  out->append(trailer_);
  Reset();
}

void V2BlockEncoder::Reset() {
  records_.clear();
  trailer_.clear();
  count_ = 0;
  // Slot offsets point into the cleared trailer; zero them all (a 16 KiB
  // memset amortized over a sealed block's records).
  intern_.fill(InternSlot{});
}

Result<StreamFormat> DetectStreamFormat(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  char magic[sizeof(kV2Magic)];
  const size_t got = std::fread(magic, 1, sizeof(magic), f);
  std::fclose(f);
  if (got == sizeof(magic) &&
      std::memcmp(magic, kV2Magic, sizeof(kV2Magic)) == 0) {
    return StreamFormat::kV2;
  }
  return StreamFormat::kCsv;
}

}  // namespace graphtides
