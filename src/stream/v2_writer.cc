#include "stream/v2_writer.h"

#include <cerrno>
#include <cstring>

namespace graphtides {

V2FileWriter::~V2FileWriter() {
  if (out_ != nullptr && owns_file_) std::fclose(out_);
}

Status V2FileWriter::Open(const std::string& path) {
  if (out_ != nullptr) return Status::Internal("writer already open");
  out_ = std::fopen(path.c_str(), "wb");
  if (out_ == nullptr) {
    return Status::IoError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  owns_file_ = true;
  block_buf_.clear();
  AppendV2Preamble(&block_buf_);
  return WriteSealed();
}

Status V2FileWriter::Attach(std::FILE* out) {
  if (out_ != nullptr) return Status::Internal("writer already open");
  if (out == nullptr) return Status::InvalidArgument("null output stream");
  out_ = out;
  owns_file_ = false;
  block_buf_.clear();
  AppendV2Preamble(&block_buf_);
  return WriteSealed();
}

Status V2FileWriter::WriteSealed() {
  if (block_buf_.empty()) return Status::OK();
  const size_t wrote = std::fwrite(block_buf_.data(), 1, block_buf_.size(),
                                   out_);
  bytes_written_ += wrote;
  if (wrote != block_buf_.size()) {
    return Status::IoError("short write to v2 stream");
  }
  block_buf_.clear();
  return Status::OK();
}

Status V2FileWriter::Append(const Event& event) {
  return AppendFields(event.type, event.vertex, event.edge, event.payload,
                      event.rate_factor, event.pause);
}

Status V2FileWriter::AppendFields(EventType type, VertexId vertex,
                                  const EdgeId& edge, std::string_view payload,
                                  double rate_factor, Duration pause) {
  if (out_ == nullptr || finished_) {
    return Status::Internal("v2 writer is not open");
  }
  encoder_.Add(type, vertex, edge, payload, rate_factor, pause);
  ++events_written_;
  if (encoder_.Full()) {
    encoder_.SealTo(&block_buf_);
    return WriteSealed();
  }
  return Status::OK();
}

Status V2FileWriter::Finish() {
  if (finished_) return Status::OK();
  if (out_ == nullptr) return Status::Internal("v2 writer is not open");
  finished_ = true;
  encoder_.SealTo(&block_buf_);
  AppendV2SentinelBlock(&block_buf_);
  GT_RETURN_NOT_OK(WriteSealed());
  if (std::fflush(out_) != 0) {
    return Status::IoError("flush failed: " + std::string(std::strerror(errno)));
  }
  if (owns_file_) {
    const int rc = std::fclose(out_);
    out_ = nullptr;
    if (rc != 0) {
      return Status::IoError("close failed: " +
                             std::string(std::strerror(errno)));
    }
  }
  return Status::OK();
}

Status WriteV2StreamFile(const std::string& path,
                         const std::vector<Event>& events) {
  V2FileWriter writer;
  GT_RETURN_NOT_OK(writer.Open(path));
  for (const Event& event : events) {
    GT_RETURN_NOT_OK(writer.Append(event));
  }
  return writer.Finish();
}

}  // namespace graphtides
