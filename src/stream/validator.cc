#include "stream/validator.h"

#include "stream/stream_file.h"

namespace graphtides {

Status StreamValidator::Check(const Event& event) {
  switch (event.type) {
    case EventType::kAddVertex: {
      if (HasVertex(event.vertex)) {
        return Status::PreconditionFailed(
            "vertex already exists: " + std::to_string(event.vertex));
      }
      out_[event.vertex];
      in_[event.vertex];
      return Status::OK();
    }
    case EventType::kRemoveVertex: {
      auto out_it = out_.find(event.vertex);
      if (out_it == out_.end()) {
        return Status::PreconditionFailed(
            "vertex does not exist: " + std::to_string(event.vertex));
      }
      // Cascade: remove outgoing and incoming edges.
      for (VertexId dst : out_it->second) {
        in_[dst].erase(event.vertex);
        --num_edges_;
      }
      auto in_it = in_.find(event.vertex);
      for (VertexId src : in_it->second) {
        out_[src].erase(event.vertex);
        --num_edges_;
      }
      out_.erase(out_it);
      in_.erase(in_it);
      return Status::OK();
    }
    case EventType::kUpdateVertex: {
      if (!HasVertex(event.vertex)) {
        return Status::PreconditionFailed(
            "vertex does not exist: " + std::to_string(event.vertex));
      }
      return Status::OK();
    }
    case EventType::kAddEdge: {
      if (event.edge.src == event.edge.dst) {
        return Status::PreconditionFailed(
            "self-loops are not allowed: " + std::to_string(event.edge.src));
      }
      if (!HasVertex(event.edge.src)) {
        return Status::PreconditionFailed(
            "edge source does not exist: " + std::to_string(event.edge.src));
      }
      if (!HasVertex(event.edge.dst)) {
        return Status::PreconditionFailed(
            "edge destination does not exist: " +
            std::to_string(event.edge.dst));
      }
      if (HasEdge(event.edge)) {
        return Status::PreconditionFailed(
            "edge already exists: " + std::to_string(event.edge.src) + "-" +
            std::to_string(event.edge.dst));
      }
      out_[event.edge.src].insert(event.edge.dst);
      in_[event.edge.dst].insert(event.edge.src);
      ++num_edges_;
      return Status::OK();
    }
    case EventType::kRemoveEdge: {
      if (!HasEdge(event.edge)) {
        return Status::PreconditionFailed(
            "edge does not exist: " + std::to_string(event.edge.src) + "-" +
            std::to_string(event.edge.dst));
      }
      out_[event.edge.src].erase(event.edge.dst);
      in_[event.edge.dst].erase(event.edge.src);
      --num_edges_;
      return Status::OK();
    }
    case EventType::kUpdateEdge: {
      if (!HasEdge(event.edge)) {
        return Status::PreconditionFailed(
            "edge does not exist: " + std::to_string(event.edge.src) + "-" +
            std::to_string(event.edge.dst));
      }
      return Status::OK();
    }
    case EventType::kMarker:
    case EventType::kSetRate:
    case EventType::kPause:
      return Status::OK();
  }
  return Status::Internal("unhandled event type");
}

StreamValidationReport ValidateStream(const std::vector<Event>& events,
                                      size_t max_violations) {
  StreamValidator validator;
  StreamValidationReport report;
  for (size_t i = 0; i < events.size(); ++i) {
    ++report.events_checked;
    Status st = validator.Check(events[i]);
    if (!st.ok()) {
      report.violations.push_back({i, events[i], st.message()});
      if (max_violations != 0 && report.violations.size() >= max_violations) {
        break;
      }
    }
  }
  report.final_vertices = validator.num_vertices();
  report.final_edges = validator.num_edges();
  return report;
}

Result<StreamFileValidationReport> ValidateStreamFile(const std::string& path,
                                                      size_t max_issues,
                                                      size_t max_line_bytes) {
  StreamFileReaderOptions reader_options;
  reader_options.max_line_bytes = max_line_bytes;
  StreamFileReader reader(reader_options);
  GT_RETURN_NOT_OK(reader.Open(path));

  StreamValidator validator;
  StreamFileValidationReport report;
  const auto full = [&] {
    return max_issues != 0 && report.issues.size() >= max_issues;
  };
  while (!full()) {
    Result<std::optional<Event>> next = reader.Next();
    if (!next.ok()) {
      // Malformed lines are recorded and skipped; anything else (I/O
      // failure) genuinely ends the validation.
      if (!next.status().IsParseError()) return next.status();
      report.issues.push_back(
          {reader.line_number(), true, next.status().message()});
      continue;
    }
    if (!next->has_value()) break;
    ++report.events_checked;
    Status st = validator.Check(**next);
    if (!st.ok()) {
      report.issues.push_back({reader.line_number(), false, st.message()});
    }
  }
  report.final_vertices = validator.num_vertices();
  report.final_edges = validator.num_edges();
  return report;
}

}  // namespace graphtides
