// gt-stream-v2: length-prefixed binary graph-stream framing (DESIGN.md
// §13). CSV (stream_file.h) remains the interchange/golden format; v2 is
// the hot-path wire and file format the replayer decodes with
// bounds-checked fixed-width loads instead of a parse.
//
// File layout (all integers little-endian):
//
//   preamble (16 B) : magic "GTSTRM2\n" · u32 version=2 · u32 flags=0
//   block*          : header (24 B) · records (32 B each) · trailer
//   sentinel block  : header with kV2BlockFlagEnd, zero records/trailer
//
// Block header (24 B):
//   u32 block magic "BLK2" · u32 flags · u32 record_count ·
//   u32 payload_bytes (trailer length) · u32 body_crc (CRC-32C of
//   records ‖ trailer) · u32 header_crc (CRC-32C of the preceding 20 B)
//
// Checksums are CRC-32C (Castagnoli): every block body is checksummed on
// the replay hot path, and CRC-32C has a dedicated SSE4.2 instruction
// (common/crc32.h), unlike the IEEE polynomial the durable checkpoint
// format keeps for compatibility.
//
// Record (32 B):
//   u8 type · u8[3] reserved=0 · u32 payload_len · u64 payload_off ·
//   u64 a · u64 b
//   with per-type field unioning: vertex ops a=vertex; edge ops a=src,
//   b=dst; SET_RATE a=IEEE-754 bit pattern of the factor; PAUSE
//   a=milliseconds. Variable strings (vertex/edge state, marker labels)
//   are interned in the block trailer and referenced by (off, len);
//   event types that the CSV serializer renders without a payload
//   (removes, controls) must carry (0, 0).
//
// Every structural element is sealed: the preamble is validated byte for
// byte, a header CRC covers the lengths before they are trusted, a body
// CRC covers record + trailer bytes, and the mandatory end-of-stream
// sentinel makes truncation at a block boundary detectable. Any
// corruption — truncation at any offset or any single bit flip — is
// rejected as ParseError (tests/stream/v2_fuzz_test.cc proves this
// exhaustively).
#ifndef GRAPHTIDES_STREAM_V2_FORMAT_H_
#define GRAPHTIDES_STREAM_V2_FORMAT_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "stream/event.h"
#include "stream/event_view.h"

namespace graphtides {

/// On-disk / on-wire encodings of a graph stream.
enum class StreamFormat : uint8_t {
  kCsv = 1,  // v1: one CSV line per event (stream_file.h)
  kV2 = 2,   // gt-stream-v2 binary blocks (this header)
};

std::string_view StreamFormatName(StreamFormat format);

inline constexpr char kV2Magic[8] = {'G', 'T', 'S', 'T', 'R', 'M', '2', '\n'};
inline constexpr size_t kV2PreambleBytes = 16;
inline constexpr uint32_t kV2Version = 2;
inline constexpr size_t kV2BlockHeaderBytes = 24;
inline constexpr size_t kV2RecordBytes = 32;
/// Block-header flag marking the mandatory end-of-stream sentinel.
inline constexpr uint32_t kV2BlockFlagEnd = 1u << 0;
/// Sanity caps a CRC-valid header must still satisfy before its lengths
/// drive any allocation or read.
inline constexpr uint32_t kV2MaxBlockRecords = 1u << 20;
inline constexpr uint32_t kV2MaxBlockPayloadBytes = 64u << 20;
/// Default writer seal thresholds (records per block / trailer bytes).
inline constexpr size_t kV2RecordsPerBlock = 4096;
inline constexpr size_t kV2TrailerSealBytes = 1u << 20;

/// Appends the 16-byte file preamble to *out.
void AppendV2Preamble(std::string* out);

/// Validates all 16 preamble bytes (magic, version, flags); ParseError on
/// any mismatch, including a short buffer.
Status CheckV2Preamble(std::string_view preamble);

/// Decoded block header, already magic/CRC/cap-checked by
/// ParseV2BlockHeader.
struct V2BlockHeader {
  uint32_t flags = 0;
  uint32_t record_count = 0;
  uint32_t payload_bytes = 0;
  uint32_t body_crc = 0;

  bool end_of_stream() const { return (flags & kV2BlockFlagEnd) != 0; }
  /// Bytes of records ‖ trailer following the header.
  size_t body_bytes() const {
    return static_cast<size_t>(record_count) * kV2RecordBytes + payload_bytes;
  }
};

/// Parses and validates a 24-byte block header: block magic, header CRC,
/// undefined flags, size caps, and that a sentinel is empty. ParseError on
/// any violation.
Result<V2BlockHeader> ParseV2BlockHeader(std::string_view header);

/// Verifies a block body (records ‖ trailer) against the header's length
/// and body CRC.
Status CheckV2BlockBody(const V2BlockHeader& header, std::string_view body);

/// \brief Decodes one 32-byte record against its block trailer.
///
/// The returned view's payload borrows from `trailer`, so it stays valid
/// exactly as long as the block bytes do (the mmap reader hands out views
/// directly into the mapping). Performs the full semantic validation the
/// CSV parser applies: known type, zero reserved bytes, payload bounds
/// inside the trailer, no payload on types the CSV form renders without
/// one, positive finite rate factors, non-negative pauses.
Result<EventView> DecodeV2Record(std::string_view record,
                                 std::string_view trailer);

/// Appends the end-of-stream sentinel block to *out.
void AppendV2SentinelBlock(std::string* out);

/// \brief Accumulates records + interned trailer for one block and seals
/// them with CRCs.
///
/// Identical payload strings within a block intern to one trailer entry;
/// the empty payload is always (0, 0) and occupies no trailer bytes.
/// Encoding is deterministic: the same event sequence always produces the
/// same block bytes, which is what makes v2→v1→v2 byte-stable.
class V2BlockEncoder {
 public:
  /// Appends one record. Field semantics mirror
  /// event_internal::AppendEventFields, so encode(parse(csv)) and the CSV
  /// line itself describe the same event.
  void Add(EventType type, VertexId vertex, const EdgeId& edge,
           std::string_view payload, double rate_factor, Duration pause);

  size_t records() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// True when the block reached the default seal thresholds.
  bool Full() const {
    return count_ >= kV2RecordsPerBlock ||
           trailer_.size() >= kV2TrailerSealBytes;
  }
  /// Bytes the sealed block will occupy (header + records + trailer).
  size_t sealed_bytes() const {
    return kV2BlockHeaderBytes + records_.size() + trailer_.size();
  }

  /// Appends the sealed block (header ‖ records ‖ trailer) to *out and
  /// resets the encoder. No-op on an empty encoder.
  void SealTo(std::string* out);

  void Reset();

 private:
  /// Direct-mapped intern cache: one slot per hash bucket, no heap. A
  /// collision simply stores the payload bytes again — interning is an
  /// encoding-size optimization, never a correctness requirement, so the
  /// encoder must not pay a per-unique-payload allocation for it (the
  /// replay hot path encodes mostly-unique payloads). A zeroed slot can
  /// never false-match: InternPayload is only called for non-empty
  /// payloads, and empty slots have len 0.
  struct InternSlot {
    uint64_t hash = 0;
    uint64_t off = 0;
    uint32_t len = 0;
  };
  static constexpr size_t kInternSlots = 1024;  // power of two

  uint64_t InternPayload(std::string_view payload);

  std::string records_;
  std::string trailer_;
  size_t count_ = 0;
  std::array<InternSlot, kInternSlots> intern_{};
};

/// \brief Sniffs a stream file's format by magic: a file beginning with
/// the 8-byte v2 magic is kV2, anything else (including files shorter
/// than the magic) is kCsv. IoError only when the file cannot be opened.
Result<StreamFormat> DetectStreamFormat(const std::string& path);

}  // namespace graphtides

#endif  // GRAPHTIDES_STREAM_V2_FORMAT_H_
