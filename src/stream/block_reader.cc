#include "stream/block_reader.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace graphtides {

BlockLineReader::BlockLineReader(BlockLineReaderOptions options)
    : options_(options) {
  if (options_.block_bytes == 0) options_.block_bytes = 1 << 16;
}

BlockLineReader::~BlockLineReader() {
  if (fd_ >= 0) ::close(fd_);
}

Status BlockLineReader::Open(const std::string& path) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    return Status::IoError("cannot open stream file: " + path + ": " +
                           std::strerror(errno));
  }
  buffer_.resize(options_.block_bytes);
  pos_ = end_ = 0;
  eof_ = false;
  line_number_ = 0;
  return Status::OK();
}

Result<bool> BlockLineReader::Refill() {
  if (pos_ > 0) {
    std::memmove(buffer_.data(), buffer_.data() + pos_, end_ - pos_);
    end_ -= pos_;
    pos_ = 0;
  }
  if (end_ == buffer_.size()) {
    // A line spans the whole buffer; grow (bounded by the caller's
    // over-long check) so it can complete.
    buffer_.resize(std::min(buffer_.size() * 2,
                            options_.max_line_bytes + options_.block_bytes));
  }
  while (true) {
    const ssize_t n =
        ::read(fd_, buffer_.data() + end_, buffer_.size() - end_);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("read failure: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      eof_ = true;
      return false;
    }
    end_ += static_cast<size_t>(n);
    return true;
  }
}

Result<std::optional<std::string_view>> BlockLineReader::NextLine(
    bool* terminated) {
  if (terminated != nullptr) *terminated = true;
  while (true) {
    const char* base = buffer_.data();
    const void* nl = std::memchr(base + pos_, '\n', end_ - pos_);
    if (nl != nullptr) {
      const size_t len =
          static_cast<size_t>(static_cast<const char*>(nl) - (base + pos_));
      if (len > options_.max_line_bytes) {
        pos_ += len + 1;
        ++line_number_;
        return Status::ParseError("line exceeds " +
                                  std::to_string(options_.max_line_bytes) +
                                  " bytes")
            .WithContext("line " + std::to_string(line_number_));
      }
      const std::string_view line(base + pos_, len);
      pos_ += len + 1;
      ++line_number_;
      return std::optional<std::string_view>(line);
    }
    const size_t pending = end_ - pos_;
    if (eof_) {
      if (pending == 0) return std::optional<std::string_view>(std::nullopt);
      ++line_number_;
      if (pending > options_.max_line_bytes) {
        pos_ = end_;
        return Status::ParseError("line exceeds " +
                                  std::to_string(options_.max_line_bytes) +
                                  " bytes")
            .WithContext("line " + std::to_string(line_number_));
      }
      const std::string_view line(base + pos_, pending);
      pos_ = end_;
      if (terminated != nullptr) *terminated = false;
      return std::optional<std::string_view>(line);
    }
    if (pending > options_.max_line_bytes) {
      // Over-long and still unterminated: drain to the next newline (or
      // EOF) without buffering, so the caller can resume at the next
      // record — same recovery contract as StreamFileReader.
      while (true) {
        const void* drain_nl =
            std::memchr(buffer_.data() + pos_, '\n', end_ - pos_);
        if (drain_nl != nullptr) {
          pos_ = static_cast<size_t>(static_cast<const char*>(drain_nl) -
                                     buffer_.data()) +
                 1;
          break;
        }
        pos_ = end_ = 0;
        GT_ASSIGN_OR_RETURN(const bool more, Refill());
        if (!more) {
          pos_ = end_;
          break;
        }
      }
      ++line_number_;
      return Status::ParseError("line exceeds " +
                                std::to_string(options_.max_line_bytes) +
                                " bytes")
          .WithContext("line " + std::to_string(line_number_));
    }
    GT_ASSIGN_OR_RETURN(const bool more, Refill());
    (void)more;  // EOF is observed via eof_ on the next iteration
  }
}

}  // namespace graphtides
