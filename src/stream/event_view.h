// Zero-copy event parsing for the replayer hot path.
//
// ParseEventLine (stream/event.h) allocates an Event with an owned payload
// string per call — fine for tools and tests, too slow for a replayer that
// must saturate hardware (§5.1). ParseEventLineView parses the same format
// into an EventView whose payload is a string_view into the input line (or
// into a caller-owned scratch buffer when CSV unescaping is required), so a
// steady-state parse loop performs no allocation at all.
//
// The view parser accepts and rejects exactly the same lines as
// ParseEventLine and produces identical field values; the property test in
// tests/stream/event_property_test.cc holds the two byte-for-byte equal.
#ifndef GRAPHTIDES_STREAM_EVENT_VIEW_H_
#define GRAPHTIDES_STREAM_EVENT_VIEW_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "stream/event.h"

namespace graphtides {

/// \brief One parsed stream entry whose payload borrows from the input
/// line or from the scratch buffer passed to ParseEventLineView.
///
/// Valid only as long as both the line and the scratch buffer are alive
/// and unmodified. Materialize() copies into an owned Event.
struct EventView {
  EventType type = EventType::kAddVertex;
  VertexId vertex = 0;
  EdgeId edge;
  std::string_view payload;
  double rate_factor = 1.0;
  Duration pause;

  Event Materialize() const;

  /// Appends the canonical stream-file rendering of this view (identical
  /// bytes to Materialize().ToCsvLine()) plus a trailing '\n' to *out.
  /// Appending instead of returning keeps batched serialization
  /// allocation-free once *out has warmed up its capacity.
  void AppendLine(std::string* out) const;
};

/// \brief Parses one stream-file line without allocating in steady state.
///
/// Same contract as ParseEventLine: blank/comment lines yield NotFound,
/// malformed lines ParseError. `scratch` backs CSV unescaping of quoted
/// fields and is cleared on every call; reusing one scratch string across
/// calls makes repeated parsing allocation-free once its capacity has
/// grown to the longest line seen.
Result<EventView> ParseEventLineView(std::string_view line,
                                     std::string* scratch);

}  // namespace graphtides

#endif  // GRAPHTIDES_STREAM_EVENT_VIEW_H_
