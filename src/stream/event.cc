#include "stream/event.h"

#include <charconv>
#include <cstdio>
#include <cstring>

#include "common/csv.h"
#include "common/string_util.h"

namespace graphtides {

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kAddVertex:
      return "CREATE_VERTEX";
    case EventType::kRemoveVertex:
      return "REMOVE_VERTEX";
    case EventType::kUpdateVertex:
      return "UPDATE_VERTEX";
    case EventType::kAddEdge:
      return "CREATE_EDGE";
    case EventType::kRemoveEdge:
      return "REMOVE_EDGE";
    case EventType::kUpdateEdge:
      return "UPDATE_EDGE";
    case EventType::kMarker:
      return "MARKER";
    case EventType::kSetRate:
      return "SET_RATE";
    case EventType::kPause:
      return "PAUSE";
  }
  return "UNKNOWN";
}

Result<EventType> EventTypeFromName(std::string_view name) {
  if (name == "CREATE_VERTEX") return EventType::kAddVertex;
  if (name == "REMOVE_VERTEX") return EventType::kRemoveVertex;
  if (name == "UPDATE_VERTEX") return EventType::kUpdateVertex;
  if (name == "CREATE_EDGE") return EventType::kAddEdge;
  if (name == "REMOVE_EDGE") return EventType::kRemoveEdge;
  if (name == "UPDATE_EDGE") return EventType::kUpdateEdge;
  if (name == "MARKER") return EventType::kMarker;
  if (name == "SET_RATE") return EventType::kSetRate;
  if (name == "PAUSE") return EventType::kPause;
  return Status::ParseError("unknown command: '" + std::string(name) + "'");
}

bool IsGraphOp(EventType type) {
  return static_cast<uint8_t>(type) <=
         static_cast<uint8_t>(EventType::kUpdateEdge);
}

bool IsTopologyChange(EventType type) {
  return type == EventType::kAddVertex || type == EventType::kRemoveVertex ||
         type == EventType::kAddEdge || type == EventType::kRemoveEdge;
}

bool IsStateUpdate(EventType type) {
  return type == EventType::kUpdateVertex || type == EventType::kUpdateEdge;
}

bool IsVertexOp(EventType type) {
  return type == EventType::kAddVertex || type == EventType::kRemoveVertex ||
         type == EventType::kUpdateVertex;
}

bool IsEdgeOp(EventType type) {
  return type == EventType::kAddEdge || type == EventType::kRemoveEdge ||
         type == EventType::kUpdateEdge;
}

bool IsControl(EventType type) {
  return type == EventType::kSetRate || type == EventType::kPause;
}

bool IsAddOp(EventType type) {
  return type == EventType::kAddVertex || type == EventType::kAddEdge;
}

bool IsRemoveOp(EventType type) {
  return type == EventType::kRemoveVertex || type == EventType::kRemoveEdge;
}

Event Event::AddVertex(VertexId id, std::string state) {
  Event e;
  e.type = EventType::kAddVertex;
  e.vertex = id;
  e.payload = std::move(state);
  return e;
}

Event Event::RemoveVertex(VertexId id) {
  Event e;
  e.type = EventType::kRemoveVertex;
  e.vertex = id;
  return e;
}

Event Event::UpdateVertex(VertexId id, std::string state) {
  Event e;
  e.type = EventType::kUpdateVertex;
  e.vertex = id;
  e.payload = std::move(state);
  return e;
}

Event Event::AddEdge(VertexId src, VertexId dst, std::string state) {
  Event e;
  e.type = EventType::kAddEdge;
  e.edge = {src, dst};
  e.payload = std::move(state);
  return e;
}

Event Event::RemoveEdge(VertexId src, VertexId dst) {
  Event e;
  e.type = EventType::kRemoveEdge;
  e.edge = {src, dst};
  return e;
}

Event Event::UpdateEdge(VertexId src, VertexId dst, std::string state) {
  Event e;
  e.type = EventType::kUpdateEdge;
  e.edge = {src, dst};
  e.payload = std::move(state);
  return e;
}

Event Event::Marker(std::string label) {
  Event e;
  e.type = EventType::kMarker;
  e.payload = std::move(label);
  return e;
}

Event Event::SetRate(double factor) {
  Event e;
  e.type = EventType::kSetRate;
  e.rate_factor = factor;
  return e;
}

Event Event::Pause(Duration duration) {
  Event e;
  e.type = EventType::kPause;
  e.pause = duration;
  return e;
}

bool Event::operator==(const Event& other) const {
  if (type != other.type) return false;
  switch (type) {
    case EventType::kAddVertex:
    case EventType::kUpdateVertex:
      return vertex == other.vertex && payload == other.payload;
    case EventType::kRemoveVertex:
      return vertex == other.vertex;
    case EventType::kAddEdge:
    case EventType::kUpdateEdge:
      return edge == other.edge && payload == other.payload;
    case EventType::kRemoveEdge:
      return edge == other.edge;
    case EventType::kMarker:
      return payload == other.payload;
    case EventType::kSetRate:
      return rate_factor == other.rate_factor;
    case EventType::kPause:
      return pause == other.pause;
  }
  return false;
}

namespace event_internal {

namespace {

void AppendU64(uint64_t value, std::string* out) {
  char buf[20];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  out->append(buf, static_cast<size_t>(end - buf));
}

void AppendI64(int64_t value, std::string* out) {
  char buf[21];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  out->append(buf, static_cast<size_t>(end - buf));
}

/// Append-variant of EscapeCsvField (common/csv.cc): identical output
/// bytes, no intermediate string. Escaping copies whole runs between
/// quotes instead of one push_back per character — JSON-ish payloads make
/// quoted fields the common case on the replay serialize path.
void AppendCsvField(std::string_view field, std::string* out) {
  if (field.find_first_of(",\"\n\r") == std::string_view::npos) {
    out->append(field);
    return;
  }
  out->push_back('"');
  size_t start = 0;
  while (true) {
    const size_t q = field.find('"', start);
    if (q == std::string_view::npos) {
      out->append(field.substr(start));
      break;
    }
    out->append(field.substr(start, q - start + 1));  // run incl. the quote
    out->push_back('"');                              // double it
    start = q + 1;
  }
  out->push_back('"');
}

}  // namespace

void AppendEventFields(EventType type, VertexId vertex, const EdgeId& edge,
                       std::string_view payload, double rate_factor,
                       Duration pause, std::string* out) {
  // Fast path for the dominant line shapes: graph ops whose payload needs
  // no CSV quoting. One stack buffer and a single append replace five or
  // six bounds-checked string appends — this is the replay hot loop's
  // serializer, and the appends dominate its cost.
  if (IsGraphOp(type) && payload.size() <= 256 &&
      payload.find_first_of(",\"\n\r") == std::string_view::npos) {
    char buf[320];
    char* p = buf;
    const std::string_view name = EventTypeName(type);
    std::memcpy(p, name.data(), name.size());
    p += name.size();
    *p++ = ',';
    if (IsEdgeOp(type)) {
      p = std::to_chars(p, buf + sizeof(buf), edge.src).ptr;
      *p++ = '-';
      p = std::to_chars(p, buf + sizeof(buf), edge.dst).ptr;
    } else {
      p = std::to_chars(p, buf + sizeof(buf), vertex).ptr;
    }
    *p++ = ',';
    if (type != EventType::kRemoveVertex && type != EventType::kRemoveEdge) {
      std::memcpy(p, payload.data(), payload.size());
      p += payload.size();
    }
    out->append(buf, static_cast<size_t>(p - buf));
    return;
  }
  out->append(EventTypeName(type));
  out->push_back(',');
  switch (type) {
    case EventType::kAddVertex:
    case EventType::kUpdateVertex:
      AppendU64(vertex, out);
      out->push_back(',');
      AppendCsvField(payload, out);
      break;
    case EventType::kRemoveVertex:
      AppendU64(vertex, out);
      out->push_back(',');
      break;
    case EventType::kAddEdge:
    case EventType::kUpdateEdge:
      AppendU64(edge.src, out);
      out->push_back('-');
      AppendU64(edge.dst, out);
      out->push_back(',');
      AppendCsvField(payload, out);
      break;
    case EventType::kRemoveEdge:
      AppendU64(edge.src, out);
      out->push_back('-');
      AppendU64(edge.dst, out);
      out->push_back(',');
      break;
    case EventType::kMarker:
      out->push_back(',');
      AppendCsvField(payload, out);
      break;
    case EventType::kSetRate: {
      out->push_back(',');
      char buf[32];
      const int len = std::snprintf(buf, sizeof(buf), "%g", rate_factor);
      out->append(buf, static_cast<size_t>(len));
      break;
    }
    case EventType::kPause:
      out->push_back(',');
      AppendI64(pause.millis(), out);
      break;
  }
}

}  // namespace event_internal

std::string Event::ToCsvLine() const {
  std::string out;
  event_internal::AppendEventFields(type, vertex, edge, payload, rate_factor,
                                    pause, &out);
  return out;
}

std::string FormatEventLine(const Event& event) { return event.ToCsvLine(); }

void AppendEventLine(const Event& event, std::string* out) {
  event_internal::AppendEventFields(event.type, event.vertex, event.edge,
                                    event.payload, event.rate_factor,
                                    event.pause, out);
  out->push_back('\n');
}

Result<EdgeId> ParseEdgeId(std::string_view s) {
  const size_t dash = s.find('-');
  if (dash == std::string_view::npos) {
    return Status::ParseError("edge id missing '-': '" + std::string(s) + "'");
  }
  GT_ASSIGN_OR_RETURN(const uint64_t src, ParseUint64(s.substr(0, dash)));
  GT_ASSIGN_OR_RETURN(const uint64_t dst, ParseUint64(s.substr(dash + 1)));
  return EdgeId{src, dst};
}

Result<Event> ParseEventLine(std::string_view line) {
  const std::string_view trimmed = TrimWhitespace(line);
  if (trimmed.empty() || trimmed.front() == '#') {
    return Status::NotFound("blank or comment line");
  }
  GT_ASSIGN_OR_RETURN(const std::vector<std::string> fields,
                      ParseCsvLine(trimmed));
  if (fields.size() != 3) {
    return Status::ParseError("expected 3 fields, got " +
                              std::to_string(fields.size()));
  }
  GT_ASSIGN_OR_RETURN(const EventType type, EventTypeFromName(fields[0]));

  Event e;
  e.type = type;
  switch (type) {
    case EventType::kAddVertex:
    case EventType::kUpdateVertex:
    case EventType::kRemoveVertex: {
      GT_ASSIGN_OR_RETURN(e.vertex, ParseUint64(fields[1]));
      e.payload = fields[2];
      break;
    }
    case EventType::kAddEdge:
    case EventType::kUpdateEdge:
    case EventType::kRemoveEdge: {
      GT_ASSIGN_OR_RETURN(e.edge, ParseEdgeId(fields[1]));
      e.payload = fields[2];
      break;
    }
    case EventType::kMarker:
      e.payload = fields[2];
      break;
    case EventType::kSetRate: {
      GT_ASSIGN_OR_RETURN(e.rate_factor, ParseDouble(fields[2]));
      if (e.rate_factor <= 0.0) {
        return Status::ParseError("rate factor must be positive");
      }
      break;
    }
    case EventType::kPause: {
      GT_ASSIGN_OR_RETURN(const int64_t ms, ParseInt64(fields[2]));
      if (ms < 0) return Status::ParseError("pause must be non-negative");
      e.pause = Duration::FromMillis(ms);
      break;
    }
  }
  return e;
}

std::ostream& operator<<(std::ostream& os, const Event& e) {
  return os << e.ToCsvLine();
}

}  // namespace graphtides
