// Reading gt-stream-v2 files (stream/v2_format.h). Two modes, proven
// equivalent by tests/stream/v2_roundtrip_test.cc:
//
//   * mmap (default): the file is mapped read-only and every EventView —
//     payload included — borrows directly from the mapping. After the
//     per-block CRC pass, decoding a record is a handful of
//     bounds-checked fixed-width loads: no parse, no copy, no
//     allocation. This is the sharded replayer's hot path.
//   * buffered read: each block is pread into a reusable buffer — the
//     fallback for streams mmap cannot serve, and the cross-check that
//     keeps the mmap fast path honest.
//
// Integrity discipline per block: the 24-byte header is magic- and
// CRC-verified before its lengths are trusted, then the body
// (records ‖ trailer) is CRC-verified before any record is decoded. A
// mandatory end-of-stream sentinel makes truncation at a block boundary
// detectable, so every proper-prefix truncation and every bit flip is a
// ParseError.
#ifndef GRAPHTIDES_STREAM_V2_READER_H_
#define GRAPHTIDES_STREAM_V2_READER_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "stream/event.h"
#include "stream/event_view.h"
#include "stream/v2_format.h"

namespace graphtides {

struct V2ReaderOptions {
  /// Map the file read-only (default). When false, blocks are read into a
  /// reusable buffer with stdio instead.
  bool use_mmap = true;
};

/// \brief Sequential reader over a gt-stream-v2 file.
///
/// Usage mirrors StreamFileReader: Open, then Next() until it yields
/// nullopt (the verified end-of-stream sentinel). A returned view (and
/// its payload) stays valid until the next Next() call.
class V2StreamReader {
 public:
  explicit V2StreamReader(V2ReaderOptions options = {})
      : options_(options) {}
  ~V2StreamReader();

  V2StreamReader(const V2StreamReader&) = delete;
  V2StreamReader& operator=(const V2StreamReader&) = delete;

  Status Open(const std::string& path);

  /// Next event view, std::nullopt after the end-of-stream sentinel, or a
  /// ParseError annotated with the 1-based record number. Corruption is
  /// not recoverable: after a ParseError the reader is poisoned.
  Result<std::optional<EventView>> Next();

  /// 1-based number of the last record decoded.
  uint64_t record_number() const { return record_number_; }

 private:
  Status LoadNextBlock();
  void CloseFile();

  V2ReaderOptions options_;
  bool opened_ = false;
  bool at_end_ = false;
  uint64_t record_number_ = 0;

  // mmap mode.
  const char* map_ = nullptr;
  size_t map_size_ = 0;
  size_t pos_ = 0;  // offset of the next unread byte in the mapping

  // buffered mode.
  std::FILE* file_ = nullptr;
  std::string block_buf_;  // reused per-block body storage

  // Current block (slices of the mapping or of block_buf_).
  std::string_view records_;
  std::string_view trailer_;
  size_t block_records_ = 0;
  size_t next_record_ = 0;
};

/// Loads a whole v2 stream file into memory (tools, tests).
Result<std::vector<Event>> ReadV2StreamFile(const std::string& path);

/// \brief Loads a stream file of either format, dispatching on the magic:
/// v2 via ReadV2StreamFile, anything else via the CSV ReadStreamFile.
Result<std::vector<Event>> ReadStreamFileAnyFormat(const std::string& path);

}  // namespace graphtides

#endif  // GRAPHTIDES_STREAM_V2_READER_H_
