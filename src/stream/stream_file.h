// Reading and writing graph stream files (§4.2): plain CSV, one event per
// line. Blank lines and '#' comments are permitted and skipped on read.
#ifndef GRAPHTIDES_STREAM_STREAM_FILE_H_
#define GRAPHTIDES_STREAM_STREAM_FILE_H_

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "stream/event.h"

namespace graphtides {

struct StreamFileReaderOptions {
  /// Lines longer than this are rejected with ParseError instead of being
  /// buffered whole — a missing newline in a giant corrupt file must not
  /// balloon into an unbounded allocation.
  size_t max_line_bytes = 1 << 20;
};

/// \brief Sequential reader over a graph stream file.
///
/// Usage:
///   StreamFileReader reader;
///   GT_RETURN_NOT_OK(reader.Open(path));
///   while (true) {
///     auto next = reader.Next();
///     if (!next.ok()) return next.status();
///     if (!next->has_value()) break;  // end of stream
///     Process(**next);
///   }
class StreamFileReader {
 public:
  explicit StreamFileReader(StreamFileReaderOptions options = {})
      : options_(options) {}

  Status Open(const std::string& path);

  /// Next event, std::nullopt at end of file, or a ParseError annotated with
  /// the 1-based line number. An unterminated final line that fails to parse
  /// is flagged as a truncated final record. After a ParseError the reader
  /// is positioned at the next line, so callers may keep reading to collect
  /// every malformed line.
  Result<std::optional<Event>> Next();

  /// 1-based number of the last line consumed.
  size_t line_number() const { return line_number_; }

 private:
  StreamFileReaderOptions options_;
  std::ifstream in_;
  size_t line_number_ = 0;
};

/// \brief Sequential writer producing a graph stream file.
class StreamFileWriter {
 public:
  Status Open(const std::string& path);

  Status Append(const Event& event);
  Status AppendComment(const std::string& comment);
  Status Flush();
  Status Close();

  size_t events_written() const { return events_written_; }

 private:
  std::ofstream out_;
  std::string line_buf_;  // reused across Append calls
  size_t events_written_ = 0;
};

/// Loads a whole stream file into memory.
Result<std::vector<Event>> ReadStreamFile(const std::string& path);

/// Writes `events` to `path`, replacing any existing file.
Status WriteStreamFile(const std::string& path,
                       const std::vector<Event>& events);

/// Parses a stream held in a string (one event per line), for tests and
/// in-process pipelines.
Result<std::vector<Event>> ParseStreamText(const std::string& text);

/// Renders events as stream-file text.
std::string FormatStreamText(const std::vector<Event>& events);

}  // namespace graphtides

#endif  // GRAPHTIDES_STREAM_STREAM_FILE_H_
