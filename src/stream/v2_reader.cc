#include "stream/v2_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "stream/stream_file.h"

namespace graphtides {

namespace {

Status MissingSentinel() {
  return Status::ParseError(
      "truncated v2 stream: missing end-of-stream block");
}

}  // namespace

V2StreamReader::~V2StreamReader() { CloseFile(); }

void V2StreamReader::CloseFile() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), map_size_);
    map_ = nullptr;
    map_size_ = 0;
  }
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status V2StreamReader::Open(const std::string& path) {
  if (opened_) return Status::Internal("reader already open");
  if (options_.use_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IoError("cannot open " + path + ": " +
                             std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::IoError("cannot stat " + path + ": " +
                             std::strerror(err));
    }
    map_size_ = static_cast<size_t>(st.st_size);
    if (map_size_ < kV2PreambleBytes) {
      ::close(fd);
      return Status::ParseError("truncated v2 preamble (" +
                                std::to_string(map_size_) + " of " +
                                std::to_string(kV2PreambleBytes) + " bytes)");
    }
    void* map = ::mmap(nullptr, map_size_, PROT_READ, MAP_PRIVATE, fd, 0);
    // The descriptor is not needed once the mapping exists.
    ::close(fd);
    if (map == MAP_FAILED) {
      map_size_ = 0;
      return Status::IoError("cannot mmap " + path + ": " +
                             std::strerror(errno));
    }
    map_ = static_cast<const char*>(map);
    const Status preamble =
        CheckV2Preamble(std::string_view(map_, kV2PreambleBytes));
    if (!preamble.ok()) {
      CloseFile();
      return preamble;
    }
    pos_ = kV2PreambleBytes;
  } else {
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr) {
      return Status::IoError("cannot open " + path + ": " +
                             std::strerror(errno));
    }
    char preamble[kV2PreambleBytes];
    const size_t got = std::fread(preamble, 1, sizeof(preamble), file_);
    const Status st =
        CheckV2Preamble(std::string_view(preamble, got));
    if (!st.ok()) {
      CloseFile();
      return st;
    }
  }
  opened_ = true;
  return Status::OK();
}

Status V2StreamReader::LoadNextBlock() {
  std::string_view header;
  char header_buf[kV2BlockHeaderBytes];
  if (options_.use_mmap) {
    const size_t remaining = map_size_ - pos_;
    if (remaining == 0) return MissingSentinel();
    header = std::string_view(map_ + pos_,
                              std::min(remaining, kV2BlockHeaderBytes));
  } else {
    const size_t got =
        std::fread(header_buf, 1, sizeof(header_buf), file_);
    if (got == 0 && std::feof(file_)) return MissingSentinel();
    if (got < sizeof(header_buf) && std::ferror(file_)) {
      return Status::IoError("read failed: " +
                             std::string(std::strerror(errno)));
    }
    header = std::string_view(header_buf, got);
  }
  GT_ASSIGN_OR_RETURN(const V2BlockHeader h, ParseV2BlockHeader(header));
  if (h.end_of_stream()) {
    // The sentinel must be the final bytes of the stream: anything after
    // it is corruption, not more events.
    if (options_.use_mmap) {
      if (pos_ + kV2BlockHeaderBytes != map_size_) {
        return Status::ParseError("trailing bytes after v2 end-of-stream");
      }
    } else {
      if (std::fgetc(file_) != EOF) {
        return Status::ParseError("trailing bytes after v2 end-of-stream");
      }
    }
    at_end_ = true;
    block_records_ = 0;
    next_record_ = 0;
    return Status::OK();
  }
  const size_t body_bytes = h.body_bytes();
  std::string_view body;
  if (options_.use_mmap) {
    pos_ += kV2BlockHeaderBytes;
    body = std::string_view(map_ + pos_,
                            std::min(map_size_ - pos_, body_bytes));
    pos_ += body.size();
  } else {
    block_buf_.resize(body_bytes);
    const size_t got = std::fread(block_buf_.data(), 1, body_bytes, file_);
    if (got < body_bytes && std::ferror(file_)) {
      return Status::IoError("read failed: " +
                             std::string(std::strerror(errno)));
    }
    body = std::string_view(block_buf_.data(), got);
  }
  GT_RETURN_NOT_OK(CheckV2BlockBody(h, body));
  records_ = body.substr(0, h.record_count * kV2RecordBytes);
  trailer_ = body.substr(h.record_count * kV2RecordBytes);
  block_records_ = h.record_count;
  next_record_ = 0;
  return Status::OK();
}

Result<std::optional<EventView>> V2StreamReader::Next() {
  if (!opened_) return Status::Internal("reader is not open");
  while (next_record_ >= block_records_) {
    if (at_end_) return std::optional<EventView>(std::nullopt);
    GT_RETURN_NOT_OK(LoadNextBlock());
  }
  const std::string_view record =
      records_.substr(next_record_ * kV2RecordBytes, kV2RecordBytes);
  ++next_record_;
  ++record_number_;
  Result<EventView> view = DecodeV2Record(record, trailer_);
  if (!view.ok()) {
    return view.status().WithContext("record " +
                                     std::to_string(record_number_));
  }
  return std::optional<EventView>(*view);
}

Result<std::vector<Event>> ReadV2StreamFile(const std::string& path) {
  V2StreamReader reader;
  GT_RETURN_NOT_OK(reader.Open(path));
  std::vector<Event> events;
  while (true) {
    GT_ASSIGN_OR_RETURN(const std::optional<EventView> view, reader.Next());
    if (!view.has_value()) return events;
    events.push_back(view->Materialize());
  }
}

Result<std::vector<Event>> ReadStreamFileAnyFormat(const std::string& path) {
  GT_ASSIGN_OR_RETURN(const StreamFormat format, DetectStreamFormat(path));
  if (format == StreamFormat::kV2) return ReadV2StreamFile(path);
  return ReadStreamFile(path);
}

}  // namespace graphtides
