// Writing gt-stream-v2 files (stream/v2_format.h): events accumulate in a
// V2BlockEncoder and each sealed block is issued as a single fwrite, so
// writing is buffered, bounded-memory and deterministic — the same event
// sequence always yields the same file bytes.
#ifndef GRAPHTIDES_STREAM_V2_WRITER_H_
#define GRAPHTIDES_STREAM_V2_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "stream/event.h"
#include "stream/v2_format.h"

namespace graphtides {

/// \brief Sequential writer producing a gt-stream-v2 file.
///
/// Open(path) owns the FILE and closes it in Finish(); Attach(out) borrows
/// a stream (e.g. stdout) and only flushes it. Finish() MUST be called for
/// the file to be complete: it seals the partial block and writes the
/// mandatory end-of-stream sentinel — a file missing it is rejected as
/// truncated by every v2 reader.
class V2FileWriter {
 public:
  V2FileWriter() = default;
  ~V2FileWriter();

  V2FileWriter(const V2FileWriter&) = delete;
  V2FileWriter& operator=(const V2FileWriter&) = delete;

  /// Creates/truncates `path` and writes the preamble.
  Status Open(const std::string& path);

  /// Borrows an open stream and writes the preamble.
  Status Attach(std::FILE* out);

  Status Append(const Event& event);
  /// Field-level append mirroring event_internal::AppendEventFields — the
  /// allocation-free path for callers holding borrowed views.
  Status AppendFields(EventType type, VertexId vertex, const EdgeId& edge,
                      std::string_view payload, double rate_factor,
                      Duration pause);

  /// Seals the partial block, writes the sentinel, flushes, and closes the
  /// FILE when owned. Idempotent; further Appends fail.
  Status Finish();

  uint64_t events_written() const { return events_written_; }
  /// Bytes handed to fwrite so far (exact after Finish()).
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Status WriteSealed();

  std::FILE* out_ = nullptr;
  bool owns_file_ = false;
  bool finished_ = false;
  V2BlockEncoder encoder_;
  std::string block_buf_;  // reused across seals
  uint64_t events_written_ = 0;
  uint64_t bytes_written_ = 0;
};

/// Writes `events` to `path` as a v2 stream, replacing any existing file.
Status WriteV2StreamFile(const std::string& path,
                         const std::vector<Event>& events);

}  // namespace graphtides

#endif  // GRAPHTIDES_STREAM_V2_WRITER_H_
