// In-memory directed property graph per the paper's graph model (§3.2 Graph
// Types): directed, stateful vertices and edges, unique numeric vertex IDs,
// no multigraphs, no self-loops. Undirected graphs are modeled by ignoring
// direction; stateless graphs by ignoring the state strings.
//
// This is the reference graph representation used by the stream validator's
// semantics, by the batch algorithms (ground truth), and by the simulated
// systems under test.
#ifndef GRAPHTIDES_GRAPH_GRAPH_H_
#define GRAPHTIDES_GRAPH_GRAPH_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "stream/event.h"

namespace graphtides {

/// \brief Mutable directed graph with string state on vertices and edges.
///
/// All mutating operations enforce the stream preconditions and return
/// PreconditionFailed without modifying the graph when violated; a stream
/// that passes StreamValidator applies cleanly.
class Graph {
 public:
  Graph() = default;

  // --- Mutation ---------------------------------------------------------

  Status AddVertex(VertexId id, std::string state = "");
  /// Removes the vertex and all incident edges.
  Status RemoveVertex(VertexId id);
  Status UpdateVertexState(VertexId id, std::string state);
  Status AddEdge(VertexId src, VertexId dst, std::string state = "");
  Status RemoveEdge(VertexId src, VertexId dst);
  Status UpdateEdgeState(VertexId src, VertexId dst, std::string state);

  /// Applies one stream event. Marker and control events are no-ops.
  Status Apply(const Event& event);

  /// Applies a whole stream; stops at (and returns) the first failure,
  /// annotated with the 0-based event index.
  Status ApplyAll(const std::vector<Event>& events);

  void Clear();

  // --- Inspection -------------------------------------------------------

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return num_edges_; }

  bool HasVertex(VertexId id) const { return vertices_.contains(id); }
  bool HasEdge(VertexId src, VertexId dst) const;

  Result<std::string> GetVertexState(VertexId id) const;
  Result<std::string> GetEdgeState(VertexId src, VertexId dst) const;

  /// Out-/in-degree; NotFound if the vertex does not exist.
  Result<size_t> OutDegree(VertexId id) const;
  Result<size_t> InDegree(VertexId id) const;
  /// OutDegree + InDegree.
  Result<size_t> Degree(VertexId id) const;

  /// Snapshot of all vertex IDs (unordered).
  std::vector<VertexId> VertexIds() const;

  /// Invokes `fn(id, state)` for every vertex.
  void ForEachVertex(
      const std::function<void(VertexId, const std::string&)>& fn) const;

  /// Invokes `fn(dst, state)` for every out-edge of `src`. No-op if `src`
  /// does not exist.
  void ForEachOutEdge(
      VertexId src,
      const std::function<void(VertexId, const std::string&)>& fn) const;

  /// Invokes `fn(src)` for every in-edge of `dst`. No-op if `dst` does not
  /// exist.
  void ForEachInEdge(VertexId dst,
                     const std::function<void(VertexId)>& fn) const;

  /// Invokes `fn(src, dst, state)` for every edge in the graph.
  void ForEachEdge(const std::function<void(VertexId, VertexId,
                                            const std::string&)>& fn) const;

  /// Deep copy (snapshot for offline computations, §4.4.2).
  Graph Clone() const { return *this; }

 private:
  struct VertexRecord {
    std::string state;
    // Out-adjacency carries the edge state; in-adjacency is id-only.
    std::unordered_map<VertexId, std::string> out;
    std::unordered_set<VertexId> in;
  };

  // CsrGraph::FromGraph reads the vertex records directly: the snapshot
  // build walks every adjacency set once per vertex, and going through the
  // std::function iteration API would cost an allocation per vertex.
  friend class CsrGraph;

  std::unordered_map<VertexId, VertexRecord> vertices_;
  size_t num_edges_ = 0;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_GRAPH_GRAPH_H_
