// Compressed sparse row (CSR) snapshot of a Graph. Batch algorithms
// (the reference computations of Table 1 and the exact-result baselines of
// §4.3 "Computation Metrics") run on this immutable, cache-friendly view
// rather than on the hash-based mutable Graph.
#ifndef GRAPHTIDES_GRAPH_CSR_H_
#define GRAPHTIDES_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace graphtides {

/// \brief Immutable CSR snapshot with both out- and in-adjacency.
///
/// Vertices are re-indexed to dense [0, n); the mapping to original
/// VertexIds is retained in both directions. Neighbor lists are sorted by
/// dense index, which makes intersections (triangle counting) linear.
class CsrGraph {
 public:
  /// Index type for dense vertex numbering.
  using Index = uint32_t;

  /// Builds a snapshot of `graph`. Vertex IDs are assigned dense indices in
  /// ascending VertexId order (deterministic across runs). `threads`
  /// parallelizes the degree count, edge scatter, and neighbor-list sort
  /// over vertex ranges (0 = auto, 1 = sequential); the result is
  /// identical at every thread count.
  static CsrGraph FromGraph(const Graph& graph, size_t threads = 0);

  size_t num_vertices() const { return ids_.size(); }
  size_t num_edges() const { return out_targets_.size(); }

  /// Original VertexId for a dense index.
  VertexId IdOf(Index idx) const { return ids_[idx]; }
  /// Dense index for an original VertexId; false if not present.
  bool IndexOf(VertexId id, Index* out) const;

  std::span<const Index> OutNeighbors(Index v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  std::span<const Index> InNeighbors(Index v) const {
    return {in_targets_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  size_t OutDegree(Index v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t InDegree(Index v) const { return in_offsets_[v + 1] - in_offsets_[v]; }

  /// All original vertex IDs in dense-index order.
  const std::vector<VertexId>& ids() const { return ids_; }

  /// CSR offset arrays (n + 1 entries) — the degree prefix sums the
  /// parallel kernels use for degree-balanced chunking.
  const std::vector<size_t>& out_offsets() const { return out_offsets_; }
  const std::vector<size_t>& in_offsets() const { return in_offsets_; }

 private:
  std::vector<VertexId> ids_;                      // dense index -> id
  std::unordered_map<VertexId, Index> index_of_;   // id -> dense index
  std::vector<size_t> out_offsets_;                // n+1 entries
  std::vector<Index> out_targets_;
  std::vector<size_t> in_offsets_;                 // n+1 entries
  std::vector<Index> in_targets_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_GRAPH_CSR_H_
