#include "graph/graph.h"

namespace graphtides {

namespace {

std::string EdgeName(VertexId src, VertexId dst) {
  return std::to_string(src) + "-" + std::to_string(dst);
}

}  // namespace

Status Graph::AddVertex(VertexId id, std::string state) {
  auto [it, inserted] = vertices_.try_emplace(id);
  if (!inserted) {
    return Status::PreconditionFailed("vertex already exists: " +
                                      std::to_string(id));
  }
  it->second.state = std::move(state);
  return Status::OK();
}

Status Graph::RemoveVertex(VertexId id) {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) {
    return Status::PreconditionFailed("vertex does not exist: " +
                                      std::to_string(id));
  }
  // Cascade-remove incident edges.
  for (const auto& [dst, state] : it->second.out) {
    vertices_[dst].in.erase(id);
    --num_edges_;
  }
  for (VertexId src : it->second.in) {
    vertices_[src].out.erase(id);
    --num_edges_;
  }
  vertices_.erase(it);
  return Status::OK();
}

Status Graph::UpdateVertexState(VertexId id, std::string state) {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) {
    return Status::PreconditionFailed("vertex does not exist: " +
                                      std::to_string(id));
  }
  it->second.state = std::move(state);
  return Status::OK();
}

Status Graph::AddEdge(VertexId src, VertexId dst, std::string state) {
  if (src == dst) {
    return Status::PreconditionFailed("self-loops are not allowed: " +
                                      EdgeName(src, dst));
  }
  auto src_it = vertices_.find(src);
  if (src_it == vertices_.end()) {
    return Status::PreconditionFailed("edge source does not exist: " +
                                      std::to_string(src));
  }
  auto dst_it = vertices_.find(dst);
  if (dst_it == vertices_.end()) {
    return Status::PreconditionFailed("edge destination does not exist: " +
                                      std::to_string(dst));
  }
  auto [edge_it, inserted] = src_it->second.out.try_emplace(dst);
  if (!inserted) {
    return Status::PreconditionFailed("edge already exists: " +
                                      EdgeName(src, dst));
  }
  edge_it->second = std::move(state);
  dst_it->second.in.insert(src);
  ++num_edges_;
  return Status::OK();
}

Status Graph::RemoveEdge(VertexId src, VertexId dst) {
  auto src_it = vertices_.find(src);
  if (src_it == vertices_.end() || src_it->second.out.erase(dst) == 0) {
    return Status::PreconditionFailed("edge does not exist: " +
                                      EdgeName(src, dst));
  }
  vertices_[dst].in.erase(src);
  --num_edges_;
  return Status::OK();
}

Status Graph::UpdateEdgeState(VertexId src, VertexId dst, std::string state) {
  auto src_it = vertices_.find(src);
  if (src_it == vertices_.end()) {
    return Status::PreconditionFailed("edge does not exist: " +
                                      EdgeName(src, dst));
  }
  auto edge_it = src_it->second.out.find(dst);
  if (edge_it == src_it->second.out.end()) {
    return Status::PreconditionFailed("edge does not exist: " +
                                      EdgeName(src, dst));
  }
  edge_it->second = std::move(state);
  return Status::OK();
}

Status Graph::Apply(const Event& event) {
  switch (event.type) {
    case EventType::kAddVertex:
      return AddVertex(event.vertex, event.payload);
    case EventType::kRemoveVertex:
      return RemoveVertex(event.vertex);
    case EventType::kUpdateVertex:
      return UpdateVertexState(event.vertex, event.payload);
    case EventType::kAddEdge:
      return AddEdge(event.edge.src, event.edge.dst, event.payload);
    case EventType::kRemoveEdge:
      return RemoveEdge(event.edge.src, event.edge.dst);
    case EventType::kUpdateEdge:
      return UpdateEdgeState(event.edge.src, event.edge.dst, event.payload);
    case EventType::kMarker:
    case EventType::kSetRate:
    case EventType::kPause:
      return Status::OK();
  }
  return Status::Internal("unhandled event type");
}

Status Graph::ApplyAll(const std::vector<Event>& events) {
  // Pre-size the vertex table: rehash churn dominates large snapshot
  // replays otherwise (every rehash rebuilds every bucket chain).
  size_t added_vertices = 0;
  for (const Event& e : events) {
    if (e.type == EventType::kAddVertex) ++added_vertices;
  }
  if (added_vertices > 0) vertices_.reserve(vertices_.size() + added_vertices);
  for (size_t i = 0; i < events.size(); ++i) {
    Status st = Apply(events[i]);
    if (!st.ok()) {
      return st.WithContext("event " + std::to_string(i));
    }
  }
  return Status::OK();
}

void Graph::Clear() {
  vertices_.clear();
  num_edges_ = 0;
}

bool Graph::HasEdge(VertexId src, VertexId dst) const {
  auto it = vertices_.find(src);
  return it != vertices_.end() && it->second.out.contains(dst);
}

Result<std::string> Graph::GetVertexState(VertexId id) const {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) {
    return Status::NotFound("vertex does not exist: " + std::to_string(id));
  }
  return it->second.state;
}

Result<std::string> Graph::GetEdgeState(VertexId src, VertexId dst) const {
  auto it = vertices_.find(src);
  if (it != vertices_.end()) {
    auto edge_it = it->second.out.find(dst);
    if (edge_it != it->second.out.end()) return edge_it->second;
  }
  return Status::NotFound("edge does not exist: " + EdgeName(src, dst));
}

Result<size_t> Graph::OutDegree(VertexId id) const {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) {
    return Status::NotFound("vertex does not exist: " + std::to_string(id));
  }
  return it->second.out.size();
}

Result<size_t> Graph::InDegree(VertexId id) const {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) {
    return Status::NotFound("vertex does not exist: " + std::to_string(id));
  }
  return it->second.in.size();
}

Result<size_t> Graph::Degree(VertexId id) const {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) {
    return Status::NotFound("vertex does not exist: " + std::to_string(id));
  }
  return it->second.out.size() + it->second.in.size();
}

std::vector<VertexId> Graph::VertexIds() const {
  std::vector<VertexId> ids;
  ids.reserve(vertices_.size());
  for (const auto& [id, record] : vertices_) ids.push_back(id);
  return ids;
}

void Graph::ForEachVertex(
    const std::function<void(VertexId, const std::string&)>& fn) const {
  for (const auto& [id, record] : vertices_) fn(id, record.state);
}

void Graph::ForEachOutEdge(
    VertexId src,
    const std::function<void(VertexId, const std::string&)>& fn) const {
  auto it = vertices_.find(src);
  if (it == vertices_.end()) return;
  for (const auto& [dst, state] : it->second.out) fn(dst, state);
}

void Graph::ForEachInEdge(VertexId dst,
                          const std::function<void(VertexId)>& fn) const {
  auto it = vertices_.find(dst);
  if (it == vertices_.end()) return;
  for (VertexId src : it->second.in) fn(src);
}

void Graph::ForEachEdge(const std::function<void(VertexId, VertexId,
                                                 const std::string&)>& fn)
    const {
  for (const auto& [src, record] : vertices_) {
    for (const auto& [dst, state] : record.out) fn(src, dst, state);
  }
}

}  // namespace graphtides
