#include "graph/csr.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"

namespace graphtides {

CsrGraph CsrGraph::FromGraph(const Graph& graph, size_t threads) {
  CsrGraph csr;
  const size_t n = graph.vertices_.size();

  // One walk over the vertex table yields both the sorted id list and a
  // record pointer per dense index — no per-vertex hash lookups later.
  std::vector<std::pair<VertexId, const Graph::VertexRecord*>> records;
  records.reserve(n);
  for (const auto& [id, record] : graph.vertices_) {
    records.emplace_back(id, &record);
  }
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  csr.ids_.resize(n);
  csr.index_of_.reserve(n);
  for (Index i = 0; i < n; ++i) {
    csr.ids_[i] = records[i].first;
    csr.index_of_.emplace(records[i].first, i);
  }

  csr.out_offsets_.assign(n + 1, 0);
  csr.in_offsets_.assign(n + 1, 0);
  if (n == 0) return csr;

  // Degree pass: each vertex's degrees come straight off its record.
  ParallelFor(0, n, {.threads = threads, .grain = 8192},
              [&](size_t begin, size_t end) {
                for (size_t v = begin; v < end; ++v) {
                  csr.out_offsets_[v + 1] = records[v].second->out.size();
                  csr.in_offsets_[v + 1] = records[v].second->in.size();
                }
              });
  // Prefix sums (O(n), sequential), plus the combined work prefix that
  // drives degree-balanced chunking of the scatter pass.
  std::vector<size_t> work(n + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    work[i] = work[i - 1] + csr.out_offsets_[i] + csr.in_offsets_[i];
    csr.out_offsets_[i] += csr.out_offsets_[i - 1];
    csr.in_offsets_[i] += csr.in_offsets_[i - 1];
  }

  // Scatter pass: every vertex fills and sorts its own target ranges, so
  // no two chunks ever write the same cache line's worth of slots twice
  // and no atomics are needed. The id -> index map is read-only here.
  csr.out_targets_.resize(graph.num_edges());
  csr.in_targets_.resize(graph.num_edges());
  const auto chunks = DegreeBalancedChunks(work, 16384);
  ParallelForChunks(
      chunks, threads, [&](size_t, size_t begin, size_t end) {
        for (size_t v = begin; v < end; ++v) {
          const Graph::VertexRecord& record = *records[v].second;
          size_t cursor = csr.out_offsets_[v];
          for (const auto& [dst, state] : record.out) {
            csr.out_targets_[cursor++] = csr.index_of_.find(dst)->second;
          }
          std::sort(csr.out_targets_.begin() + csr.out_offsets_[v],
                    csr.out_targets_.begin() + cursor);
          cursor = csr.in_offsets_[v];
          for (VertexId src : record.in) {
            csr.in_targets_[cursor++] = csr.index_of_.find(src)->second;
          }
          std::sort(csr.in_targets_.begin() + csr.in_offsets_[v],
                    csr.in_targets_.begin() + cursor);
        }
      });
  return csr;
}

bool CsrGraph::IndexOf(VertexId id, Index* out) const {
  auto it = index_of_.find(id);
  if (it == index_of_.end()) return false;
  *out = it->second;
  return true;
}

}  // namespace graphtides
