#include "graph/csr.h"

#include <algorithm>

namespace graphtides {

CsrGraph CsrGraph::FromGraph(const Graph& graph) {
  CsrGraph csr;
  csr.ids_ = graph.VertexIds();
  std::sort(csr.ids_.begin(), csr.ids_.end());
  csr.index_of_.reserve(csr.ids_.size());
  for (Index i = 0; i < csr.ids_.size(); ++i) {
    csr.index_of_.emplace(csr.ids_[i], i);
  }

  const size_t n = csr.ids_.size();
  csr.out_offsets_.assign(n + 1, 0);
  csr.in_offsets_.assign(n + 1, 0);

  // Counting pass.
  graph.ForEachEdge([&](VertexId src, VertexId dst, const std::string&) {
    ++csr.out_offsets_[csr.index_of_[src] + 1];
    ++csr.in_offsets_[csr.index_of_[dst] + 1];
  });
  for (size_t i = 1; i <= n; ++i) {
    csr.out_offsets_[i] += csr.out_offsets_[i - 1];
    csr.in_offsets_[i] += csr.in_offsets_[i - 1];
  }

  // Fill pass.
  csr.out_targets_.resize(graph.num_edges());
  csr.in_targets_.resize(graph.num_edges());
  std::vector<size_t> out_cursor(csr.out_offsets_.begin(),
                                 csr.out_offsets_.end() - 1);
  std::vector<size_t> in_cursor(csr.in_offsets_.begin(),
                                csr.in_offsets_.end() - 1);
  graph.ForEachEdge([&](VertexId src, VertexId dst, const std::string&) {
    const Index s = csr.index_of_[src];
    const Index d = csr.index_of_[dst];
    csr.out_targets_[out_cursor[s]++] = d;
    csr.in_targets_[in_cursor[d]++] = s;
  });

  // Sort neighbor lists for deterministic iteration and fast intersection.
  for (size_t v = 0; v < n; ++v) {
    std::sort(csr.out_targets_.begin() + csr.out_offsets_[v],
              csr.out_targets_.begin() + csr.out_offsets_[v + 1]);
    std::sort(csr.in_targets_.begin() + csr.in_offsets_[v],
              csr.in_targets_.begin() + csr.in_offsets_[v + 1]);
  }
  return csr;
}

bool CsrGraph::IndexOf(VertexId id, Index* out) const {
  auto it = index_of_.find(id);
  if (it == index_of_.end()) return false;
  *out = it->second;
  return true;
}

}  // namespace graphtides
