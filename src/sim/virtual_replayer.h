// VirtualReplayer: the graph stream replayer transposed into virtual time.
// Emission follows the same semantics as replayer::StreamReplayer — uniform
// base rate, SET_RATE speed-up factors, PAUSE suspensions, marker logging —
// but deadlines are simulator timestamps instead of busy-waited wall-clock
// instants, so simulated SUT experiments run deterministically and fast.
#ifndef GRAPHTIDES_SIM_VIRTUAL_REPLAYER_H_
#define GRAPHTIDES_SIM_VIRTUAL_REPLAYER_H_

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "stream/event.h"

namespace graphtides {

struct VirtualReplayerOptions {
  double base_rate_eps = 2000.0;
  bool honor_control_events = true;
  /// Backoff before re-checking a closed backpressure gate.
  Duration gate_backoff = Duration::FromMillis(1);
};

/// \brief Schedules a stream's events onto a Simulator.
class VirtualReplayer {
 public:
  /// Delivery of one graph event (with its stream index).
  using DeliverFn = std::function<void(const Event&, size_t index)>;
  /// A marker passed the emitter.
  using MarkerFn = std::function<void(const std::string& label)>;
  using DoneFn = std::function<void()>;

  VirtualReplayer(Simulator* sim, VirtualReplayerOptions options)
      : sim_(sim), options_(options) {}

  /// Starts emission at the current virtual time. Events are emitted as
  /// the simulator runs; `on_done` fires after the last entry.
  void Start(std::vector<Event> events, DeliverFn deliver,
             MarkerFn on_marker = {}, DoneFn on_done = {});

  /// \brief Backpressure gate (§3.2: "the flow control mechanism of TCP
  /// can be used to indicate overload").
  ///
  /// When set and returning false, emission of the next graph event is
  /// deferred by `gate_backoff` and the gate re-checked — the consumer
  /// backthrottles the replayer instead of buffering unboundedly. The
  /// schedule resumes from the moment the gate opens (no burst catch-up).
  void SetGate(std::function<bool()> gate) { gate_ = std::move(gate); }

  /// Total time spent throttled by the gate.
  Duration throttled_time() const { return throttled_; }

  size_t events_delivered() const { return delivered_; }
  /// Virtual emission time of each delivered graph event, in stream order.
  const std::vector<Timestamp>& delivery_times() const {
    return delivery_times_;
  }
  bool finished() const { return finished_; }
  Timestamp finished_at() const { return finished_at_; }

 private:
  void EmitNext();

  Simulator* sim_;
  VirtualReplayerOptions options_;
  std::vector<Event> events_;
  DeliverFn deliver_;
  MarkerFn on_marker_;
  DoneFn on_done_;

  size_t cursor_ = 0;
  size_t delivered_ = 0;
  double factor_ = 1.0;
  Timestamp next_deadline_;
  std::vector<Timestamp> delivery_times_;
  bool finished_ = false;
  Timestamp finished_at_;
  std::function<bool()> gate_;
  Duration throttled_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_SIM_VIRTUAL_REPLAYER_H_
