// SimLink: a point-to-point network link with latency and bandwidth
// serialization. Messages on one link are delivered in order; transmission
// time is size/bandwidth and transmissions are serialized (a busy link
// delays later sends), modeling the GigE NICs of the paper's testbed
// (Tables 3, 4).
#ifndef GRAPHTIDES_SIM_NETWORK_H_
#define GRAPHTIDES_SIM_NETWORK_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "sim/simulator.h"

namespace graphtides {

struct SimLinkOptions {
  Duration latency = Duration::FromMicros(100);
  /// Bytes per second; 0 = infinite bandwidth.
  uint64_t bandwidth_bps = 125'000'000;  // 1 GigE payload rate
};

/// \brief Unidirectional link. Send() schedules `deliver` at the arrival
/// time and returns that time.
class SimLink {
 public:
  SimLink(Simulator* sim, std::string name, SimLinkOptions options = {})
      : sim_(sim), name_(std::move(name)), options_(options) {}

  Timestamp Send(uint64_t bytes, Simulator::Callback deliver) {
    Timestamp start = sim_->Now();
    if (clear_at_ > start) start = clear_at_;  // serialize transmissions
    Duration tx = Duration::Zero();
    if (options_.bandwidth_bps > 0) {
      tx = Duration::FromNanos(static_cast<int64_t>(
          1e9 * static_cast<double>(bytes) /
          static_cast<double>(options_.bandwidth_bps)));
    }
    clear_at_ = start + tx;
    const Timestamp arrival = clear_at_ + options_.latency;
    bytes_sent_ += bytes;
    ++messages_sent_;
    if (deliver) sim_->ScheduleAt(arrival, std::move(deliver));
    return arrival;
  }

  const std::string& name() const { return name_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_sent() const { return messages_sent_; }
  /// Transmission backlog on the link.
  Duration Backlog() const {
    const Timestamp now = sim_->Now();
    return clear_at_ > now ? clear_at_ - now : Duration::Zero();
  }

 private:
  Simulator* sim_;
  std::string name_;
  SimLinkOptions options_;
  Timestamp clear_at_;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_sent_ = 0;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_SIM_NETWORK_H_
