#include "sim/virtual_replayer.h"

namespace graphtides {

void VirtualReplayer::Start(std::vector<Event> events, DeliverFn deliver,
                            MarkerFn on_marker, DoneFn on_done) {
  events_ = std::move(events);
  deliver_ = std::move(deliver);
  on_marker_ = std::move(on_marker);
  on_done_ = std::move(on_done);
  cursor_ = 0;
  delivered_ = 0;
  factor_ = 1.0;
  finished_ = false;
  next_deadline_ = sim_->Now();
  delivery_times_.clear();
  sim_->ScheduleAt(next_deadline_, [this] { EmitNext(); });
}

void VirtualReplayer::EmitNext() {
  // Consume markers and controls immediately; they carry no pacing cost of
  // their own (controls adjust the schedule instead).
  while (cursor_ < events_.size()) {
    const Event& event = events_[cursor_];
    if (event.type == EventType::kMarker) {
      if (on_marker_) on_marker_(event.payload);
      ++cursor_;
      continue;
    }
    if (IsControl(event.type)) {
      if (options_.honor_control_events) {
        if (event.type == EventType::kSetRate) {
          if (event.rate_factor > 0.0) factor_ = event.rate_factor;
        } else {
          next_deadline_ = next_deadline_ + event.pause;
        }
      }
      ++cursor_;
      continue;
    }
    break;
  }
  if (cursor_ >= events_.size()) {
    finished_ = true;
    finished_at_ = sim_->Now();
    if (on_done_) on_done_();
    return;
  }

  // If controls pushed the deadline beyond now, re-schedule; the deferred
  // call finds the controls already consumed and emits then.
  if (next_deadline_ > sim_->Now()) {
    sim_->ScheduleAt(next_deadline_, [this] { EmitNext(); });
    return;
  }

  // Backpressure: a closed gate defers emission (and shifts the schedule —
  // a throttled replayer does not burst to catch up afterwards).
  if (gate_ && !gate_()) {
    throttled_ += options_.gate_backoff;
    next_deadline_ = sim_->Now() + options_.gate_backoff;
    sim_->ScheduleAt(next_deadline_, [this] { EmitNext(); });
    return;
  }

  const Event& event = events_[cursor_];
  delivery_times_.push_back(sim_->Now());
  if (deliver_) deliver_(event, cursor_);
  ++cursor_;
  ++delivered_;

  const Duration interval = Duration::FromNanos(static_cast<int64_t>(
      1e9 / (options_.base_rate_eps * factor_)));
  next_deadline_ = next_deadline_ + interval;
  sim_->ScheduleAt(next_deadline_, [this] { EmitNext(); });
}

}  // namespace graphtides
