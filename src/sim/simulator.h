// Deterministic discrete-event simulator. The simulated systems under test
// (weaverlite, chronolite) and their experiment harnesses run on this
// substrate: virtual time makes multi-hundred-second cluster experiments
// reproducible, seedable, and fast, while preserving the queueing and
// contention effects the paper's evaluations observe.
#ifndef GRAPHTIDES_SIM_SIMULATOR_H_
#define GRAPHTIDES_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace graphtides {

/// \brief Event-loop over virtual time.
///
/// Callbacks scheduled at equal timestamps run in scheduling order
/// (FIFO tie-break via sequence numbers), which keeps runs deterministic.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Timestamp Now() const { return clock_.Now(); }
  const Clock* clock() const { return &clock_; }

  /// Schedules `cb` at absolute virtual time `t` (clamped to now).
  void ScheduleAt(Timestamp t, Callback cb);
  /// Schedules `cb` after a virtual delay.
  void ScheduleAfter(Duration d, Callback cb) {
    ScheduleAt(Now() + d, std::move(cb));
  }

  /// Runs callbacks until the queue is empty.
  void RunUntilIdle();
  /// Runs callbacks with time <= `t`; then advances the clock to `t`.
  void RunUntil(Timestamp t);
  /// Executes the single next callback; false if none left.
  bool Step();

  size_t pending() const { return queue_.size(); }
  uint64_t callbacks_executed() const { return executed_; }

 private:
  struct Entry {
    Timestamp time;
    uint64_t seq;
    Callback cb;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  VirtualClock clock_;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_SIM_SIMULATOR_H_
