#include "sim/simulator.h"

#include <utility>

namespace graphtides {

void Simulator::ScheduleAt(Timestamp t, Callback cb) {
  if (t < Now()) t = Now();
  queue_.push(Entry{t, next_seq_++, std::move(cb)});
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the callback must be moved out
  // before pop, so copy the shell and pop first.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  clock_.AdvanceTo(entry.time);
  ++executed_;
  entry.cb();
  return true;
}

void Simulator::RunUntilIdle() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Timestamp t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Step();
  }
  clock_.AdvanceTo(t);
}

}  // namespace graphtides
