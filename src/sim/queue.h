// SimQueue: a bounded FIFO with length instrumentation — the building block
// for worker input queues whose saturation the Chronograph experiment
// visualizes (Fig. 3d "worker queue length").
#ifndef GRAPHTIDES_SIM_QUEUE_H_
#define GRAPHTIDES_SIM_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

namespace graphtides {

/// \brief Bounded FIFO in simulated components (single-threaded: the
/// simulator serializes all callbacks).
template <typename T>
class SimQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit SimQueue(size_t capacity = 0) : capacity_(capacity) {}

  /// False (and drops) when the queue is full.
  bool Push(T value) {
    if (capacity_ != 0 && items_.size() >= capacity_) {
      ++rejected_;
      return false;
    }
    items_.push_back(std::move(value));
    peak_ = std::max(peak_, items_.size());
    return true;
  }

  std::optional<T> Pop() {
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  size_t capacity() const { return capacity_; }
  size_t peak_size() const { return peak_; }
  /// Pushes refused because the queue was full.
  size_t rejected() const { return rejected_; }
  bool Full() const { return capacity_ != 0 && items_.size() >= capacity_; }

 private:
  size_t capacity_;
  std::deque<T> items_;
  size_t peak_ = 0;
  size_t rejected_ = 0;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_SIM_QUEUE_H_
