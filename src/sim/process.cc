#include "sim/process.h"

#include <algorithm>

namespace graphtides {

SimProcess::SimProcess(Simulator* sim, std::string name,
                       Duration utilization_bin)
    : sim_(sim),
      name_(std::move(name)),
      bin_(utilization_bin),
      epoch_(sim->Now()),
      busy_until_(sim->Now()) {}

Timestamp SimProcess::Submit(Duration cpu_cost, Simulator::Callback done) {
  if (!alive_) {
    ++lost_submissions_;
    return sim_->Now();
  }
  const Timestamp start = std::max(sim_->Now(), busy_until_);
  const Timestamp end = start + cpu_cost;
  AccountBusy(start, end);
  busy_until_ = end;
  total_busy_ += cpu_cost;
  if (done) {
    const uint64_t gen = generation_;
    sim_->ScheduleAt(end, [this, gen, cb = std::move(done)] {
      if (gen == generation_) cb();
    });
  }
  return end;
}

void SimProcess::Kill() {
  if (!alive_) return;
  const Timestamp now = sim_->Now();
  // Roll back the CPU time charged for work that will now never run.
  if (busy_until_ > now) {
    UnaccountBusy(now, busy_until_);
    total_busy_ -= busy_until_ - now;
    busy_until_ = now;
  }
  ++generation_;  // suppress in-flight completion callbacks
  alive_ = false;
  killed_at_ = now;
  ++kills_;
}

void SimProcess::Recover() {
  if (alive_) return;
  const Timestamp now = sim_->Now();
  downtime_ += now - killed_at_;
  busy_until_ = now;
  alive_ = true;
}

Duration SimProcess::Backlog() const {
  const Timestamp now = sim_->Now();
  return busy_until_ > now ? busy_until_ - now : Duration::Zero();
}

void SimProcess::AccountBusy(Timestamp start, Timestamp end) {
  if (end <= start) return;
  int64_t begin_ns = (start - epoch_).nanos();
  const int64_t end_ns = (end - epoch_).nanos();
  const int64_t bin_ns = bin_.nanos();
  while (begin_ns < end_ns) {
    const size_t bin_index = static_cast<size_t>(begin_ns / bin_ns);
    if (busy_per_bin_.size() <= bin_index) {
      busy_per_bin_.resize(bin_index + 1, Duration::Zero());
    }
    const int64_t bin_end = static_cast<int64_t>(bin_index + 1) * bin_ns;
    const int64_t chunk = std::min(end_ns, bin_end) - begin_ns;
    busy_per_bin_[bin_index] += Duration::FromNanos(chunk);
    begin_ns += chunk;
  }
}

void SimProcess::UnaccountBusy(Timestamp start, Timestamp end) {
  if (end <= start) return;
  int64_t begin_ns = (start - epoch_).nanos();
  const int64_t end_ns = (end - epoch_).nanos();
  const int64_t bin_ns = bin_.nanos();
  while (begin_ns < end_ns) {
    const size_t bin_index = static_cast<size_t>(begin_ns / bin_ns);
    const int64_t bin_end = static_cast<int64_t>(bin_index + 1) * bin_ns;
    const int64_t chunk = std::min(end_ns, bin_end) - begin_ns;
    if (bin_index < busy_per_bin_.size()) {
      busy_per_bin_[bin_index] -= Duration::FromNanos(
          std::min(chunk, busy_per_bin_[bin_index].nanos()));
    }
    begin_ns += chunk;
  }
}

std::vector<double> SimProcess::UtilizationSeries(Timestamp until) const {
  std::vector<double> out;
  if (until <= epoch_) return out;
  const size_t bins = static_cast<size_t>(
      ((until - epoch_).nanos() + bin_.nanos() - 1) / bin_.nanos());
  out.resize(bins, 0.0);
  for (size_t i = 0; i < bins && i < busy_per_bin_.size(); ++i) {
    out[i] = static_cast<double>(busy_per_bin_[i].nanos()) /
             static_cast<double>(bin_.nanos());
    out[i] = std::min(out[i], 1.0);
  }
  return out;
}

}  // namespace graphtides
