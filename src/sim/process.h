// SimProcess: a single-threaded OS process in the simulation, with CPU-time
// accounting. Work items are serialized (a busy process delays later work),
// and busy intervals are binned into a utilization time series — this is
// the Level-0 "CPU load per process" metric of §4.3, computed by accounting
// instead of sampling.
#ifndef GRAPHTIDES_SIM_PROCESS_H_
#define GRAPHTIDES_SIM_PROCESS_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "sim/simulator.h"

namespace graphtides {

/// \brief A simulated process with one CPU's worth of capacity.
class SimProcess {
 public:
  /// `utilization_bin` is the width of CPU-accounting bins.
  SimProcess(Simulator* sim, std::string name,
             Duration utilization_bin = Duration::FromSeconds(1.0));

  const std::string& name() const { return name_; }

  /// \brief Submits a work item costing `cpu_cost` of CPU time; `done`
  /// runs at the virtual time the work completes. Work is serialized after
  /// everything previously submitted.
  ///
  /// Returns the completion time. Submissions to a killed process are
  /// dropped (counted in lost_submissions) and `done` never runs.
  Timestamp Submit(Duration cpu_cost, Simulator::Callback done);

  // --- Crash–recovery (§3.2 fault tolerance, runtime dimension) ---------

  /// \brief Kills the process at the current virtual time.
  ///
  /// All queued and in-flight work is lost: completion callbacks already
  /// scheduled on the simulator are suppressed, the accounted busy time
  /// beyond now is rolled back, and new submissions are dropped until
  /// Recover(). Idempotent while dead.
  void Kill();

  /// \brief Restarts the process at the current virtual time with an
  /// empty queue. No-op when alive.
  void Recover();

  bool alive() const { return alive_; }
  uint64_t kills() const { return kills_; }
  /// Work items dropped because the process was dead.
  uint64_t lost_submissions() const { return lost_submissions_; }
  /// Accumulated dead time (closed downtimes only).
  Duration downtime() const { return downtime_; }

  /// First moment at which newly submitted work could start.
  Timestamp free_at() const { return busy_until_; }
  /// Queue-delay a new submission would currently experience.
  Duration Backlog() const;

  Duration total_busy() const { return total_busy_; }

  /// CPU utilization (0..1) per bin since construction, up to `until`.
  /// Bins with no accounted work report 0.
  std::vector<double> UtilizationSeries(Timestamp until) const;
  Duration utilization_bin() const { return bin_; }
  Timestamp epoch() const { return epoch_; }

 private:
  void AccountBusy(Timestamp start, Timestamp end);
  /// Removes previously accounted busy time in [start, end) — used when a
  /// kill discards queued work whose cost was charged at submit time.
  void UnaccountBusy(Timestamp start, Timestamp end);

  Simulator* sim_;
  std::string name_;
  Duration bin_;
  Timestamp epoch_;
  Timestamp busy_until_;
  Duration total_busy_;
  std::vector<Duration> busy_per_bin_;

  bool alive_ = true;
  /// Bumped on every Kill; completion callbacks carry the generation they
  /// were scheduled under and fire only if it still matches.
  uint64_t generation_ = 0;
  Timestamp killed_at_;
  Duration downtime_;
  uint64_t kills_ = 0;
  uint64_t lost_submissions_ = 0;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_SIM_PROCESS_H_
