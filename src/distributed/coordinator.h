// Fleet coordinator (`gt_coordinator`): accepts replay workers, deals
// disjoint shard ranges, drives the cross-process epoch barrier as a
// watermark broadcast, merges per-range telemetry losslessly, and — the
// robustness core — detects worker death or hang via heartbeat watchdogs
// and reassigns the dead worker's range to a survivor (or a respawned
// worker), which resumes byte-exactly from the range's last durable
// checkpoint. MTTR is measured from death detection to the first frame
// from the range's new owner.
#ifndef GRAPHTIDES_DISTRIBUTED_COORDINATOR_H_
#define GRAPHTIDES_DISTRIBUTED_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "distributed/control_channel.h"
#include "distributed/protocol.h"
#include "harness/telemetry/latency_histogram.h"

namespace graphtides {

struct CoordinatorOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (the bound port is returned by Start()).
  uint16_t port = 0;

  /// Stream file every worker replays (workers filter to their range).
  std::string stream;
  /// Global hash-partition width — must match the single-process golden's
  /// --shards for byte-exact comparison.
  uint32_t total_shards = 2;
  /// Contiguous shard ranges dealt to workers (0 = one per worker).
  uint32_t ranges = 0;
  /// Fleet size: initial assignment happens once this many workers have
  /// said HELLO.
  size_t workers = 2;

  /// Aggregate fleet emission rate in events/second (a range is assigned
  /// its proportional share).
  double rate_eps = 10000.0;
  uint64_t batch_events = 256;
  /// Per-range checkpoint store: `<checkpoint_prefix>.range<b>-<e>`.
  std::string checkpoint_prefix;
  uint64_t checkpoint_every = 5000;
  uint64_t checkpoint_generations = 3;
  /// Per-lane output prefix: global shard s writes `<out_prefix>.shard<s>`.
  std::string out_prefix;
  bool honor_controls = true;

  /// A worker with no frames for this long is declared dead (RunWatchdog
  /// stall deadline over the per-connection frame counter).
  int heartbeat_timeout_ms = 2000;
  /// Main-loop cadence: reassignment scans and telemetry emission.
  int tick_ms = 100;
  /// Abort the whole run after this long (0 = unbounded) — the campaign
  /// safety net for a fleet that can never complete.
  int max_runtime_ms = 0;

  /// Control-plane send retry budget (exponential backoff with jitter
  /// between attempts; exhausting it marks the worker dead).
  int send_attempts = 3;
  uint64_t backoff_seed = 1;

  /// Optional gt-telemetry-v1 JSONL sidecar with the fleet recovery block
  /// (crashes, reassignments, downtime, MTTR).
  std::string telemetry_out;
  int telemetry_every_ms = 500;
};

/// \brief Final fleet accounting, merged from per-range DRAIN frames.
struct FleetReport {
  /// Global stream totals (identical on every range by construction).
  uint64_t events = 0;
  uint64_t entries = 0;
  uint64_t markers = 0;
  uint64_t controls = 0;
  /// Sum of per-range local delivered counts; exactly-once accounting
  /// requires local_events == events.
  uint64_t local_events = 0;
  /// Checkpoints written across the fleet (sum).
  uint64_t checkpoints = 0;
  /// Highest epoch released fleet-wide.
  uint64_t epochs_released = 0;

  uint64_t workers_seen = 0;
  uint64_t worker_deaths = 0;
  uint64_t reassignments = 0;
  uint64_t resumes = 0;
  uint64_t checkpoint_fallbacks = 0;
  /// Closed downtime across reassignments, seconds.
  double downtime_s = 0.0;
  /// downtime_s / (resumes + reassignments); 0 when no recoveries.
  double mttr_s = 0.0;

  /// Merged per-event emission lag across all ranges (lossless).
  LatencyHistogram lag;

  /// Σ range local == global events: every event delivered exactly once.
  bool exactly_once() const { return events > 0 && local_events == events; }

  std::string ToString() const;
};

/// \brief The control-plane server. Start() binds and begins accepting;
/// Run() blocks until every range drains (or Stop()/max_runtime aborts).
class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds the listener and starts the accept thread; returns the port.
  Result<uint16_t> Start();
  Result<FleetReport> Run();
  /// Thread-safe abort: Run returns Cancelled at the next tick.
  void Stop();

  uint16_t port() const { return listener_.port(); }

 private:
  struct Conn;
  struct RangeState;
  struct Msg;

  Result<FleetReport> RunLoop();
  void AcceptLoop();
  void ReadLoop(Conn* conn);
  void PostMsg(Msg msg);
  /// Bounded control-plane send: retries with jittered exponential
  /// backoff; the caller marks the worker dead on final failure.
  Status SendWithRetry(Conn* conn, const Frame& frame);
  /// Joins the accept thread, shuts every channel down, joins readers.
  void ShutdownFleet();

  CoordinatorOptions options_;
  /// Jitter source for SendWithRetry (main loop thread only).
  Rng send_rng_;
  ControlListener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;

  std::mutex inbox_mu_;
  std::condition_variable inbox_cv_;
  std::deque<Msg> inbox_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_DISTRIBUTED_COORDINATOR_H_
