// Framed control-plane transport: one TCP connection carrying protocol.h
// frames, with deadline-bounded receives and a cross-thread shutdown so a
// watchdog can always unwedge a blocked peer wait.
#ifndef GRAPHTIDES_DISTRIBUTED_CONTROL_CHANNEL_H_
#define GRAPHTIDES_DISTRIBUTED_CONTROL_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "distributed/protocol.h"

namespace graphtides {

/// \brief One framed control connection (either end).
///
/// Send is mutex-serialized so any thread may push a frame; Receive must
/// stay on a single reader thread (the decoder is stateful). Shutdown() is
/// safe from any thread and makes both a blocked Send and a blocked
/// Receive return immediately — the shutdown-not-close discipline from
/// TcpSink::Abort, so a recycled fd can never be shut down by mistake.
class ControlChannel {
 public:
  /// Dials a coordinator with a connect deadline (see DialTcp).
  static Result<std::unique_ptr<ControlChannel>> Dial(const std::string& host,
                                                      uint16_t port,
                                                      int connect_timeout_ms);
  /// Adopts an already-connected fd (the accept side).
  static std::unique_ptr<ControlChannel> Adopt(int fd);

  ~ControlChannel();
  ControlChannel(const ControlChannel&) = delete;
  ControlChannel& operator=(const ControlChannel&) = delete;

  /// \brief Encodes and writes one frame. IoError once the peer is gone;
  /// send deadline `send_timeout_ms` (0 = block) bounds a peer that
  /// stopped reading.
  Status Send(const Frame& frame);

  /// \brief Waits up to `timeout_ms` for the next complete frame
  /// (0 = block indefinitely). Timeout on deadline, ParseError on a
  /// corrupt stream (poisons the channel), Unavailable when the peer
  /// closed cleanly between frames.
  Result<Frame> Receive(int timeout_ms);

  /// Thread-safe: unblocks any Send/Receive in flight with an error.
  void Shutdown();

  /// Send deadline applied to every later Send (0 = block, default 10 s —
  /// a control frame that cannot be written for 10 s means the peer is
  /// effectively dead).
  void set_send_timeout_ms(int ms) { send_timeout_ms_ = ms; }

  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

 private:
  explicit ControlChannel(int fd) : fd_(fd) {}

  int fd_ = -1;
  int send_timeout_ms_ = 10000;
  std::mutex send_mu_;
  FrameDecoder decoder_;
  std::atomic<bool> shutdown_{false};
};

/// \brief Accept side of the control plane: binds, listens, and hands out
/// ControlChannels. Accept is deadline-bounded so the coordinator's accept
/// loop can interleave heartbeat checks.
class ControlListener {
 public:
  ControlListener() = default;
  ~ControlListener();
  ControlListener(const ControlListener&) = delete;
  ControlListener& operator=(const ControlListener&) = delete;

  /// Binds `host` (e.g. "127.0.0.1", "0.0.0.0") on `port` (0 = ephemeral)
  /// and listens. Returns the bound port.
  Result<uint16_t> Listen(const std::string& host, uint16_t port);

  /// Waits up to `timeout_ms` for one connection (0 = block). Timeout on
  /// deadline; Unavailable after Close().
  Result<std::unique_ptr<ControlChannel>> Accept(int timeout_ms);

  /// Thread-safe: wakes a blocked Accept and fails all later ones.
  void Close();

  uint16_t port() const { return port_; }

 private:
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_DISTRIBUTED_CONTROL_CHANNEL_H_
