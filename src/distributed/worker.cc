#include "distributed/worker.h"

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <utility>

#include "common/fault_plan.h"
#include "common/random.h"
#include "distributed/backoff.h"
#include "replayer/checkpoint.h"
#include "replayer/event_sink.h"
#include "replayer/sharded_replayer.h"

namespace graphtides {

namespace {

std::string DefaultWorkerId() {
  return "worker-" + std::to_string(static_cast<long>(::getpid()));
}

}  // namespace

/// One assigned shard range: its parameters as received in the ASSIGN /
/// REASSIGN frame, the replayer driving it, and its thread.
struct ReplayWorker::Task {
  ShardRange range;
  std::string stream;
  uint64_t total_shards = 0;
  double rate_eps = 10000.0;
  uint64_t batch_events = 256;
  std::string checkpoint_path;
  uint64_t checkpoint_every = 0;
  uint64_t checkpoint_generations = 2;
  std::string out_prefix;
  bool honor_controls = true;

  CancellationToken cancel;
  /// Published under the worker mutex once built, so the heartbeat loop
  /// can read live progress from another thread.
  std::shared_ptr<ShardedReplayer> replayer;
  /// Set by the epoch hook when it aborts the run (coordinator lost): the
  /// exit is a partition-rule quiesce, not a failure.
  std::atomic<bool> hook_quiesced{false};
  std::atomic<bool> done{false};
  std::thread thread;
};

ReplayWorker::ReplayWorker(ReplayWorkerOptions options)
    : options_(std::move(options)) {
  if (options_.worker_id.empty()) options_.worker_id = DefaultWorkerId();
}

ReplayWorker::~ReplayWorker() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& task : tasks_) task->cancel.RequestCancel("worker shutdown");
  }
  release_cv_.notify_all();
  ReapTasks(/*all=*/true);
}

ReplayWorker::Totals ReplayWorker::totals() const {
  Totals t;
  t.tasks_started = tasks_started_.load();
  t.resumes = resumes_.load();
  t.quiesces = quiesces_.load();
  t.checkpoint_fallbacks = checkpoint_fallbacks_.load();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [range, local] : local_final_) t.local_events += local;
  return t;
}

Status ReplayWorker::SendToCoordinator(const Frame& frame) {
  ControlChannel* channel = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    channel = channel_;
  }
  if (channel == nullptr) {
    return Status::Unavailable("no active coordinator session");
  }
  // The channel outlives this call: Run() only destroys it after every
  // task thread (the only other senders) has been joined.
  return channel->Send(frame);
}

Status ReplayWorker::Run() {
  Rng backoff_rng(options_.backoff_seed);
  const BackoffPolicy backoff;
  int failed_dials = 0;
  Status last_dial_error =
      Status::Unavailable("coordinator never dialed");
  bool finished = false;

  while (!finished) {
    auto channel_or =
        ControlChannel::Dial(options_.coordinator_host,
                             options_.coordinator_port,
                             options_.connect_timeout_ms);
    if (!channel_or.ok()) {
      last_dial_error = channel_or.status();
      if (++failed_dials >= options_.dial_attempts) {
        return last_dial_error.WithContext(
            "gave up after " + std::to_string(failed_dials) +
            " dial attempts");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          backoff.DelayMs(failed_dials - 1, &backoff_rng)));
      continue;
    }
    failed_dials = 0;
    std::unique_ptr<ControlChannel> channel = std::move(*channel_or);

    Frame hello(FrameType::kHello);
    hello.Set("worker", options_.worker_id);
    hello.SetU64("pid", static_cast<uint64_t>(::getpid()));
    if (Status st = channel->Send(hello); !st.ok()) {
      // Dialed but could not introduce ourselves — treat as a failed dial.
      ++failed_dials;
      continue;
    }
    FaultPlan::Global().Hit(kCrashWorkerPostHello);

    {
      std::lock_guard<std::mutex> lock(mu_);
      channel_ = channel.get();
    }
    const Status session = RunSession(channel.get(), &finished);
    channel->Shutdown();
    {
      std::lock_guard<std::mutex> lock(mu_);
      channel_ = nullptr;
    }
    // Wake epoch hooks blocked on a release that will never arrive: each
    // quiesces its task at the barrier with a final exact checkpoint.
    release_cv_.notify_all();
    // Partition rule: wait for every task to quiesce (or finish) before
    // re-dialing, so the next session starts from durable state only.
    ReapTasks(/*all=*/true);
    if (finished) return Status::OK();
    if (session.code() == StatusCode::kParseError ||
        session.code() == StatusCode::kInternal) {
      // A corrupt control stream or a coordinator-reported fatal error is
      // not survivable by re-dialing the same way.
      return session;
    }
    // Transport loss: re-dial with backoff and let the (possibly new)
    // coordinator reassign; resumed tasks continue byte-exactly.
  }
  return Status::OK();
}

Status ReplayWorker::RunSession(ControlChannel* channel, bool* finished) {
  while (true) {
    auto frame_or = channel->Receive(options_.heartbeat_interval_ms);
    if (!frame_or.ok()) {
      if (frame_or.status().code() == StatusCode::kTimeout) {
        SendHeartbeats(channel);
        ReapTasks(/*all=*/false);
        continue;
      }
      return frame_or.status();
    }
    const Frame& frame = *frame_or;
    switch (frame.type) {
      case FrameType::kAssign:
      case FrameType::kReassign:
        StartTask(frame);
        break;
      case FrameType::kEpoch: {
        auto release = frame.GetU64("release");
        if (release.ok()) {
          {
            std::lock_guard<std::mutex> lock(mu_);
            if (*release > released_epoch_) released_epoch_ = *release;
          }
          release_cv_.notify_all();
        }
        break;
      }
      case FrameType::kDrain:
        // Coordinator-side DRAIN: the fleet is complete, shut down.
        *finished = true;
        return Status::OK();
      case FrameType::kError:
        return Status::Internal("coordinator error: " +
                                frame.Get("reason", "(unspecified)"));
      case FrameType::kHeartbeat:
      case FrameType::kHello:
      case FrameType::kCheckpointAck:
        break;  // liveness echo / not meaningful coordinator->worker
    }
  }
}

void ReplayWorker::SendHeartbeats(ControlChannel* channel) {
  size_t live = 0;
  std::vector<std::pair<std::string, std::pair<uint64_t, uint64_t>>> beats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& task : tasks_) {
      if (task->done.load() || task->replayer == nullptr) continue;
      ++live;
      beats.emplace_back(
          task->range.ToString(),
          std::make_pair(task->replayer->local_delivered(),
                         task->replayer->progress()));
    }
  }
  if (live == 0) {
    // Idle liveness beat so the coordinator's watchdog keeps counting.
    Frame beat(FrameType::kHeartbeat);
    beat.Set("worker", options_.worker_id);
    (void)channel->Send(beat);
    return;
  }
  for (const auto& [range, counters] : beats) {
    Frame beat(FrameType::kHeartbeat);
    beat.Set("worker", options_.worker_id);
    beat.Set("range", range);
    beat.SetU64("local", counters.first);
    beat.SetU64("events", counters.second);
    if (!channel->Send(beat).ok()) return;  // session loss surfaces in Receive
  }
}

void ReplayWorker::StartTask(const Frame& assign) {
  ReapTasks(/*all=*/false);

  auto range_or = ShardRange::Parse(assign.Get("range"));
  if (!range_or.ok()) {
    Frame err(FrameType::kError);
    err.Set("worker", options_.worker_id);
    err.Set("reason", range_or.status().ToString());
    (void)SendToCoordinator(err);
    return;
  }

  auto task = std::make_unique<Task>();
  task->range = *range_or;
  task->stream = assign.Get("stream");
  task->checkpoint_path = assign.Get("checkpoint");
  task->out_prefix = assign.Get("out");
  task->honor_controls = assign.Get("honor_controls", "1") != "0";
  if (auto v = assign.GetU64("total_shards"); v.ok()) task->total_shards = *v;
  if (auto v = assign.GetDouble("rate_eps"); v.ok()) task->rate_eps = *v;
  if (auto v = assign.GetU64("batch_events"); v.ok()) task->batch_events = *v;
  if (auto v = assign.GetU64("checkpoint_every"); v.ok()) {
    task->checkpoint_every = *v;
  }
  if (auto v = assign.GetU64("checkpoint_generations"); v.ok()) {
    task->checkpoint_generations = *v;
  }
  if (task->stream.empty() || task->checkpoint_path.empty() ||
      task->out_prefix.empty() || task->total_shards == 0) {
    Frame err(FrameType::kError);
    err.Set("worker", options_.worker_id);
    err.Set("range", task->range.ToString());
    err.Set("reason",
            "assignment missing stream/checkpoint/out/total_shards");
    (void)SendToCoordinator(err);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& existing : tasks_) {
      if (!existing->done.load() &&
          existing->range.begin == task->range.begin &&
          existing->range.end == task->range.end) {
        return;  // duplicate (re)assignment of a range we are running
      }
    }
  }

  tasks_started_.fetch_add(1);
  Task* raw = task.get();
  raw->thread = std::thread([this, raw] { RunRangeTask(raw); });
  std::lock_guard<std::mutex> lock(mu_);
  tasks_.push_back(std::move(task));
}

void ReplayWorker::RunRangeTask(Task* task) {
  const std::string range_text = task->range.ToString();
  auto report_error = [&](const Status& status) {
    Frame err(FrameType::kError);
    err.Set("worker", options_.worker_id);
    err.Set("range", range_text);
    err.Set("reason", status.ToString());
    (void)SendToCoordinator(err);
    task->done.store(true);
  };

  // Resume: newest good checkpoint generation, if any exists. NotFound
  // means a fresh start; any other load error is fatal for the task —
  // guessing over existing output files would break byte-exactness.
  std::optional<ReplayCheckpoint> resume;
  auto loaded = CheckpointStore::LoadLatestGood(task->checkpoint_path);
  if (loaded.ok()) {
    resume = loaded->checkpoint;
    checkpoint_fallbacks_.fetch_add(loaded->fallbacks);
    resumes_.fetch_add(1);
  } else if (loaded.status().code() != StatusCode::kNotFound) {
    report_error(loaded.status().WithContext("loading checkpoint for range " +
                                             range_text));
    return;
  }

  // Per-lane output files named exactly like the single-process golden
  // (gt_replay --out with total_shards lanes): global shard s writes
  // <out>.shard<s>. On resume, truncate to the checkpointed offset first.
  const size_t width = task->range.width();
  std::vector<std::FILE*> files;
  std::vector<std::unique_ptr<PipeSink>> pipe_sinks;
  std::vector<EventSink*> lane_sinks;
  auto close_files = [&] {
    for (std::FILE* f : files) std::fclose(f);
    files.clear();
  };
  for (size_t l = 0; l < width; ++l) {
    const std::string path = task->out_prefix + ".shard" +
                             std::to_string(task->range.begin + l);
    if (resume.has_value()) {
      if (resume->sink_bytes.size() != width) {
        close_files();
        report_error(Status::InvalidArgument(
            "checkpoint for range " + range_text + " records " +
            std::to_string(resume->sink_bytes.size()) +
            " sink offsets, expected " + std::to_string(width)));
        return;
      }
      struct ::stat file_stat {};
      if (::stat(path.c_str(), &file_stat) != 0) {
        close_files();
        report_error(Status::IoError("cannot stat " + path));
        return;
      }
      if (static_cast<uint64_t>(file_stat.st_size) < resume->sink_bytes[l]) {
        close_files();
        report_error(Status::IoError(
            path + " is shorter than its checkpointed offset"));
        return;
      }
      if (::truncate(path.c_str(),
                     static_cast<off_t>(resume->sink_bytes[l])) != 0) {
        close_files();
        report_error(Status::IoError("cannot truncate " + path));
        return;
      }
    }
    std::FILE* f = std::fopen(path.c_str(), resume ? "ab" : "wb");
    if (f == nullptr) {
      close_files();
      report_error(Status::IoError("cannot open " + path));
      return;
    }
    files.push_back(f);
    pipe_sinks.push_back(std::make_unique<PipeSink>(f));
    lane_sinks.push_back(pipe_sinks.back().get());
  }

  if (resume.has_value()) {
    // Ack the durable state we are resuming from, so the coordinator's
    // bookkeeping converges even across its own restarts.
    Frame ack(FrameType::kCheckpointAck);
    ack.Set("worker", options_.worker_id);
    ack.Set("range", range_text);
    ack.SetU64("local", resume->local_events);
    ack.SetU64("entries", resume->entries_consumed);
    ack.SetU64("resumed", 1);
    ack.SetU64("fallbacks", loaded->fallbacks);
    (void)SendToCoordinator(ack);
  }

  ShardedReplayerOptions options;
  options.shards = width;
  options.total_shards = task->total_shards;
  options.shard_offset = task->range.begin;
  options.total_rate_eps = task->rate_eps;
  options.batch_events = static_cast<size_t>(task->batch_events);
  options.honor_control_events = task->honor_controls;
  options.cancel = &task->cancel;
  options.checkpoint_every = task->checkpoint_every;
  options.checkpoint_path = task->checkpoint_path;
  options.checkpoint_generations =
      static_cast<size_t>(task->checkpoint_generations);
  options.record_sink_bytes = true;
  options.epoch_hook = [this, task, &range_text](uint64_t epoch) -> Status {
    FaultPlan::Global().Hit(kCrashWorkerEpochReport);
    Frame report(FrameType::kEpoch);
    report.Set("worker", options_.worker_id);
    report.Set("range", range_text);
    report.SetU64("epoch", epoch);
    if (Status st = SendToCoordinator(report); !st.ok()) {
      task->hook_quiesced.store(true);
      return Status::Unavailable("coordinator unreachable at epoch " +
                                 std::to_string(epoch));
    }
    std::unique_lock<std::mutex> lock(mu_);
    const bool released = release_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.epoch_wait_timeout_ms),
        [&] {
          return released_epoch_ >= epoch || channel_ == nullptr ||
                 task->cancel.cancelled();
        });
    if (released_epoch_ >= epoch) return Status::OK();
    if (task->cancel.cancelled()) {
      return Status::Cancelled("worker shutting down at epoch " +
                               std::to_string(epoch));
    }
    (void)released;
    task->hook_quiesced.store(true);
    return Status::Unavailable(
        channel_ == nullptr
            ? "coordinator session lost at epoch " + std::to_string(epoch)
            : "epoch " + std::to_string(epoch) + " release timed out");
  };

  auto replayer = std::make_shared<ShardedReplayer>(options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    task->replayer = replayer;
  }

  auto stats = replayer->ReplayFile(task->stream, lane_sinks,
                                    resume ? &*resume : nullptr);
  close_files();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Cumulative across resumes: the final value IS the range's total.
    local_final_[range_text] = replayer->local_delivered();
  }

  if (!stats.ok()) {
    if (task->hook_quiesced.load()) {
      // Partition-rule quiesce: the run stopped at an epoch barrier with a
      // final exact checkpoint; the next session resumes it byte-exactly.
      quiesces_.fetch_add(1);
      task->done.store(true);
      return;
    }
    if (stats.status().code() == StatusCode::kCancelled) {
      task->done.store(true);  // worker shutdown, nothing to report
      return;
    }
    report_error(stats.status());
    return;
  }

  // Final checkpoint (written by the run when checkpoint_every > 0) is the
  // durable completion record; ack it, then declare the range drained.
  Frame ack(FrameType::kCheckpointAck);
  ack.Set("worker", options_.worker_id);
  ack.Set("range", range_text);
  ack.SetU64("local", replayer->local_delivered());
  ack.SetU64("entries", stats->aggregate.entries_consumed);
  (void)SendToCoordinator(ack);

  Frame drain(FrameType::kDrain);
  drain.Set("worker", options_.worker_id);
  drain.Set("range", range_text);
  drain.SetU64("local", replayer->local_delivered());
  drain.SetU64("events", stats->aggregate.events_delivered);
  drain.SetU64("entries", stats->aggregate.entries_consumed);
  drain.SetU64("markers", stats->aggregate.markers);
  drain.SetU64("controls", stats->aggregate.controls);
  drain.SetU64("checkpoints", stats->aggregate.checkpoints_written);
  drain.SetU64("resumes", resume.has_value() ? 1 : 0);
  drain.Set("lag", EncodeHistogram(stats->aggregate.lag));
  (void)SendToCoordinator(drain);
  task->done.store(true);
}

void ReplayWorker::ReapTasks(bool all) {
  std::vector<std::unique_ptr<Task>> reaped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < tasks_.size();) {
      if (all || tasks_[i]->done.load()) {
        reaped.push_back(std::move(tasks_[i]));
        tasks_.erase(tasks_.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  }
  // Join outside the lock: task threads take mu_ on their way out.
  for (auto& task : reaped) {
    if (task->thread.joinable()) task->thread.join();
  }
}

}  // namespace graphtides
