#include "distributed/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/fault_plan.h"
#include "common/random.h"
#include "distributed/backoff.h"
#include "harness/run_watchdog.h"
#include "harness/telemetry/snapshot.h"

namespace graphtides {

/// One accepted control connection. The reader thread and the watchdog
/// reference the Conn by raw pointer, so Conns are never erased while the
/// coordinator runs — dead ones are only flagged.
struct Coordinator::Conn {
  uint64_t id = 0;
  std::unique_ptr<ControlChannel> channel;
  std::thread reader;
  std::unique_ptr<RunWatchdog> watchdog;
  /// Frames received — the watchdog's progress probe (worker heartbeats
  /// keep it advancing even when a range is idle at a barrier).
  std::atomic<uint64_t> frames{0};
  // Main-loop-only state below.
  std::string worker;
  bool dead = false;
};

/// One dealt shard range and its recovery bookkeeping (main loop only).
struct Coordinator::RangeState {
  ShardRange range;
  std::string checkpoint_path;
  /// Conn id of the current owner; 0 = awaiting (re)assignment.
  uint64_t owner = 0;
  bool drained = false;
  /// Highest epoch the range has reported.
  uint64_t epoch = 0;
  /// Latest local-delivered count heard (heartbeat / checkpoint ack).
  uint64_t local = 0;
  /// Authoritative local count from the range's DRAIN.
  uint64_t local_final = 0;
  /// Reassignment downtime window: open from owner death until the first
  /// frame from the new owner (that close is the MTTR sample).
  bool down = false;
  Timestamp down_since;
};

struct Coordinator::Msg {
  enum Kind { kFrame, kClosed, kHung } kind = kFrame;
  uint64_t conn_id = 0;
  Frame frame;
  Status status = Status::OK();
};

std::string FleetReport::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "fleet: %llu events (%llu local, exactly-once=%s), %llu entries, "
      "%llu markers, %llu controls, %llu epochs released, %llu "
      "checkpoints\nrecovery: %llu worker(s) seen, %llu death(s), %llu "
      "reassignment(s), %llu resume(s), %llu checkpoint fallback(s), "
      "%.3f s downtime, %.3f s MTTR",
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(local_events),
      exactly_once() ? "yes" : "NO",
      static_cast<unsigned long long>(entries),
      static_cast<unsigned long long>(markers),
      static_cast<unsigned long long>(controls),
      static_cast<unsigned long long>(epochs_released),
      static_cast<unsigned long long>(checkpoints),
      static_cast<unsigned long long>(workers_seen),
      static_cast<unsigned long long>(worker_deaths),
      static_cast<unsigned long long>(reassignments),
      static_cast<unsigned long long>(resumes),
      static_cast<unsigned long long>(checkpoint_fallbacks), downtime_s,
      mttr_s);
  return buf;
}

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)), send_rng_(options_.backoff_seed) {}

Coordinator::~Coordinator() {
  Stop();
  ShutdownFleet();
}

Result<uint16_t> Coordinator::Start() {
  if (options_.stream.empty() || options_.checkpoint_prefix.empty() ||
      options_.out_prefix.empty()) {
    return Status::InvalidArgument(
        "coordinator needs stream, checkpoint_prefix, and out_prefix");
  }
  if (options_.total_shards == 0 || options_.workers == 0) {
    return Status::InvalidArgument(
        "coordinator needs total_shards > 0 and workers > 0");
  }
  GT_ASSIGN_OR_RETURN(const uint16_t port,
                      listener_.Listen(options_.host, options_.port));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port;
}

void Coordinator::Stop() {
  stopping_.store(true);
  listener_.Close();
  inbox_cv_.notify_all();
}

void Coordinator::ShutdownFleet() {
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& [id, conn] : conns_) {
    conn->channel->Shutdown();
    if (conn->watchdog) conn->watchdog->Disarm();
    if (conn->reader.joinable()) conn->reader.join();
  }
}

void Coordinator::PostMsg(Msg msg) {
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    inbox_.push_back(std::move(msg));
  }
  inbox_cv_.notify_all();
}

void Coordinator::AcceptLoop() {
  while (!stopping_.load()) {
    auto channel_or = listener_.Accept(/*timeout_ms=*/200);
    if (!channel_or.ok()) {
      if (channel_or.status().code() == StatusCode::kTimeout) continue;
      return;  // listener closed
    }
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      raw->id = next_conn_id_++;
      raw->channel = std::move(*channel_or);
      conns_.emplace(raw->id, std::move(conn));
    }
    WatchdogOptions wd;
    wd.stall_deadline =
        Duration::FromMillis(options_.heartbeat_timeout_ms);
    wd.poll_interval = Duration::FromMillis(
        std::max(10, options_.heartbeat_timeout_ms / 10));
    raw->watchdog = std::make_unique<RunWatchdog>(wd);
    raw->watchdog->Arm([raw] { return raw->frames.load(); },
                       [this, raw](uint64_t, Duration) {
                         Msg msg;
                         msg.kind = Msg::kHung;
                         msg.conn_id = raw->id;
                         PostMsg(std::move(msg));
                       });
    raw->reader = std::thread([this, raw] { ReadLoop(raw); });
  }
}

void Coordinator::ReadLoop(Conn* conn) {
  while (true) {
    auto frame_or = conn->channel->Receive(/*timeout_ms=*/500);
    if (!frame_or.ok()) {
      if (frame_or.status().code() == StatusCode::kTimeout) continue;
      Msg msg;
      msg.kind = Msg::kClosed;
      msg.conn_id = conn->id;
      msg.status = frame_or.status();
      PostMsg(std::move(msg));
      return;
    }
    conn->frames.fetch_add(1);
    Msg msg;
    msg.kind = Msg::kFrame;
    msg.conn_id = conn->id;
    msg.frame = std::move(*frame_or);
    PostMsg(std::move(msg));
  }
}

Status Coordinator::SendWithRetry(Conn* conn, const Frame& frame) {
  const BackoffPolicy backoff{/*base_ms=*/20, /*max_ms=*/200};
  Status last = Status::OK();
  for (int attempt = 0; attempt < std::max(1, options_.send_attempts);
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          backoff.DelayMs(attempt - 1, &send_rng_)));
    }
    last = conn->channel->Send(frame);
    if (last.ok()) return last;
    if (last.code() == StatusCode::kInvalidArgument) return last;
  }
  return last;
}

Result<FleetReport> Coordinator::Run() {
  auto result = RunLoop();
  Stop();
  ShutdownFleet();
  return result;
}

Result<FleetReport> Coordinator::RunLoop() {
  // Deal total_shards into contiguous ranges, one per expected worker by
  // default. Each range gets its own checkpoint store.
  uint32_t nranges = options_.ranges == 0
                         ? static_cast<uint32_t>(options_.workers)
                         : options_.ranges;
  nranges = std::min(nranges, options_.total_shards);
  std::vector<RangeState> ranges(nranges);
  const uint32_t base = options_.total_shards / nranges;
  const uint32_t extra = options_.total_shards % nranges;
  uint32_t at = 0;
  for (uint32_t i = 0; i < nranges; ++i) {
    const uint32_t width = base + (i < extra ? 1 : 0);
    ranges[i].range = ShardRange{at, at + width};
    at += width;
    ranges[i].checkpoint_path =
        options_.checkpoint_prefix + ".range" + ranges[i].range.ToString();
  }

  std::FILE* telemetry = nullptr;
  if (!options_.telemetry_out.empty()) {
    telemetry = std::fopen(options_.telemetry_out.c_str(), "wb");
    if (telemetry == nullptr) {
      return Status::IoError("cannot open " + options_.telemetry_out);
    }
  }

  MonotonicClock clock;
  const Timestamp start = clock.Now();
  FleetReport report;
  std::set<std::string> worker_names;
  int64_t downtime_nanos = 0;
  uint64_t released = 0;
  bool dealt = false;
  bool have_totals = false;
  Status mismatch = Status::OK();
  uint64_t tel_seq = 0;
  Timestamp tel_last_at = start;
  uint64_t tel_last_events = 0;
  uint64_t tel_events_hwm = 0;  // running max: Σ local can transiently
                                // dip after a resume rewinds to a
                                // checkpoint, but telemetry stays monotone

  auto conn_by_id = [&](uint64_t id) -> Conn* {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(id);
    return it == conns_.end() ? nullptr : it->second.get();
  };
  auto live_conns = [&] {
    std::vector<Conn*> live;
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) {
      if (!conn->dead && !conn->worker.empty()) live.push_back(conn.get());
    }
    return live;
  };
  auto find_range = [&](const std::string& text) -> RangeState* {
    for (RangeState& r : ranges) {
      if (r.range.ToString() == text) return &r;
    }
    return nullptr;
  };
  auto owned_ranges = [&](uint64_t conn_id) {
    size_t n = 0;
    for (const RangeState& r : ranges) {
      if (r.owner == conn_id && !r.drained) ++n;
    }
    return n;
  };
  auto recoveries = [&] { return report.resumes + report.reassignments; };
  auto mttr_s = [&] {
    const uint64_t n = recoveries();
    return n == 0 ? 0.0
                  : static_cast<double>(downtime_nanos) / 1e9 /
                        static_cast<double>(n);
  };

  auto mark_dead = [&](uint64_t conn_id, const std::string& why) {
    Conn* conn = conn_by_id(conn_id);
    if (conn == nullptr || conn->dead) return;
    conn->dead = true;
    conn->channel->Shutdown();
    bool owned = false;
    const Timestamp now = clock.Now();
    for (RangeState& r : ranges) {
      if (r.owner != conn_id || r.drained) continue;
      owned = true;
      r.owner = 0;
      if (!r.down) {
        r.down = true;
        r.down_since = now;
      }
    }
    if (owned) {
      ++report.worker_deaths;
      std::fprintf(stderr,
                   "gt_coordinator: worker '%s' lost (%s); reassigning\n",
                   conn->worker.empty() ? "?" : conn->worker.c_str(),
                   why.c_str());
    }
  };

  auto assignment_frame = [&](const RangeState& r, FrameType type) {
    Frame f(type);
    f.Set("range", r.range.ToString());
    f.Set("stream", options_.stream);
    f.SetU64("total_shards", options_.total_shards);
    f.SetDouble("rate_eps", options_.rate_eps *
                                static_cast<double>(r.range.width()) /
                                static_cast<double>(options_.total_shards));
    f.SetU64("batch_events", options_.batch_events);
    f.Set("checkpoint", r.checkpoint_path);
    f.SetU64("checkpoint_every", options_.checkpoint_every);
    f.SetU64("checkpoint_generations", options_.checkpoint_generations);
    f.Set("out", options_.out_prefix);
    f.Set("honor_controls", options_.honor_controls ? "1" : "0");
    return f;
  };

  auto assign_range = [&](RangeState* r, Conn* conn, FrameType type) {
    const Status sent = SendWithRetry(conn, assignment_frame(*r, type));
    if (!sent.ok()) {
      mark_dead(conn->id, "assignment send failed: " + sent.ToString());
      return false;
    }
    r->owner = conn->id;
    FaultPlan::Global().Hit(kCrashCoordPostAssign);
    return true;
  };

  auto broadcast = [&](const Frame& frame) {
    for (Conn* conn : live_conns()) {
      if (!conn->channel->Send(frame).ok()) {
        // The reader/watchdog will surface the loss; nothing to do here.
      }
    }
  };

  auto release_watermark = [&](uint64_t reporter_conn, uint64_t reported) {
    uint64_t watermark = UINT64_MAX;
    bool any_pending = false;
    for (const RangeState& r : ranges) {
      if (r.drained) continue;
      any_pending = true;
      watermark = std::min(watermark, r.epoch);
    }
    if (any_pending && watermark > released) {
      released = watermark;
      FaultPlan::Global().Hit(kCrashCoordEpochRelease);
      Frame release(FrameType::kEpoch);
      release.SetU64("release", released);
      broadcast(release);
    } else if (reporter_conn != 0 && reported != 0 && reported <= released) {
      // A resumed range re-reporting an already-released epoch gets an
      // instant re-ack instead of waiting for the next fleet advance.
      if (Conn* conn = conn_by_id(reporter_conn); conn && !conn->dead) {
        Frame release(FrameType::kEpoch);
        release.SetU64("release", released);
        (void)conn->channel->Send(release);
      }
    }
  };

  auto handle_frame = [&](uint64_t conn_id, const Frame& frame) {
    Conn* conn = conn_by_id(conn_id);
    if (conn == nullptr || conn->dead) return;
    if (frame.type == FrameType::kHello) {
      conn->worker = frame.Get("worker", "worker-" + std::to_string(conn_id));
      worker_names.insert(conn->worker);
      return;
    }
    RangeState* r = find_range(frame.Get("range"));
    if (r != nullptr && r->owner == conn_id && r->down) {
      // First frame from the range's new owner: the recovery window
      // closes here — this is the MTTR sample.
      downtime_nanos += (clock.Now() - r->down_since).nanos();
      r->down = false;
    }
    switch (frame.type) {
      case FrameType::kHeartbeat:
        if (r != nullptr) {
          if (auto local = frame.GetU64("local"); local.ok()) {
            r->local = *local;
          }
        }
        break;
      case FrameType::kEpoch: {
        auto epoch = frame.GetU64("epoch");
        if (r == nullptr || !epoch.ok()) break;
        r->epoch = std::max(r->epoch, *epoch);
        release_watermark(conn_id, *epoch);
        break;
      }
      case FrameType::kCheckpointAck: {
        if (r == nullptr) break;
        if (auto local = frame.GetU64("local"); local.ok()) r->local = *local;
        if (auto resumed = frame.GetU64("resumed");
            resumed.ok() && *resumed != 0) {
          ++report.resumes;
          if (auto fb = frame.GetU64("fallbacks"); fb.ok()) {
            report.checkpoint_fallbacks += *fb;
          }
        }
        break;
      }
      case FrameType::kDrain: {
        if (r == nullptr || r->drained) break;
        r->drained = true;
        if (auto local = frame.GetU64("local"); local.ok()) {
          r->local_final = *local;
          r->local = *local;
        }
        const auto events = frame.GetU64("events");
        const auto entries = frame.GetU64("entries");
        const auto markers = frame.GetU64("markers");
        const auto controls = frame.GetU64("controls");
        if (events.ok() && entries.ok() && markers.ok() && controls.ok()) {
          if (!have_totals) {
            have_totals = true;
            report.events = *events;
            report.entries = *entries;
            report.markers = *markers;
            report.controls = *controls;
          } else if (report.events != *events ||
                     report.entries != *entries ||
                     report.markers != *markers ||
                     report.controls != *controls) {
            mismatch = Status::Internal(
                "range " + r->range.ToString() +
                " disagrees on global stream totals — the fleet replayed "
                "diverging streams");
          }
        }
        if (auto checkpoints = frame.GetU64("checkpoints");
            checkpoints.ok()) {
          report.checkpoints += *checkpoints;
        }
        if (auto lag = DecodeHistogram(frame.Get("lag")); lag.ok()) {
          report.lag.Merge(*lag);
        }
        // A drained range no longer holds the watermark back.
        release_watermark(0, 0);
        break;
      }
      case FrameType::kError:
        std::fprintf(stderr, "gt_coordinator: worker '%s' error: %s\n",
                     conn->worker.c_str(),
                     frame.Get("reason", "(unspecified)").c_str());
        mark_dead(conn_id, "worker-reported error");
        break;
      default:
        break;
    }
  };

  while (true) {
    if (stopping_.load()) {
      if (telemetry) std::fclose(telemetry);
      return Status::Cancelled("coordinator stopped");
    }
    const Timestamp now = clock.Now();
    if (options_.max_runtime_ms > 0 &&
        (now - start).millis() > options_.max_runtime_ms) {
      if (telemetry) std::fclose(telemetry);
      return Status::Timeout("fleet did not complete within " +
                             std::to_string(options_.max_runtime_ms) +
                             " ms");
    }

    std::vector<Msg> batch;
    {
      std::unique_lock<std::mutex> lock(inbox_mu_);
      inbox_cv_.wait_for(lock, std::chrono::milliseconds(options_.tick_ms),
                         [&] { return !inbox_.empty() || stopping_.load(); });
      while (!inbox_.empty()) {
        batch.push_back(std::move(inbox_.front()));
        inbox_.pop_front();
      }
    }
    for (Msg& msg : batch) {
      switch (msg.kind) {
        case Msg::kFrame:
          handle_frame(msg.conn_id, msg.frame);
          break;
        case Msg::kClosed:
          mark_dead(msg.conn_id, "connection lost: " + msg.status.ToString());
          break;
        case Msg::kHung:
          mark_dead(msg.conn_id,
                    "heartbeat timeout after " +
                        std::to_string(options_.heartbeat_timeout_ms) +
                        " ms");
          break;
      }
    }

    // Initial deal: wait for the configured fleet, then round-robin.
    if (!dealt) {
      auto live = live_conns();
      if (live.size() >= options_.workers) {
        dealt = true;
        for (size_t i = 0; i < ranges.size(); ++i) {
          assign_range(&ranges[i], live[i % live.size()], FrameType::kAssign);
        }
      }
    } else {
      // Reassignment: every orphaned range goes to the live worker owning
      // the fewest ranges (a survivor or a respawned worker).
      for (RangeState& r : ranges) {
        if (r.owner != 0 || r.drained) continue;
        auto live = live_conns();
        if (live.empty()) break;
        Conn* pick = live[0];
        for (Conn* c : live) {
          if (owned_ranges(c->id) < owned_ranges(pick->id)) pick = c;
        }
        if (assign_range(&r, pick, FrameType::kReassign)) {
          ++report.reassignments;
        }
      }
    }

    const bool complete =
        dealt && std::all_of(ranges.begin(), ranges.end(),
                             [](const RangeState& r) { return r.drained; });

    if (telemetry != nullptr) {
      const Timestamp tick = clock.Now();
      if (complete ||
          (tick - tel_last_at).millis() >= options_.telemetry_every_ms) {
        uint64_t sum_local = 0;
        TelemetrySnapshot snap;
        for (const RangeState& r : ranges) {
          const uint64_t local = r.drained ? r.local_final : r.local;
          sum_local += local;
          snap.shard_events.push_back(local);
        }
        tel_events_hwm = std::max(tel_events_hwm, sum_local);
        snap.seq = tel_seq++;
        snap.elapsed_s = (tick - start).seconds();
        snap.events = tel_events_hwm;
        const double dt = (tick - tel_last_at).seconds();
        snap.events_per_sec =
            dt > 0.0 && tel_events_hwm >= tel_last_events
                ? static_cast<double>(tel_events_hwm - tel_last_events) / dt
                : 0.0;
        snap.ComputeImbalance();
        snap.recovery.crashes = report.worker_deaths;
        snap.recovery.resumes = report.resumes;
        snap.recovery.checkpoint_fallbacks = report.checkpoint_fallbacks;
        snap.recovery.reassignments = report.reassignments;
        snap.recovery.downtime_s = static_cast<double>(downtime_nanos) / 1e9;
        snap.recovery.mttr_s = mttr_s();
        std::fprintf(telemetry, "%s\n", snap.ToJsonLine().c_str());
        std::fflush(telemetry);
        tel_last_at = tick;
        tel_last_events = tel_events_hwm;
      }
    }

    if (complete) break;
  }

  // Fleet complete: tell every worker to shut down, then account.
  Frame done(FrameType::kDrain);
  done.Set("fleet", "complete");
  broadcast(done);

  if (telemetry) std::fclose(telemetry);
  if (!mismatch.ok()) return mismatch;

  report.epochs_released = released;
  report.workers_seen = worker_names.size();
  for (const RangeState& r : ranges) report.local_events += r.local_final;
  report.downtime_s = static_cast<double>(downtime_nanos) / 1e9;
  report.mttr_s = mttr_s();
  if (!report.exactly_once()) {
    return Status::Internal(
        "exactly-once accounting failed: ranges delivered " +
        std::to_string(report.local_events) + " local events, stream has " +
        std::to_string(report.events));
  }
  return report;
}

}  // namespace graphtides
