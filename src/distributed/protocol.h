// Control-plane wire protocol for distributed replay (gt_coordinator <->
// gt_replay --worker): a versioned, length-prefixed, CRC-protected frame
// format with a dependency-free parser.
//
// Envelope (little-endian):
//   [0..3]   magic "GTDP"
//   [4]      protocol version (kProtocolVersion)
//   [5]      frame type (FrameType)
//   [6..7]   reserved, must be zero
//   [8..11]  payload length (u32 LE, <= kMaxFramePayload)
//   [12..]   payload: '\n'-separated key=value pairs
//   [last 4] CRC-32 (LE) over every preceding byte of the frame
//
// Robustness contract (pinned by protocol_fuzz_test): any truncation is
// "need more bytes" until the peer closes — then a clean ParseError; any
// bit flip anywhere in a frame is a ParseError (bad magic/version/type/
// reserved/length, a length beyond the cap, or a CRC mismatch). A
// malformed frame can never cause a hang, a crash, or an over-allocation:
// payload length is bounded before any buffer is grown.
#ifndef GRAPHTIDES_DISTRIBUTED_PROTOCOL_H_
#define GRAPHTIDES_DISTRIBUTED_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "harness/telemetry/latency_histogram.h"

namespace graphtides {

inline constexpr uint8_t kProtocolVersion = 1;
/// Hard cap on a frame's payload: a corrupt length field may never make
/// the decoder allocate or wait for more than this.
inline constexpr uint32_t kMaxFramePayload = 1 << 20;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr size_t kFrameTrailerBytes = 4;

/// \brief Control-plane message kinds.
enum class FrameType : uint8_t {
  /// worker -> coordinator: first frame on a connection (worker id,
  /// protocol version echo).
  kHello = 1,
  /// coordinator -> worker: run a shard range (stream, rate, paths).
  kAssign = 2,
  /// worker -> coordinator: liveness + progress; coordinator echoes it
  /// back as the ack the worker derives coordinator-liveness from.
  kHeartbeat = 3,
  /// worker -> coordinator: a range reached a marker/control epoch;
  /// coordinator -> worker: that epoch is globally released.
  kEpoch = 4,
  /// worker -> coordinator: a range published a durable checkpoint.
  kCheckpointAck = 5,
  /// worker -> coordinator: a range finished (final stats enclosed);
  /// coordinator -> worker: whole run finished, shut down cleanly.
  kDrain = 6,
  /// coordinator -> worker: take over a dead worker's shard range,
  /// resuming from that range's last durable checkpoint.
  kReassign = 7,
  /// either direction: fatal condition, human-readable reason enclosed.
  kError = 8,
};

bool IsKnownFrameType(uint8_t type);
std::string_view FrameTypeName(FrameType type);

/// \brief One decoded control frame: a type plus ordered key=value fields.
///
/// Field keys must be non-empty and contain neither '=' nor '\n'; values
/// must not contain '\n'. Encode enforces this (InvalidArgument), so every
/// encodable frame round-trips bit-exactly.
struct Frame {
  FrameType type = FrameType::kHello;
  std::map<std::string, std::string> fields;

  Frame() = default;
  explicit Frame(FrameType t) : type(t) {}

  bool Has(const std::string& key) const { return fields.contains(key); }
  void Set(const std::string& key, std::string value) {
    fields[key] = std::move(value);
  }
  void SetU64(const std::string& key, uint64_t value);
  void SetDouble(const std::string& key, double value);

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const;
  /// NotFound when absent, ParseError when present but malformed.
  Result<uint64_t> GetU64(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;

  bool operator==(const Frame& other) const {
    return type == other.type && fields == other.fields;
  }
};

/// \brief Serializes a frame (envelope + payload + CRC). InvalidArgument
/// when a field violates the key/value grammar or the payload exceeds
/// kMaxFramePayload.
Result<std::string> EncodeFrame(const Frame& frame);

/// \brief Incremental frame decoder over a byte stream.
///
/// Feed() appends received bytes; Next() pops the next complete frame,
/// returns nullopt when more bytes are needed, and ParseError on any
/// malformed input — after an error the decoder is poisoned (the stream
/// has lost framing) and every later Next() fails too.
class FrameDecoder {
 public:
  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Pops one frame; nullopt = incomplete, ParseError = corrupt stream.
  Result<std::optional<Frame>> Next();

  /// \brief End-of-stream check: a peer that closed mid-frame left the
  /// decoder with buffered bytes — that truncation is a ParseError, not a
  /// silent drop.
  Status Finish() const;

  size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
  bool poisoned_ = false;
};

/// \brief Half-open range [begin, end) of global shard indices.
struct ShardRange {
  uint32_t begin = 0;
  uint32_t end = 0;

  uint32_t width() const { return end > begin ? end - begin : 0; }
  bool operator==(const ShardRange& other) const {
    return begin == other.begin && end == other.end;
  }
  /// "begin-end" (e.g. "0-4").
  std::string ToString() const;
  static Result<ShardRange> Parse(std::string_view text);
};

/// Exact sparse serialization of a LatencyHistogram, so per-worker lag
/// histograms merge losslessly at the coordinator ("v1;count;min;max;sum;
/// idx:cnt,idx:cnt,...").
std::string EncodeHistogram(const LatencyHistogram& h);
Result<LatencyHistogram> DecodeHistogram(std::string_view text);

}  // namespace graphtides

#endif  // GRAPHTIDES_DISTRIBUTED_PROTOCOL_H_
