#include "distributed/protocol.h"

#include <charconv>
#include <cstring>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/string_util.h"

namespace graphtides {

namespace {

constexpr char kMagic[4] = {'G', 'T', 'D', 'P'};

void AppendU32Le(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t ReadU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

Status BadFrame(const std::string& what) {
  return Status::ParseError("protocol: " + what);
}

}  // namespace

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kError);
}

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kAssign:
      return "ASSIGN";
    case FrameType::kHeartbeat:
      return "HEARTBEAT";
    case FrameType::kEpoch:
      return "EPOCH";
    case FrameType::kCheckpointAck:
      return "CHECKPOINT-ACK";
    case FrameType::kDrain:
      return "DRAIN";
    case FrameType::kReassign:
      return "REASSIGN";
    case FrameType::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

void Frame::SetU64(const std::string& key, uint64_t value) {
  Set(key, std::to_string(value));
}

void Frame::SetDouble(const std::string& key, double value) {
  char buf[64];
  auto [end, ec] =
      std::to_chars(buf, buf + sizeof(buf), value,
                    std::chars_format::general, 17);
  (void)ec;
  Set(key, std::string(buf, end));
}

std::string Frame::Get(const std::string& key,
                       const std::string& fallback) const {
  auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

Result<uint64_t> Frame::GetU64(const std::string& key) const {
  auto it = fields.find(key);
  if (it == fields.end()) {
    return Status::NotFound("frame field missing: " + key);
  }
  auto parsed = ParseUint64(it->second);
  if (!parsed.ok()) {
    return BadFrame("field '" + key + "' is not a u64: " + it->second);
  }
  return parsed.value();
}

Result<double> Frame::GetDouble(const std::string& key) const {
  auto it = fields.find(key);
  if (it == fields.end()) {
    return Status::NotFound("frame field missing: " + key);
  }
  auto parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return BadFrame("field '" + key + "' is not a double: " + it->second);
  }
  return parsed.value();
}

Result<std::string> EncodeFrame(const Frame& frame) {
  if (!IsKnownFrameType(static_cast<uint8_t>(frame.type))) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(static_cast<int>(frame.type)));
  }
  std::string payload;
  for (const auto& [key, value] : frame.fields) {
    if (key.empty() || key.find('=') != std::string::npos ||
        key.find('\n') != std::string::npos) {
      return Status::InvalidArgument("bad frame field key: '" + key + "'");
    }
    if (value.find('\n') != std::string::npos) {
      return Status::InvalidArgument("frame field '" + key +
                                     "' value contains newline");
    }
    if (!payload.empty()) payload.push_back('\n');
    payload.append(key);
    payload.push_back('=');
    payload.append(value);
  }
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds cap: " +
                                   std::to_string(payload.size()));
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(frame.type));
  out.push_back('\0');
  out.push_back('\0');
  AppendU32Le(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  AppendU32Le(&out, Crc32(out));
  return out;
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (poisoned_) {
    return BadFrame("stream lost framing after an earlier decode error");
  }
  // Validate the header byte-by-byte as soon as the bytes exist, so a
  // corrupt length field can never make us wait for (or allocate) more
  // than the payload cap.
  const size_t have = buffer_.size();
  for (size_t i = 0; i < sizeof(kMagic) && i < have; ++i) {
    if (buffer_[i] != kMagic[i]) {
      poisoned_ = true;
      return BadFrame("bad magic");
    }
  }
  if (have > 4 && static_cast<uint8_t>(buffer_[4]) != kProtocolVersion) {
    poisoned_ = true;
    return BadFrame("unsupported protocol version " +
                    std::to_string(static_cast<uint8_t>(buffer_[4])));
  }
  if (have > 5 && !IsKnownFrameType(static_cast<uint8_t>(buffer_[5]))) {
    poisoned_ = true;
    return BadFrame("unknown frame type " +
                    std::to_string(static_cast<uint8_t>(buffer_[5])));
  }
  if ((have > 6 && buffer_[6] != '\0') || (have > 7 && buffer_[7] != '\0')) {
    poisoned_ = true;
    return BadFrame("nonzero reserved bytes");
  }
  if (have < kFrameHeaderBytes) return std::optional<Frame>(std::nullopt);
  const uint32_t payload_len = ReadU32Le(buffer_.data() + 8);
  if (payload_len > kMaxFramePayload) {
    poisoned_ = true;
    return BadFrame("payload length " + std::to_string(payload_len) +
                    " exceeds cap");
  }
  const size_t frame_len =
      kFrameHeaderBytes + payload_len + kFrameTrailerBytes;
  if (have < frame_len) return std::optional<Frame>(std::nullopt);
  const uint32_t want_crc =
      ReadU32Le(buffer_.data() + kFrameHeaderBytes + payload_len);
  const uint32_t got_crc = Crc32(
      std::string_view(buffer_.data(), kFrameHeaderBytes + payload_len));
  if (want_crc != got_crc) {
    poisoned_ = true;
    return BadFrame("CRC mismatch");
  }
  Frame frame(static_cast<FrameType>(static_cast<uint8_t>(buffer_[5])));
  std::string_view payload(buffer_.data() + kFrameHeaderBytes, payload_len);
  while (!payload.empty()) {
    const size_t nl = payload.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? payload : payload.substr(0, nl);
    payload = nl == std::string_view::npos ? std::string_view()
                                           : payload.substr(nl + 1);
    const size_t eq = line.find('=');
    if (eq == 0 || eq == std::string_view::npos) {
      poisoned_ = true;
      return BadFrame("malformed key=value pair in payload");
    }
    auto [it, inserted] = frame.fields.emplace(std::string(line.substr(0, eq)),
                                               std::string(line.substr(eq + 1)));
    if (!inserted) {
      poisoned_ = true;
      return BadFrame("duplicate frame field: " + it->first);
    }
  }
  buffer_.erase(0, frame_len);
  return std::optional<Frame>(std::move(frame));
}

Status FrameDecoder::Finish() const {
  if (poisoned_) {
    return BadFrame("stream lost framing after an earlier decode error");
  }
  if (!buffer_.empty()) {
    return BadFrame("peer closed mid-frame with " +
                    std::to_string(buffer_.size()) + " buffered bytes");
  }
  return Status::OK();
}

std::string ShardRange::ToString() const {
  return std::to_string(begin) + "-" + std::to_string(end);
}

Result<ShardRange> ShardRange::Parse(std::string_view text) {
  const size_t dash = text.find('-');
  if (dash == 0 || dash == std::string_view::npos || dash + 1 >= text.size()) {
    return BadFrame("bad shard range: '" + std::string(text) + "'");
  }
  auto begin = ParseUint64(text.substr(0, dash));
  auto end = ParseUint64(text.substr(dash + 1));
  if (!begin.ok() || !end.ok() || begin.value() > end.value() ||
      end.value() > UINT32_MAX) {
    return BadFrame("bad shard range: '" + std::string(text) + "'");
  }
  return ShardRange{static_cast<uint32_t>(begin.value()),
                    static_cast<uint32_t>(end.value())};
}

std::string EncodeHistogram(const LatencyHistogram& h) {
  std::string out = "v1;";
  out += std::to_string(h.count());
  out.push_back(';');
  out += std::to_string(h.min_nanos());
  out.push_back(';');
  out += std::to_string(h.max_nanos());
  out.push_back(';');
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), h.sum_nanos(),
                                 std::chars_format::general, 17);
  (void)ec;
  out.append(buf, end);
  out.push_back(';');
  bool first = true;
  h.ForEachNonZero([&](size_t index, uint64_t count) {
    if (!first) out.push_back(',');
    first = false;
    out += std::to_string(index);
    out.push_back(':');
    out += std::to_string(count);
  });
  return out;
}

Result<LatencyHistogram> DecodeHistogram(std::string_view text) {
  std::vector<std::string_view> parts;
  for (int i = 0; i < 5; ++i) {
    const size_t semi = text.find(';');
    if (semi == std::string_view::npos) {
      return BadFrame("bad histogram encoding: missing fields");
    }
    parts.push_back(text.substr(0, semi));
    text = text.substr(semi + 1);
  }
  // `text` is now the bucket list (may be empty).
  if (parts[0] != "v1") {
    return BadFrame("bad histogram encoding: version '" +
                    std::string(parts[0]) + "'");
  }
  auto count = ParseUint64(parts[1]);
  auto min = ParseInt64(parts[2]);
  auto max = ParseInt64(parts[3]);
  auto sum = ParseDouble(parts[4]);
  if (!count.ok() || !min.ok() || !max.ok() || !sum.ok()) {
    return BadFrame("bad histogram encoding: non-numeric stats");
  }
  std::vector<std::pair<size_t, uint64_t>> buckets;
  while (!text.empty()) {
    const size_t comma = text.find(',');
    const std::string_view entry =
        comma == std::string_view::npos ? text : text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view()
                                           : text.substr(comma + 1);
    const size_t colon = entry.find(':');
    if (colon == 0 || colon == std::string_view::npos) {
      return BadFrame("bad histogram bucket entry: '" + std::string(entry) +
                      "'");
    }
    auto index = ParseUint64(entry.substr(0, colon));
    auto bucket_count = ParseUint64(entry.substr(colon + 1));
    if (!index.ok() || !bucket_count.ok()) {
      return BadFrame("bad histogram bucket entry: '" + std::string(entry) +
                      "'");
    }
    buckets.emplace_back(static_cast<size_t>(index.value()),
                         bucket_count.value());
  }
  auto h = LatencyHistogram::FromExactState(count.value(), min.value(),
                                            max.value(), sum.value(), buckets);
  if (!h.ok()) return BadFrame(h.status().message());
  return h;
}

}  // namespace graphtides
