// Exponential backoff with decorrelated jitter for control-plane retry
// loops (worker re-dial, coordinator send retry). Deterministic given the
// Rng, so chaos trials replay identically under a fixed seed.
#ifndef GRAPHTIDES_DISTRIBUTED_BACKOFF_H_
#define GRAPHTIDES_DISTRIBUTED_BACKOFF_H_

#include <cstdint>

#include "common/random.h"

namespace graphtides {

/// \brief Bounded exponential backoff: delay for attempt k (0-based) is
/// drawn uniformly from [base/2, base] * 2^k, capped at `max_ms` — full
/// jitter on the upper half so a worker fleet re-dialing a restarted
/// coordinator does not stampede in lockstep.
struct BackoffPolicy {
  int base_ms = 50;
  int max_ms = 2000;

  int DelayMs(int attempt, Rng* rng) const {
    int64_t ceiling = base_ms;
    for (int i = 0; i < attempt && ceiling < max_ms; ++i) ceiling *= 2;
    if (ceiling > max_ms) ceiling = max_ms;
    const int64_t floor = ceiling / 2;
    return static_cast<int>(
        floor + static_cast<int64_t>(rng->NextDouble() *
                                     static_cast<double>(ceiling - floor)));
  }
};

}  // namespace graphtides

#endif  // GRAPHTIDES_DISTRIBUTED_BACKOFF_H_
