#include "distributed/control_channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "replayer/tcp.h"

namespace graphtides {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Polls `fd` for `events` up to the deadline. OK = ready, Timeout = the
/// deadline passed, IoError otherwise. timeout_ms <= 0 blocks.
Status PollFor(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  if (rc == 0) {
    return Status::Timeout("control channel idle for " +
                           std::to_string(timeout_ms) + " ms");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<ControlChannel>> ControlChannel::Dial(
    const std::string& host, uint16_t port, int connect_timeout_ms) {
  Result<int> fd = DialTcp(host, port, connect_timeout_ms);
  GT_RETURN_NOT_OK(fd.status());
  return std::unique_ptr<ControlChannel>(new ControlChannel(fd.value()));
}

std::unique_ptr<ControlChannel> ControlChannel::Adopt(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<ControlChannel>(new ControlChannel(fd));
}

ControlChannel::~ControlChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void ControlChannel::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status ControlChannel::Send(const Frame& frame) {
  Result<std::string> encoded = EncodeFrame(frame);
  GT_RETURN_NOT_OK(encoded.status());
  const std::string& bytes = encoded.value();
  std::lock_guard<std::mutex> lock(send_mu_);
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::Unavailable("control channel shut down");
  }
  size_t written = 0;
  while (written < bytes.size()) {
    if (send_timeout_ms_ > 0) {
      GT_RETURN_NOT_OK(PollFor(fd_, POLLOUT, send_timeout_ms_));
    }
    const ssize_t n = ::send(fd_, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("control send " +
                   std::string(FrameTypeName(frame.type)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> ControlChannel::Receive(int timeout_ms) {
  // Drain frames already buffered before touching the socket.
  while (true) {
    Result<std::optional<Frame>> next = decoder_.Next();
    GT_RETURN_NOT_OK(next.status());
    if (next.value().has_value()) return std::move(*next.value());

    if (shutdown_.load(std::memory_order_acquire)) {
      return Status::Unavailable("control channel shut down");
    }
    GT_RETURN_NOT_OK(PollFor(fd_, POLLIN, timeout_ms));
    char buf[16 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("control recv");
    }
    if (n == 0) {
      // Peer closed: mid-frame is a protocol error, between frames is a
      // clean disconnect.
      GT_RETURN_NOT_OK(decoder_.Finish());
      return Status::Unavailable("peer closed control channel");
    }
    decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

ControlListener::~ControlListener() { Close(); }

Result<uint16_t> ControlListener::Listen(const std::string& host,
                                         uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("bind " + resolved + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 16) != 0) {
    const Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
  return port_;
}

Result<std::unique_ptr<ControlChannel>> ControlListener::Accept(
    int timeout_ms) {
  const int fd = listen_fd_.load(std::memory_order_acquire);
  if (fd < 0) return Status::Unavailable("listener closed");
  GT_RETURN_NOT_OK(PollFor(fd, POLLIN, timeout_ms));
  const int conn = ::accept(fd, nullptr, nullptr);
  if (conn < 0) {
    if (listen_fd_.load(std::memory_order_acquire) < 0) {
      return Status::Unavailable("listener closed");
    }
    return Errno("accept");
  }
  return ControlChannel::Adopt(conn);
}

void ControlListener::Close() {
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace graphtides
