// Replay worker (`gt_replay --worker`): dials the coordinator, runs one
// ShardedReplayer task per assigned shard range, reports heartbeats /
// epochs / checkpoints / final stats over the control channel, and
// implements the partition-tolerance rule — a worker that loses the
// coordinator quiesces at the next epoch barrier, writes a final exact
// checkpoint, and re-dials with bounded backoff instead of free-running.
#ifndef GRAPHTIDES_DISTRIBUTED_WORKER_H_
#define GRAPHTIDES_DISTRIBUTED_WORKER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "distributed/control_channel.h"
#include "distributed/protocol.h"

namespace graphtides {

struct ReplayWorkerOptions {
  std::string coordinator_host = "127.0.0.1";
  uint16_t coordinator_port = 0;
  /// Stable identity across reconnects (defaults to "worker-<pid>").
  std::string worker_id;
  /// Dial deadline per connect attempt (satellite of DialTcp).
  int connect_timeout_ms = 2000;
  /// Connect attempts per session (exponential backoff + jitter between
  /// them); when exhausted, Run gives up with the last dial error.
  int dial_attempts = 15;
  int heartbeat_interval_ms = 200;
  /// How long an epoch waits for its fleet-wide release before the worker
  /// declares the coordinator lost and quiesces (partition rule).
  int epoch_wait_timeout_ms = 10000;
  /// Jitter seed for the re-dial backoff (deterministic chaos trials).
  uint64_t backoff_seed = 1;
};

/// \brief One worker process's control loop + replay tasks.
///
/// Run() blocks until the coordinator declares the fleet drained (OK), the
/// dial budget is exhausted (the last dial error), or a fatal protocol
/// error. A lost coordinator mid-run is NOT fatal: every task quiesces at
/// its next epoch with a durable checkpoint, and the worker re-dials —
/// resumed tasks continue byte-exactly.
class ReplayWorker {
 public:
  explicit ReplayWorker(ReplayWorkerOptions options);
  ~ReplayWorker();

  ReplayWorker(const ReplayWorker&) = delete;
  ReplayWorker& operator=(const ReplayWorker&) = delete;

  Status Run();

  struct Totals {
    /// Graph events this worker's tasks delivered (exactly-once across
    /// resumes: the final value of each range's local counter).
    uint64_t local_events = 0;
    /// Range tasks started (assignments + reassignments + restarts).
    uint64_t tasks_started = 0;
    /// Tasks that began from a durable checkpoint.
    uint64_t resumes = 0;
    /// Coordinator-loss quiesces (partition rule firings).
    uint64_t quiesces = 0;
    /// Checkpoint generations skipped as torn/corrupt during resumes.
    uint64_t checkpoint_fallbacks = 0;
  };
  Totals totals() const;

 private:
  struct Task;

  /// One connection lifetime: HELLO, then serve frames until the fleet
  /// finishes (sets *finished), the coordinator vanishes (returns the
  /// transport error), or a fatal protocol error occurs.
  Status RunSession(ControlChannel* channel, bool* finished);
  void StartTask(const Frame& assign);
  /// Task-thread body: resume from the range's newest good checkpoint,
  /// replay it through per-lane PipeSinks, report DRAIN / quiesce.
  void RunRangeTask(Task* task);
  void SendHeartbeats(ControlChannel* channel);
  /// Sends through the active session's channel, if any (task threads).
  Status SendToCoordinator(const Frame& frame);
  /// Joins finished task threads; with `all`, joins everything (tasks
  /// stop on their own: epoch-hook quiesce, cancellation, or stream end).
  void ReapTasks(bool all);

  ReplayWorkerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable release_cv_;
  /// Highest fleet-released epoch seen this session (guarded by mu_).
  uint64_t released_epoch_ = 0;
  /// The active session's channel, for task threads to report through
  /// (guarded by mu_; null between sessions).
  ControlChannel* channel_ = nullptr;
  std::vector<std::unique_ptr<Task>> tasks_;
  /// Final local-delivered count per range this worker has run (guarded by
  /// mu_; exactly-once — resumes overwrite, never double-count).
  std::map<std::string, uint64_t> local_final_;

  std::atomic<uint64_t> resumes_{0};
  std::atomic<uint64_t> quiesces_{0};
  std::atomic<uint64_t> tasks_started_{0};
  std::atomic<uint64_t> checkpoint_fallbacks_{0};
};

}  // namespace graphtides

#endif  // GRAPHTIDES_DISTRIBUTED_WORKER_H_
