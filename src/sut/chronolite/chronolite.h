// ChronoLite: a simulated distributed online graph processing engine — the
// stand-in for Chronograph (Erb et al., DEBS'17) in the paper's Level-2
// experiment (§5.3.2, Fig. 3d, Table 4).
//
// Architecture, mirroring the mechanisms the paper's evaluation surfaces:
//   * a broker stage receives the stream and routes each event to the
//     worker owning the target vertex (hash partitioning),
//   * N workers each own a graph partition and run an online influence-rank
//     computation (residual-push PageRank, algorithms/online_pagerank.h),
//   * crucially, *graph-update messages and computation (residual)
//     messages share each worker's single input queue* — the programming-
//     model property the paper's evaluation identifies: evolution and
//     computation compete for internal communication resources, so bursts
//     leave a backlog that keeps the system busy long after the stream
//     stops, and rank results lag with high error until the backlog drains.
//   * Level 2 instrumentation: queue lengths, per-worker op counters, and
//     rank estimates are exposed via hooks and accessors.
#ifndef GRAPHTIDES_SUT_CHRONOLITE_CHRONOLITE_H_
#define GRAPHTIDES_SUT_CHRONOLITE_CHRONOLITE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "algorithms/online_pagerank.h"
#include "harness/evaluation_level.h"
#include "sim/network.h"
#include "sim/process.h"
#include "sim/queue.h"
#include "sim/simulator.h"
#include "stream/event.h"

namespace graphtides {

struct ChronoLiteOptions {
  size_t num_workers = 4;
  /// Worker input queue capacity (0 = unbounded, the default: the paper's
  /// run accumulates ~60k-message backlogs).
  size_t worker_queue_capacity = 0;
  /// CPU cost to apply one graph-update message.
  Duration update_cost = Duration::FromMicros(120);
  /// Fixed CPU cost to receive one residual batch message.
  Duration residual_cost = Duration::FromMicros(25);
  /// Additional CPU cost per residual entry in a batch.
  Duration residual_entry_cost = Duration::FromMicros(3);
  /// Outbound residual deltas are coalesced per destination worker and
  /// flushed on this interval (one batch message per destination).
  Duration residual_flush_interval = Duration::FromMicros(500);
  /// CPU cost of one rank push.
  Duration push_cost = Duration::FromMicros(25);
  /// Rank pushes executed after each processed message (compute quantum).
  size_t pushes_per_message = 64;
  /// Pushes per standalone compute task when the queue is empty. Larger
  /// quanta merge more outbound deltas per message (see ChronoWorker).
  size_t pushes_per_idle_task = 512;
  /// Inter-worker link (also broker -> worker).
  SimLinkOptions link;
  OnlinePageRankOptions rank;
  /// CPU accounting bin.
  Duration utilization_bin = Duration::FromSeconds(1.0);
};

/// \brief One worker: graph partition + rank core + input queue.
class ChronoWorker;

/// \brief The engine. All methods must run inside simulator callbacks.
class ChronoLite : public SutMetricsSource {
 public:
  ChronoLite(Simulator* sim, ChronoLiteOptions options);
  ~ChronoLite();

  /// Ingests one stream event (broker entry point). Routing and processing
  /// happen asynchronously in virtual time.
  void Ingest(const Event& event);

  /// True when no queued or in-flight work remains.
  bool Idle() const;

  // --- Observability (Level 1 / Level 2) ---------------------------------

  size_t num_workers() const { return workers_.size(); }
  size_t WorkerQueueLength(size_t i) const;
  /// Messages + pushes executed by worker i since start.
  uint64_t WorkerOpsProcessed(size_t i) const;
  const SimProcess& WorkerProcess(size_t i) const;

  /// Normalized influence rank of a vertex (0 if unknown).
  double RankOf(VertexId v) const;
  /// Top-k (vertex, normalized rank), descending.
  std::vector<std::pair<VertexId, double>> TopRanks(size_t k) const;
  /// All normalized ranks (vertex -> rank).
  std::unordered_map<VertexId, double> AllRanks() const;

  uint64_t events_ingested() const { return events_ingested_; }
  uint64_t updates_applied() const { return updates_applied_; }
  /// Residual batch messages exchanged between workers.
  uint64_t residual_messages() const { return residual_messages_; }
  /// Individual residual deltas carried by those messages.
  uint64_t residual_deltas() const { return residual_deltas_; }

  std::vector<std::pair<std::string, double>> CollectMetrics() const override;

  /// Level-2 hook points fired by the engine:
  ///   "queue_length.<i>"  every time worker i's queue length changes,
  ///   "message_processed.<i>" after each message.
  InstrumentationHooks& hooks() { return hooks_; }

 private:
  friend class ChronoWorker;
  size_t OwnerOf(VertexId v) const { return v % workers_.size(); }
  void RouteResidual(size_t from_worker, VertexId target, double delta);
  void FlushOutbox(size_t from_worker, size_t to_worker);

  Simulator* sim_;
  ChronoLiteOptions options_;
  std::vector<std::unique_ptr<ChronoWorker>> workers_;
  /// links_[i][j]: worker i -> worker j (i == num_workers is the broker).
  std::vector<std::vector<std::unique_ptr<SimLink>>> links_;
  InstrumentationHooks hooks_;

  /// Per (sender, destination) coalescing buffers for residual deltas.
  struct Outbox {
    std::unordered_map<VertexId, double> deltas;
    bool flush_scheduled = false;
  };
  std::vector<std::vector<Outbox>> outboxes_;

  uint64_t events_ingested_ = 0;
  uint64_t updates_applied_ = 0;
  uint64_t residual_messages_ = 0;
  uint64_t residual_deltas_ = 0;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_SUT_CHRONOLITE_CHRONOLITE_H_
