// The Chronograph experiment of §5.3.2 (Fig. 3d, Table 4), reproduced
// against ChronoLite: a social-network stream (with a mid-stream pause and
// a doubled-rate segment) drives the engine while Level-2 loggers sample
// replay rate, per-worker internal ops, CPU, and queue lengths; the online
// influence-rank estimates of the most influential users are recorded and
// their relative errors computed retrospectively against batch PageRank on
// the reconstructed graph.
#ifndef GRAPHTIDES_SUT_CHRONOLITE_EXPERIMENT_H_
#define GRAPHTIDES_SUT_CHRONOLITE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "harness/log_collector.h"
#include "stream/event.h"
#include "sut/chronolite/chronolite.h"

namespace graphtides {

struct ChronographExperimentConfig {
  /// Base streaming rate; Table 4: 2000 events/s. Control events inside
  /// the stream provide the pause and the doubled-rate segment.
  double base_rate_eps = 2000.0;
  Duration sample_interval = Duration::FromSeconds(1.0);
  /// Relative rank error is evaluated at this interval (batch PageRank per
  /// evaluation point; coarser than the metric sampling).
  Duration error_interval = Duration::FromSeconds(5.0);
  /// Track the k users most influential in the final exact ranking.
  size_t track_top_k = 10;
  /// Hard stop in virtual time.
  Duration max_duration = Duration::FromSeconds(600.0);
  /// Worker threads for the retrospective exact-reference recomputes
  /// (0 = auto, 1 = sequential). Results are thread-count invariant.
  size_t compute_threads = 1;
  ChronoLiteOptions engine;
};

struct RankErrorSample {
  Timestamp time;
  /// Median relative error over tracked users.
  double median_relative_error = 0.0;
};

/// \brief Ingestion-to-visibility latency of one in-stream marker (§4.5
/// watermark pattern): from the instant the marker passed the replayer to
/// the instant the engine had applied every event that preceded it.
struct MarkerLatencySample {
  std::string label;
  Timestamp sent;
  Duration latency;
};

struct ChronographExperimentResult {
  /// Merged result log; sources: "replayer", "worker-<i>"; metrics:
  /// "replay_rate", "ops_rate", "cpu", "queue_length", "rank_error".
  ResultLog log;

  Duration virtual_duration;
  Timestamp stream_finished_at;
  Timestamp drained_at;
  uint64_t events_ingested = 0;
  uint64_t updates_applied = 0;
  uint64_t residual_messages = 0;
  uint64_t residual_deltas = 0;

  /// Per-sample series (aligned, one entry per sample interval).
  std::vector<double> replay_rate;                      // events/s
  std::vector<std::vector<double>> worker_ops_rate;     // ops/s per worker
  std::vector<std::vector<double>> worker_queue_length; // per worker
  std::vector<std::vector<double>> worker_cpu;          // 0..1 per worker
  std::vector<RankErrorSample> rank_error;

  /// Watermark latencies for every marker in the stream, in stream order.
  std::vector<MarkerLatencySample> marker_latency;

  /// Tracked users (most influential by final exact rank).
  std::vector<VertexId> tracked_users;
};

Result<ChronographExperimentResult> RunChronographExperiment(
    const std::vector<Event>& stream,
    const ChronographExperimentConfig& config);

}  // namespace graphtides

#endif  // GRAPHTIDES_SUT_CHRONOLITE_EXPERIMENT_H_
