#include "sut/chronolite/experiment.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>

#include "algorithms/pagerank.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "harness/metrics_logger.h"
#include "sim/simulator.h"
#include "sim/virtual_replayer.h"

namespace graphtides {

namespace {

/// Exact final ranking determines which users to track (the paper dumps
/// "intermediate processing results for the most influential users").
std::vector<VertexId> PickTrackedUsers(const std::vector<Event>& stream,
                                       size_t k, size_t threads) {
  Graph graph;
  for (const Event& e : stream) {
    (void)graph.Apply(e);  // faults would be rejected here as in the SUT
  }
  const CsrGraph csr = CsrGraph::FromGraph(graph, threads);
  const PageRankResult pr = PageRank(csr, {.threads = threads});
  std::vector<VertexId> tracked;
  for (CsrGraph::Index idx : TopKByRank(pr.ranks, k)) {
    tracked.push_back(csr.IdOf(idx));
  }
  return tracked;
}

}  // namespace

Result<ChronographExperimentResult> RunChronographExperiment(
    const std::vector<Event>& stream,
    const ChronographExperimentConfig& config) {
  ChronographExperimentResult result;
  result.tracked_users =
      PickTrackedUsers(stream, config.track_top_k, config.compute_threads);

  Simulator sim;
  ChronoLiteOptions engine_options = config.engine;
  engine_options.utilization_bin = config.sample_interval;
  ChronoLite engine(&sim, engine_options);

  VirtualReplayerOptions replay_options;
  replay_options.base_rate_eps = config.base_rate_eps;
  VirtualReplayer replayer(&sim, replay_options);

  MetricsLogger replayer_log("replayer", sim.clock());
  std::vector<std::unique_ptr<MetricsLogger>> worker_logs;
  for (size_t i = 0; i < engine.num_workers(); ++i) {
    worker_logs.push_back(std::make_unique<MetricsLogger>(
        "worker-" + std::to_string(i + 1), sim.clock()));
  }

  // Watermark tracking (§4.5): a marker is "observed" once the engine has
  // applied every graph event that preceded it in the stream.
  struct PendingMarker {
    std::string label;
    uint64_t events_before = 0;
    Timestamp sent;
  };
  std::deque<PendingMarker> pending_markers;
  auto check_markers = [&](double) {
    while (!pending_markers.empty() &&
           engine.updates_applied() >= pending_markers.front().events_before) {
      const PendingMarker& m = pending_markers.front();
      result.marker_latency.push_back(
          {m.label, m.sent, sim.Now() - m.sent});
      pending_markers.pop_front();
    }
  };
  for (size_t i = 0; i < engine.num_workers(); ++i) {
    engine.hooks().Attach("message_processed." + std::to_string(i),
                          check_markers);
  }

  bool stream_done = false;
  replayer.Start(
      stream, [&](const Event& event, size_t) { engine.Ingest(event); },
      [&](const std::string& label) {
        replayer_log.LogText("marker_sent", 1.0, label);
        pending_markers.push_back(
            {label, replayer.events_delivered(), sim.Now()});
      },
      [&] { stream_done = true; });

  // Tracked-user estimate snapshots for retrospective error analysis.
  struct EstimateSnapshot {
    Timestamp time;
    std::vector<double> rank;  // aligned with tracked_users
  };
  std::vector<EstimateSnapshot> snapshots;

  const Timestamp t0 = sim.Now();
  const Timestamp deadline = t0 + config.max_duration;
  uint64_t last_replayed = 0;
  std::vector<uint64_t> last_ops(engine.num_workers(), 0);
  bool drained_seen = false;

  std::function<void()> sample = [&]() {
    const double interval_s = config.sample_interval.seconds();
    // Replay rate.
    const uint64_t replayed = replayer.events_delivered();
    const double replay_rate =
        static_cast<double>(replayed - last_replayed) / interval_s;
    last_replayed = replayed;
    replayer_log.Log("replay_rate", replay_rate);
    result.replay_rate.push_back(replay_rate);

    // Per-worker internals (Level 2).
    if (result.worker_ops_rate.empty()) {
      result.worker_ops_rate.resize(engine.num_workers());
      result.worker_queue_length.resize(engine.num_workers());
    }
    for (size_t i = 0; i < engine.num_workers(); ++i) {
      const uint64_t ops = engine.WorkerOpsProcessed(i);
      const double ops_rate =
          static_cast<double>(ops - last_ops[i]) / interval_s;
      last_ops[i] = ops;
      const double queue_length =
          static_cast<double>(engine.WorkerQueueLength(i));
      worker_logs[i]->Log("ops_rate", ops_rate);
      worker_logs[i]->Log("queue_length", queue_length);
      result.worker_ops_rate[i].push_back(ops_rate);
      result.worker_queue_length[i].push_back(queue_length);
    }

    // Periodic rank-estimate dump.
    EstimateSnapshot snap;
    snap.time = sim.Now();
    snap.rank.reserve(result.tracked_users.size());
    for (VertexId v : result.tracked_users) {
      snap.rank.push_back(engine.RankOf(v));
    }
    snapshots.push_back(std::move(snap));

    const bool drained = stream_done && engine.Idle() && sim.pending() == 0;
    if (drained && !drained_seen) {
      drained_seen = true;
      result.drained_at = sim.Now();
    }
    if (drained || sim.Now() >= deadline) return;
    sim.ScheduleAfter(config.sample_interval, sample);
  };
  sim.ScheduleAfter(config.sample_interval, sample);

  sim.RunUntil(deadline);

  result.virtual_duration = sim.Now() - t0;
  result.stream_finished_at = replayer.finished_at();
  if (!drained_seen) result.drained_at = sim.Now();
  result.events_ingested = engine.events_ingested();
  result.updates_applied = engine.updates_applied();
  result.residual_messages = engine.residual_messages();
  result.residual_deltas = engine.residual_deltas();

  // CPU series.
  for (size_t i = 0; i < engine.num_workers(); ++i) {
    result.worker_cpu.push_back(
        engine.WorkerProcess(i).UtilizationSeries(sim.Now()));
    const auto& series = result.worker_cpu.back();
    for (size_t b = 0; b < series.size(); ++b) {
      worker_logs[i]->LogAt(
          t0 + config.sample_interval * static_cast<int64_t>(b), "cpu",
          series[b] * 100.0);
    }
  }

  // Retrospective rank-error analysis: reconstruct the graph at each error
  // evaluation point from the recorded delivery times and compare the
  // online estimates against batch PageRank (§4.3 Computation Metrics).
  {
    const std::vector<Timestamp>& times = replayer.delivery_times();
    // Graph events of the stream, in delivery order.
    std::vector<const Event*> graph_events;
    graph_events.reserve(times.size());
    for (const Event& e : stream) {
      if (IsGraphOp(e.type)) graph_events.push_back(&e);
    }
    Graph reconstructed;
    size_t cursor = 0;
    Timestamp next_eval = t0 + config.error_interval;
    MetricsLogger error_log("analysis", sim.clock());
    for (const EstimateSnapshot& snap : snapshots) {
      if (snap.time < next_eval) continue;
      next_eval = snap.time + config.error_interval;
      while (cursor < graph_events.size() && cursor < times.size() &&
             times[cursor] <= snap.time) {
        (void)reconstructed.Apply(*graph_events[cursor]);
        ++cursor;
      }
      if (reconstructed.num_vertices() == 0) continue;
      const CsrGraph csr =
          CsrGraph::FromGraph(reconstructed, config.compute_threads);
      const PageRankResult exact =
          PageRank(csr, {.threads = config.compute_threads});
      std::vector<double> errors;
      for (size_t i = 0; i < result.tracked_users.size(); ++i) {
        CsrGraph::Index idx;
        if (!csr.IndexOf(result.tracked_users[i], &idx)) continue;
        const double exact_rank = exact.ranks[idx];
        if (exact_rank <= 0.0) continue;
        errors.push_back(std::abs(snap.rank[i] - exact_rank) / exact_rank);
      }
      RankErrorSample sample_out;
      sample_out.time = snap.time;
      sample_out.median_relative_error = Median(std::move(errors));
      error_log.LogAt(snap.time, "rank_error",
                      sample_out.median_relative_error);
      result.rank_error.push_back(sample_out);
    }

    LogCollector collector;
    collector.AddLogger(&replayer_log);
    for (const auto& log : worker_logs) collector.AddLogger(log.get());
    collector.AddLogger(&error_log);
    result.log = collector.Collect();
  }
  return result;
}

}  // namespace graphtides
