#include "sut/chronolite/chronolite.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace graphtides {

// ---------------------------------------------------------------------------
// ChronoWorker
// ---------------------------------------------------------------------------

/// One worker: owns a vertex partition (out-adjacency of owned vertices),
/// an OnlinePageRankCore over that partition, and a single input queue
/// shared by update and residual messages.
class ChronoWorker {
 public:
  struct Message {
    enum class Kind { kUpdate, kResidualBatch } kind = Kind::kUpdate;
    Event update;                                      // kUpdate
    std::vector<std::pair<VertexId, double>> deltas;   // kResidualBatch
  };

  ChronoWorker(ChronoLite* engine, Simulator* sim, size_t index,
               const ChronoLiteOptions& options)
      : engine_(engine),
        sim_(sim),
        index_(index),
        options_(options),
        process_(sim, "worker-" + std::to_string(index + 1),
                 options.utilization_bin),
        queue_(options.worker_queue_capacity),
        rank_(options.rank, [this, engine](VertexId v) {
          return engine->OwnerOf(v) == index_;
        }) {}

  /// Enqueues a message (from the broker or a peer worker) and wakes the
  /// worker if idle.
  void Enqueue(Message message) {
    queue_.Push(std::move(message));
    engine_->hooks_.Fire("queue_length." + std::to_string(index_),
                         static_cast<double>(queue_.size()));
    Wake();
  }

  /// Per-message processing cost (batches pay per entry).
  Duration CostOf(const Message& message) const {
    if (message.kind == Message::Kind::kUpdate) return options_.update_cost;
    return options_.residual_cost +
           Duration::FromNanos(
               options_.residual_entry_cost.nanos() *
               static_cast<int64_t>(message.deltas.size()));
  }

  /// Schedules the processing loop if it is not already running.
  void Wake() {
    if (running_) return;
    if (queue_.empty() && !rank_.HasPendingWork()) return;
    running_ = true;
    ScheduleNext();
  }

  bool Idle() const {
    return !running_ && queue_.empty() && !rank_.HasPendingWork();
  }

  size_t queue_length() const { return queue_.size(); }
  uint64_t ops_processed() const { return ops_processed_; }
  const SimProcess& process() const { return process_; }
  const OnlinePageRankCore& rank() const { return rank_; }
  size_t owned_vertices() const { return alive_.size(); }

 private:
  void ScheduleNext() {
    std::optional<Message> message = queue_.Pop();
    if (message.has_value()) {
      const Duration cost = CostOf(*message);
      // Move the message into the completion callback.
      auto msg = std::make_shared<Message>(std::move(*message));
      process_.Submit(cost, [this, msg] {
        Handle(*msg);
        ops_processed_ += 1;
        engine_->hooks_.Fire("message_processed." + std::to_string(index_),
                             1.0);
        RunPushes(options_.pushes_per_message);
        Continue();
      });
      return;
    }
    if (rank_.HasPendingWork()) {
      const size_t quantum = options_.pushes_per_idle_task;
      process_.Submit(
          Duration::FromNanos(options_.push_cost.nanos() *
                              static_cast<int64_t>(quantum)),
          [this, quantum] {
            RunPushes(quantum);
            Continue();
          });
      return;
    }
    running_ = false;
  }

  void Continue() {
    if (queue_.empty() && !rank_.HasPendingWork()) {
      running_ = false;
      return;
    }
    ScheduleNext();
  }

  void RunPushes(size_t quantum) {
    // Remote deltas within one quantum are merged per target vertex — one
    // message per (quantum, target) instead of one per push, the same
    // batching a real engine applies to its outbound channels.
    std::unordered_map<VertexId, double> outbound;
    const size_t executed = rank_.ProcessPushes(
        quantum, [&outbound](VertexId target, double delta) {
          outbound[target] += delta;
        });
    for (const auto& [target, delta] : outbound) {
      engine_->RouteResidual(index_, target, delta);
    }
    ops_processed_ += executed;
  }

  void Handle(const Message& message) {
    if (message.kind == Message::Kind::kResidualBatch) {
      for (const auto& [target, delta] : message.deltas) {
        // Residuals addressed to vertices this worker no longer owns (e.g.
        // removed users whose remote in-edges are stale) are dropped rather
        // than resurrecting ghost state.
        if (alive_.contains(target)) {
          rank_.AddResidual(target, delta);
        }
      }
      return;
    }
    const Event& e = message.update;
    switch (e.type) {
      case EventType::kAddVertex:
        alive_.insert(e.vertex);
        rank_.AddVertex(e.vertex);
        ++engine_->updates_applied_;
        break;
      case EventType::kRemoveVertex:
        alive_.erase(e.vertex);
        // In-neighbors are unknown to this worker (they may live anywhere);
        // their stale contributions are part of the measured error.
        rank_.RemoveVertex(e.vertex, {});
        ++engine_->updates_applied_;
        break;
      case EventType::kAddEdge:
        rank_.AddEdge(e.edge.src, e.edge.dst);
        ++engine_->updates_applied_;
        break;
      case EventType::kRemoveEdge:
        rank_.RemoveEdge(e.edge.src, e.edge.dst);
        ++engine_->updates_applied_;
        break;
      case EventType::kUpdateVertex:
      case EventType::kUpdateEdge:
        // State updates do not affect the rank computation.
        ++engine_->updates_applied_;
        break;
      default:
        break;
    }
  }

  ChronoLite* engine_;
  Simulator* sim_;
  size_t index_;
  const ChronoLiteOptions& options_;
  SimProcess process_;
  SimQueue<Message> queue_;
  /// Vertices currently owned and live on this worker.
  std::unordered_set<VertexId> alive_;
  OnlinePageRankCore rank_;
  bool running_ = false;
  uint64_t ops_processed_ = 0;
};

// ---------------------------------------------------------------------------
// ChronoLite
// ---------------------------------------------------------------------------

ChronoLite::ChronoLite(Simulator* sim, ChronoLiteOptions options)
    : sim_(sim), options_(options) {
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.push_back(std::make_unique<ChronoWorker>(this, sim, i, options_));
  }
  outboxes_.resize(options_.num_workers,
                   std::vector<Outbox>(options_.num_workers));
  // Links: rows 0..n-1 are workers, row n is the broker.
  links_.resize(options_.num_workers + 1);
  for (size_t i = 0; i <= options_.num_workers; ++i) {
    for (size_t j = 0; j < options_.num_workers; ++j) {
      const std::string name = (i == options_.num_workers)
                                   ? "broker->w" + std::to_string(j)
                                   : "w" + std::to_string(i) + "->w" +
                                         std::to_string(j);
      links_[i].push_back(
          std::make_unique<SimLink>(sim, name, options_.link));
    }
  }
}

ChronoLite::~ChronoLite() = default;

void ChronoLite::Ingest(const Event& event) {
  if (!IsGraphOp(event.type)) return;
  ++events_ingested_;
  const size_t owner = IsVertexOp(event.type) ? OwnerOf(event.vertex)
                                              : OwnerOf(event.edge.src);
  const uint64_t bytes = 48 + event.payload.size();
  Event copy = event;
  links_[options_.num_workers][owner]->Send(bytes, [this, owner, copy] {
    ChronoWorker::Message message;
    message.kind = ChronoWorker::Message::Kind::kUpdate;
    message.update = copy;
    workers_[owner]->Enqueue(std::move(message));
  });
}

void ChronoLite::RouteResidual(size_t from_worker, VertexId target,
                               double delta) {
  ++residual_deltas_;
  const size_t owner = OwnerOf(target);
  Outbox& outbox = outboxes_[from_worker][owner];
  outbox.deltas[target] += delta;
  if (!outbox.flush_scheduled) {
    outbox.flush_scheduled = true;
    sim_->ScheduleAfter(options_.residual_flush_interval,
                        [this, from_worker, owner] {
                          FlushOutbox(from_worker, owner);
                        });
  }
}

void ChronoLite::FlushOutbox(size_t from_worker, size_t to_worker) {
  Outbox& outbox = outboxes_[from_worker][to_worker];
  outbox.flush_scheduled = false;
  if (outbox.deltas.empty()) return;
  ChronoWorker::Message message;
  message.kind = ChronoWorker::Message::Kind::kResidualBatch;
  message.deltas.assign(outbox.deltas.begin(), outbox.deltas.end());
  outbox.deltas.clear();
  ++residual_messages_;
  const uint64_t bytes = 16 + 16 * message.deltas.size();
  // Move the batch into a shared holder for the link-delivery callback.
  auto holder = std::make_shared<ChronoWorker::Message>(std::move(message));
  links_[from_worker][to_worker]->Send(bytes, [this, to_worker, holder] {
    workers_[to_worker]->Enqueue(std::move(*holder));
  });
}

bool ChronoLite::Idle() const {
  for (const auto& worker : workers_) {
    if (!worker->Idle()) return false;
  }
  for (const auto& row : outboxes_) {
    for (const Outbox& outbox : row) {
      if (!outbox.deltas.empty() || outbox.flush_scheduled) return false;
    }
  }
  return true;
}

size_t ChronoLite::WorkerQueueLength(size_t i) const {
  return workers_[i]->queue_length();
}

uint64_t ChronoLite::WorkerOpsProcessed(size_t i) const {
  return workers_[i]->ops_processed();
}

const SimProcess& ChronoLite::WorkerProcess(size_t i) const {
  return workers_[i]->process();
}

double ChronoLite::RankOf(VertexId v) const {
  double mass = 0.0;
  for (const auto& worker : workers_) mass += worker->rank().EstimateMass();
  if (mass <= 0.0) return 0.0;
  return workers_[OwnerOf(v)]->rank().EstimateOf(v) / mass;
}

std::vector<std::pair<VertexId, double>> ChronoLite::TopRanks(size_t k) const {
  double mass = 0.0;
  for (const auto& worker : workers_) mass += worker->rank().EstimateMass();
  std::vector<std::pair<VertexId, double>> all;
  for (const auto& worker : workers_) {
    for (const auto& [v, estimate] : worker->rank().Estimates()) {
      all.emplace_back(v, mass > 0.0 ? estimate / mass : 0.0);
    }
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k), all.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  all.resize(k);
  return all;
}

std::unordered_map<VertexId, double> ChronoLite::AllRanks() const {
  double mass = 0.0;
  for (const auto& worker : workers_) mass += worker->rank().EstimateMass();
  std::unordered_map<VertexId, double> out;
  if (mass <= 0.0) return out;
  for (const auto& worker : workers_) {
    for (const auto& [v, estimate] : worker->rank().Estimates()) {
      out.emplace(v, estimate / mass);
    }
  }
  return out;
}

std::vector<std::pair<std::string, double>> ChronoLite::CollectMetrics()
    const {
  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("events_ingested",
                       static_cast<double>(events_ingested_));
  metrics.emplace_back("updates_applied",
                       static_cast<double>(updates_applied_));
  metrics.emplace_back("residual_messages",
                       static_cast<double>(residual_messages_));
  for (size_t i = 0; i < workers_.size(); ++i) {
    metrics.emplace_back("queue_length." + std::to_string(i),
                         static_cast<double>(workers_[i]->queue_length()));
    metrics.emplace_back("ops_processed." + std::to_string(i),
                         static_cast<double>(workers_[i]->ops_processed()));
  }
  return metrics;
}

}  // namespace graphtides
