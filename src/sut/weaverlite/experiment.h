// The Weaver write-throughput experiment of §5.3.1, reproduced against
// WeaverLite: a virtual replayer feeds a local client at a target rate; the
// client batches events into transactions and submits them, retrying under
// backpressure; per-second loggers record processed events and per-process
// CPU — the data behind Figs. 3b and 3c.
#ifndef GRAPHTIDES_SUT_WEAVERLITE_EXPERIMENT_H_
#define GRAPHTIDES_SUT_WEAVERLITE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "harness/log_collector.h"
#include "stream/event.h"
#include "sut/weaverlite/weaverlite.h"

namespace graphtides {

struct WeaverExperimentConfig {
  /// Target streaming rate (events/second).
  double target_rate_eps = 10000.0;
  /// Transaction batching: 1 event/tx or 10 events/tx in the paper.
  size_t events_per_tx = 10;
  /// Hard stop (virtual time) — the paper plots 500 s.
  Duration max_duration = Duration::FromSeconds(500.0);
  Duration sample_interval = Duration::FromSeconds(1.0);
  /// Backpressure: the replayer is gated while the client has this many
  /// ready-but-unadmitted transactions (0 = never gate; the client then
  /// buffers without bound). Models Weaver "backthrottling" fast streams.
  size_t client_backlog_limit_tx = 256;
  WeaverLiteOptions weaver;
};

struct WeaverExperimentResult {
  /// Merged result log; sources: "replayer", "client",
  /// "weaver-timestamper", "weaver-shard-<i>".
  ResultLog log;

  uint64_t events_offered = 0;
  uint64_t events_applied = 0;
  uint64_t transactions_committed = 0;
  /// Time until the deadline or until the system fully drained, whichever
  /// came first.
  Duration virtual_duration;
  bool drained = false;

  /// Mean applied rate over the active period (events/second).
  double AppliedRateEps() const {
    const double secs = virtual_duration.seconds();
    return secs > 0.0 ? static_cast<double>(events_applied) / secs : 0.0;
  }

  /// Fig. 3b series: events applied per sample interval.
  std::vector<double> processed_per_interval;
  /// Fig. 3c series: CPU utilization (0..1) per bin.
  std::vector<double> timestamper_utilization;
  std::vector<std::vector<double>> shard_utilization;
};

/// \brief Runs one configuration to completion (stream drained and store
/// idle, or `max_duration` reached).
Result<WeaverExperimentResult> RunWeaverExperiment(
    const std::vector<Event>& stream, const WeaverExperimentConfig& config);

}  // namespace graphtides

#endif  // GRAPHTIDES_SUT_WEAVERLITE_EXPERIMENT_H_
