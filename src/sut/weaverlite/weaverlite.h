// WeaverLite: a simulated transactional, shard-partitioned graph store —
// the stand-in for Weaver (Dubey et al., VLDB'16) in the paper's Level-0
// experiment (§5.3.1, Figs. 3b/3c, Table 3).
//
// Architecture, mirroring the mechanisms the paper's evaluation surfaces:
//   * a *timestamper* process serializes every transaction: it assigns the
//     commit timestamp and validates all preconditions against the global
//     topology (Weaver's "refinable timestamps" ordering service). Its
//     per-transaction cost is the write-path bottleneck — offered load
//     beyond its capacity backthrottles the client no matter the target
//     streaming rate (Fig. 3b), and its CPU saturates first (Fig. 3c).
//   * `num_shards` *shard* processes store the actual graph partitions and
//     apply validated operations (vertices partitioned by hash; an edge
//     lives on its source's shard).
//   * transactions batch `k` stream events ("1 evt/tx" vs "10 evts/tx" in
//     the paper); batching amortizes the timestamper's fixed per-tx cost.
//   * backpressure: the timestamper's admission queue is bounded; when it
//     is full, TrySubmit refuses and the client must retry later.
#ifndef GRAPHTIDES_SUT_WEAVERLITE_WEAVERLITE_H_
#define GRAPHTIDES_SUT_WEAVERLITE_WEAVERLITE_H_

#include <memory>
#include <vector>

#include "common/clock.h"
#include "graph/graph.h"
#include "harness/evaluation_level.h"
#include "sim/network.h"
#include "sim/process.h"
#include "sim/queue.h"
#include "sim/simulator.h"
#include "stream/event.h"
#include "stream/validator.h"

namespace graphtides {

struct WeaverLiteOptions {
  size_t num_shards = 2;
  /// Fixed timestamper cost per transaction (ordering + 2PC bookkeeping).
  Duration timestamper_cost_per_tx = Duration::FromMicros(900);
  /// Timestamper cost per contained operation (precondition validation).
  Duration timestamper_cost_per_op = Duration::FromMicros(25);
  /// Shard cost to apply one operation.
  Duration shard_cost_per_op = Duration::FromMicros(80);
  /// Bounded admission queue (transactions) — the backpressure point.
  size_t admission_queue_capacity = 64;
  /// Timestamper -> shard link.
  SimLinkOptions shard_link;
  /// CPU accounting bin.
  Duration utilization_bin = Duration::FromSeconds(1.0);
};

/// \brief The simulated store. All methods must be called from simulator
/// callbacks (single-threaded virtual time).
class WeaverLite : public SutMetricsSource {
 public:
  WeaverLite(Simulator* sim, WeaverLiteOptions options);

  /// \brief Submits one transaction (a batch of stream events).
  ///
  /// Returns false when the admission queue is full (backpressure); the
  /// caller owns retry policy. Accepted transactions are timestamped,
  /// validated, and applied asynchronously in simulator time.
  bool TrySubmit(std::vector<Event> transaction);

  /// Registers a callback run whenever a transaction finishes committing
  /// (used by clients to resubmit after backpressure).
  void SetOnTransactionDone(Simulator::Callback cb) {
    on_tx_done_ = std::move(cb);
  }

  // --- Observable state --------------------------------------------------

  uint64_t transactions_committed() const { return tx_committed_; }
  /// Events applied by shards (the paper's "events processed" metric).
  uint64_t events_applied() const { return events_applied_; }
  /// Operations rejected by validation (faulty streams).
  uint64_t ops_rejected() const { return ops_rejected_; }
  size_t admission_queue_length() const { return admission_.size(); }
  bool AdmissionFull() const { return admission_.Full(); }
  /// Virtual time of the most recent shard apply.
  Timestamp last_apply_at() const { return last_apply_at_; }

  const SimProcess& timestamper() const { return *timestamper_; }
  const SimProcess& shard(size_t i) const { return *shards_[i]; }
  size_t num_shards() const { return shards_.size(); }

  /// The stored graph partition of shard i.
  const Graph& shard_graph(size_t i) const { return shard_graphs_[i]; }
  /// Total stored vertices/edges across shards.
  size_t TotalVertices() const;
  size_t TotalEdges() const;

  /// Level-1 metrics interface.
  std::vector<std::pair<std::string, double>> CollectMetrics() const override;

 private:
  size_t ShardOf(VertexId v) const { return v % shards_.size(); }
  void PumpTimestamper();
  void ApplyOnShard(size_t shard_index, const Event& event);

  Simulator* sim_;
  WeaverLiteOptions options_;
  std::unique_ptr<SimProcess> timestamper_;
  std::vector<std::unique_ptr<SimProcess>> shards_;
  std::vector<std::unique_ptr<SimLink>> shard_links_;
  std::vector<Graph> shard_graphs_;

  SimQueue<std::vector<Event>> admission_;
  bool timestamper_pumping_ = false;
  StreamValidator global_topology_;  // the timestamper's validation state

  uint64_t tx_committed_ = 0;
  uint64_t events_applied_ = 0;
  uint64_t ops_rejected_ = 0;
  Timestamp last_apply_at_;
  Simulator::Callback on_tx_done_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_SUT_WEAVERLITE_WEAVERLITE_H_
