#include "sut/weaverlite/experiment.h"

#include <deque>
#include <memory>

#include "harness/metrics_logger.h"
#include "sim/simulator.h"
#include "sim/virtual_replayer.h"

namespace graphtides {

namespace {

/// Client process: batches incoming events into transactions and submits
/// them, retrying when the store pushes back.
class WeaverClient {
 public:
  WeaverClient(WeaverLite* store, size_t events_per_tx)
      : store_(store), events_per_tx_(events_per_tx) {}

  void OnEvent(const Event& event) {
    ++events_offered_;
    batch_.push_back(event);
    if (batch_.size() >= events_per_tx_) {
      ready_.push_back(std::move(batch_));
      batch_.clear();
    }
    Drain();
  }

  /// Flushes a trailing partial batch at end of stream.
  void Flush() {
    if (!batch_.empty()) {
      ready_.push_back(std::move(batch_));
      batch_.clear();
    }
    Drain();
  }

  /// Submits as many ready transactions as the store admits.
  void Drain() {
    while (!ready_.empty()) {
      if (!store_->TrySubmit(ready_.front())) return;  // backpressure
      ready_.pop_front();
    }
  }

  bool Idle() const { return batch_.empty() && ready_.empty(); }
  uint64_t events_offered() const { return events_offered_; }
  size_t backlog_transactions() const { return ready_.size(); }

 private:
  WeaverLite* store_;
  size_t events_per_tx_;
  std::vector<Event> batch_;
  std::deque<std::vector<Event>> ready_;
  uint64_t events_offered_ = 0;
};

}  // namespace

Result<WeaverExperimentResult> RunWeaverExperiment(
    const std::vector<Event>& stream, const WeaverExperimentConfig& config) {
  if (config.events_per_tx == 0) {
    return Status::InvalidArgument("events_per_tx must be >= 1");
  }
  Simulator sim;
  WeaverLiteOptions weaver_options = config.weaver;
  weaver_options.utilization_bin = config.sample_interval;
  WeaverLite store(&sim, weaver_options);
  WeaverClient client(&store, config.events_per_tx);
  store.SetOnTransactionDone([&client] { client.Drain(); });

  VirtualReplayerOptions replay_options;
  replay_options.base_rate_eps = config.target_rate_eps;
  VirtualReplayer replayer(&sim, replay_options);

  MetricsLogger replayer_log("replayer", sim.clock());
  MetricsLogger client_log("client", sim.clock());

  if (config.client_backlog_limit_tx > 0) {
    replayer.SetGate([&client, &config] {
      return client.backlog_transactions() < config.client_backlog_limit_tx;
    });
  }
  bool stream_done = false;
  replayer.Start(
      stream,
      [&](const Event& event, size_t) { client.OnEvent(event); },
      [&](const std::string& label) {
        replayer_log.LogText("marker", 1.0, label);
      },
      [&] {
        stream_done = true;
        client.Flush();
      });

  // Periodic sampler: processed-events delta, queue lengths.
  const Timestamp t0 = sim.Now();
  const Timestamp deadline = t0 + config.max_duration;
  uint64_t last_applied = 0;
  bool drained_seen = false;
  Timestamp drained_at;
  std::vector<double> processed;
  // Self-rescheduling sampler; stops once the system is fully drained or
  // the deadline passed (otherwise RunUntilIdle would never return).
  std::function<void()> sample = [&]() {
    const uint64_t applied = store.events_applied();
    processed.push_back(static_cast<double>(applied - last_applied));
    client_log.Log("events_applied_delta",
                   static_cast<double>(applied - last_applied));
    client_log.Log("admission_queue",
                   static_cast<double>(store.admission_queue_length()));
    client_log.Log("client_backlog_tx",
                   static_cast<double>(client.backlog_transactions()));
    last_applied = applied;
    // The sampler itself is executing (not pending); zero pending work
    // means emission, timestamping, routing, and shard applies are done.
    const bool drained = stream_done && client.Idle() &&
                         store.admission_queue_length() == 0 &&
                         sim.pending() == 0;
    if (drained && !drained_seen) {
      drained_seen = true;
      drained_at = sim.Now();
    }
    if (drained || sim.Now() >= deadline) return;
    sim.ScheduleAfter(config.sample_interval, sample);
  };
  sim.ScheduleAfter(config.sample_interval, sample);

  sim.RunUntil(deadline);

  WeaverExperimentResult result;
  result.events_offered = client.events_offered();
  result.events_applied = store.events_applied();
  result.transactions_committed = store.transactions_committed();
  result.drained = drained_seen;
  // Over the *active* window: up to the last apply when fully drained.
  result.virtual_duration =
      (drained_seen ? store.last_apply_at() : sim.Now()) - t0;
  result.processed_per_interval = std::move(processed);
  result.timestamper_utilization =
      store.timestamper().UtilizationSeries(sim.Now());
  for (size_t s = 0; s < store.num_shards(); ++s) {
    result.shard_utilization.push_back(
        store.shard(s).UtilizationSeries(sim.Now()));
  }

  // Fold per-process CPU into the result log.
  MetricsLogger ts_log("weaver-timestamper", sim.clock());
  for (size_t i = 0; i < result.timestamper_utilization.size(); ++i) {
    ts_log.LogAt(t0 + config.sample_interval * static_cast<int64_t>(i), "cpu",
                 result.timestamper_utilization[i] * 100.0);
  }
  std::vector<std::unique_ptr<MetricsLogger>> shard_logs;
  for (size_t s = 0; s < result.shard_utilization.size(); ++s) {
    auto log = std::make_unique<MetricsLogger>(
        "weaver-shard-" + std::to_string(s), sim.clock());
    for (size_t i = 0; i < result.shard_utilization[s].size(); ++i) {
      log->LogAt(t0 + config.sample_interval * static_cast<int64_t>(i), "cpu",
                 result.shard_utilization[s][i] * 100.0);
    }
    shard_logs.push_back(std::move(log));
  }

  LogCollector collector;
  collector.AddLogger(&replayer_log);
  collector.AddLogger(&client_log);
  collector.AddLogger(&ts_log);
  for (const auto& log : shard_logs) collector.AddLogger(log.get());
  result.log = collector.Collect();
  return result;
}

}  // namespace graphtides
