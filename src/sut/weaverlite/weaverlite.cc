#include "sut/weaverlite/weaverlite.h"

namespace graphtides {

WeaverLite::WeaverLite(Simulator* sim, WeaverLiteOptions options)
    : sim_(sim),
      options_(options),
      admission_(options.admission_queue_capacity) {
  timestamper_ = std::make_unique<SimProcess>(sim, "weaver-timestamper",
                                              options_.utilization_bin);
  shard_graphs_.resize(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<SimProcess>(
        sim, "weaver-shard-" + std::to_string(i), options_.utilization_bin));
    shard_links_.push_back(std::make_unique<SimLink>(
        sim, "ts->shard" + std::to_string(i), options_.shard_link));
  }
}

bool WeaverLite::TrySubmit(std::vector<Event> transaction) {
  if (!admission_.Push(std::move(transaction))) return false;
  PumpTimestamper();
  return true;
}

void WeaverLite::PumpTimestamper() {
  if (timestamper_pumping_) return;
  std::optional<std::vector<Event>> tx = admission_.Pop();
  if (!tx.has_value()) return;
  timestamper_pumping_ = true;

  const Duration cost =
      options_.timestamper_cost_per_tx +
      Duration::FromNanos(options_.timestamper_cost_per_op.nanos() *
                          static_cast<int64_t>(tx->size()));
  // Move the transaction into the completion callback.
  auto tx_events = std::make_shared<std::vector<Event>>(std::move(*tx));
  timestamper_->Submit(cost, [this, tx_events] {
    // Timestamp assigned; validate and route each operation.
    for (const Event& event : *tx_events) {
      if (!IsGraphOp(event.type)) continue;
      if (!global_topology_.Check(event).ok()) {
        ++ops_rejected_;
        continue;
      }
      if (event.type == EventType::kRemoveVertex) {
        // Fan out: every shard may hold edges touching the vertex.
        for (size_t s = 0; s < shards_.size(); ++s) {
          const bool primary = (s == ShardOf(event.vertex));
          Event copy = event;
          shard_links_[s]->Send(
              64, [this, s, copy, primary] {
                shards_[s]->Submit(options_.shard_cost_per_op,
                                   [this, s, copy, primary] {
                                     ApplyOnShard(s, copy);
                                     last_apply_at_ = sim_->Now();
                                     if (primary) ++events_applied_;
                                   });
              });
        }
        continue;
      }
      const size_t s = IsVertexOp(event.type) ? ShardOf(event.vertex)
                                              : ShardOf(event.edge.src);
      const uint64_t bytes = 64 + event.payload.size();
      Event copy = event;
      shard_links_[s]->Send(bytes, [this, s, copy] {
        shards_[s]->Submit(options_.shard_cost_per_op, [this, s, copy] {
          ApplyOnShard(s, copy);
          last_apply_at_ = sim_->Now();
          ++events_applied_;
        });
      });
    }
    ++tx_committed_;
    timestamper_pumping_ = false;
    PumpTimestamper();
    if (on_tx_done_) on_tx_done_();
  });
}

void WeaverLite::ApplyOnShard(size_t shard_index, const Event& event) {
  Graph& graph = shard_graphs_[shard_index];
  switch (event.type) {
    case EventType::kAddVertex:
      (void)graph.AddVertex(event.vertex, event.payload);
      break;
    case EventType::kRemoveVertex:
      // Present either as owned vertex or as a ghost; either way removal
      // cascades the locally stored incident edges.
      if (graph.HasVertex(event.vertex)) {
        (void)graph.RemoveVertex(event.vertex);
      }
      break;
    case EventType::kUpdateVertex:
      if (graph.HasVertex(event.vertex)) {
        (void)graph.UpdateVertexState(event.vertex, event.payload);
      } else {
        // The owner shard must know the vertex; validation guaranteed
        // existence, so absence means it was hashed here as a ghost-only
        // update. Materialize it.
        (void)graph.AddVertex(event.vertex, event.payload);
      }
      break;
    case EventType::kAddEdge: {
      // The destination may live on another shard: materialize a ghost.
      if (!graph.HasVertex(event.edge.src)) {
        (void)graph.AddVertex(event.edge.src, "");
      }
      if (!graph.HasVertex(event.edge.dst)) {
        (void)graph.AddVertex(event.edge.dst, "");
      }
      (void)graph.AddEdge(event.edge.src, event.edge.dst, event.payload);
      break;
    }
    case EventType::kRemoveEdge:
      if (graph.HasEdge(event.edge.src, event.edge.dst)) {
        (void)graph.RemoveEdge(event.edge.src, event.edge.dst);
      }
      break;
    case EventType::kUpdateEdge:
      if (graph.HasEdge(event.edge.src, event.edge.dst)) {
        (void)graph.UpdateEdgeState(event.edge.src, event.edge.dst,
                                    event.payload);
      }
      break;
    default:
      break;
  }
}

size_t WeaverLite::TotalVertices() const {
  // Ghost vertices would double-count; report the validator's global view,
  // which is authoritative.
  return global_topology_.num_vertices();
}

size_t WeaverLite::TotalEdges() const { return global_topology_.num_edges(); }

std::vector<std::pair<std::string, double>> WeaverLite::CollectMetrics()
    const {
  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("transactions_committed",
                       static_cast<double>(tx_committed_));
  metrics.emplace_back("events_applied", static_cast<double>(events_applied_));
  metrics.emplace_back("ops_rejected", static_cast<double>(ops_rejected_));
  metrics.emplace_back("admission_queue_length",
                       static_cast<double>(admission_.size()));
  metrics.emplace_back("vertices", static_cast<double>(TotalVertices()));
  metrics.emplace_back("edges", static_cast<double>(TotalEdges()));
  return metrics;
}

}  // namespace graphtides
