// Evaluation levels (§4): Level 0 treats the SUT as a black box (external
// process monitoring only), Level 1 adds a native metrics interface,
// Level 2 allows in-source instrumentation hooks.
#ifndef GRAPHTIDES_HARNESS_EVALUATION_LEVEL_H_
#define GRAPHTIDES_HARNESS_EVALUATION_LEVEL_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace graphtides {

enum class EvaluationLevel : int {
  /// Black box: stream in, results out, external process metrics only.
  kLevel0 = 0,
  /// The SUT exposes a native metrics interface (SutMetricsSource).
  kLevel1 = 1,
  /// The analyst can inject measurement logic into the SUT (hooks).
  kLevel2 = 2,
};

/// \brief Level-1 capability: a SUT-provided metrics snapshot.
class SutMetricsSource {
 public:
  virtual ~SutMetricsSource() = default;

  /// Current values of the SUT's native metrics (name, value).
  virtual std::vector<std::pair<std::string, double>> CollectMetrics()
      const = 0;
};

/// \brief Level-2 capability: named instrumentation points the analyst can
/// attach probes to. The SUT invokes registered probes with a measurement
/// value at internally chosen moments.
class InstrumentationHooks {
 public:
  using Probe = std::function<void(double value)>;

  void Attach(const std::string& point, Probe probe) {
    probes_.emplace_back(point, std::move(probe));
  }

  /// Called by the SUT at an instrumentation point.
  void Fire(const std::string& point, double value) const {
    for (const auto& [name, probe] : probes_) {
      if (name == point) probe(value);
    }
  }

  bool HasProbe(const std::string& point) const {
    for (const auto& [name, probe] : probes_) {
      if (name == point) return true;
    }
    return false;
  }

 private:
  std::vector<std::pair<std::string, Probe>> probes_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_EVALUATION_LEVEL_H_
