#include "harness/run_watchdog.h"

#include <cassert>
#include <chrono>
#include <utility>

namespace graphtides {

void RunWatchdog::Arm(ProgressProbe probe, HangFn on_hang) {
  assert(!thread_.joinable() && "RunWatchdog armed twice without Disarm");
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  fired_.store(false, std::memory_order_release);
  thread_ = std::thread([this, probe = std::move(probe),
                         on_hang = std::move(on_hang)]() mutable {
    Watch(std::move(probe), std::move(on_hang));
  });
}

void RunWatchdog::Disarm() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void RunWatchdog::Watch(ProgressProbe probe, HangFn on_hang) {
  MonotonicClock clock;
  uint64_t last = probe();
  last_progress_.store(last, std::memory_order_relaxed);
  Timestamp last_change = clock.Now();

  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock,
                 std::chrono::nanoseconds(options_.poll_interval.nanos()),
                 [this] { return stop_; });
    if (stop_) return;
    // Sample outside the lock: probes may be arbitrarily slow and must not
    // delay Disarm.
    lock.unlock();
    const uint64_t current = probe();
    const Timestamp now = clock.Now();
    bool hang = false;
    if (current != last) {
      last = current;
      last_progress_.store(last, std::memory_order_relaxed);
      last_change = now;
    } else if (now - last_change >= options_.stall_deadline) {
      hang = true;
    }
    if (hang) {
      fired_.store(true, std::memory_order_release);
      if (on_hang) on_hang(last, now - last_change);
      // One shot: stay alive but passive until Disarm, so `fired` and
      // `last_progress` remain observable.
      lock.lock();
      cv_.wait(lock, [this] { return stop_; });
      return;
    }
    lock.lock();
  }
}

}  // namespace graphtides
