#include "harness/process_monitor.h"

#include <unistd.h>

#include <cstdio>
#include <string>

#include "common/string_util.h"

namespace graphtides {

namespace {

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string content;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return content;
}

}  // namespace

ProcessMonitor::ProcessMonitor(pid_t pid)
    : pid_(pid), ticks_per_second_(::sysconf(_SC_CLK_TCK)) {
  if (ticks_per_second_ <= 0) ticks_per_second_ = 100;
}

ProcessMonitor ProcessMonitor::Self() { return ProcessMonitor(::getpid()); }

Result<ProcessSample> ProcessMonitor::Sample() {
  const std::string base = "/proc/" + std::to_string(pid_);
  GT_ASSIGN_OR_RETURN(const std::string stat, ReadWholeFile(base + "/stat"));

  // /proc/<pid>/stat: pid (comm) state ppid ... the comm field may contain
  // spaces and parentheses; fields after the *last* ')' are well-formed.
  const size_t close = stat.rfind(')');
  if (close == std::string::npos) {
    return Status::ParseError("malformed " + base + "/stat");
  }
  const auto fields = SplitString(TrimWhitespace(
      std::string_view(stat).substr(close + 1)), ' ');
  // After ')': field[0] = state (3rd overall). utime is overall field 14,
  // stime 15, num_threads 20, rss 24 -> offsets 11, 12, 17, 21 here.
  if (fields.size() < 22) {
    return Status::ParseError("short " + base + "/stat");
  }
  GT_ASSIGN_OR_RETURN(const uint64_t utime, ParseUint64(fields[11]));
  GT_ASSIGN_OR_RETURN(const uint64_t stime, ParseUint64(fields[12]));
  GT_ASSIGN_OR_RETURN(const uint64_t threads, ParseUint64(fields[17]));
  GT_ASSIGN_OR_RETURN(const uint64_t rss_pages, ParseUint64(fields[21]));

  ProcessSample sample;
  sample.time = clock_.Now();
  sample.cpu_ticks = utime + stime;
  sample.num_threads = threads;
  sample.rss_bytes =
      rss_pages * static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));

  if (has_baseline_) {
    const double elapsed = (sample.time - last_time_).seconds();
    if (elapsed > 0) {
      const double tick_delta =
          static_cast<double>(sample.cpu_ticks - last_ticks_);
      sample.cpu_percent = 100.0 * tick_delta /
                           static_cast<double>(ticks_per_second_) / elapsed;
    }
  }
  has_baseline_ = true;
  last_ticks_ = sample.cpu_ticks;
  last_time_ = sample.time;
  return sample;
}

PeriodicProcessLogger::PeriodicProcessLogger(pid_t pid, MetricsLogger* logger,
                                             Duration interval)
    : monitor_(pid), logger_(logger) {
  thread_ = std::thread([this, interval] { Run(interval); });
}

PeriodicProcessLogger::~PeriodicProcessLogger() { Stop(); }

void PeriodicProcessLogger::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

void PeriodicProcessLogger::Run(Duration interval) {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto sample = monitor_.Sample();
    if (sample.ok()) {
      logger_->Log("cpu", sample->cpu_percent);
      logger_->Log("rss", static_cast<double>(sample->rss_bytes));
      samples_.fetch_add(1, std::memory_order_relaxed);
    }
    // Sleep in small slices so Stop() is responsive.
    const int64_t slices = std::max<int64_t>(1, interval.millis() / 10);
    const auto slice = std::chrono::milliseconds(
        std::max<int64_t>(1, interval.millis() / slices));
    for (int64_t i = 0; i < slices; ++i) {
      if (stop_.load(std::memory_order_relaxed)) return;
      std::this_thread::sleep_for(slice);
    }
  }
}

}  // namespace graphtides
