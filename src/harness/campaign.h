// CampaignSupervisor: failure-aware driver for long unattended experiment
// campaigns (§4.5 demands n ≥ 30 runs per configuration; one hung or
// crashed SUT must neither stall the campaign nor poison its confidence
// intervals).
//
// Around every run attempt the supervisor arms a RunWatchdog fed by the
// run's progress heartbeat; a stalled attempt is cancelled through a
// CancellationToken and counted as *hung*. Failed or hung attempts are
// retried with fresh derived seeds up to a per-slot budget; configurations
// whose slots repeatedly exhaust the budget are *quarantined* (remaining
// slots skipped). Metrics are aggregated over completed runs only, and the
// report states the effective n per cell next to the requested n.
#ifndef GRAPHTIDES_HARNESS_CAMPAIGN_H_
#define GRAPHTIDES_HARNESS_CAMPAIGN_H_

#include <functional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "harness/experiment.h"
#include "harness/run_watchdog.h"

namespace graphtides {

/// \brief Per-attempt context handed to a supervised run function.
///
/// The run must (a) poll `cancel` at safe boundaries and return
/// Status::Cancelled promptly once fired, and (b) call `report_progress`
/// with a monotonically non-decreasing value whenever it advances — that
/// heartbeat is what the watchdog derives liveness from.
struct RunContext {
  /// Seed for this attempt. Retries get fresh derived seeds so a
  /// seed-correlated failure is not replayed verbatim.
  uint64_t seed = 0;
  /// Config index within the campaign's enumeration.
  size_t config_index = 0;
  /// Run slot within the config (0 .. repetitions-1).
  size_t run_index = 0;
  /// 0 for the first try, 1.. for retries.
  size_t attempt = 0;
  /// True when this attempt should resume the slot's previous attempt
  /// from its last good checkpoint instead of starting fresh (set for
  /// retries under CampaignOptions::auto_resume; the seed is then the
  /// attempt-0 seed, so the resumed run continues the same logical run).
  bool resume = false;
  /// Cooperative cancellation; fired by the watchdog on stall.
  const CancellationToken* cancel = nullptr;
  /// Progress heartbeat (monotonically non-decreasing).
  std::function<void(uint64_t)> report_progress;
};

using SupervisedRunFn =
    std::function<Result<RunOutcome>(const ExperimentConfig&,
                                     const RunContext&)>;

/// Reserved RunOutcome key: a run that drives a distributed fleet reports
/// the number of shard-range reassignments here. The supervisor routes it
/// into RunAccounting/CampaignReport instead of the metric aggregates (it
/// is recovery accounting, not a measurement to fit a CI around).
inline constexpr std::string_view kReassignmentsKey = "reassignments";

struct CampaignOptions {
  /// Repetitions, confidence level, and base seed (§4.5).
  ExperimentOptions experiment;
  /// Extra attempts per run slot after the first (0 = never retry).
  size_t retry_budget = 2;
  /// Quarantine a config after this many run slots exhausted their
  /// attempts (counted per config; 1 = first exhausted slot quarantines).
  size_t quarantine_after = 1;
  /// When true, retries of a crashed/hung attempt are *resumes*: they
  /// reuse the attempt-0 seed and carry RunContext::resume so the run
  /// function restarts from its last good checkpoint. Downtime from the
  /// failure to the resumed attempt's first progress heartbeat is
  /// measured into RunAccounting (MTTR).
  bool auto_resume = false;
  /// Watchdog: wall-clock no-progress deadline and poll cadence.
  WatchdogOptions watchdog;
};

/// \brief One attempt's fate, for the campaign journal.
enum class AttemptOutcome { kCompleted, kFailed, kHung };

std::string_view AttemptOutcomeName(AttemptOutcome outcome);

/// \brief Journal entry: one attempt of one run slot.
struct AttemptRecord {
  size_t config_index = 0;
  size_t run_index = 0;
  size_t attempt = 0;
  uint64_t seed = 0;
  /// True when the attempt resumed from a checkpoint (auto_resume).
  bool resume = false;
  AttemptOutcome outcome = AttemptOutcome::kCompleted;
  /// Error text for failed/hung attempts.
  std::string detail;
  /// Wall-clock duration of the attempt.
  Duration elapsed;
};

/// \brief Everything a finished campaign reports.
struct CampaignReport {
  /// Per-config aggregates; CIs computed over completed runs only.
  std::vector<ConfigResult> results;
  /// Chronological journal of every attempt (completed, failed, hung).
  std::vector<AttemptRecord> attempts;

  size_t total_completed = 0;
  size_t total_failed = 0;
  size_t total_hung = 0;
  size_t total_retried = 0;
  /// Slots recovered by an auto-resumed attempt (subset of completed).
  size_t total_resumed = 0;
  /// Measured recoveries and their summed downtime (campaign MTTR =
  /// total_downtime_s / total_recoveries).
  size_t total_recoveries = 0;
  double total_downtime_s = 0.0;
  /// Shard-range reassignments reported by runs via kReassignmentsKey.
  uint64_t total_reassignments = 0;
  size_t quarantined_configs = 0;
};

/// \brief Derives the seed for (config, run, attempt). Attempt 0 matches
/// ExperimentRunner's seed schedule exactly, so a fault-free supervised
/// campaign reproduces an unsupervised one run for run.
uint64_t CampaignSeed(uint64_t base_seed, size_t config_index,
                      size_t run_index, size_t attempt);

/// \brief Runs a full factor sweep under supervision.
///
/// Never aborts on individual run failures; returns an error only for
/// structural problems (no configs, no run function).
class CampaignSupervisor {
 public:
  CampaignSupervisor(std::vector<Factor> factors, CampaignOptions options)
      : factors_(std::move(factors)), options_(options) {}

  Result<CampaignReport> Run(const SupervisedRunFn& run) const;

 private:
  std::vector<Factor> factors_;
  CampaignOptions options_;
};

/// \brief Renders the per-config accounting table: requested vs effective
/// n, completed/retried/hung/failed counts, quarantine state, and each
/// metric's mean ± CI over the completed runs.
std::string FormatCampaignReport(const CampaignReport& report);

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_CAMPAIGN_H_
