#include "harness/log_record.h"

#include <cstdio>

#include "common/csv.h"
#include "common/string_util.h"

namespace graphtides {

std::string LogRecord::ToCsvLine() const {
  char value_buf[64];
  std::snprintf(value_buf, sizeof(value_buf), "%.9g", value);
  return FormatCsvLine(
      {std::to_string(time.nanos()), source, metric, value_buf, text});
}

Result<LogRecord> LogRecord::FromCsvLine(std::string_view line) {
  GT_ASSIGN_OR_RETURN(const std::vector<std::string> fields,
                      ParseCsvLine(line));
  if (fields.size() != 5) {
    return Status::ParseError("log record needs 5 fields, got " +
                              std::to_string(fields.size()));
  }
  LogRecord record;
  GT_ASSIGN_OR_RETURN(const int64_t ns, ParseInt64(fields[0]));
  record.time = Timestamp(ns);
  record.source = fields[1];
  record.metric = fields[2];
  GT_ASSIGN_OR_RETURN(record.value, ParseDouble(fields[3]));
  record.text = fields[4];
  return record;
}

}  // namespace graphtides
