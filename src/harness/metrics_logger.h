// Runtime metrics loggers (Fig. 2): each logger instance gathers
// timestamped records from one source — a process monitor, the replayer,
// a query client — into a local log that the collector later merges.
#ifndef GRAPHTIDES_HARNESS_METRICS_LOGGER_H_
#define GRAPHTIDES_HARNESS_METRICS_LOGGER_H_

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "harness/log_record.h"

namespace graphtides {

/// \brief Thread-safe per-source record log.
///
/// The clock is injected: real experiments pass a WallClock, simulated
/// experiments pass the simulator's virtual clock, and merged analyses stay
/// consistent either way.
class MetricsLogger {
 public:
  MetricsLogger(std::string source, const Clock* clock)
      : source_(std::move(source)), clock_(clock) {}

  const std::string& source() const { return source_; }

  /// Records metric=value at the current clock time. Names and annotations
  /// are taken as string_view so hot callers logging literals or borrowed
  /// buffers (telemetry spans, zero-copy parsers) pay exactly one copy —
  /// the one into the stored record.
  void Log(std::string_view metric, double value);
  /// Records an annotated value (e.g. marker label, query result text).
  void LogText(std::string_view metric, double value, std::string_view text);
  /// Records with an explicit timestamp (e.g. replaying a marker log).
  void LogAt(Timestamp time, std::string_view metric, double value,
             std::string_view text = {});

  /// Snapshot of all records so far.
  std::vector<LogRecord> Records() const;
  size_t size() const;
  void Clear();

 private:
  std::string source_;
  const Clock* clock_;
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_METRICS_LOGGER_H_
