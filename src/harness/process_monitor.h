// Level-0 process monitoring (§4.3: "the analyst relies on agnostic
// profiling tools to periodically measure the graph system processes (e.g.,
// perf, pidstat ...). For each process, CPU load, memory usage ... have to
// be logged"). ProcessMonitor reads /proc/<pid>, computing CPU utilization
// between consecutive samples; PeriodicProcessLogger drives it on a
// background thread into a MetricsLogger — the C++ equivalent of the
// paper's Python/Node.js runtime metrics logger scripts.
#ifndef GRAPHTIDES_HARNESS_PROCESS_MONITOR_H_
#define GRAPHTIDES_HARNESS_PROCESS_MONITOR_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/clock.h"
#include "common/result.h"
#include "harness/metrics_logger.h"

namespace graphtides {

/// \brief One observation of a process.
struct ProcessSample {
  Timestamp time;
  /// CPU utilization since the previous sample, 0..100 * n_cores.
  /// The first sample reports 0 (no baseline yet).
  double cpu_percent = 0.0;
  /// Resident set size in bytes.
  uint64_t rss_bytes = 0;
  /// Cumulative user+system CPU time in clock ticks (raw).
  uint64_t cpu_ticks = 0;
  /// Number of threads.
  uint64_t num_threads = 0;
};

/// \brief Samples /proc/<pid>/stat and /proc/<pid>/statm.
class ProcessMonitor {
 public:
  /// Monitors an arbitrary process (must be readable under /proc).
  explicit ProcessMonitor(pid_t pid);
  /// Monitors the calling process.
  static ProcessMonitor Self();

  pid_t pid() const { return pid_; }

  /// Takes one sample; IoError if the process vanished.
  Result<ProcessSample> Sample();

 private:
  pid_t pid_;
  MonotonicClock clock_;
  bool has_baseline_ = false;
  uint64_t last_ticks_ = 0;
  Timestamp last_time_;
  long ticks_per_second_;
};

/// \brief Background sampler: logs "cpu" (percent) and "rss" (bytes) for a
/// process into a MetricsLogger at a fixed interval until stopped.
class PeriodicProcessLogger {
 public:
  PeriodicProcessLogger(pid_t pid, MetricsLogger* logger, Duration interval);
  ~PeriodicProcessLogger();

  PeriodicProcessLogger(const PeriodicProcessLogger&) = delete;
  PeriodicProcessLogger& operator=(const PeriodicProcessLogger&) = delete;

  void Stop();

  size_t samples_taken() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void Run(Duration interval);

  ProcessMonitor monitor_;
  MetricsLogger* logger_;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> samples_{0};
  std::thread thread_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_PROCESS_MONITOR_H_
