#include "harness/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace graphtides {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      os << cells[i];
      if (i + 1 < cells.size()) {
        os << std::string(widths[i] - cells[i].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string SectionHeader(const std::string& title) {
  return "\n=== " + title + " ===\n";
}

std::string PercentileTable(
    const std::string& label_header,
    const std::vector<std::pair<std::string, const LatencyHistogram*>>&
        rows) {
  TextTable table({label_header, "count", "p50 [us]", "p90 [us]", "p99 [us]",
                   "p99.9 [us]", "max [us]"});
  for (const auto& [name, h] : rows) {
    if (h == nullptr || h->empty()) continue;
    table.AddRow({name, std::to_string(h->count()),
                  TextTable::FormatDouble(h->ValueAtQuantileMicros(0.5), 1),
                  TextTable::FormatDouble(h->ValueAtQuantileMicros(0.9), 1),
                  TextTable::FormatDouble(h->ValueAtQuantileMicros(0.99), 1),
                  TextTable::FormatDouble(h->ValueAtQuantileMicros(0.999), 1),
                  TextTable::FormatDouble(
                      static_cast<double>(h->max_nanos()) / 1e3, 1)});
  }
  return table.ToString();
}

std::string ConfigBlock(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  size_t width = 0;
  for (const auto& [key, value] : entries) width = std::max(width, key.size());
  std::ostringstream os;
  for (const auto& [key, value] : entries) {
    os << "  " << key << std::string(width - key.size() + 2, ' ') << value
       << '\n';
  }
  return os.str();
}

}  // namespace graphtides
