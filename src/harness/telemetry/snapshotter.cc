#include "harness/telemetry/snapshotter.h"

#include <chrono>

namespace graphtides {

TelemetrySnapshotter::TelemetrySnapshotter(RunTelemetry* source,
                                           SnapshotterOptions options)
    : source_(source), options_(options) {
  if (options_.period.nanos() <= 0) {
    options_.period = Duration::FromMillis(500);
  }
  // Valid even when Stop() runs without a Start() (aborted setup paths).
  start_time_ = clock_.Now();
}

TelemetrySnapshotter::~TelemetrySnapshotter() { Stop(); }

void TelemetrySnapshotter::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ || stopped_) return;
    started_ = true;
  }
  start_time_ = clock_.Now();
  thread_ = std::thread(&TelemetrySnapshotter::Loop, this);
}

void TelemetrySnapshotter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final record: whatever the periodic ticks missed at the tail.
  Emit();
}

void TelemetrySnapshotter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    const auto wait = std::chrono::nanoseconds(options_.period.nanos());
    if (cv_.wait_for(lock, wait, [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    Emit();
    lock.lock();
  }
}

void TelemetrySnapshotter::Emit() {
  TelemetrySnapshot snap = source_->Snapshot();
  snap.seq = seq_++;
  snap.elapsed_s = (clock_.Now() - start_time_).seconds();
  const double dt = snap.elapsed_s - prev_elapsed_s_;
  const uint64_t de = snap.events - prev_events_;
  snap.events_per_sec = dt > 1e-9 ? static_cast<double>(de) / dt : 0.0;
  prev_events_ = snap.events;
  prev_elapsed_s_ = snap.elapsed_s;
  if (options_.out != nullptr) {
    const std::string line = snap.ToJsonLine();
    std::fwrite(line.data(), 1, line.size(), options_.out);
    std::fputc('\n', options_.out);
    std::fflush(options_.out);
  }
  if (options_.on_snapshot) options_.on_snapshot(snap);
}

}  // namespace graphtides
