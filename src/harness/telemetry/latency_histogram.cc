#include "harness/telemetry/latency_histogram.h"

#include <bit>
#include <limits>

namespace graphtides {

namespace {

constexpr int64_t kMaxTrackable =
    (int64_t{1} << LatencyHistogram::kMaxExponent) - 1;

}  // namespace

size_t LatencyHistogram::BucketIndex(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  if (nanos > kMaxTrackable) nanos = kMaxTrackable;
  const uint64_t v = static_cast<uint64_t>(nanos);
  if (v < kUnitBuckets) return static_cast<size_t>(v);
  // Octave of v is [2^top, 2^(top+1)); its 8 sub-buckets have width
  // 2^(top-3), so (v >> (top-3)) lies in [8, 16).
  const int top = std::bit_width(v) - 1;  // >= 4
  const int shift = top - 3;
  return kUnitBuckets + static_cast<size_t>(top - 4) * kSubBucketsPerOctave +
         static_cast<size_t>((v >> shift) - kSubBucketsPerOctave);
}

int64_t LatencyHistogram::BucketLowNanos(size_t i) {
  if (i < kUnitBuckets) return static_cast<int64_t>(i);
  const int top = static_cast<int>((i - kUnitBuckets) / kSubBucketsPerOctave) + 4;
  const int64_t sub =
      static_cast<int64_t>((i - kUnitBuckets) % kSubBucketsPerOctave);
  return (static_cast<int64_t>(kSubBucketsPerOctave) + sub) << (top - 3);
}

int64_t LatencyHistogram::BucketHighNanos(size_t i) {
  if (i < kUnitBuckets) return static_cast<int64_t>(i) + 1;
  const int top = static_cast<int>((i - kUnitBuckets) / kSubBucketsPerOctave) + 4;
  return BucketLowNanos(i) + (int64_t{1} << (top - 3));
}

void LatencyHistogram::RecordNanos(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  if (nanos > kMaxTrackable) nanos = kMaxTrackable;
  ++counts_[BucketIndex(nanos)];
  if (count_ == 0 || nanos < min_) min_ = nanos;
  if (count_ == 0 || nanos > max_) max_ = nanos;
  ++count_;
  sum_ += static_cast<double>(nanos);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::Reset() { *this = LatencyHistogram(); }

Result<LatencyHistogram> LatencyHistogram::DeltaSince(
    const LatencyHistogram& earlier) const {
  if (earlier.count_ > count_) {
    return Status::InvalidArgument(
        "histogram delta: earlier snapshot has more samples");
  }
  LatencyHistogram delta;
  size_t lo_bucket = kBucketCount;
  size_t hi_bucket = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    if (earlier.counts_[i] > counts_[i]) {
      return Status::InvalidArgument(
          "histogram delta: earlier snapshot is not a prefix (bucket " +
          std::to_string(i) + " shrank)");
    }
    delta.counts_[i] = counts_[i] - earlier.counts_[i];
    if (delta.counts_[i] != 0) {
      if (lo_bucket == kBucketCount) lo_bucket = i;
      hi_bucket = i;
    }
  }
  delta.count_ = count_ - earlier.count_;
  if (delta.count_ > 0) {
    // Exact interval extremes are not recoverable from two cumulative
    // states; bound them by the extreme non-empty delta buckets.
    delta.min_ = BucketLowNanos(lo_bucket);
    delta.max_ = BucketHighNanos(hi_bucket) - 1;
    delta.sum_ = sum_ - earlier.sum_;
    if (delta.sum_ < 0.0) delta.sum_ = 0.0;
  }
  return delta;
}

int64_t LatencyHistogram::ValueAtQuantileNanos(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based (HDR convention: the smallest
  // bucket whose cumulative count covers ceil(q * n)).
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      int64_t mid = (BucketLowNanos(i) + BucketHighNanos(i) - 1) / 2;
      if (mid < min_) mid = min_;
      if (mid > max_) mid = max_;
      return mid;
    }
  }
  return max_;
}

void LatencyHistogram::ForEachNonZero(
    const std::function<void(size_t, uint64_t)>& fn) const {
  for (size_t i = 0; i < kBucketCount; ++i) {
    if (counts_[i] != 0) fn(i, counts_[i]);
  }
}

Result<LatencyHistogram> LatencyHistogram::FromExactState(
    uint64_t count, int64_t min_nanos, int64_t max_nanos, double sum_nanos,
    const std::vector<std::pair<size_t, uint64_t>>& buckets) {
  LatencyHistogram h;
  uint64_t total = 0;
  for (const auto& [index, bucket_count] : buckets) {
    if (index >= kBucketCount) {
      return Status::InvalidArgument("histogram bucket index out of range");
    }
    if (bucket_count > count - total) {  // also catches total overflow
      return Status::InvalidArgument("histogram bucket counts exceed count");
    }
    h.counts_[index] += bucket_count;
    total += bucket_count;
  }
  if (total != count) {
    return Status::InvalidArgument("histogram bucket counts do not sum to " +
                                   std::to_string(count));
  }
  if (count > 0 && min_nanos > max_nanos) {
    return Status::InvalidArgument("histogram min exceeds max");
  }
  h.count_ = count;
  h.min_ = count > 0 ? min_nanos : 0;
  h.max_ = count > 0 ? max_nanos : 0;
  h.sum_ = count > 0 ? sum_nanos : 0.0;
  return h;
}

}  // namespace graphtides
