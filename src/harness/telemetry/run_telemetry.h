// RunTelemetry: the shared hub a live run records into. Each shard lane
// owns one slot (stage histograms + delivery counters + delivered count);
// the snapshotter thread assembles a TelemetrySnapshot from all slots
// without stopping the lanes. Recording is sampled (1-in-N events) and the
// whole facility compiles out under -DGT_TELEMETRY_OFF.
#ifndef GRAPHTIDES_HARNESS_TELEMETRY_RUN_TELEMETRY_H_
#define GRAPHTIDES_HARNESS_TELEMETRY_RUN_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "harness/telemetry/latency_histogram.h"
#include "harness/telemetry/snapshot.h"
#include "harness/telemetry/streaming_marker_correlator.h"

namespace graphtides {

/// True when sampled spans are compiled in (default). Building with
/// -DGT_TELEMETRY_OFF (CMake -DGT_TELEMETRY=OFF) turns every hot-path
/// telemetry block into dead code the optimizer removes.
#ifdef GT_TELEMETRY_OFF
inline constexpr bool kTelemetryCompiled = false;
#else
inline constexpr bool kTelemetryCompiled = true;
#endif

struct RunTelemetryOptions {
  /// Number of shard lanes recording (>= 1).
  size_t shards = 1;
  /// Sample 1 in this many events for per-stage spans. 1 = every event.
  uint32_t sample_every = 64;
  StreamingCorrelatorOptions markers;
};

/// \brief Aggregation hub for one replay run.
///
/// Thread contract: ShouldSample for shard s must be called from a single
/// thread (the lane that owns the shard); RecordStage /
/// UpdateDeliveryCounters are internally locked per slot, AddDelivered is
/// relaxed-atomic, and Snapshot / markers() are safe from any thread.
class RunTelemetry {
 public:
  explicit RunTelemetry(RunTelemetryOptions options = {});

  size_t shards() const { return slots_.size(); }
  uint32_t sample_every() const { return options_.sample_every; }

  /// Per-shard sampling gate: true once every sample_every calls. Decide
  /// once per event (or batch) and record every stage of that event.
  bool ShouldSample(size_t shard) {
    Slot& slot = *slots_[shard];
    return ++slot.sample_counter % options_.sample_every == 0;
  }

  void RecordStage(size_t shard, ReplayStage stage, Duration elapsed);
  void AddDelivered(size_t shard, uint64_t n) {
    slots_[shard]->delivered.fetch_add(n, std::memory_order_relaxed);
  }
  /// Replaces shard's delivery-fault counters with the sink's current
  /// cumulative totals (push from the owning lane; sinks are not safe to
  /// poll cross-thread).
  void UpdateDeliveryCounters(size_t shard, const DeliveryCounters& totals);

  /// Replaces the run-level crash/recovery counters with the supervisor's
  /// current cumulative totals (safe from any thread).
  void UpdateRecoveryCounters(const RecoveryCounters& totals) {
    std::lock_guard<std::mutex> lock(recovery_mu_);
    recovery_ = totals;
  }

  StreamingMarkerCorrelator& markers() { return markers_; }
  const StreamingMarkerCorrelator& markers() const { return markers_; }

  uint64_t TotalDelivered() const;

  /// Stage histograms merged across all shards (exact: bucket counts add).
  std::array<LatencyHistogram, kReplayStageCount> MergedStageHistograms()
      const;

  /// Assembles the progress/stage/marker/sink portion of a snapshot.
  /// seq, elapsed_s, and events_per_sec are the emitter's to fill in.
  TelemetrySnapshot Snapshot() const;

 private:
  struct alignas(64) Slot {
    mutable std::mutex mu;
    std::array<LatencyHistogram, kReplayStageCount> stages;
    DeliveryCounters delivery;
    std::atomic<uint64_t> delivered{0};
    /// Owned by the lane thread; never read by the snapshotter.
    uint32_t sample_counter = 0;
  };

  RunTelemetryOptions options_;
  std::vector<std::unique_ptr<Slot>> slots_;
  StreamingMarkerCorrelator markers_;
  /// Run-level (not per-shard): crashes/resumes happen to the process.
  mutable std::mutex recovery_mu_;
  RecoveryCounters recovery_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_TELEMETRY_RUN_TELEMETRY_H_
