#include "harness/telemetry/streaming_marker_correlator.h"

#include <utility>

namespace graphtides {

StreamingMarkerCorrelator::StreamingMarkerCorrelator(
    StreamingCorrelatorOptions options)
    : options_(options) {
  if (options_.max_pending == 0) options_.max_pending = 1;
}

void StreamingMarkerCorrelator::PopConsumedFrontLocked() {
  while (!fifo_.empty() && !live_.contains(fifo_.front().id)) {
    fifo_.pop_front();
  }
}

void StreamingMarkerCorrelator::EvictLocked(const Pending& p) {
  live_.erase(p.id);
  auto it = by_label_.find(p.label);
  if (it != by_label_.end()) {
    // The evicted entry is this label's oldest live send.
    if (!it->second.empty() && it->second.front() == p.id) {
      it->second.pop_front();
    }
    if (it->second.empty()) by_label_.erase(it);
  }
  ++counts_.unmatched;
  --counts_.pending;
  if (options_.keep_records) unmatched_labels_.push_back(p.label);
}

void StreamingMarkerCorrelator::MarkerSent(std::string_view label,
                                           Timestamp time) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.sent;
  if (counts_.pending >= options_.max_pending) {
    PopConsumedFrontLocked();
    if (!fifo_.empty()) {
      EvictLocked(fifo_.front());
      fifo_.pop_front();
    }
  }
  Pending p;
  p.id = next_id_++;
  p.label = std::string(label);
  p.sent = time;
  by_label_[p.label].push_back(p.id);
  live_.emplace(p.id, time);
  fifo_.push_back(std::move(p));
  ++counts_.pending;
}

bool StreamingMarkerCorrelator::MarkerObserved(std::string_view label,
                                               Timestamp time) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.observed;
  auto it = by_label_.find(std::string(label));
  if (it == by_label_.end() || it->second.empty()) {
    ++counts_.orphan_observations;
    return false;
  }
  const uint64_t id = it->second.front();
  const Timestamp sent = live_.at(id);
  if (sent > time) {
    // Sends are in time order, so every pending send of this label is
    // later than the observation: a stale observation from before the run.
    ++counts_.orphan_observations;
    return false;
  }
  it->second.pop_front();
  if (it->second.empty()) by_label_.erase(it);
  live_.erase(id);
  ++counts_.matched;
  --counts_.pending;
  latency_.Record(time - sent);
  if (options_.keep_records) {
    matched_records_.push_back({std::string(label), sent, time});
  }
  PopConsumedFrontLocked();
  return true;
}

size_t StreamingMarkerCorrelator::ExpireBefore(Timestamp now) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t expired = 0;
  while (true) {
    PopConsumedFrontLocked();
    if (fifo_.empty()) break;
    const Pending& front = fifo_.front();
    if (front.sent + options_.pending_timeout >= now) break;
    EvictLocked(front);
    fifo_.pop_front();
    ++expired;
  }
  return expired;
}

void StreamingMarkerCorrelator::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  while (true) {
    PopConsumedFrontLocked();
    if (fifo_.empty()) break;
    EvictLocked(fifo_.front());
    fifo_.pop_front();
  }
}

CorrelatorCounts StreamingMarkerCorrelator::Counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

LatencyHistogram StreamingMarkerCorrelator::LatencySnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latency_;
}

std::vector<MatchedMarker> StreamingMarkerCorrelator::TakeMatched() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(matched_records_, {});
}

std::vector<std::string> StreamingMarkerCorrelator::TakeUnmatchedLabels() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(unmatched_labels_, {});
}

}  // namespace graphtides
