#include "harness/telemetry/run_telemetry.h"

namespace graphtides {

RunTelemetry::RunTelemetry(RunTelemetryOptions options)
    : options_(options), markers_(options.markers) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.sample_every == 0) options_.sample_every = 1;
  slots_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void RunTelemetry::RecordStage(size_t shard, ReplayStage stage,
                               Duration elapsed) {
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.stages[static_cast<size_t>(stage)].Record(elapsed);
}

void RunTelemetry::UpdateDeliveryCounters(size_t shard,
                                          const DeliveryCounters& totals) {
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.delivery = totals;
}

uint64_t RunTelemetry::TotalDelivered() const {
  uint64_t total = 0;
  for (const auto& slot : slots_) {
    total += slot->delivered.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<LatencyHistogram, kReplayStageCount>
RunTelemetry::MergedStageHistograms() const {
  std::array<LatencyHistogram, kReplayStageCount> merged;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    for (size_t s = 0; s < kReplayStageCount; ++s) {
      merged[s].Merge(slot->stages[s]);
    }
  }
  return merged;
}

TelemetrySnapshot RunTelemetry::Snapshot() const {
  TelemetrySnapshot snap;
  std::array<LatencyHistogram, kReplayStageCount> merged;
  DeliveryCounters sink_totals;
  snap.shard_events.reserve(slots_.size());
  for (const auto& slot : slots_) {
    snap.shard_events.push_back(
        slot->delivered.load(std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(slot->mu);
    for (size_t s = 0; s < kReplayStageCount; ++s) {
      merged[s].Merge(slot->stages[s]);
    }
    sink_totals.retries += slot->delivery.retries;
    sink_totals.reconnects += slot->delivery.reconnects;
    sink_totals.drops_after_retry += slot->delivery.drops_after_retry;
    sink_totals.giveups += slot->delivery.giveups;
    sink_totals.injected_failures += slot->delivery.injected_failures;
    sink_totals.injected_disconnects += slot->delivery.injected_disconnects;
    sink_totals.backoff_s += slot->delivery.backoff_s;
    sink_totals.stall_s += slot->delivery.stall_s;
  }
  for (uint64_t e : snap.shard_events) snap.events += e;
  for (size_t s = 0; s < kReplayStageCount; ++s) {
    snap.stages[s] = StageSummary::FromHistogram(merged[s]);
  }
  snap.sink = sink_totals;

  const CorrelatorCounts mc = markers_.Counts();
  snap.markers.sent = mc.sent;
  snap.markers.matched = mc.matched;
  snap.markers.unmatched = mc.unmatched;
  snap.markers.pending = mc.pending;
  snap.markers.orphans = mc.orphan_observations;
  snap.markers.latency = StageSummary::FromHistogram(markers_.LatencySnapshot());

  {
    std::lock_guard<std::mutex> lock(recovery_mu_);
    snap.recovery = recovery_;
  }

  snap.ComputeImbalance();
  return snap;
}

}  // namespace graphtides
