// Log-bucketed latency histogram (HDR-histogram bucket scheme): a fixed
// ~2.4 KB footprint regardless of sample count, constant-time recording,
// p50/p90/p99/p999 queries, and a lossless Merge() — two histograms over
// disjoint sample sets merge into exactly the histogram of the union, so
// shard lanes, repetitions, and campaign runs aggregate without resampling
// error. This replaces the unbounded `vector<double>` percentile sites
// (§4.5: online latency observability needs constant memory per logger).
#ifndef GRAPHTIDES_HARNESS_TELEMETRY_LATENCY_HISTOGRAM_H_
#define GRAPHTIDES_HARNESS_TELEMETRY_LATENCY_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/result.h"

namespace graphtides {

/// \brief Fixed-size histogram of nanosecond latencies.
///
/// Bucket scheme: values 0..15 ns get exact unit buckets; every further
/// power-of-two octave [2^k, 2^(k+1)) is split into 8 log-linear
/// sub-buckets, giving a bounded relative bucket width of 12.5% (quantile
/// midpoints are within ~6.25% of the true value) across the whole range.
/// Values at or above 2^40 ns (~18.3 min) clamp into the top bucket;
/// negative values clamp to zero. min/max/count/sum are tracked exactly.
///
/// Quantiles are a pure function of the bucket counts, so any partition of
/// a sample set yields identical quantiles after Merge() — the property
/// the shard-determinism tests pin.
class LatencyHistogram {
 public:
  /// Unit buckets for the first octave span [0, 16).
  static constexpr size_t kUnitBuckets = 16;
  /// Log-linear sub-buckets per octave past the unit range.
  static constexpr size_t kSubBucketsPerOctave = 8;
  /// Largest distinguishable exponent: values >= 2^40 ns clamp.
  static constexpr int kMaxExponent = 40;
  static constexpr size_t kBucketCount =
      kUnitBuckets + (kMaxExponent - 4) * kSubBucketsPerOctave;

  void RecordNanos(int64_t nanos);
  void Record(Duration d) { RecordNanos(d.nanos()); }
  void RecordMicros(double us) {
    RecordNanos(static_cast<int64_t>(us * 1e3));
  }
  void RecordSeconds(double s) { RecordNanos(static_cast<int64_t>(s * 1e9)); }

  /// Folds `other` into this histogram (field-wise; lossless).
  void Merge(const LatencyHistogram& other);
  void Reset();

  /// \brief The histogram of samples recorded since `earlier` was
  /// snapshotted from the same cumulative histogram: per-bucket count
  /// subtraction, the windowed-percentile primitive the capacity probe
  /// builds on (interval p99 = DeltaSince(previous snapshot).p99).
  ///
  /// `earlier` must be a prefix of this histogram (no bucket may shrink);
  /// InvalidArgument otherwise. The interval's exact min/max/sum are not
  /// recoverable from two cumulative states, so the delta approximates
  /// them from its extreme non-empty buckets (min/max within one bucket
  /// width, i.e. <= 12.5% relative error) and by sum subtraction —
  /// quantiles, the windowed signal, stay bucket-exact.
  Result<LatencyHistogram> DeltaSince(const LatencyHistogram& earlier) const;

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Exact extremes and mean of the recorded (clamped) values; 0 when
  /// empty.
  int64_t min_nanos() const { return count_ ? min_ : 0; }
  int64_t max_nanos() const { return count_ ? max_ : 0; }
  double mean_nanos() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// \brief Value at quantile q in [0, 1]: the midpoint of the bucket
  /// holding the ceil(q*count)-th sample, clamped into [min, max] so the
  /// tails stay exact. Returns 0 when empty.
  int64_t ValueAtQuantileNanos(double q) const;
  double ValueAtQuantileMicros(double q) const {
    return static_cast<double>(ValueAtQuantileNanos(q)) / 1e3;
  }
  double ValueAtQuantileSeconds(double q) const {
    return static_cast<double>(ValueAtQuantileNanos(q)) / 1e9;
  }

  /// Visits (bucket index, count) for every non-empty bucket, in value
  /// order — sparse serialization and tests.
  void ForEachNonZero(
      const std::function<void(size_t, uint64_t)>& fn) const;

  /// Exact accumulated sum of recorded (clamped) values, nanoseconds —
  /// with ForEachNonZero/min/max/count this is the full internal state,
  /// so a serialized histogram merges losslessly after FromExactState.
  double sum_nanos() const { return sum_; }

  /// \brief Rebuilds a histogram from exact serialized state (inverse of
  /// ForEachNonZero plus the exact-stat accessors). InvalidArgument when
  /// a bucket index is out of range, bucket counts do not sum to `count`,
  /// or the extremes are inconsistent.
  static Result<LatencyHistogram> FromExactState(
      uint64_t count, int64_t min_nanos, int64_t max_nanos, double sum_nanos,
      const std::vector<std::pair<size_t, uint64_t>>& buckets);

  /// Inclusive lower / exclusive upper value bound of bucket `i`.
  static int64_t BucketLowNanos(size_t i);
  static int64_t BucketHighNanos(size_t i);
  /// Bucket index a value lands in (after clamping).
  static size_t BucketIndex(int64_t nanos);

  bool operator==(const LatencyHistogram& other) const {
    return count_ == other.count_ && min_ == other.min_ &&
           max_ == other.max_ && counts_ == other.counts_;
  }

 private:
  std::array<uint64_t, kBucketCount> counts_{};
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_TELEMETRY_LATENCY_HISTOGRAM_H_
