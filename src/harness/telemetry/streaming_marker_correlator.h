// Online marker/watermark correlation (§4.5): matches sent markers with
// their observations while the run is still going, instead of the post-run
// log join. Pending sends live in a bounded FIFO — an observation consumes
// the oldest pending send of its label, sends past the pending budget or
// the timeout become unmatched — so memory stays constant no matter how
// long the run is, and in-flight latency percentiles are available at any
// instant through the embedded LatencyHistogram.
#ifndef GRAPHTIDES_HARNESS_TELEMETRY_STREAMING_MARKER_CORRELATOR_H_
#define GRAPHTIDES_HARNESS_TELEMETRY_STREAMING_MARKER_CORRELATOR_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "harness/telemetry/latency_histogram.h"

namespace graphtides {

struct StreamingCorrelatorOptions {
  /// A pending send older than this at an ExpireBefore() sweep becomes
  /// unmatched (a lost marker is reported during the run, not after it).
  Duration pending_timeout = Duration::FromSeconds(60);
  /// Pending-map bound: a send past this budget evicts the oldest pending
  /// send as unmatched first. Keeps a misbehaving SUT from growing the
  /// correlator without bound.
  size_t max_pending = 1 << 16;
  /// Retain per-marker matched/unmatched records for post-hoc reports
  /// (unbounded — only for offline analysis; live telemetry keeps it off
  /// and reads counters + histogram instead).
  bool keep_records = false;
};

/// \brief One correlated marker retained under keep_records.
struct MatchedMarker {
  std::string label;
  Timestamp sent;
  Timestamp observed;
};

/// \brief Live counters; all cumulative since construction.
struct CorrelatorCounts {
  uint64_t sent = 0;
  uint64_t observed = 0;
  uint64_t matched = 0;
  /// Sends that timed out, were evicted, or were still pending at Finish.
  uint64_t unmatched = 0;
  /// Observations with no pending send at or before their time.
  uint64_t orphan_observations = 0;
  uint64_t pending = 0;
};

/// \brief Thread-safe online sent/observed matcher.
///
/// Matching rule (same as the historic post-run join): an observation at
/// time t matches the oldest pending send of the same label with
/// sent <= t; earlier observations are orphans. Each observation consumes
/// its match, so duplicate sends of one label correlate one-to-one in
/// stream order.
class StreamingMarkerCorrelator {
 public:
  explicit StreamingMarkerCorrelator(StreamingCorrelatorOptions options = {});

  void MarkerSent(std::string_view label, Timestamp time);
  /// True when the observation matched (and consumed) a pending send.
  bool MarkerObserved(std::string_view label, Timestamp time);

  /// Times out pending sends with sent + pending_timeout < now; returns how
  /// many expired. Call periodically (e.g. from the snapshotter tick).
  size_t ExpireBefore(Timestamp now);
  /// End of run: every still-pending send becomes unmatched.
  void Finish();

  CorrelatorCounts Counts() const;
  /// Copy of the matched-latency histogram (mergeable across runs).
  LatencyHistogram LatencySnapshot() const;

  /// Drains retained records (keep_records mode; empty otherwise).
  std::vector<MatchedMarker> TakeMatched();
  std::vector<std::string> TakeUnmatchedLabels();

 private:
  struct Pending {
    uint64_t id = 0;
    std::string label;
    Timestamp sent;
  };

  // All callees below require mu_ held.
  void EvictLocked(const Pending& p);
  void PopConsumedFrontLocked();

  StreamingCorrelatorOptions options_;
  mutable std::mutex mu_;
  /// Pending sends in send order; matched entries are tombstoned via
  /// consumed_ and skipped when they reach the front.
  std::deque<Pending> fifo_;
  /// label -> ids of its live pending sends, oldest first.
  std::unordered_map<std::string, std::deque<uint64_t>> by_label_;
  /// id -> sent time for live pending entries (consumed ids are absent).
  std::unordered_map<uint64_t, Timestamp> live_;
  uint64_t next_id_ = 0;
  CorrelatorCounts counts_;
  LatencyHistogram latency_;
  std::vector<MatchedMarker> matched_records_;
  std::vector<std::string> unmatched_labels_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_TELEMETRY_STREAMING_MARKER_CORRELATOR_H_
