#include "harness/telemetry/snapshot.h"

#include <map>

#include "common/json.h"

namespace graphtides {

namespace {

constexpr std::string_view kSchema = "gt-telemetry-v1";

void AppendNum(std::string* out, double v) { JsonAppendNumber(out, v); }

void AppendNum(std::string* out, uint64_t v) { JsonAppendNumber(out, v); }

void AppendSummary(std::string* out, const StageSummary& s) {
  out->append("{\"count\":");
  AppendNum(out, s.count);
  out->append(",\"p50_us\":");
  AppendNum(out, s.p50_us);
  out->append(",\"p90_us\":");
  AppendNum(out, s.p90_us);
  out->append(",\"p99_us\":");
  AppendNum(out, s.p99_us);
  out->append(",\"p999_us\":");
  AppendNum(out, s.p999_us);
  out->append(",\"max_us\":");
  AppendNum(out, s.max_us);
  out->append("}");
}

// JSON parsing lives in common/json.h (shared with the gt-frontier-v1
// artifact layer); this file only knows the telemetry schema.

Result<double> RequireNumber(const JsonValue& obj, const std::string& key) {
  return JsonRequireNumber(obj, key);
}

double OptionalNumber(const JsonValue& obj, const std::string& key) {
  return JsonOptionalNumber(obj, key);
}

Result<StageSummary> SummaryFromJson(const JsonValue& obj) {
  if (obj.kind != JsonValue::Kind::kObject) {
    return Status::ParseError("stage summary must be an object");
  }
  StageSummary s;
  auto count = RequireNumber(obj, "count");
  GT_RETURN_NOT_OK(count.status());
  s.count = static_cast<uint64_t>(*count);
  s.p50_us = OptionalNumber(obj, "p50_us");
  s.p90_us = OptionalNumber(obj, "p90_us");
  s.p99_us = OptionalNumber(obj, "p99_us");
  s.p999_us = OptionalNumber(obj, "p999_us");
  s.max_us = OptionalNumber(obj, "max_us");
  return s;
}

}  // namespace

std::string_view ReplayStageName(ReplayStage stage) {
  switch (stage) {
    case ReplayStage::kRead: return "read";
    case ReplayStage::kThrottle: return "throttle";
    case ReplayStage::kSerialize: return "serialize";
    case ReplayStage::kDeliver: return "deliver";
    case ReplayStage::kAck: return "ack";
  }
  return "unknown";
}

StageSummary StageSummary::FromHistogram(const LatencyHistogram& h) {
  StageSummary s;
  s.count = h.count();
  if (s.count == 0) return s;
  s.p50_us = h.ValueAtQuantileMicros(0.5);
  s.p90_us = h.ValueAtQuantileMicros(0.9);
  s.p99_us = h.ValueAtQuantileMicros(0.99);
  s.p999_us = h.ValueAtQuantileMicros(0.999);
  s.max_us = static_cast<double>(h.max_nanos()) / 1e3;
  return s;
}

void TelemetrySnapshot::ComputeImbalance() {
  shard_imbalance = 0.0;
  if (shard_events.size() < 2) return;
  uint64_t lo = shard_events[0];
  uint64_t hi = shard_events[0];
  uint64_t total = 0;
  for (uint64_t e : shard_events) {
    lo = std::min(lo, e);
    hi = std::max(hi, e);
    total += e;
  }
  if (total == 0) return;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shard_events.size());
  shard_imbalance = static_cast<double>(hi - lo) / mean;
}

std::string TelemetrySnapshot::ToJsonLine() const {
  std::string out;
  out.reserve(512);
  out.append("{\"schema\":\"").append(kSchema).append("\"");
  out.append(",\"seq\":");
  AppendNum(&out, seq);
  out.append(",\"elapsed_s\":");
  AppendNum(&out, elapsed_s);
  out.append(",\"events\":");
  AppendNum(&out, events);
  out.append(",\"eps\":");
  AppendNum(&out, events_per_sec);
  out.append(",\"shards\":[");
  for (size_t i = 0; i < shard_events.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendNum(&out, shard_events[i]);
  }
  out.append("],\"imbalance\":");
  AppendNum(&out, shard_imbalance);
  bool any_stage = false;
  for (size_t i = 0; i < kReplayStageCount; ++i) {
    if (stages[i].count != 0) any_stage = true;
  }
  if (any_stage) {
    out.append(",\"stages\":{");
    bool first = true;
    for (size_t i = 0; i < kReplayStageCount; ++i) {
      if (stages[i].count == 0) continue;
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      out.append(ReplayStageName(static_cast<ReplayStage>(i)));
      out.append("\":");
      AppendSummary(&out, stages[i]);
    }
    out.push_back('}');
  }
  if (markers.sent != 0 || markers.matched != 0 || markers.unmatched != 0 ||
      markers.orphans != 0) {
    out.append(",\"markers\":{\"sent\":");
    AppendNum(&out, markers.sent);
    out.append(",\"matched\":");
    AppendNum(&out, markers.matched);
    out.append(",\"unmatched\":");
    AppendNum(&out, markers.unmatched);
    out.append(",\"pending\":");
    AppendNum(&out, markers.pending);
    out.append(",\"orphans\":");
    AppendNum(&out, markers.orphans);
    out.append(",\"latency\":");
    AppendSummary(&out, markers.latency);
    out.push_back('}');
  }
  if (sink.any()) {
    out.append(",\"sink\":{\"retries\":");
    AppendNum(&out, sink.retries);
    out.append(",\"reconnects\":");
    AppendNum(&out, sink.reconnects);
    out.append(",\"drops_after_retry\":");
    AppendNum(&out, sink.drops_after_retry);
    out.append(",\"giveups\":");
    AppendNum(&out, sink.giveups);
    out.append(",\"injected_failures\":");
    AppendNum(&out, sink.injected_failures);
    out.append(",\"injected_disconnects\":");
    AppendNum(&out, sink.injected_disconnects);
    out.append(",\"backoff_s\":");
    AppendNum(&out, sink.backoff_s);
    out.append(",\"stall_s\":");
    AppendNum(&out, sink.stall_s);
    out.push_back('}');
  }
  if (recovery.any()) {
    out.append(",\"recovery\":{\"crashes\":");
    AppendNum(&out, recovery.crashes);
    out.append(",\"resumes\":");
    AppendNum(&out, recovery.resumes);
    out.append(",\"checkpoint_fallbacks\":");
    AppendNum(&out, recovery.checkpoint_fallbacks);
    out.append(",\"write_faults\":");
    AppendNum(&out, recovery.write_faults);
    if (recovery.reassignments != 0) {
      out.append(",\"reassignments\":");
      AppendNum(&out, recovery.reassignments);
    }
    out.append(",\"downtime_s\":");
    AppendNum(&out, recovery.downtime_s);
    if (recovery.mttr_s > 0.0) {
      out.append(",\"mttr_s\":");
      AppendNum(&out, recovery.mttr_s);
    }
    out.push_back('}');
  }
  out.push_back('}');
  return out;
}

Result<TelemetrySnapshot> TelemetrySnapshot::FromJsonLine(
    std::string_view line) {
  auto parsed = ParseJson(line);
  GT_RETURN_NOT_OK(parsed.status());
  const JsonValue& root = *parsed;
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::ParseError("snapshot line is not a JSON object");
  }
  const auto schema = root.object.find("schema");
  if (schema == root.object.end() ||
      schema->second.kind != JsonValue::Kind::kString) {
    return Status::ParseError("missing \"schema\" field");
  }
  if (schema->second.str != kSchema) {
    return Status::ParseError("unsupported schema \"" + schema->second.str +
                              "\"");
  }

  TelemetrySnapshot snap;
  auto seq = RequireNumber(root, "seq");
  auto elapsed = RequireNumber(root, "elapsed_s");
  auto events = RequireNumber(root, "events");
  auto eps = RequireNumber(root, "eps");
  auto imbalance = RequireNumber(root, "imbalance");
  for (const Status& st : {seq.status(), elapsed.status(), events.status(),
                           eps.status(), imbalance.status()}) {
    GT_RETURN_NOT_OK(st);
  }
  snap.seq = static_cast<uint64_t>(*seq);
  snap.elapsed_s = *elapsed;
  snap.events = static_cast<uint64_t>(*events);
  snap.events_per_sec = *eps;
  snap.shard_imbalance = *imbalance;

  const auto shards = root.object.find("shards");
  if (shards == root.object.end() ||
      shards->second.kind != JsonValue::Kind::kArray) {
    return Status::ParseError("missing \"shards\" array");
  }
  for (const JsonValue& v : shards->second.array) {
    if (v.kind != JsonValue::Kind::kNumber) {
      return Status::ParseError("non-numeric entry in \"shards\"");
    }
    snap.shard_events.push_back(static_cast<uint64_t>(v.number));
  }

  const auto stages = root.object.find("stages");
  if (stages != root.object.end()) {
    if (stages->second.kind != JsonValue::Kind::kObject) {
      return Status::ParseError("\"stages\" must be an object");
    }
    for (const auto& [name, value] : stages->second.object) {
      bool known = false;
      for (size_t i = 0; i < kReplayStageCount; ++i) {
        if (name == ReplayStageName(static_cast<ReplayStage>(i))) {
          auto summary = SummaryFromJson(value);
          GT_RETURN_NOT_OK(summary.status().WithContext("stage " + name));
          snap.stages[i] = *summary;
          known = true;
          break;
        }
      }
      if (!known) {
        return Status::ParseError("unknown stage \"" + name + "\"");
      }
    }
  }

  const auto markers = root.object.find("markers");
  if (markers != root.object.end()) {
    if (markers->second.kind != JsonValue::Kind::kObject) {
      return Status::ParseError("\"markers\" must be an object");
    }
    const JsonValue& m = markers->second;
    snap.markers.sent = static_cast<uint64_t>(OptionalNumber(m, "sent"));
    snap.markers.matched =
        static_cast<uint64_t>(OptionalNumber(m, "matched"));
    snap.markers.unmatched =
        static_cast<uint64_t>(OptionalNumber(m, "unmatched"));
    snap.markers.pending =
        static_cast<uint64_t>(OptionalNumber(m, "pending"));
    snap.markers.orphans =
        static_cast<uint64_t>(OptionalNumber(m, "orphans"));
    const auto latency = m.object.find("latency");
    if (latency != m.object.end()) {
      auto summary = SummaryFromJson(latency->second);
      GT_RETURN_NOT_OK(summary.status().WithContext("marker latency"));
      snap.markers.latency = *summary;
    }
  }

  const auto sink = root.object.find("sink");
  if (sink != root.object.end()) {
    if (sink->second.kind != JsonValue::Kind::kObject) {
      return Status::ParseError("\"sink\" must be an object");
    }
    const JsonValue& s = sink->second;
    snap.sink.retries = static_cast<uint64_t>(OptionalNumber(s, "retries"));
    snap.sink.reconnects =
        static_cast<uint64_t>(OptionalNumber(s, "reconnects"));
    snap.sink.drops_after_retry =
        static_cast<uint64_t>(OptionalNumber(s, "drops_after_retry"));
    snap.sink.giveups = static_cast<uint64_t>(OptionalNumber(s, "giveups"));
    snap.sink.injected_failures =
        static_cast<uint64_t>(OptionalNumber(s, "injected_failures"));
    snap.sink.injected_disconnects =
        static_cast<uint64_t>(OptionalNumber(s, "injected_disconnects"));
    snap.sink.backoff_s = OptionalNumber(s, "backoff_s");
    snap.sink.stall_s = OptionalNumber(s, "stall_s");
  }

  const auto recovery = root.object.find("recovery");
  if (recovery != root.object.end()) {
    if (recovery->second.kind != JsonValue::Kind::kObject) {
      return Status::ParseError("\"recovery\" must be an object");
    }
    const JsonValue& r = recovery->second;
    snap.recovery.crashes = static_cast<uint64_t>(OptionalNumber(r, "crashes"));
    snap.recovery.resumes = static_cast<uint64_t>(OptionalNumber(r, "resumes"));
    snap.recovery.checkpoint_fallbacks =
        static_cast<uint64_t>(OptionalNumber(r, "checkpoint_fallbacks"));
    snap.recovery.write_faults =
        static_cast<uint64_t>(OptionalNumber(r, "write_faults"));
    snap.recovery.reassignments =
        static_cast<uint64_t>(OptionalNumber(r, "reassignments"));
    snap.recovery.downtime_s = OptionalNumber(r, "downtime_s");
    snap.recovery.mttr_s = OptionalNumber(r, "mttr_s");
  }
  return snap;
}

}  // namespace graphtides
