// Telemetry snapshots: the JSONL record a live run emits periodically
// (schema "gt-telemetry-v1", one JSON object per line). A snapshot carries
// cumulative progress, per-stage replay-path latency percentiles, marker
// correlation state, shard balance, and delivery-fault counters — enough
// to watch a run converge (or wedge) without waiting for the result log.
#ifndef GRAPHTIDES_HARNESS_TELEMETRY_SNAPSHOT_H_
#define GRAPHTIDES_HARNESS_TELEMETRY_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "harness/telemetry/latency_histogram.h"

namespace graphtides {

/// \brief Stages of the replay hot path traced by the sampled spans
/// (read -> throttle -> serialize -> deliver -> ack).
enum class ReplayStage : uint8_t {
  /// Source parse/pull on the reader thread.
  kRead = 0,
  /// RateController deadline wait on the emitter/lane thread.
  kThrottle = 1,
  /// Canonical CSV serialization (serialized-transport lanes only).
  kSerialize = 2,
  /// Sink delivery call (write/send, including decorator retries).
  kDeliver = 3,
  /// Post-delivery bookkeeping: counters, lag record, checkpoint check.
  kAck = 4,
};
inline constexpr size_t kReplayStageCount = 5;

std::string_view ReplayStageName(ReplayStage stage);

/// \brief Percentile digest of one histogram, as serialized in snapshots.
struct StageSummary {
  uint64_t count = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;

  static StageSummary FromHistogram(const LatencyHistogram& h);
};

/// \brief Delivery-fault counters (mirrors replayer SinkTelemetry without
/// depending on the replayer library).
struct DeliveryCounters {
  uint64_t retries = 0;
  uint64_t reconnects = 0;
  uint64_t drops_after_retry = 0;
  uint64_t giveups = 0;
  uint64_t injected_failures = 0;
  uint64_t injected_disconnects = 0;
  double backoff_s = 0.0;
  double stall_s = 0.0;

  bool any() const {
    return retries || reconnects || drops_after_retry || giveups ||
           injected_failures || injected_disconnects || backoff_s > 0.0 ||
           stall_s > 0.0;
  }
};

/// \brief Crash/recovery counters for supervised runs: how many process
/// faults the run absorbed and what recovering from them cost. All
/// cumulative, so a telemetry stream's recovery block is monotonically
/// non-decreasing (gt_validate checks this).
struct RecoveryCounters {
  /// Process crashes (SIGKILL / fault-plan kills) absorbed so far.
  uint64_t crashes = 0;
  /// Resumes from a checkpoint after a crash or hang.
  uint64_t resumes = 0;
  /// Checkpoint generations skipped as torn/corrupt during resume loads.
  uint64_t checkpoint_fallbacks = 0;
  /// Injected file-write faults (ENOSPC / short writes) observed.
  uint64_t write_faults = 0;
  /// Shard ranges reassigned to a surviving/respawned worker after a
  /// worker death or hang (distributed replay).
  uint64_t reassignments = 0;
  /// Total downtime across recoveries, seconds (MTTR = downtime_s /
  /// recoveries when any happened).
  double downtime_s = 0.0;
  /// Derived mean time to recovery, seconds — downtime_s over resumes +
  /// reassignments. NOT cumulative (a fast recovery lowers it), so
  /// monotonicity checks must skip it.
  double mttr_s = 0.0;

  bool any() const {
    return crashes || resumes || checkpoint_fallbacks || write_faults ||
           reassignments || downtime_s > 0.0;
  }
};

/// \brief Marker-correlation state at snapshot time.
struct MarkerSummary {
  uint64_t sent = 0;
  uint64_t matched = 0;
  uint64_t unmatched = 0;
  uint64_t pending = 0;
  uint64_t orphans = 0;
  StageSummary latency;
};

/// \brief One JSONL telemetry record.
struct TelemetrySnapshot {
  /// 0-based emission index within the run.
  uint64_t seq = 0;
  /// Seconds since telemetry started.
  double elapsed_s = 0.0;
  /// Cumulative graph events delivered.
  uint64_t events = 0;
  /// Interval rate since the previous snapshot (cumulative rate for the
  /// first).
  double events_per_sec = 0.0;
  /// Cumulative events per shard lane (size = shard count).
  std::vector<uint64_t> shard_events;
  /// (max - min) / mean over shard_events; 0 for a single lane.
  double shard_imbalance = 0.0;
  /// Cumulative per-stage span digests; stages with count 0 are omitted
  /// from the JSON.
  std::array<StageSummary, kReplayStageCount> stages{};
  MarkerSummary markers;
  DeliveryCounters sink;
  /// Crash/recovery counters; the `recovery` JSON block is emitted only
  /// when any counter is non-zero.
  RecoveryCounters recovery;

  /// Computes shard_imbalance from shard_events.
  void ComputeImbalance();

  /// One-line JSON (no trailing newline), schema "gt-telemetry-v1".
  std::string ToJsonLine() const;
  /// Parses and validates one JSONL line; ParseError with a reason for
  /// malformed or schema-violating input.
  static Result<TelemetrySnapshot> FromJsonLine(std::string_view line);
};

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_TELEMETRY_SNAPSHOT_H_
