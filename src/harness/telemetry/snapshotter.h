// TelemetrySnapshotter: a background thread that periodically pulls a
// snapshot from RunTelemetry, stamps seq/elapsed/interval-rate, and emits
// it as one JSONL line (sidecar file, stderr, or a test callback). Stop()
// always emits a final snapshot so short runs still produce a record.
#ifndef GRAPHTIDES_HARNESS_TELEMETRY_SNAPSHOTTER_H_
#define GRAPHTIDES_HARNESS_TELEMETRY_SNAPSHOTTER_H_

#include <condition_variable>
#include <cstdio>
#include <functional>
#include <mutex>
#include <thread>

#include "common/clock.h"
#include "harness/telemetry/run_telemetry.h"

namespace graphtides {

struct SnapshotterOptions {
  Duration period = Duration::FromMillis(500);
  /// Destination stream for JSONL lines; not owned, may be nullptr when
  /// on_snapshot is the only consumer. fflush'd after every line so a
  /// `tail -f` watcher sees records as they happen.
  std::FILE* out = nullptr;
  /// Optional in-process consumer, called after the line is written.
  std::function<void(const TelemetrySnapshot&)> on_snapshot;
};

class TelemetrySnapshotter {
 public:
  TelemetrySnapshotter(RunTelemetry* source, SnapshotterOptions options);
  ~TelemetrySnapshotter();

  TelemetrySnapshotter(const TelemetrySnapshotter&) = delete;
  TelemetrySnapshotter& operator=(const TelemetrySnapshotter&) = delete;

  void Start();
  /// Emits the final snapshot and joins the thread. Idempotent.
  void Stop();

  uint64_t snapshots_emitted() const { return seq_; }

 private:
  void Loop();
  void Emit();

  RunTelemetry* source_;
  SnapshotterOptions options_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  bool stopped_ = false;

  MonotonicClock clock_;
  Timestamp start_time_;
  uint64_t seq_ = 0;
  // Previous emission, for interval event rates.
  uint64_t prev_events_ = 0;
  double prev_elapsed_s_ = 0.0;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_TELEMETRY_SNAPSHOTTER_H_
