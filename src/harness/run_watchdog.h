// RunWatchdog: hang detection for unattended runs (§4.5 methodology — an
// n ≥ 30 campaign must not stall on one wedged system under test).
//
// Liveness is derived from *progress*, not mere process aliveness: the
// supervisor registers a probe returning a monotonically non-decreasing
// counter (events delivered, markers observed, watermark position), and a
// background thread polls it against a wall clock. When the counter stays
// unchanged for longer than the stall deadline, the run is declared hung
// and the hang action fires exactly once — typically a
// CancellationToken::RequestCancel that the run observes cooperatively.
#ifndef GRAPHTIDES_HARNESS_RUN_WATCHDOG_H_
#define GRAPHTIDES_HARNESS_RUN_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "common/clock.h"

namespace graphtides {

struct WatchdogOptions {
  /// A run with no observed progress for this long is declared hung.
  Duration stall_deadline = Duration::FromSeconds(30.0);
  /// How often the probe is sampled.
  Duration poll_interval = Duration::FromMillis(10);
};

/// \brief Watches one run at a time; reusable across runs via Arm/Disarm.
///
/// Thread-safety: Arm and Disarm are called by the supervising thread; the
/// probe and hang action run on the watchdog's own thread and must be safe
/// to call from there (probes typically read one atomic).
class RunWatchdog {
 public:
  /// Monotonically non-decreasing progress value of the supervised run.
  using ProgressProbe = std::function<uint64_t()>;
  /// Invoked once when the run is declared hung, with the last progress
  /// value and how long it had been stalled.
  using HangFn = std::function<void(uint64_t last_progress, Duration stalled)>;

  explicit RunWatchdog(WatchdogOptions options) : options_(options) {}
  ~RunWatchdog() { Disarm(); }

  RunWatchdog(const RunWatchdog&) = delete;
  RunWatchdog& operator=(const RunWatchdog&) = delete;

  /// \brief Starts watching. The stall clock starts now; the first probe
  /// sample seeds the baseline. PreconditionFailed semantics: arming an
  /// armed watchdog is a programming error and asserts in debug builds.
  void Arm(ProgressProbe probe, HangFn on_hang);

  /// Stops watching and joins the watchdog thread. Idempotent. After
  /// Disarm returns, the hang action is guaranteed not to fire (anymore).
  void Disarm();

  /// True once the current/last armed run was declared hung.
  bool fired() const { return fired_.load(std::memory_order_acquire); }

  /// Last progress value the watchdog observed.
  uint64_t last_progress() const {
    return last_progress_.load(std::memory_order_relaxed);
  }

 private:
  void Watch(ProgressProbe probe, HangFn on_hang);

  WatchdogOptions options_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by mu_
  std::atomic<bool> fired_{false};
  std::atomic<uint64_t> last_progress_{0};
};

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_RUN_WATCHDOG_H_
