// Log records: the unit of measurement data in the test harness (Fig. 2).
// Every logger produces timestamped records; the log collector merges them
// into one chronologically sorted result log.
#ifndef GRAPHTIDES_HARNESS_LOG_RECORD_H_
#define GRAPHTIDES_HARNESS_LOG_RECORD_H_

#include <string>

#include "common/clock.h"
#include "common/result.h"

namespace graphtides {

/// \brief One timestamped measurement or annotation.
struct LogRecord {
  Timestamp time;
  /// Which logger/machine produced the record (e.g. "replayer",
  /// "worker-2").
  std::string source;
  /// Metric name (e.g. "cpu", "queue_length", "marker").
  std::string metric;
  double value = 0.0;
  /// Free-form annotation (marker labels, query results).
  std::string text;
  /// Emission index within the producing source (assigned by the logger,
  /// or by line position when reading a CSV). Tie-breaker for records that
  /// share a timestamp; not serialized — the CSV format stays 5 fields.
  uint64_t seq = 0;

  /// CSV line: time_ns,source,metric,value,text.
  std::string ToCsvLine() const;
  static Result<LogRecord> FromCsvLine(std::string_view line);
};

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_LOG_RECORD_H_
