#include "harness/metrics_logger.h"

namespace graphtides {

void MetricsLogger::Log(std::string_view metric, double value) {
  LogAt(clock_->Now(), metric, value);
}

void MetricsLogger::LogText(std::string_view metric, double value,
                            std::string_view text) {
  LogAt(clock_->Now(), metric, value, text);
}

void MetricsLogger::LogAt(Timestamp time, std::string_view metric,
                          double value, std::string_view text) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(LogRecord{time, source_, std::string(metric), value,
                               std::string(text), records_.size()});
}

std::vector<LogRecord> MetricsLogger::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t MetricsLogger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void MetricsLogger::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

}  // namespace graphtides
