// Experiment runner implementing the methodology of §4.5 (Jain + Popper):
// factor/level sweeps (up to full factorial), n repetitions per
// configuration, aggregation with confidence intervals, and significance
// comparison via CI disjointness.
#ifndef GRAPHTIDES_HARNESS_EXPERIMENT_H_
#define GRAPHTIDES_HARNESS_EXPERIMENT_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"

namespace graphtides {

/// \brief One concrete configuration: factor name -> chosen level.
using ExperimentConfig = std::map<std::string, double>;

/// \brief Outcome variables of one run: metric name -> value.
using RunOutcome = std::map<std::string, double>;

/// \brief A factor and its levels.
struct Factor {
  std::string name;
  std::vector<double> levels;
};

/// \brief Aggregate of one metric over the repetitions of one config.
///
/// Under campaign supervision only *completed* runs contribute samples, so
/// `effective_n()` may be smaller than the requested repetitions — the CI
/// is honest about the runs that actually finished.
struct MetricAggregate {
  RunningStats stats;
  ConfidenceInterval ci;
  std::vector<double> samples;

  /// Number of completed runs behind this aggregate.
  size_t effective_n() const { return samples.size(); }
};

/// \brief Failure accounting for one configuration's runs (§4.5 campaigns
/// must report how many of the demanded n runs actually completed).
struct RunAccounting {
  /// Run slots that produced a usable outcome.
  size_t completed = 0;
  /// Attempts that returned an error other than a watchdog cancel.
  size_t failed = 0;
  /// Attempts aborted by the watchdog for lack of progress.
  size_t hung = 0;
  /// Extra attempts consumed beyond each slot's first try.
  size_t retried = 0;
  /// Run slots whose usable outcome came from an auto-resumed attempt
  /// after a crash or hang (a subset of `completed` — reported separately
  /// from quarantine so recovered runs are not mistaken for discarded
  /// ones).
  size_t resumed = 0;
  /// Work units adopted by a replacement identity after a failure (a
  /// distributed run reports shard ranges moved to another worker via the
  /// reserved "reassignments" outcome key; accounting, not a metric).
  uint64_t reassignments = 0;
  /// Total downtime across recoveries: from a failed attempt's end to the
  /// first progress heartbeat of the attempt that resumed it, seconds.
  double downtime_s = 0.0;
  /// Recoveries measured into downtime_s.
  size_t recoveries = 0;
  /// True when the config was quarantined and remaining slots skipped.
  bool quarantined = false;

  size_t effective_n() const { return completed; }
  /// Mean time to recovery over this config's measured recoveries.
  double mttr_s() const {
    return recoveries > 0 ? downtime_s / static_cast<double>(recoveries) : 0.0;
  }
};

/// \brief All repetitions of one configuration, aggregated.
struct ConfigResult {
  ExperimentConfig config;
  /// Requested repetitions (the §4.5 n); see accounting for effective n.
  size_t repetitions = 0;
  std::map<std::string, MetricAggregate> metrics;
  RunAccounting accounting;
};

struct ExperimentOptions {
  /// §4.5: "at least n >= 30 test runs for each configuration".
  size_t repetitions = 30;
  double confidence_level = 0.95;
  /// Base seed; run r of config c uses seed base + c * 1,000,003 + r.
  uint64_t base_seed = 42;
};

/// \brief Full-factorial experiment driver.
///
/// The run function receives the configuration and a per-run seed and
/// returns the outcome metrics (or an error, which aborts the experiment).
class ExperimentRunner {
 public:
  using RunFn =
      std::function<Result<RunOutcome>(const ExperimentConfig&, uint64_t seed)>;

  ExperimentRunner(std::vector<Factor> factors, ExperimentOptions options)
      : factors_(std::move(factors)), options_(options) {}

  /// Enumerates the cartesian product of all factor levels.
  std::vector<ExperimentConfig> EnumerateConfigs() const;

  /// Runs every configuration `repetitions` times and aggregates.
  Result<std::vector<ConfigResult>> Run(const RunFn& run) const;

 private:
  std::vector<Factor> factors_;
  ExperimentOptions options_;
};

/// \brief §4.5 significance test: non-overlapping confidence intervals of
/// two systems' results are significantly different at the interval level.
struct Comparison {
  ConfidenceInterval a;
  ConfidenceInterval b;
  bool significant = false;
  /// Positive when b's mean exceeds a's.
  double mean_difference = 0.0;
};

Comparison CompareByConfidenceIntervals(const std::vector<double>& samples_a,
                                        const std::vector<double>& samples_b,
                                        double level = 0.95);

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_EXPERIMENT_H_
