// Log collector (Fig. 2): merges the logs of all logger instances into a
// single, chronologically sorted result log — the input of every analysis.
#ifndef GRAPHTIDES_HARNESS_LOG_COLLECTOR_H_
#define GRAPHTIDES_HARNESS_LOG_COLLECTOR_H_

#include <string>
#include <vector>

#include "analysis/time_series.h"
#include "common/result.h"
#include "harness/log_record.h"
#include "harness/metrics_logger.h"

namespace graphtides {

/// \brief The merged result log of one experiment run.
class ResultLog {
 public:
  ResultLog() = default;
  explicit ResultLog(std::vector<LogRecord> records);

  const std::vector<LogRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  /// Records matching source and/or metric ("" = wildcard).
  std::vector<LogRecord> Filter(const std::string& source,
                                const std::string& metric) const;

  /// Extracts one metric (optionally per source) as a time series.
  TimeSeries Series(const std::string& source,
                    const std::string& metric) const;

  /// Distinct sources appearing in the log.
  std::vector<std::string> Sources() const;

  Status WriteCsv(const std::string& path) const;
  static Result<ResultLog> ReadCsv(const std::string& path);

 private:
  std::vector<LogRecord> records_;  // sorted by time
};

/// \brief Gathers and merges the records of many loggers.
class LogCollector {
 public:
  void AddLogger(const MetricsLogger* logger) { loggers_.push_back(logger); }

  /// Merges all loggers' records, chronologically sorted (stable across
  /// equal timestamps).
  ResultLog Collect() const;

 private:
  std::vector<const MetricsLogger*> loggers_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_LOG_COLLECTOR_H_
