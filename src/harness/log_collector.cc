#include "harness/log_collector.h"

#include <algorithm>
#include <fstream>
#include <unordered_set>

namespace graphtides {

ResultLog::ResultLog(std::vector<LogRecord> records)
    : records_(std::move(records)) {
  // Order by (time, source, seq): records sharing a timestamp group by
  // producing source, and within a source keep their emission order —
  // plain time-sorting left equal-timestamp records in whatever order the
  // loggers were collected.
  std::stable_sort(records_.begin(), records_.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.source != b.source) return a.source < b.source;
                     return a.seq < b.seq;
                   });
}

std::vector<LogRecord> ResultLog::Filter(const std::string& source,
                                         const std::string& metric) const {
  // Count-then-copy: the scan pass only compares (no record copies, no
  // vector regrowth); the copy pass fills an exactly pre-sized output.
  auto matches = [&](const LogRecord& r) {
    if (!source.empty() && r.source != source) return false;
    if (!metric.empty() && r.metric != metric) return false;
    return true;
  };
  size_t count = 0;
  for (const LogRecord& r : records_) {
    if (matches(r)) ++count;
  }
  std::vector<LogRecord> out;
  out.reserve(count);
  for (const LogRecord& r : records_) {
    if (matches(r)) out.push_back(r);
  }
  return out;
}

TimeSeries ResultLog::Series(const std::string& source,
                             const std::string& metric) const {
  TimeSeries series(source.empty() ? metric : source + "." + metric);
  for (const LogRecord& r : records_) {
    if (!source.empty() && r.source != source) continue;
    if (!metric.empty() && r.metric != metric) continue;
    series.Add(r.time, r.value);
  }
  return series;
}

std::vector<std::string> ResultLog::Sources() const {
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  for (const LogRecord& r : records_) {
    if (seen.insert(r.source).second) out.push_back(r.source);
  }
  return out;
}

Status ResultLog::WriteCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot create result log: " + path);
  }
  for (const LogRecord& r : records_) {
    out << r.ToCsvLine() << '\n';
  }
  out.flush();
  if (!out.good()) return Status::IoError("write failure: " + path);
  return Status::OK();
}

Result<ResultLog> ResultLog::ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open result log: " + path);
  }
  std::vector<LogRecord> records;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    Result<LogRecord> parsed = LogRecord::FromCsvLine(line);
    if (!parsed.ok()) {
      return parsed.status().WithContext("line " +
                                         std::to_string(line_number));
    }
    LogRecord record = std::move(parsed).value();
    // seq is not serialized; file position preserves the written order as
    // the tie-breaker.
    record.seq = records.size();
    records.push_back(std::move(record));
  }
  return ResultLog(std::move(records));
}

ResultLog LogCollector::Collect() const {
  std::vector<LogRecord> all;
  for (const MetricsLogger* logger : loggers_) {
    const std::vector<LogRecord> records = logger->Records();
    all.insert(all.end(), records.begin(), records.end());
  }
  return ResultLog(std::move(all));
}

}  // namespace graphtides
