// Plain-text report helpers used by the benchmark binaries to print the
// paper-figure data series and configuration tables.
#ifndef GRAPHTIDES_HARNESS_REPORT_H_
#define GRAPHTIDES_HARNESS_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "harness/telemetry/latency_histogram.h"

namespace graphtides {

/// \brief Fixed-width text table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Renders with aligned columns, a header rule, and trailing newline.
  std::string ToString() const;

  static std::string FormatDouble(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Section header for bench output ("=== title ===").
std::string SectionHeader(const std::string& title);

/// \brief Key/value block used to echo experiment configurations
/// (Tables 2-4).
std::string ConfigBlock(
    const std::vector<std::pair<std::string, std::string>>& entries);

/// \brief Percentile table over named latency histograms: one row per
/// histogram with count, p50/p90/p99/p999, and max in microseconds. The
/// shared rendering for per-stage span tables (gt_replay) and telemetry
/// analyses (gt_analyze).
std::string PercentileTable(
    const std::string& label_header,
    const std::vector<std::pair<std::string, const LatencyHistogram*>>& rows);

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_REPORT_H_
