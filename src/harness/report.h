// Plain-text report helpers used by the benchmark binaries to print the
// paper-figure data series and configuration tables.
#ifndef GRAPHTIDES_HARNESS_REPORT_H_
#define GRAPHTIDES_HARNESS_REPORT_H_

#include <string>
#include <vector>

namespace graphtides {

/// \brief Fixed-width text table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Renders with aligned columns, a header rule, and trailing newline.
  std::string ToString() const;

  static std::string FormatDouble(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Section header for bench output ("=== title ===").
std::string SectionHeader(const std::string& title);

/// \brief Key/value block used to echo experiment configurations
/// (Tables 2-4).
std::string ConfigBlock(
    const std::vector<std::pair<std::string, std::string>>& entries);

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_REPORT_H_
