// Marker/watermark correlation (§4.5): marker events in the stream are
// logged with the instant they passed the replayer; the system under test
// (or a query logger) logs when each marker's effect became observable.
// Matching the two gives per-marker ingestion-to-visibility latency.
#ifndef GRAPHTIDES_HARNESS_MARKER_CORRELATOR_H_
#define GRAPHTIDES_HARNESS_MARKER_CORRELATOR_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "harness/log_collector.h"
#include "harness/telemetry/latency_histogram.h"

namespace graphtides {

/// \brief One correlated marker: streamed at `sent`, observed at
/// `observed`.
struct MarkerLatency {
  std::string label;
  Timestamp sent;
  Timestamp observed;
  Duration latency() const { return observed - sent; }
};

struct MarkerCorrelationReport {
  std::vector<MarkerLatency> matched;
  /// Markers streamed but never observed (lost / still pending at run end).
  std::vector<std::string> unmatched;
  /// Matched latencies as a mergeable histogram (same data as `matched`,
  /// ready for percentile queries and cross-run aggregation).
  LatencyHistogram latency;

  /// Latencies in seconds for statistics.
  std::vector<double> LatenciesSeconds() const;
};

/// \brief Joins `sent_metric` records (marker label in `text`) with
/// `observed_metric` records on the label. The first observation at or
/// after the send time wins; each observation is consumed by its match.
/// Post-hoc compatibility wrapper over StreamingMarkerCorrelator, which is
/// what live runs use.
MarkerCorrelationReport CorrelateMarkers(const ResultLog& log,
                                         const std::string& sent_metric,
                                         const std::string& observed_metric);

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_MARKER_CORRELATOR_H_
