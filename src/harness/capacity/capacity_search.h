// Closed-loop capacity search (DESIGN.md §16): given a latency SLO, find
// the maximum offered rate a system sustains — the inverse of the paper's
// fixed-rate methodology, framed as the sustainable-throughput question of
// the Dayarathna et al. benchmarking survey.
//
// CapacitySearch is a pure decision engine: it owns no threads, reads no
// clock, and draws no randomness. The caller measures windows at the rate
// the engine asks for and feeds them back; every decision is a
// deterministic function of the reported measurements, so two runs that
// observe the same windows produce the identical step schedule — the
// reproducibility property the frontier artifact's comparison checks pin.
//
// State machine:
//   kBracketing: geometric ramp (rate *= growth) from start_rate_eps until
//     a step violates the SLO (upper bracket found) or max_rate_eps
//     sustains (done: the cap is sustainable).
//   kRefining: arithmetic bisection between the last sustained rate (lo)
//     and the first violating rate (hi) until hi - lo <= resolution * hi.
//   kDone: sustainable rate = lo (0 when even the first step violated and
//     refinement could not find any sustained rate).
//
// Hysteresis: one noisy window must not flip a step. A step observes up to
// windows_per_step measurement windows and is violated only when
// confirm_violations of them exceeded the SLO; it concludes early once the
// verdict cannot change. A window with no latency signal (zero samples)
// counts as within-SLO: no observed violation.
#ifndef GRAPHTIDES_HARNESS_CAPACITY_CAPACITY_SEARCH_H_
#define GRAPHTIDES_HARNESS_CAPACITY_CAPACITY_SEARCH_H_

#include <cstdint>
#include <vector>

namespace graphtides {

struct CapacitySearchOptions {
  /// The SLO: a window violates when its latency p99 exceeds this.
  double slo_p99_ms = 100.0;
  /// First offered rate (events/s).
  double start_rate_eps = 1000.0;
  /// Bracketing ramp factor (> 1).
  double growth = 2.0;
  /// Bracketing cap: a sustained step at this rate ends the search.
  double max_rate_eps = 1e9;
  /// Refinement stops when (hi - lo) <= resolution * hi.
  double resolution = 0.05;
  /// Measurement windows observed per rate step (>= 1).
  int windows_per_step = 3;
  /// Violating windows (out of windows_per_step) that make a step
  /// violated; clamped into [1, windows_per_step].
  int confirm_violations = 2;
  /// Hard cap on rate steps across both phases.
  int max_steps = 32;
  /// Recorded into the step trace / artifact for provenance (workload
  /// seeding); the engine itself draws no randomness from it.
  uint64_t seed = 42;
};

/// \brief One measurement window at the current offered rate.
struct CapacityWindow {
  double p99_ms = 0.0;
  double p50_ms = 0.0;
  double achieved_rate_eps = 0.0;
  /// Latency observations inside the window; 0 = no signal, the window
  /// counts as within-SLO (an idle system trivially meets the SLO).
  uint64_t samples = 0;
};

enum class CapacityPhase { kBracketing, kRefining, kDone };

/// \brief Trace entry: one concluded rate step.
struct CapacityStep {
  int index = 0;
  CapacityPhase phase = CapacityPhase::kBracketing;
  double offered_rate_eps = 0.0;
  bool violated = false;
  int windows = 0;
  int violations = 0;
  double worst_p99_ms = 0.0;
  double mean_p50_ms = 0.0;
  double mean_p99_ms = 0.0;
  double mean_achieved_eps = 0.0;
};

class CapacitySearch {
 public:
  explicit CapacitySearch(const CapacitySearchOptions& options);

  bool done() const { return phase_ == CapacityPhase::kDone; }
  CapacityPhase phase() const { return phase_; }
  /// The offered rate the caller must measure next (valid until done()).
  double current_rate_eps() const { return current_rate_; }

  /// \brief Feeds one measurement window at current_rate_eps(). Returns
  /// true when the window concluded the step (the rate changed or the
  /// search finished).
  bool ReportWindow(const CapacityWindow& window);

  /// Concluded steps in decision order (the "step schedule").
  const std::vector<CapacityStep>& steps() const { return steps_; }
  /// Offered rates in decision order — the sequence the reproducibility
  /// check compares across seeded runs.
  std::vector<double> StepSchedule() const;

  /// Highest offered rate proven sustained (0 when none was).
  double sustainable_rate_eps() const { return lo_; }
  /// Lowest offered rate proven violating (0 until one was seen).
  double first_violating_rate_eps() const { return hi_; }
  /// False when the search ended on max_steps instead of converging.
  bool converged() const { return converged_; }

  const CapacitySearchOptions& options() const { return options_; }

 private:
  void ConcludeStep(bool violated);
  void ResetStepAccumulators();

  CapacitySearchOptions options_;
  CapacityPhase phase_ = CapacityPhase::kBracketing;
  double current_rate_ = 0.0;
  double lo_ = 0.0;  // highest sustained rate
  double hi_ = 0.0;  // lowest violating rate
  bool converged_ = false;

  // Current-step accumulators.
  int windows_seen_ = 0;
  int violations_ = 0;
  double worst_p99_ms_ = 0.0;
  double sum_p50_ms_ = 0.0;
  double sum_p99_ms_ = 0.0;
  double sum_achieved_ = 0.0;
  int signal_windows_ = 0;

  std::vector<CapacityStep> steps_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_CAPACITY_CAPACITY_SEARCH_H_
