#include "harness/capacity/capacity_search.h"

#include <algorithm>

namespace graphtides {

CapacitySearch::CapacitySearch(const CapacitySearchOptions& options)
    : options_(options) {
  if (options_.slo_p99_ms <= 0.0) options_.slo_p99_ms = 1.0;
  if (options_.start_rate_eps <= 0.0) options_.start_rate_eps = 1.0;
  if (options_.growth <= 1.0) options_.growth = 2.0;
  if (options_.max_rate_eps < options_.start_rate_eps) {
    options_.max_rate_eps = options_.start_rate_eps;
  }
  if (options_.resolution <= 0.0) options_.resolution = 0.05;
  options_.windows_per_step = std::max(1, options_.windows_per_step);
  options_.confirm_violations =
      std::clamp(options_.confirm_violations, 1, options_.windows_per_step);
  options_.max_steps = std::max(1, options_.max_steps);
  current_rate_ = options_.start_rate_eps;
}

void CapacitySearch::ResetStepAccumulators() {
  windows_seen_ = 0;
  violations_ = 0;
  worst_p99_ms_ = 0.0;
  sum_p50_ms_ = 0.0;
  sum_p99_ms_ = 0.0;
  sum_achieved_ = 0.0;
  signal_windows_ = 0;
}

bool CapacitySearch::ReportWindow(const CapacityWindow& window) {
  if (done()) return false;
  ++windows_seen_;
  if (window.samples > 0) {
    ++signal_windows_;
    worst_p99_ms_ = std::max(worst_p99_ms_, window.p99_ms);
    sum_p50_ms_ += window.p50_ms;
    sum_p99_ms_ += window.p99_ms;
    if (window.p99_ms > options_.slo_p99_ms) ++violations_;
  }
  sum_achieved_ += window.achieved_rate_eps;

  // Early conclusion once the verdict cannot change: enough violations to
  // confirm, or too few remaining windows to ever reach the confirmation
  // count.
  const int remaining = options_.windows_per_step - windows_seen_;
  if (violations_ >= options_.confirm_violations) {
    ConcludeStep(/*violated=*/true);
    return true;
  }
  if (remaining == 0 ||
      violations_ + remaining < options_.confirm_violations) {
    ConcludeStep(/*violated=*/false);
    return true;
  }
  return false;
}

void CapacitySearch::ConcludeStep(bool violated) {
  CapacityStep step;
  step.index = static_cast<int>(steps_.size());
  step.phase = phase_;
  step.offered_rate_eps = current_rate_;
  step.violated = violated;
  step.windows = windows_seen_;
  step.violations = violations_;
  step.worst_p99_ms = worst_p99_ms_;
  if (signal_windows_ > 0) {
    step.mean_p50_ms = sum_p50_ms_ / signal_windows_;
    step.mean_p99_ms = sum_p99_ms_ / signal_windows_;
  }
  if (windows_seen_ > 0) step.mean_achieved_eps = sum_achieved_ / windows_seen_;
  steps_.push_back(step);
  ResetStepAccumulators();

  // Advance the state machine.
  if (phase_ == CapacityPhase::kBracketing) {
    if (!violated) {
      lo_ = current_rate_;
      if (current_rate_ >= options_.max_rate_eps) {
        // The cap itself sustains: the bracket is degenerate but resolved.
        phase_ = CapacityPhase::kDone;
        converged_ = true;
        return;
      }
      current_rate_ =
          std::min(current_rate_ * options_.growth, options_.max_rate_eps);
    } else {
      hi_ = current_rate_;
      phase_ = CapacityPhase::kRefining;
      current_rate_ = (lo_ + hi_) / 2.0;
    }
  } else {  // kRefining
    if (!violated) {
      lo_ = current_rate_;
    } else {
      hi_ = current_rate_;
    }
    if (hi_ - lo_ <= options_.resolution * hi_) {
      phase_ = CapacityPhase::kDone;
      converged_ = true;
      return;
    }
    current_rate_ = (lo_ + hi_) / 2.0;
  }
  if (static_cast<int>(steps_.size()) >= options_.max_steps) {
    phase_ = CapacityPhase::kDone;  // budget exhausted; lo_ is best-known
  }
}

std::vector<double> CapacitySearch::StepSchedule() const {
  std::vector<double> schedule;
  schedule.reserve(steps_.size());
  for (const CapacityStep& s : steps_) schedule.push_back(s.offered_rate_eps);
  return schedule;
}

}  // namespace graphtides
