// Windowed latency extraction from a live RunTelemetry hub: the hub's
// histograms are cumulative, so a measurement window's percentiles are the
// delta between two snapshots (LatencyHistogram::DeltaSince). The probe
// runs on the capacity controller's thread, concurrently with the lanes
// recording into the hub — safe because Snapshot-side reads
// (markers().LatencySnapshot(), MergedStageHistograms(), TotalDelivered())
// are locked/atomic by the hub's thread contract; the Capacity TSan suite
// pins exactly this concurrent reader path.
#ifndef GRAPHTIDES_HARNESS_CAPACITY_WINDOW_PROBE_H_
#define GRAPHTIDES_HARNESS_CAPACITY_WINDOW_PROBE_H_

#include "common/clock.h"
#include "harness/capacity/capacity_search.h"
#include "harness/telemetry/latency_histogram.h"
#include "harness/telemetry/run_telemetry.h"

namespace graphtides {

class CapacityProbe {
 public:
  /// Which live histogram supplies the SLO latency signal.
  enum class Signal {
    /// Marker latency when the window matched any markers (the end-to-end
    /// ingestion-to-visibility signal), else the deliver-stage span (sink
    /// handoff latency — the only signal when no SUT echoes markers back).
    kAuto,
    kMarker,
    kDeliver,
  };

  /// `telemetry` and `clock` are borrowed; both must outlive the probe.
  CapacityProbe(const RunTelemetry* telemetry, Signal signal,
                const Clock* clock);

  /// Drops the baseline at the hub's current cumulative state: the next
  /// EndWindow covers only what is recorded from here on. Call after each
  /// warmup/settle period so ramp-transient samples never pollute a
  /// measurement window.
  void BeginWindow();

  /// Closes the window against the current cumulative state and
  /// re-baselines, so back-to-back windows partition the run exactly.
  CapacityWindow EndWindow();

 private:
  struct Cumulative {
    LatencyHistogram marker;
    LatencyHistogram deliver;
    uint64_t delivered = 0;
    Timestamp at;
  };
  Cumulative Read() const;

  const RunTelemetry* telemetry_;
  Signal signal_;
  const Clock* clock_;
  Cumulative base_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_CAPACITY_WINDOW_PROBE_H_
