#include "harness/capacity/frontier_sweep.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace graphtides {

namespace {

struct RateMeasurements {
  std::vector<double> p99_ms;
  std::vector<double> p50_ms;
  std::vector<double> achieved_eps;
};

CapacityWindow WindowFrom(const CapacityPointScore& score) {
  CapacityWindow window;
  window.p50_ms = score.watermark_p50_s * 1e3;
  window.p99_ms = score.watermark_p99_s * 1e3;
  window.achieved_rate_eps = score.achieved_rate_eps;
  window.samples = score.watermarks_visible;
  return window;
}

}  // namespace

uint64_t DeriveSweepSeed(uint64_t base, uint64_t a, uint64_t b) {
  uint64_t x = base ^ (a * 0x9e3779b97f4a7c15ULL) ^
               (b * 0xc2b2ae3d27d4eb4fULL) ^ 0x5851f42d4c957f2dULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

Result<FrontierArtifact> RunFrontierSweep(
    const std::string& sut_name, const SeededWorkloadFactory& workload_for,
    const ConnectorFactory& connector_factory,
    const FrontierSweepOptions& options) {
  if (!workload_for || !connector_factory) {
    return Status::InvalidArgument("sweep needs workload and connector");
  }
  const int repetitions = std::max(1, options.repetitions);

  std::string workload_name;
  std::map<double, RateMeasurements> by_rate;
  auto measure = [&](double rate_eps,
                     uint64_t seed) -> Result<CapacityPointScore> {
    GT_ASSIGN_OR_RETURN(SuiteWorkload workload, workload_for(seed));
    if (workload_name.empty()) workload_name = workload.name;
    GT_ASSIGN_OR_RETURN(
        CapacityPointScore score,
        MeasureCapacityPoint(workload, connector_factory, rate_eps,
                             options.case_options));
    RateMeasurements& m = by_rate[rate_eps];
    m.p50_ms.push_back(score.watermark_p50_s * 1e3);
    m.p99_ms.push_back(score.watermark_p99_s * 1e3);
    m.achieved_eps.push_back(score.achieved_rate_eps);
    return score;
  };

  // Pilot: the search decides the schedule, one full seeded replay per
  // measurement window.
  CapacitySearch search(options.search);
  while (!search.done()) {
    const int step_index = static_cast<int>(search.steps().size());
    const double rate = search.current_rate_eps();
    bool concluded = false;
    for (int w = 0; !concluded && w < search.options().windows_per_step;
         ++w) {
      const uint64_t seed = DeriveSweepSeed(
          options.search.seed, static_cast<uint64_t>(step_index) + 1,
          static_cast<uint64_t>(w));
      GT_ASSIGN_OR_RETURN(CapacityPointScore score, measure(rate, seed));
      concluded = search.ReportWindow(WindowFrom(score));
    }
    if (!concluded) {
      return Status::Internal("capacity step did not conclude");
    }
  }

  // Top-up: bring every visited rate to `repetitions` measurements.
  {
    uint64_t rate_index = 0;
    for (auto& [rate, m] : by_rate) {
      ++rate_index;
      while (static_cast<int>(m.p99_ms.size()) < repetitions) {
        const uint64_t seed = DeriveSweepSeed(
            options.search.seed, 0x52455053ULL + rate_index,
            m.p99_ms.size());
        GT_ASSIGN_OR_RETURN(CapacityPointScore score, measure(rate, seed));
        (void)score;
      }
    }
  }

  FrontierArtifact artifact;
  artifact.sut = sut_name;
  artifact.workload = workload_name;
  artifact.slo_p99_ms = search.options().slo_p99_ms;
  artifact.seed = options.search.seed;
  artifact.resolution = search.options().resolution;
  artifact.complete = search.converged();
  artifact.step_schedule = search.StepSchedule();

  // Verdicts by rate, from the search trace (a rate is visited once).
  std::map<double, bool> violated_at;
  for (const CapacityStep& step : search.steps()) {
    violated_at[step.offered_rate_eps] = step.violated;
  }

  for (const auto& [rate, m] : by_rate) {
    FrontierPoint point;
    point.offered_rate_eps = rate;
    point.n = m.p99_ms.size();
    const ConfidenceInterval p99 = MeanConfidenceInterval(m.p99_ms);
    point.p99_ms = p99.mean;
    point.p99_ci_lo_ms = p99.lower;
    point.p99_ci_hi_ms = p99.upper;
    point.p50_ms = MeanConfidenceInterval(m.p50_ms).mean;
    point.achieved_rate_eps = MeanConfidenceInterval(m.achieved_eps).mean;
    auto it = violated_at.find(rate);
    point.violated = it != violated_at.end() && it->second;
    artifact.points.push_back(point);
  }

  const double sustained_offered = search.sustainable_rate_eps();
  if (sustained_offered > 0.0) {
    artifact.sustainable_offered_eps = sustained_offered;
    const RateMeasurements& m = by_rate[sustained_offered];
    const ConfidenceInterval achieved =
        MeanConfidenceInterval(m.achieved_eps);
    artifact.sustainable_rate_eps = achieved.mean;
    artifact.sustainable_ci_lo_eps = achieved.lower;
    artifact.sustainable_ci_hi_eps = achieved.upper;
  }
  return artifact;
}

}  // namespace graphtides
