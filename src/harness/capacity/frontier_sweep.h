// The simulated-SUT frontier sweep: drives a CapacitySearch over
// MeasureCapacityPoint runs on the virtual-time simulator and assembles a
// gt-frontier-v1 artifact. This is the gt_campaign --frontier engine.
//
// Determinism plan (DESIGN.md §16): the simulator is virtual-time
// deterministic, every per-run workload seed is a pure function of the
// sweep's base seed and the run's position (step, window / rate, rep), and
// the search engine itself draws no randomness — so two sweeps with the
// same base seed produce bit-identical artifacts, which the CI smoke job
// checks with CompareFrontiers.
//
// Measurement plan: the pilot phase runs the search (each window = one
// full workload replay at the step's offered rate, seeded by step/window);
// once the schedule is fixed, every visited rate is topped up to
// `repetitions` total measurements with fresh derived seeds, and the curve
// points carry mean ± CI95 over those measurements.
#ifndef GRAPHTIDES_HARNESS_CAPACITY_FRONTIER_SWEEP_H_
#define GRAPHTIDES_HARNESS_CAPACITY_FRONTIER_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "harness/capacity/capacity_search.h"
#include "harness/capacity/frontier.h"
#include "suite/benchmark_suite.h"

namespace graphtides {

struct FrontierSweepOptions {
  /// Search knobs; `search.seed` is the sweep's base seed.
  CapacitySearchOptions search;
  /// Total measurements aggregated per visited rate (pilot windows count;
  /// the sweep tops up after the schedule is fixed). Minimum 1.
  int repetitions = 3;
  /// Per-measurement run limits. Watermark visibility is observed on the
  /// sampler grid, so the default cadence is much finer than the suite's
  /// 100 ms — the grid must sit well below any plausible SLO (virtual
  /// time: extra samples cost simulator events, not wall clock).
  SuiteCaseOptions case_options{
      .sample_interval = Duration::FromMillis(2)};
};

/// Builds the workload for one seeded measurement run.
using SeededWorkloadFactory =
    std::function<Result<SuiteWorkload>(uint64_t seed)>;

/// \brief Mixes (a, b) into a base seed — splitmix64 finalizer, the same
/// derivation on every platform.
uint64_t DeriveSweepSeed(uint64_t base, uint64_t a, uint64_t b);

/// \brief Runs the full closed-loop sweep for one (SUT, workload) pair.
Result<FrontierArtifact> RunFrontierSweep(
    const std::string& sut_name, const SeededWorkloadFactory& workload_for,
    const ConnectorFactory& connector_factory,
    const FrontierSweepOptions& options);

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_CAPACITY_FRONTIER_SWEEP_H_
