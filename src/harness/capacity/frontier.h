// The gt-frontier-v1 artifact: one capacity search's result — the
// sustainable-rate point plus the full latency-vs-throughput curve, with
// CI95 bands when the sweep ran repetitions (§4.5 methodology: mean ± CI95
// over n runs; single live runs carry degenerate bands). Emitted by
// gt_replay --find-capacity and gt_campaign --frontier, rendered by
// gt_analyze --frontier, schema-checked by gt_validate --frontier.
#ifndef GRAPHTIDES_HARNESS_CAPACITY_FRONTIER_H_
#define GRAPHTIDES_HARNESS_CAPACITY_FRONTIER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "harness/capacity/capacity_search.h"

namespace graphtides {

inline constexpr std::string_view kFrontierSchema = "gt-frontier-v1";

/// \brief One point on the latency-vs-throughput curve (one offered rate,
/// aggregated over n repetitions).
struct FrontierPoint {
  double offered_rate_eps = 0.0;
  /// Mean rate actually sustained at this offered rate.
  double achieved_rate_eps = 0.0;
  double p50_ms = 0.0;
  /// Mean latency p99 across repetitions, with its CI95 band (lo == hi ==
  /// mean when n == 1).
  double p99_ms = 0.0;
  double p99_ci_lo_ms = 0.0;
  double p99_ci_hi_ms = 0.0;
  uint64_t n = 1;
  /// Step verdict: this offered rate exceeded the SLO.
  bool violated = false;
};

struct FrontierArtifact {
  std::string sut;
  std::string workload;
  double slo_p99_ms = 0.0;
  uint64_t seed = 0;
  /// Refinement stop width (relative); also the floor the reproducibility
  /// comparison widens degenerate CI bands to.
  double resolution = 0.05;
  /// False when the search ran out of steps or stream before converging.
  bool complete = true;

  /// Mean achieved rate at the highest sustained offered rate, with its
  /// CI95 band over repetitions.
  double sustainable_rate_eps = 0.0;
  double sustainable_ci_lo_eps = 0.0;
  double sustainable_ci_hi_eps = 0.0;
  /// The offered rate that produced it (0 when nothing sustained).
  double sustainable_offered_eps = 0.0;

  /// Offered rates in search-decision order — two seeded runs of the same
  /// deterministic sweep must produce this sequence identically.
  std::vector<double> step_schedule;
  /// The curve, sorted by strictly increasing offered rate.
  std::vector<FrontierPoint> points;

  std::string ToJson() const;
  static Result<FrontierArtifact> FromJson(std::string_view text);
};

/// \brief Builds the artifact for a single live search (gt_replay
/// --find-capacity): one point per concluded step, CI bands degenerate
/// (n = 1 aggregate per rate; live runs carry no repetitions).
FrontierArtifact FrontierFromSearch(const CapacitySearch& search,
                                    const std::string& sut,
                                    const std::string& workload);

/// \brief Structural validation of an artifact: schema invariants the CI
/// smoke job gates on — points sorted by strictly increasing offered rate,
/// CI bounds ordered around each mean, sustainable rate inside its own
/// band, and latency monotone in offered rate near the knee: once a
/// point's p99 is within half the SLO, it may dip below its predecessor's
/// by at most `monotone_tolerance` (relative). Deeper below the SLO dips
/// are allowed — rate-dependent floors (batch fill time) legitimately
/// shrink as the rate rises.
Status ValidateFrontier(const FrontierArtifact& artifact,
                        double monotone_tolerance = 0.10);

/// \brief Reproducibility check across two seeded runs of the same sweep:
/// identical step schedules (rate sequences equal to 1e-9 relative) and
/// each run's sustainable rate inside the other's CI95 band, degenerate
/// bands widened to ± resolution * mean (a single-rep band carries no
/// spread of its own).
Status CompareFrontiers(const FrontierArtifact& a, const FrontierArtifact& b);

/// \brief Renders the curve as the analyzer's fixed-width table.
std::string FormatFrontierTable(const FrontierArtifact& artifact);

}  // namespace graphtides

#endif  // GRAPHTIDES_HARNESS_CAPACITY_FRONTIER_H_
