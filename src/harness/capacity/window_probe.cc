#include "harness/capacity/window_probe.h"

namespace graphtides {

CapacityProbe::CapacityProbe(const RunTelemetry* telemetry, Signal signal,
                             const Clock* clock)
    : telemetry_(telemetry), signal_(signal), clock_(clock) {
  base_ = Read();
}

CapacityProbe::Cumulative CapacityProbe::Read() const {
  Cumulative c;
  c.marker = telemetry_->markers().LatencySnapshot();
  c.deliver = telemetry_->MergedStageHistograms()[static_cast<size_t>(
      ReplayStage::kDeliver)];
  c.delivered = telemetry_->TotalDelivered();
  c.at = clock_->Now();
  return c;
}

void CapacityProbe::BeginWindow() { base_ = Read(); }

CapacityWindow CapacityProbe::EndWindow() {
  const Cumulative now = Read();
  CapacityWindow window;

  auto delta_of = [](const LatencyHistogram& cur,
                     const LatencyHistogram& base) -> LatencyHistogram {
    Result<LatencyHistogram> delta = cur.DeltaSince(base);
    // Cumulative hub histograms only grow; a failure here would mean the
    // hub was reset mid-run — treat the window as signal-free.
    return delta.ok() ? *delta : LatencyHistogram();
  };
  const LatencyHistogram marker = delta_of(now.marker, base_.marker);
  const LatencyHistogram deliver = delta_of(now.deliver, base_.deliver);

  const LatencyHistogram* chosen = &deliver;
  if (signal_ == Signal::kMarker ||
      (signal_ == Signal::kAuto && !marker.empty())) {
    chosen = &marker;
  }
  window.samples = chosen->count();
  if (window.samples > 0) {
    window.p50_ms = chosen->ValueAtQuantileSeconds(0.5) * 1e3;
    window.p99_ms = chosen->ValueAtQuantileSeconds(0.99) * 1e3;
  }
  const double span_s = (now.at - base_.at).seconds();
  if (span_s > 0.0 && now.delivered >= base_.delivered) {
    window.achieved_rate_eps =
        static_cast<double>(now.delivered - base_.delivered) / span_s;
  }
  base_ = now;
  return window;
}

}  // namespace graphtides
