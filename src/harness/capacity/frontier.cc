#include "harness/capacity/frontier.h"

#include <algorithm>
#include <cmath>

#include "common/json.h"
#include "harness/report.h"

namespace graphtides {

namespace {

bool NearlyEqual(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= 1e-9 * std::max(scale, 1.0);
}

Result<bool> RequireBool(const JsonValue& obj, const std::string& key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end() || it->second.kind != JsonValue::Kind::kBool) {
    return Status::ParseError("missing boolean field \"" + key + "\"");
  }
  return it->second.boolean;
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::string FrontierArtifact::ToJson() const {
  std::string out;
  out.reserve(1024);
  out.append("{\"schema\":\"").append(kFrontierSchema).append("\"");
  out.append(",\"sut\":");
  AppendEscaped(&out, sut);
  out.append(",\"workload\":");
  AppendEscaped(&out, workload);
  out.append(",\"slo_p99_ms\":");
  JsonAppendNumber(&out, slo_p99_ms);
  out.append(",\"seed\":");
  JsonAppendNumber(&out, seed);
  out.append(",\"resolution\":");
  JsonAppendNumber(&out, resolution);
  out.append(",\"complete\":").append(complete ? "true" : "false");
  out.append(",\"sustainable\":{\"rate_eps\":");
  JsonAppendNumber(&out, sustainable_rate_eps);
  out.append(",\"ci_lo_eps\":");
  JsonAppendNumber(&out, sustainable_ci_lo_eps);
  out.append(",\"ci_hi_eps\":");
  JsonAppendNumber(&out, sustainable_ci_hi_eps);
  out.append(",\"offered_eps\":");
  JsonAppendNumber(&out, sustainable_offered_eps);
  out.append("},\"step_schedule\":[");
  for (size_t i = 0; i < step_schedule.size(); ++i) {
    if (i > 0) out.push_back(',');
    JsonAppendNumber(&out, step_schedule[i]);
  }
  out.append("],\"points\":[");
  for (size_t i = 0; i < points.size(); ++i) {
    const FrontierPoint& p = points[i];
    if (i > 0) out.push_back(',');
    out.append("{\"offered_eps\":");
    JsonAppendNumber(&out, p.offered_rate_eps);
    out.append(",\"achieved_eps\":");
    JsonAppendNumber(&out, p.achieved_rate_eps);
    out.append(",\"p50_ms\":");
    JsonAppendNumber(&out, p.p50_ms);
    out.append(",\"p99_ms\":");
    JsonAppendNumber(&out, p.p99_ms);
    out.append(",\"p99_ci_lo_ms\":");
    JsonAppendNumber(&out, p.p99_ci_lo_ms);
    out.append(",\"p99_ci_hi_ms\":");
    JsonAppendNumber(&out, p.p99_ci_hi_ms);
    out.append(",\"n\":");
    JsonAppendNumber(&out, p.n);
    out.append(",\"violated\":").append(p.violated ? "true" : "false");
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

Result<FrontierArtifact> FrontierArtifact::FromJson(std::string_view text) {
  GT_ASSIGN_OR_RETURN(const JsonValue root, ParseJson(text));
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::ParseError("frontier artifact is not a JSON object");
  }
  GT_ASSIGN_OR_RETURN(const std::string schema,
                      JsonRequireString(root, "schema"));
  if (schema != kFrontierSchema) {
    return Status::ParseError("unsupported schema \"" + schema + "\"");
  }
  FrontierArtifact artifact;
  GT_ASSIGN_OR_RETURN(artifact.sut, JsonRequireString(root, "sut"));
  GT_ASSIGN_OR_RETURN(artifact.workload, JsonRequireString(root, "workload"));
  GT_ASSIGN_OR_RETURN(artifact.slo_p99_ms,
                      JsonRequireNumber(root, "slo_p99_ms"));
  artifact.seed = static_cast<uint64_t>(JsonOptionalNumber(root, "seed"));
  artifact.resolution = JsonOptionalNumber(root, "resolution");
  GT_ASSIGN_OR_RETURN(artifact.complete, RequireBool(root, "complete"));

  const auto sustainable = root.object.find("sustainable");
  if (sustainable == root.object.end() ||
      sustainable->second.kind != JsonValue::Kind::kObject) {
    return Status::ParseError("missing \"sustainable\" object");
  }
  const JsonValue& s = sustainable->second;
  GT_ASSIGN_OR_RETURN(artifact.sustainable_rate_eps,
                      JsonRequireNumber(s, "rate_eps"));
  GT_ASSIGN_OR_RETURN(artifact.sustainable_ci_lo_eps,
                      JsonRequireNumber(s, "ci_lo_eps"));
  GT_ASSIGN_OR_RETURN(artifact.sustainable_ci_hi_eps,
                      JsonRequireNumber(s, "ci_hi_eps"));
  artifact.sustainable_offered_eps = JsonOptionalNumber(s, "offered_eps");

  const auto schedule = root.object.find("step_schedule");
  if (schedule == root.object.end() ||
      schedule->second.kind != JsonValue::Kind::kArray) {
    return Status::ParseError("missing \"step_schedule\" array");
  }
  for (const JsonValue& v : schedule->second.array) {
    if (v.kind != JsonValue::Kind::kNumber) {
      return Status::ParseError("non-numeric entry in \"step_schedule\"");
    }
    artifact.step_schedule.push_back(v.number);
  }

  const auto points = root.object.find("points");
  if (points == root.object.end() ||
      points->second.kind != JsonValue::Kind::kArray) {
    return Status::ParseError("missing \"points\" array");
  }
  for (const JsonValue& v : points->second.array) {
    if (v.kind != JsonValue::Kind::kObject) {
      return Status::ParseError("frontier point is not an object");
    }
    FrontierPoint p;
    GT_ASSIGN_OR_RETURN(p.offered_rate_eps,
                        JsonRequireNumber(v, "offered_eps"));
    GT_ASSIGN_OR_RETURN(p.achieved_rate_eps,
                        JsonRequireNumber(v, "achieved_eps"));
    p.p50_ms = JsonOptionalNumber(v, "p50_ms");
    GT_ASSIGN_OR_RETURN(p.p99_ms, JsonRequireNumber(v, "p99_ms"));
    GT_ASSIGN_OR_RETURN(p.p99_ci_lo_ms, JsonRequireNumber(v, "p99_ci_lo_ms"));
    GT_ASSIGN_OR_RETURN(p.p99_ci_hi_ms, JsonRequireNumber(v, "p99_ci_hi_ms"));
    GT_ASSIGN_OR_RETURN(const double n, JsonRequireNumber(v, "n"));
    p.n = static_cast<uint64_t>(n);
    GT_ASSIGN_OR_RETURN(p.violated, RequireBool(v, "violated"));
    artifact.points.push_back(p);
  }
  return artifact;
}

FrontierArtifact FrontierFromSearch(const CapacitySearch& search,
                                    const std::string& sut,
                                    const std::string& workload) {
  FrontierArtifact artifact;
  artifact.sut = sut;
  artifact.workload = workload;
  artifact.slo_p99_ms = search.options().slo_p99_ms;
  artifact.seed = search.options().seed;
  artifact.resolution = search.options().resolution;
  artifact.complete = search.converged();
  artifact.step_schedule = search.StepSchedule();
  for (const CapacityStep& step : search.steps()) {
    FrontierPoint point;
    point.offered_rate_eps = step.offered_rate_eps;
    point.achieved_rate_eps = step.mean_achieved_eps;
    point.p50_ms = step.mean_p50_ms;
    point.p99_ms = step.mean_p99_ms;
    point.p99_ci_lo_ms = step.mean_p99_ms;
    point.p99_ci_hi_ms = step.mean_p99_ms;
    point.n = 1;
    point.violated = step.violated;
    artifact.points.push_back(point);
  }
  std::sort(artifact.points.begin(), artifact.points.end(),
            [](const FrontierPoint& a, const FrontierPoint& b) {
              return a.offered_rate_eps < b.offered_rate_eps;
            });
  const double sustained = search.sustainable_rate_eps();
  if (sustained > 0.0) {
    artifact.sustainable_offered_eps = sustained;
    for (const CapacityStep& step : search.steps()) {
      if (step.offered_rate_eps == sustained) {
        artifact.sustainable_rate_eps = step.mean_achieved_eps;
        break;
      }
    }
    artifact.sustainable_ci_lo_eps = artifact.sustainable_rate_eps;
    artifact.sustainable_ci_hi_eps = artifact.sustainable_rate_eps;
  }
  return artifact;
}

Status ValidateFrontier(const FrontierArtifact& artifact,
                        double monotone_tolerance) {
  if (artifact.slo_p99_ms <= 0.0) {
    return Status::InvalidArgument("slo_p99_ms must be positive");
  }
  if (artifact.points.empty()) {
    return Status::InvalidArgument("frontier has no points");
  }
  if (artifact.step_schedule.empty()) {
    return Status::InvalidArgument("frontier has no step schedule");
  }
  for (size_t i = 0; i < artifact.points.size(); ++i) {
    const FrontierPoint& p = artifact.points[i];
    const std::string at = "point " + std::to_string(i);
    if (p.offered_rate_eps <= 0.0) {
      return Status::InvalidArgument(at + ": offered rate must be positive");
    }
    if (p.achieved_rate_eps < 0.0 || p.p99_ms < 0.0 || p.p50_ms < 0.0) {
      return Status::InvalidArgument(at + ": negative measurement");
    }
    if (p.n == 0) {
      return Status::InvalidArgument(at + ": zero repetitions");
    }
    if (p.p99_ci_lo_ms > p.p99_ms + 1e-9 ||
        p.p99_ms > p.p99_ci_hi_ms + 1e-9) {
      return Status::InvalidArgument(
          at + ": CI95 bounds do not bracket the mean (lo " +
          std::to_string(p.p99_ci_lo_ms) + ", mean " +
          std::to_string(p.p99_ms) + ", hi " +
          std::to_string(p.p99_ci_hi_ms) + ")");
    }
    if (i > 0) {
      const FrontierPoint& prev = artifact.points[i - 1];
      if (p.offered_rate_eps <= prev.offered_rate_eps) {
        return Status::InvalidArgument(
            at + ": offered rates not strictly increasing");
      }
      // Queueing latency is non-decreasing in offered rate once the system
      // approaches capacity. Deep below the SLO (both points under half of
      // it) rate-dependent floors legitimately move the other way — e.g. a
      // batching client's fill time shrinks as the rate rises — so the
      // monotonicity gate only applies once either point is within reach
      // of the SLO, and then allows a bounded relative dip for
      // bucket-resolution wiggle.
      const bool near_slo =
          std::max(p.p99_ms, prev.p99_ms) > 0.5 * artifact.slo_p99_ms;
      if (near_slo && p.p99_ms < prev.p99_ms * (1.0 - monotone_tolerance)) {
        return Status::InvalidArgument(
            at + ": p99 " + std::to_string(p.p99_ms) +
            " ms dips more than " +
            std::to_string(monotone_tolerance * 100.0) + "% below " +
            std::to_string(prev.p99_ms) + " ms at the lower rate");
      }
    }
  }
  if (artifact.sustainable_rate_eps < 0.0) {
    return Status::InvalidArgument("negative sustainable rate");
  }
  if (artifact.sustainable_rate_eps > 0.0 &&
      (artifact.sustainable_ci_lo_eps >
           artifact.sustainable_rate_eps + 1e-9 ||
       artifact.sustainable_rate_eps >
           artifact.sustainable_ci_hi_eps + 1e-9)) {
    return Status::InvalidArgument(
        "sustainable rate outside its own CI95 band");
  }
  return Status::OK();
}

Status CompareFrontiers(const FrontierArtifact& a, const FrontierArtifact& b) {
  if (a.step_schedule.size() != b.step_schedule.size()) {
    return Status::InvalidArgument(
        "step schedules differ in length: " +
        std::to_string(a.step_schedule.size()) + " vs " +
        std::to_string(b.step_schedule.size()));
  }
  for (size_t i = 0; i < a.step_schedule.size(); ++i) {
    if (!NearlyEqual(a.step_schedule[i], b.step_schedule[i])) {
      return Status::InvalidArgument(
          "step " + std::to_string(i) + " diverges: " +
          std::to_string(a.step_schedule[i]) + " vs " +
          std::to_string(b.step_schedule[i]) + " ev/s");
    }
  }
  auto band_contains = [](const FrontierArtifact& host, double rate) {
    // A single-repetition band is degenerate (lo == hi == mean); widen to
    // the search resolution, the finest distinction the sweep could make.
    const double floor = host.resolution * host.sustainable_rate_eps;
    const double lo =
        std::min(host.sustainable_ci_lo_eps, host.sustainable_rate_eps - floor);
    const double hi =
        std::max(host.sustainable_ci_hi_eps, host.sustainable_rate_eps + floor);
    return rate >= lo && rate <= hi;
  };
  if (!band_contains(a, b.sustainable_rate_eps) ||
      !band_contains(b, a.sustainable_rate_eps)) {
    return Status::InvalidArgument(
        "sustainable rates not mutually within CI95 bands: " +
        std::to_string(a.sustainable_rate_eps) + " [" +
        std::to_string(a.sustainable_ci_lo_eps) + ", " +
        std::to_string(a.sustainable_ci_hi_eps) + "] vs " +
        std::to_string(b.sustainable_rate_eps) + " [" +
        std::to_string(b.sustainable_ci_lo_eps) + ", " +
        std::to_string(b.sustainable_ci_hi_eps) + "]");
  }
  return Status::OK();
}

std::string FormatFrontierTable(const FrontierArtifact& artifact) {
  std::string out = SectionHeader("capacity frontier: " + artifact.sut + " / " +
                                  artifact.workload);
  out.append(ConfigBlock({
      {"slo p99 [ms]", TextTable::FormatDouble(artifact.slo_p99_ms, 2)},
      {"seed", std::to_string(artifact.seed)},
      {"steps", std::to_string(artifact.step_schedule.size())},
      {"complete", artifact.complete ? "yes" : "no"},
      {"sustainable [ev/s]",
       TextTable::FormatDouble(artifact.sustainable_rate_eps, 0) + "  (CI95 " +
           TextTable::FormatDouble(artifact.sustainable_ci_lo_eps, 0) + " - " +
           TextTable::FormatDouble(artifact.sustainable_ci_hi_eps, 0) +
           ", offered " +
           TextTable::FormatDouble(artifact.sustainable_offered_eps, 0) + ")"},
  }));
  TextTable table({"offered [ev/s]", "achieved [ev/s]", "p50 [ms]", "p99 [ms]",
                   "p99 CI95 [ms]", "n", "SLO"});
  for (const FrontierPoint& p : artifact.points) {
    table.AddRow({TextTable::FormatDouble(p.offered_rate_eps, 0),
                  TextTable::FormatDouble(p.achieved_rate_eps, 0),
                  TextTable::FormatDouble(p.p50_ms, 3),
                  TextTable::FormatDouble(p.p99_ms, 3),
                  TextTable::FormatDouble(p.p99_ci_lo_ms, 3) + " - " +
                      TextTable::FormatDouble(p.p99_ci_hi_ms, 3),
                  std::to_string(p.n), p.violated ? "violated" : "ok"});
  }
  out.append(table.ToString());
  return out;
}

}  // namespace graphtides
