#include "harness/experiment.h"

namespace graphtides {

std::vector<ExperimentConfig> ExperimentRunner::EnumerateConfigs() const {
  std::vector<ExperimentConfig> configs;
  configs.emplace_back();
  for (const Factor& factor : factors_) {
    std::vector<ExperimentConfig> expanded;
    expanded.reserve(configs.size() * factor.levels.size());
    for (const ExperimentConfig& base : configs) {
      for (double level : factor.levels) {
        ExperimentConfig next = base;
        next[factor.name] = level;
        expanded.push_back(std::move(next));
      }
    }
    configs = std::move(expanded);
  }
  return configs;
}

Result<std::vector<ConfigResult>> ExperimentRunner::Run(
    const RunFn& run) const {
  const std::vector<ExperimentConfig> configs = EnumerateConfigs();
  std::vector<ConfigResult> results;
  results.reserve(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    ConfigResult result;
    result.config = configs[c];
    result.repetitions = options_.repetitions;
    result.accounting.completed = options_.repetitions;
    for (size_t r = 0; r < options_.repetitions; ++r) {
      const uint64_t seed = options_.base_seed + c * 1000003ULL + r;
      GT_ASSIGN_OR_RETURN(const RunOutcome outcome, run(configs[c], seed));
      for (const auto& [metric, value] : outcome) {
        MetricAggregate& agg = result.metrics[metric];
        agg.stats.Add(value);
        agg.samples.push_back(value);
      }
    }
    for (auto& [metric, agg] : result.metrics) {
      agg.ci =
          MeanConfidenceInterval(agg.samples, options_.confidence_level);
    }
    results.push_back(std::move(result));
  }
  return results;
}

Comparison CompareByConfidenceIntervals(const std::vector<double>& samples_a,
                                        const std::vector<double>& samples_b,
                                        double level) {
  Comparison cmp;
  cmp.a = MeanConfidenceInterval(samples_a, level);
  cmp.b = MeanConfidenceInterval(samples_b, level);
  cmp.significant = cmp.a.DisjointFrom(cmp.b);
  cmp.mean_difference = cmp.b.mean - cmp.a.mean;
  return cmp;
}

}  // namespace graphtides
