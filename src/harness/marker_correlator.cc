#include "harness/marker_correlator.h"

#include <algorithm>

#include "harness/telemetry/streaming_marker_correlator.h"

namespace graphtides {

MarkerCorrelationReport CorrelateMarkers(const ResultLog& log,
                                         const std::string& sent_metric,
                                         const std::string& observed_metric) {
  // Thin wrapper over the streaming correlator: replay the log's marker
  // records through it in time order (sends before observations at equal
  // times, matching the historic join's inclusive rule). keep_records with
  // no timeout/budget reproduces the full post-hoc report; unlike the old
  // all-pairs join, each observation is consumed by its match, so duplicate
  // sends of one label correlate one-to-one in stream order.
  struct Entry {
    Timestamp time;
    bool observed = false;
    const std::string* label = nullptr;
  };
  std::vector<Entry> entries;
  for (const LogRecord& r : log.records()) {
    if (r.metric == sent_metric) {
      entries.push_back({r.time, false, &r.text});
    } else if (r.metric == observed_metric) {
      entries.push_back({r.time, true, &r.text});
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return !a.observed && b.observed;
                   });

  StreamingCorrelatorOptions options;
  options.pending_timeout = Duration::FromNanos(
      std::numeric_limits<int64_t>::max());
  options.max_pending = entries.size() + 1;
  options.keep_records = true;
  StreamingMarkerCorrelator correlator(options);
  for (const Entry& e : entries) {
    if (e.observed) {
      correlator.MarkerObserved(*e.label, e.time);
    } else {
      correlator.MarkerSent(*e.label, e.time);
    }
  }
  correlator.Finish();

  MarkerCorrelationReport report;
  for (MatchedMarker& m : correlator.TakeMatched()) {
    report.matched.push_back({std::move(m.label), m.sent, m.observed});
  }
  report.unmatched = correlator.TakeUnmatchedLabels();
  report.latency = correlator.LatencySnapshot();
  return report;
}

std::vector<double> MarkerCorrelationReport::LatenciesSeconds() const {
  std::vector<double> out;
  out.reserve(matched.size());
  for (const MarkerLatency& m : matched) {
    out.push_back(m.latency().seconds());
  }
  return out;
}

}  // namespace graphtides
