#include "harness/marker_correlator.h"

#include <map>

namespace graphtides {

MarkerCorrelationReport CorrelateMarkers(const ResultLog& log,
                                         const std::string& sent_metric,
                                         const std::string& observed_metric) {
  MarkerCorrelationReport report;
  // label -> earliest observation times, in time order per label.
  std::map<std::string, std::vector<Timestamp>> observations;
  for (const LogRecord& r : log.records()) {
    if (r.metric == observed_metric) {
      observations[r.text].push_back(r.time);
    }
  }
  for (const LogRecord& r : log.records()) {
    if (r.metric != sent_metric) continue;
    auto it = observations.find(r.text);
    bool matched = false;
    if (it != observations.end()) {
      for (Timestamp t : it->second) {
        if (t >= r.time) {
          report.matched.push_back({r.text, r.time, t});
          matched = true;
          break;
        }
      }
    }
    if (!matched) report.unmatched.push_back(r.text);
  }
  return report;
}

std::vector<double> MarkerCorrelationReport::LatenciesSeconds() const {
  std::vector<double> out;
  out.reserve(matched.size());
  for (const MarkerLatency& m : matched) {
    out.push_back(m.latency().seconds());
  }
  return out;
}

}  // namespace graphtides
