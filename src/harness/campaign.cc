#include "harness/campaign.h"

#include <atomic>

#include "common/random.h"
#include "harness/report.h"

namespace graphtides {

std::string_view AttemptOutcomeName(AttemptOutcome outcome) {
  switch (outcome) {
    case AttemptOutcome::kCompleted:
      return "completed";
    case AttemptOutcome::kFailed:
      return "failed";
    case AttemptOutcome::kHung:
      return "hung";
  }
  return "unknown";
}

uint64_t CampaignSeed(uint64_t base_seed, size_t config_index,
                      size_t run_index, size_t attempt) {
  const uint64_t slot_seed = base_seed + config_index * 1000003ULL + run_index;
  if (attempt == 0) return slot_seed;  // matches ExperimentRunner exactly
  // Retries draw a fresh seed deterministically derived from the slot and
  // attempt ordinal, so a seed-correlated failure is not replayed verbatim
  // yet the whole campaign stays reproducible.
  Rng rng(slot_seed ^ (0x9e3779b97f4a7c15ULL * attempt));
  return rng.NextU64();
}

Result<CampaignReport> CampaignSupervisor::Run(
    const SupervisedRunFn& run) const {
  if (run == nullptr) {
    return Status::InvalidArgument("campaign run function is null");
  }
  const std::vector<ExperimentConfig> configs =
      ExperimentRunner(factors_, options_.experiment).EnumerateConfigs();

  CampaignReport report;
  report.results.reserve(configs.size());
  MonotonicClock clock;

  for (size_t c = 0; c < configs.size(); ++c) {
    ConfigResult result;
    result.config = configs[c];
    result.repetitions = options_.experiment.repetitions;
    size_t exhausted_slots = 0;

    for (size_t r = 0; r < options_.experiment.repetitions; ++r) {
      bool slot_completed = false;
      Timestamp last_failure_end;
      bool have_failure_end = false;
      for (size_t a = 0; a <= options_.retry_budget; ++a) {
        // Under auto_resume a retry continues the crashed run from its
        // checkpoint, so it keeps the attempt-0 seed (same logical run);
        // plain retries draw a fresh derived seed instead.
        const bool resuming = options_.auto_resume && a > 0;
        AttemptRecord record;
        record.config_index = c;
        record.run_index = r;
        record.attempt = a;
        record.resume = resuming;
        record.seed = CampaignSeed(options_.experiment.base_seed, c, r,
                                   resuming ? 0 : a);
        if (a > 0) {
          ++result.accounting.retried;
          ++report.total_retried;
        }

        CancellationToken token;
        std::atomic<uint64_t> progress{0};
        // Downtime latch: the first heartbeat of a resuming attempt marks
        // the instant the run is live again after the failure.
        std::atomic<int64_t> first_progress_nanos{-1};
        RunWatchdog watchdog(options_.watchdog);
        watchdog.Arm(
            [&progress] { return progress.load(std::memory_order_relaxed); },
            [&token](uint64_t last, Duration stalled) {
              token.RequestCancel(
                  "watchdog: no progress past " + std::to_string(last) +
                  " for " + std::to_string(stalled.seconds()) + "s");
            });

        RunContext ctx;
        ctx.seed = record.seed;
        ctx.config_index = c;
        ctx.run_index = r;
        ctx.attempt = a;
        ctx.resume = resuming;
        ctx.cancel = &token;
        ctx.report_progress = [&progress, &first_progress_nanos,
                               &clock](uint64_t value) {
          int64_t expected = -1;
          first_progress_nanos.compare_exchange_strong(
              expected, clock.Now().nanos(), std::memory_order_relaxed);
          progress.store(value, std::memory_order_relaxed);
        };

        const Timestamp t0 = clock.Now();
        Result<RunOutcome> outcome = run(configs[c], ctx);
        watchdog.Disarm();
        const Timestamp t1 = clock.Now();
        record.elapsed = t1 - t0;

        if (outcome.ok()) {
          record.outcome = AttemptOutcome::kCompleted;
          report.attempts.push_back(record);
          for (const auto& [metric, value] : *outcome) {
            if (metric == kReassignmentsKey) {
              const auto n = static_cast<uint64_t>(value);
              result.accounting.reassignments += n;
              report.total_reassignments += n;
              continue;
            }
            MetricAggregate& agg = result.metrics[metric];
            agg.stats.Add(value);
            agg.samples.push_back(value);
          }
          ++result.accounting.completed;
          ++report.total_completed;
          if (resuming) {
            ++result.accounting.resumed;
            ++report.total_resumed;
            // Downtime: failure instant to the resumed attempt's first
            // heartbeat (its end if it never reported — conservative).
            if (have_failure_end) {
              const int64_t live = first_progress_nanos.load(
                  std::memory_order_relaxed);
              const Timestamp recovered =
                  live >= 0 ? Timestamp::FromNanos(live) : t1;
              const double downtime = (recovered - last_failure_end).seconds();
              result.accounting.downtime_s += downtime;
              ++result.accounting.recoveries;
              report.total_downtime_s += downtime;
              ++report.total_recoveries;
            }
          }
          slot_completed = true;
          break;
        }
        // A cancel that the watchdog requested is a hang; any other error
        // (including a self-cancel) is a plain failure.
        const bool hung =
            outcome.status().IsCancelled() && watchdog.fired();
        record.outcome = hung ? AttemptOutcome::kHung : AttemptOutcome::kFailed;
        record.detail = outcome.status().ToString();
        report.attempts.push_back(record);
        last_failure_end = t1;
        have_failure_end = true;
        if (hung) {
          ++result.accounting.hung;
          ++report.total_hung;
        } else {
          ++result.accounting.failed;
          ++report.total_failed;
        }
      }
      if (!slot_completed) {
        ++exhausted_slots;
        if (exhausted_slots >= options_.quarantine_after) {
          result.accounting.quarantined = true;
          ++report.quarantined_configs;
          break;  // skip this config's remaining slots
        }
      }
    }

    for (auto& [metric, agg] : result.metrics) {
      agg.ci = MeanConfidenceInterval(agg.samples,
                                      options_.experiment.confidence_level);
    }
    report.results.push_back(std::move(result));
  }
  return report;
}

namespace {

std::string FormatConfig(const ExperimentConfig& config) {
  if (config.empty()) return "(default)";
  std::string out;
  for (const auto& [name, level] : config) {
    if (!out.empty()) out += " ";
    out += name + "=" + TextTable::FormatDouble(level, 3);
  }
  return out;
}

}  // namespace

std::string FormatCampaignReport(const CampaignReport& report) {
  TextTable table({"config", "n req", "n eff", "retried", "resumed",
                   "reassigned", "hung", "failed", "mttr s", "quarantined"});
  for (const ConfigResult& result : report.results) {
    const RunAccounting& acc = result.accounting;
    table.AddRow({FormatConfig(result.config),
                  std::to_string(result.repetitions),
                  std::to_string(acc.effective_n()),
                  std::to_string(acc.retried), std::to_string(acc.resumed),
                  std::to_string(acc.reassignments), std::to_string(acc.hung),
                  std::to_string(acc.failed),
                  acc.recoveries > 0 ? TextTable::FormatDouble(acc.mttr_s(), 3)
                                     : "-",
                  acc.quarantined ? "YES" : "no"});
  }
  std::string out = table.ToString();
  if (report.total_recoveries > 0 || report.total_reassignments > 0) {
    out += "recoveries: " + std::to_string(report.total_recoveries) +
           " (slots resumed: " + std::to_string(report.total_resumed) +
           ", ranges reassigned: " +
           std::to_string(report.total_reassignments) +
           ")  total downtime: " +
           TextTable::FormatDouble(report.total_downtime_s, 3) +
           "s  campaign MTTR: " +
           TextTable::FormatDouble(
               report.total_recoveries > 0
                   ? report.total_downtime_s /
                         static_cast<double>(report.total_recoveries)
                   : 0.0,
               3) +
           "s\n";
  }
  for (const ConfigResult& result : report.results) {
    for (const auto& [metric, agg] : result.metrics) {
      out += FormatConfig(result.config) + "  " + metric + ": " +
             TextTable::FormatDouble(agg.ci.mean, 4) + " CI" +
             TextTable::FormatDouble(agg.ci.level * 100.0, 0) + "% [" +
             TextTable::FormatDouble(agg.ci.lower, 4) + ", " +
             TextTable::FormatDouble(agg.ci.upper, 4) + "] over n=" +
             std::to_string(agg.effective_n()) + " completed runs\n";
    }
  }
  return out;
}

}  // namespace graphtides
