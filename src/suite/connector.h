// The GraphTides benchmark suite (§6: "Our long-term goal is to develop
// GraphTides into a benchmark suite — similar to LDBC Graphalytics, but for
// stream-based analytics"). This header defines the platform-agnostic
// connector contract (§3.3: "a generic streaming interface ... adapted by
// platform-specific connectors"); benchmark_suite.h defines the
// standardized workloads and scoring.
//
// Connectors run on the deterministic simulator: ingestion and computation
// consume virtual CPU time on SimProcesses, so radically different
// computation styles (§4.4.2 offline / online / hybrid) are comparable
// under identical workloads.
#ifndef GRAPHTIDES_SUITE_CONNECTOR_H_
#define GRAPHTIDES_SUITE_CONNECTOR_H_

#include <string>
#include <unordered_map>

#include "sim/simulator.h"
#include "stream/event.h"

namespace graphtides {

/// \brief A system under test, adapted to the suite.
///
/// All methods are invoked from simulator callbacks. Ingest must be
/// non-blocking (enqueue and return); applied work is reported through
/// EventsApplied so the suite can measure watermark visibility latency.
class SuiteConnector {
 public:
  virtual ~SuiteConnector() = default;

  /// Connector name for reports.
  virtual std::string Name() const = 0;

  /// One graph event arriving from the replayer.
  virtual void Ingest(const Event& event) = 0;

  /// Number of ingested events whose effect is visible in the internal
  /// graph representation (monotone; drives watermark correlation).
  virtual uint64_t EventsApplied() const = 0;

  /// True when no queued or in-flight work remains.
  virtual bool Idle() const = 0;

  /// \brief The connector's current influence-rank result, normalized to
  /// sum to 1.
  ///
  /// The suite treats this as the "query a result now" operation (§4.4.2):
  /// online systems return a fresh approximation, snapshot systems return
  /// their most recently completed batch result. The call itself is free —
  /// the cost of *producing* the result must have been charged to the
  /// connector's processes.
  virtual std::unordered_map<VertexId, double> CurrentRanks() const = 0;

  /// Age of the result CurrentRanks returns: how long ago the underlying
  /// computation's input graph was current (0 for always-online styles).
  virtual Duration ResultAge() const = 0;

  // --- Crash–recovery contract (§3.2 fault tolerance, runtime) ----------
  //
  // Connectors that can be killed and restarted mid-stream (e.g. wrapped
  // in a RecoverableConnector) override these; the default connector is
  // not recoverable and treats Crash/Recover as no-ops.

  virtual bool SupportsRecovery() const { return false; }
  /// Kills the SUT at the current virtual time: in-flight state is lost
  /// and Ingest becomes a no-op until Recover().
  virtual void Crash() {}
  /// Restarts the SUT; implementations rebuild state (e.g. by replaying a
  /// journal), charging the recovery work to their sim processes.
  virtual void Recover() {}
};

}  // namespace graphtides

#endif  // GRAPHTIDES_SUITE_CONNECTOR_H_
