// RecoverableConnector: wraps any SuiteConnector factory with SUT
// crash–recovery semantics (§3.2 sketches fault-tolerance evaluation but
// the paper never implements it). Crash() discards the live SUT instance;
// Recover() builds a fresh instance from the factory and replays the
// journal of previously ingested events into it, charging the rebuild to
// the new instance's sim processes — so recovery time and post-recovery
// consistency are measurable in virtual time like every other §4.3 metric.
#ifndef GRAPHTIDES_SUITE_RECOVERABLE_CONNECTOR_H_
#define GRAPHTIDES_SUITE_RECOVERABLE_CONNECTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "suite/benchmark_suite.h"
#include "suite/connector.h"

namespace graphtides {

struct RecoverableOptions {
  /// When true (durable input log: the replayer's stream file, a Kafka
  /// topic), events arriving during downtime are journaled and replayed on
  /// recovery. When false they are lost and counted.
  bool journal_during_downtime = true;
};

/// \brief Crash-recoverable decorator around a connector factory.
class RecoverableConnector final : public SuiteConnector {
 public:
  RecoverableConnector(Simulator* sim, ConnectorFactory factory,
                       RecoverableOptions options = {});

  std::string Name() const override;
  void Ingest(const Event& event) override;
  uint64_t EventsApplied() const override;
  bool Idle() const override;
  std::unordered_map<VertexId, double> CurrentRanks() const override;
  Duration ResultAge() const override;

  bool SupportsRecovery() const override { return true; }
  void Crash() override;
  void Recover() override;

  // --- Recovery observability -------------------------------------------

  bool crashed() const { return crashed_; }
  uint64_t crashes() const { return crashes_; }
  /// Events dropped during downtime (journal_during_downtime = false).
  uint64_t lost_events() const { return lost_events_; }
  /// Journal length at the last Recover() — the rebuild workload.
  uint64_t last_recovery_journal() const { return last_recovery_journal_; }
  Timestamp last_recovered_at() const { return last_recovered_at_; }
  Duration total_downtime() const { return downtime_; }
  /// The live SUT's raw applied counter (resets across restarts) — used to
  /// detect catch-up; EventsApplied() stays monotone for watermarks.
  uint64_t inner_applied() const;

 private:
  Simulator* sim_;
  ConnectorFactory factory_;
  RecoverableOptions options_;
  std::unique_ptr<SuiteConnector> inner_;
  /// Dead instances are parked, not destroyed: their pending simulator
  /// callbacks must stay valid until the run ends.
  std::vector<std::unique_ptr<SuiteConnector>> graveyard_;

  std::vector<Event> journal_;
  bool crashed_ = false;
  Timestamp crashed_at_;
  Duration downtime_;
  uint64_t crashes_ = 0;
  uint64_t lost_events_ = 0;
  uint64_t last_recovery_journal_ = 0;
  Timestamp last_recovered_at_;
  /// Monotone floor for EventsApplied across restarts.
  mutable uint64_t reported_applied_ = 0;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_SUITE_RECOVERABLE_CONNECTOR_H_
