// Offline (snapshot/epoch) computation style (§4.4.2: "Offline computations
// are executed on graph snapshots that are reconstructed from the event
// stream (e.g., epoch snapshots in Kineograph)"). One process both applies
// updates and periodically recomputes exact PageRank on a snapshot — while
// the batch computation runs, updates queue behind it, so fast streams
// stall ingestion (the offline trade-off: exact but stale results and
// ingest interference).
#ifndef GRAPHTIDES_SUITE_CONNECTORS_OFFLINE_CONNECTOR_H_
#define GRAPHTIDES_SUITE_CONNECTORS_OFFLINE_CONNECTOR_H_

#include <memory>

#include "graph/graph.h"
#include "sim/process.h"
#include "suite/connector.h"

namespace graphtides {

struct OfflineConnectorOptions {
  /// Virtual CPU cost to apply one graph update.
  Duration update_cost = Duration::FromMicros(120);
  /// Batch recompute cost per edge per iteration.
  Duration compute_cost_per_edge = Duration::FromNanos(400);
  /// Assumed power-iteration count for the cost model.
  size_t compute_iterations = 20;
  /// Epoch length: a recompute is scheduled this often.
  Duration epoch = Duration::FromSeconds(10.0);
  /// Worker threads for the real (host-side) snapshot recompute
  /// (0 = auto, 1 = sequential). Results are thread-count invariant;
  /// this only changes host wall time, never simulated cost.
  size_t compute_threads = 1;
};

/// \brief Epoch-snapshot connector: exact results, stale by up to one epoch
/// plus the recompute time; ingestion stalls during recomputes.
class OfflineSnapshotConnector final : public SuiteConnector {
 public:
  OfflineSnapshotConnector(Simulator* sim, OfflineConnectorOptions options);

  std::string Name() const override { return "offline-snapshot"; }
  void Ingest(const Event& event) override;
  uint64_t EventsApplied() const override { return applied_; }
  bool Idle() const override {
    return updates_pending_ == 0 && !recompute_in_flight_;
  }
  std::unordered_map<VertexId, double> CurrentRanks() const override {
    return published_ranks_;
  }
  Duration ResultAge() const override;

  uint64_t recomputes_completed() const { return recomputes_; }
  const SimProcess& process() const { return *process_; }

 private:
  void ScheduleEpoch();
  void RunRecompute();

  Simulator* sim_;
  OfflineConnectorOptions options_;
  std::unique_ptr<SimProcess> process_;
  Graph graph_;
  uint64_t applied_ = 0;
  uint64_t updates_pending_ = 0;
  uint64_t recomputes_ = 0;
  bool epoch_scheduled_ = false;
  bool recompute_in_flight_ = false;
  /// Updates applied since the last snapshot was taken.
  bool dirty_ = false;

  std::unordered_map<VertexId, double> published_ranks_;
  /// Virtual time at which the published result's input snapshot was taken.
  Timestamp published_snapshot_time_;
  bool has_published_ = false;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_SUITE_CONNECTORS_OFFLINE_CONNECTOR_H_
