// Online computation style (§4.4.2: "Online computations directly process
// incoming graph stream events (e.g., live model of Chronograph)") —
// adapts the chronolite engine to the suite connector contract. Results
// are always immediately queryable approximations; accuracy depends on how
// far the residual computation lags the stream.
#ifndef GRAPHTIDES_SUITE_CONNECTORS_ONLINE_CONNECTOR_H_
#define GRAPHTIDES_SUITE_CONNECTORS_ONLINE_CONNECTOR_H_

#include <memory>

#include "suite/connector.h"
#include "sut/chronolite/chronolite.h"

namespace graphtides {

/// \brief chronolite-backed connector: fresh approximate results.
class OnlineConnector final : public SuiteConnector {
 public:
  OnlineConnector(Simulator* sim, ChronoLiteOptions options)
      : engine_(std::make_unique<ChronoLite>(sim, options)) {}

  std::string Name() const override { return "online-chronolite"; }
  void Ingest(const Event& event) override { engine_->Ingest(event); }
  uint64_t EventsApplied() const override {
    return engine_->updates_applied();
  }
  bool Idle() const override { return engine_->Idle(); }
  std::unordered_map<VertexId, double> CurrentRanks() const override;
  /// The online estimate always reflects the current graph (its error is
  /// unprocessed residual, not snapshot age).
  Duration ResultAge() const override { return Duration::Zero(); }

  const ChronoLite& engine() const { return *engine_; }

 private:
  std::unique_ptr<ChronoLite> engine_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_SUITE_CONNECTORS_ONLINE_CONNECTOR_H_
