#include "suite/connectors/hybrid_connector.h"

#include "algorithms/pagerank.h"
#include "graph/csr.h"

namespace graphtides {

HybridConnector::HybridConnector(Simulator* sim,
                                 HybridConnectorOptions options)
    : sim_(sim), options_(options) {
  updater_ = std::make_unique<SimProcess>(sim, "hybrid-updater");
  computer_ = std::make_unique<SimProcess>(sim, "hybrid-computer");
}

void HybridConnector::Ingest(const Event& event) {
  if (!IsGraphOp(event.type)) return;
  ++updates_pending_;
  Event copy = event;
  updater_->Submit(options_.update_cost, [this, copy] {
    (void)graph_.Apply(copy);
    ++applied_;
    --updates_pending_;
    dirty_ = true;
  });
  if (!epoch_scheduled_ && !compute_in_flight_) ScheduleEpoch();
}

void HybridConnector::ScheduleEpoch() {
  epoch_scheduled_ = true;
  sim_->ScheduleAfter(options_.epoch, [this] {
    epoch_scheduled_ = false;
    if (compute_in_flight_) return;
    if (!dirty_ && has_published_) return;  // nothing new to compute
    compute_in_flight_ = true;
    // Snapshot the *applied* graph now; compute on the dedicated process
    // while the updater keeps ingesting.
    const Timestamp snapshot_time = sim_->Now();
    auto snapshot = std::make_shared<Graph>(graph_.Clone());
    dirty_ = false;
    const int64_t cost_ns =
        options_.compute_cost_per_edge.nanos() *
        static_cast<int64_t>(std::max<size_t>(1, snapshot->num_edges())) *
        static_cast<int64_t>(options_.compute_iterations);
    computer_->Submit(Duration::FromNanos(cost_ns), [this, snapshot,
                                                     snapshot_time] {
      const CsrGraph csr =
          CsrGraph::FromGraph(*snapshot, options_.compute_threads);
      const PageRankResult pr =
          PageRank(csr, {.threads = options_.compute_threads});
      published_ranks_.clear();
      for (CsrGraph::Index v = 0; v < csr.num_vertices(); ++v) {
        published_ranks_[csr.IdOf(v)] = pr.ranks[v];
      }
      published_snapshot_time_ = snapshot_time;
      has_published_ = true;
      ++recomputes_;
      compute_in_flight_ = false;
      // Keep epochs running while the published result is stale.
      if (dirty_ || updates_pending_ > 0) ScheduleEpoch();
    });
  });
}

Duration HybridConnector::ResultAge() const {
  if (!has_published_) return Duration::FromSeconds(1e9);
  return sim_->Now() - published_snapshot_time_;
}

}  // namespace graphtides
