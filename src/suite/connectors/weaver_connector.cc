#include "suite/connectors/weaver_connector.h"

#include <utility>

namespace graphtides {

WeaverConnector::WeaverConnector(Simulator* sim,
                                 WeaverConnectorOptions options)
    : sim_(sim), options_(std::move(options)) {
  if (options_.events_per_tx == 0) options_.events_per_tx = 1;
  store_ = std::make_unique<WeaverLite>(sim_, options_.store);
  store_->SetOnTransactionDone([this] { Drain(); });
}

void WeaverConnector::Ingest(const Event& event) {
  ++ingested_;
  batch_.push_back(event);
  if (batch_.size() >= options_.events_per_tx) {
    ready_.push_back(std::move(batch_));
    batch_.clear();
  } else {
    ArmLinger();
  }
  Drain();
}

void WeaverConnector::ArmLinger() {
  const uint64_t generation = ++linger_generation_;
  sim_->ScheduleAfter(options_.batch_linger, [this, generation] {
    // A newer event re-armed the timer (or the batch already shipped).
    if (generation != linger_generation_ || batch_.empty()) return;
    ready_.push_back(std::move(batch_));
    batch_.clear();
    Drain();
  });
}

void WeaverConnector::Drain() {
  while (!ready_.empty()) {
    if (!store_->TrySubmit(ready_.front())) return;  // backpressure
    ready_.pop_front();
  }
}

bool WeaverConnector::Idle() const {
  return batch_.empty() && ready_.empty() &&
         EventsApplied() >= ingested_;
}

std::unordered_map<VertexId, double> WeaverConnector::CurrentRanks() const {
  std::unordered_map<VertexId, double> ranks;
  double total = 0.0;
  for (size_t i = 0; i < store_->num_shards(); ++i) {
    const Graph& partition = store_->shard_graph(i);
    partition.ForEachVertex([&](VertexId id, const std::string&) {
      const double weight =
          1.0 + static_cast<double>(partition.Degree(id).ValueOr(0));
      ranks[id] += weight;
      total += weight;
    });
  }
  if (total > 0.0) {
    for (auto& [id, weight] : ranks) weight /= total;
  }
  return ranks;
}

}  // namespace graphtides
