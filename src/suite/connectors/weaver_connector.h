// WeaverLite suite adapter: wraps the simulated transactional store (§5.3.1
// Level-0 SUT) in the SuiteConnector contract so the suite — and the
// capacity search driving it — can run the same workloads against a
// store-architecture SUT as against the analytics engines.
//
// The adapter plays the Weaver *client* role from the paper's experiment:
// it batches stream events into transactions (amortizing the timestamper's
// fixed per-tx cost), submits them, and resubmits on backpressure when the
// admission queue refuses. A short linger timer flushes trailing partial
// batches so the connector drains at end of stream (the suite has no
// explicit end-of-stream hook).
#ifndef GRAPHTIDES_SUITE_CONNECTORS_WEAVER_CONNECTOR_H_
#define GRAPHTIDES_SUITE_CONNECTORS_WEAVER_CONNECTOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "suite/connector.h"
#include "sut/weaverlite/weaverlite.h"

namespace graphtides {

struct WeaverConnectorOptions {
  WeaverLiteOptions store;
  /// Stream events batched per transaction ("10 evts/tx" in the paper).
  size_t events_per_tx = 10;
  /// A partial batch older than this is submitted as-is; bounds the tail
  /// latency contribution of batching at low rates and flushes the last
  /// events of the stream.
  Duration batch_linger = Duration::FromMillis(50);
};

/// \brief weaverlite-backed connector: transactional store ingestion.
class WeaverConnector final : public SuiteConnector {
 public:
  WeaverConnector(Simulator* sim, WeaverConnectorOptions options);

  std::string Name() const override { return "store-weaverlite"; }
  void Ingest(const Event& event) override;
  /// Applied plus validation-rejected operations: a rejected op's effect
  /// (nothing) is fully visible, so it must not stall watermarks.
  uint64_t EventsApplied() const override {
    return store_->events_applied() + store_->ops_rejected();
  }
  bool Idle() const override;
  /// Degree-proportional influence proxy over the stored partitions. The
  /// store serves topology queries from its current state, so the result
  /// is always fresh; it is a proxy, not PageRank — capacity runs do not
  /// score accuracy.
  std::unordered_map<VertexId, double> CurrentRanks() const override;
  Duration ResultAge() const override { return Duration::Zero(); }

  const WeaverLite& store() const { return *store_; }

 private:
  void ArmLinger();
  void Drain();

  Simulator* sim_;
  WeaverConnectorOptions options_;
  std::unique_ptr<WeaverLite> store_;

  std::vector<Event> batch_;
  std::deque<std::vector<Event>> ready_;
  uint64_t ingested_ = 0;
  uint64_t linger_generation_ = 0;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_SUITE_CONNECTORS_WEAVER_CONNECTOR_H_
