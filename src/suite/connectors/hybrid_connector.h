// Hybrid computation style (§4.4.2: "Hybrid approaches (e.g.,
// pause/shift/resume in GraphTau) combine both approaches"): updates apply
// on a dedicated updater process (ingestion never stalls), while a second
// compute process periodically recomputes exact PageRank on a snapshot.
// Results are exact-for-a-snapshot like the offline style, but ingestion
// latency matches the online style — the trade-off moves entirely into
// result staleness.
#ifndef GRAPHTIDES_SUITE_CONNECTORS_HYBRID_CONNECTOR_H_
#define GRAPHTIDES_SUITE_CONNECTORS_HYBRID_CONNECTOR_H_

#include <memory>

#include "graph/graph.h"
#include "sim/process.h"
#include "suite/connector.h"

namespace graphtides {

struct HybridConnectorOptions {
  Duration update_cost = Duration::FromMicros(120);
  Duration compute_cost_per_edge = Duration::FromNanos(400);
  size_t compute_iterations = 20;
  Duration epoch = Duration::FromSeconds(10.0);
  /// Worker threads for the real (host-side) snapshot recompute
  /// (0 = auto, 1 = sequential). Results are thread-count invariant;
  /// this only changes host wall time, never simulated cost.
  size_t compute_threads = 1;
};

/// \brief Two-process connector: concurrent ingestion + epoch recomputes.
class HybridConnector final : public SuiteConnector {
 public:
  HybridConnector(Simulator* sim, HybridConnectorOptions options);

  std::string Name() const override { return "hybrid-epoch"; }
  void Ingest(const Event& event) override;
  uint64_t EventsApplied() const override { return applied_; }
  bool Idle() const override {
    return updates_pending_ == 0 && !compute_in_flight_;
  }
  std::unordered_map<VertexId, double> CurrentRanks() const override {
    return published_ranks_;
  }
  Duration ResultAge() const override;

  uint64_t recomputes_completed() const { return recomputes_; }
  const SimProcess& updater() const { return *updater_; }
  const SimProcess& computer() const { return *computer_; }

 private:
  void ScheduleEpoch();

  Simulator* sim_;
  HybridConnectorOptions options_;
  std::unique_ptr<SimProcess> updater_;
  std::unique_ptr<SimProcess> computer_;
  Graph graph_;
  uint64_t applied_ = 0;
  uint64_t updates_pending_ = 0;
  uint64_t recomputes_ = 0;
  bool epoch_scheduled_ = false;
  bool compute_in_flight_ = false;
  /// Updates applied since the last snapshot was taken.
  bool dirty_ = false;

  std::unordered_map<VertexId, double> published_ranks_;
  Timestamp published_snapshot_time_;
  bool has_published_ = false;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_SUITE_CONNECTORS_HYBRID_CONNECTOR_H_
