#include "suite/connectors/offline_connector.h"

#include "algorithms/pagerank.h"
#include "graph/csr.h"

namespace graphtides {

OfflineSnapshotConnector::OfflineSnapshotConnector(
    Simulator* sim, OfflineConnectorOptions options)
    : sim_(sim), options_(options) {
  process_ = std::make_unique<SimProcess>(sim, "offline-connector");
}

void OfflineSnapshotConnector::Ingest(const Event& event) {
  if (!IsGraphOp(event.type)) return;
  ++updates_pending_;
  Event copy = event;
  process_->Submit(options_.update_cost, [this, copy] {
    (void)graph_.Apply(copy);
    ++applied_;
    --updates_pending_;
    dirty_ = true;
  });
  if (!epoch_scheduled_ && !recompute_in_flight_) ScheduleEpoch();
}

void OfflineSnapshotConnector::ScheduleEpoch() {
  epoch_scheduled_ = true;
  sim_->ScheduleAfter(options_.epoch, [this] {
    epoch_scheduled_ = false;
    RunRecompute();
  });
}

void OfflineSnapshotConnector::RunRecompute() {
  // One recompute at a time; nothing to do if the published result is
  // already based on the current graph.
  if (recompute_in_flight_) return;
  if (!dirty_ && has_published_) return;
  recompute_in_flight_ = true;
  // Zero-cost task to serialize behind queued updates, then snapshot and
  // charge the batch computation.
  process_->Submit(Duration::Zero(), [this] {
    const Timestamp snapshot_time = sim_->Now();
    auto snapshot = std::make_shared<Graph>(graph_.Clone());
    dirty_ = false;  // the snapshot reflects every applied update
    const int64_t cost_ns =
        options_.compute_cost_per_edge.nanos() *
        static_cast<int64_t>(std::max<size_t>(1, snapshot->num_edges())) *
        static_cast<int64_t>(options_.compute_iterations);
    process_->Submit(Duration::FromNanos(cost_ns), [this, snapshot,
                                                    snapshot_time] {
      const CsrGraph csr =
          CsrGraph::FromGraph(*snapshot, options_.compute_threads);
      const PageRankResult pr =
          PageRank(csr, {.threads = options_.compute_threads});
      published_ranks_.clear();
      for (CsrGraph::Index v = 0; v < csr.num_vertices(); ++v) {
        published_ranks_[csr.IdOf(v)] = pr.ranks[v];
      }
      published_snapshot_time_ = snapshot_time;
      has_published_ = true;
      ++recomputes_;
      recompute_in_flight_ = false;
      // Re-arm only if the snapshot is already stale again; otherwise the
      // next Ingest re-arms (keeps the simulator quiescible).
      if (dirty_ || updates_pending_ > 0) ScheduleEpoch();
    });
  });
}

Duration OfflineSnapshotConnector::ResultAge() const {
  if (!has_published_) return Duration::FromSeconds(1e9);  // "no result yet"
  return sim_->Now() - published_snapshot_time_;
}

}  // namespace graphtides
