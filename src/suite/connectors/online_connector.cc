#include "suite/connectors/online_connector.h"

namespace graphtides {

std::unordered_map<VertexId, double> OnlineConnector::CurrentRanks() const {
  return engine_->AllRanks();
}

}  // namespace graphtides
