#include "suite/benchmark_suite.h"

#include <algorithm>
#include <deque>

#include "algorithms/pagerank.h"
#include "common/stats.h"
#include "generator/models/blockchain_model.h"
#include "generator/models/ddos_model.h"
#include "generator/models/event_mix_model.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "harness/report.h"
#include "harness/telemetry/latency_histogram.h"
#include "sim/virtual_replayer.h"
#include "suite/recoverable_connector.h"

namespace graphtides {

namespace {

size_t RoundsFor(SuiteSize size) {
  switch (size) {
    case SuiteSize::kTiny:
      return 2000;
    case SuiteSize::kSmall:
      return 20000;
    case SuiteSize::kMedium:
      return 100000;
    case SuiteSize::kLarge:
      return 400000;
  }
  return 20000;
}

SuiteWorkload BuildWorkload(const std::string& name, GeneratorModel* model,
                            size_t rounds, uint64_t seed, double rate) {
  StreamGeneratorOptions gen;
  gen.rounds = rounds;
  gen.seed = seed;
  gen.emit_phase_markers = false;
  auto generated = StreamGenerator(model, gen).Generate();
  SuiteWorkload workload;
  workload.name = name;
  workload.rate_eps = rate;
  if (!generated.ok()) return workload;  // empty workload signals failure
  std::vector<Event> events = std::move(generated).value().events;
  size_t graph_events = 0;
  for (const Event& e : events) {
    if (IsGraphOp(e.type)) ++graph_events;
  }
  // Watermarks every ~5% of the stream.
  std::vector<ScheduleEntry> schedule;
  const size_t step = std::max<size_t>(1, graph_events / 20);
  for (size_t at = step; at < graph_events; at += step) {
    schedule.push_back({at, Event::Marker("WM_" + std::to_string(at))});
  }
  workload.events = ApplyControlSchedule(std::move(events), schedule);
  workload.graph_events = graph_events;
  return workload;
}

}  // namespace

std::vector<SuiteWorkload> StandardWorkloads(SuiteSize size, uint64_t seed) {
  const size_t rounds = RoundsFor(size);
  std::vector<SuiteWorkload> workloads;
  {
    SocialNetworkModel model;
    workloads.push_back(
        BuildWorkload("social", &model, rounds, seed, 2000.0));
  }
  {
    DdosModelOptions options;
    options.attacks = {{rounds / 3, 2 * rounds / 3}};
    DdosModel model(options);
    workloads.push_back(BuildWorkload("ddos", &model, rounds, seed, 4000.0));
  }
  {
    BlockchainModel model;
    workloads.push_back(
        BuildWorkload("blockchain", &model, rounds, seed, 2000.0));
  }
  {
    EventMixModelOptions options;
    options.ba = {std::max<size_t>(rounds / 20, 100),
                  std::max<size_t>(rounds / 400, 10), 5};
    EventMixModel model(options);
    workloads.push_back(BuildWorkload("mix", &model, rounds, seed, 2000.0));
  }
  return workloads;
}

Result<SuiteCaseScore> RunSuiteCase(const SuiteWorkload& workload,
                                    const ConnectorFactory& factory,
                                    const SuiteCaseOptions& options) {
  if (workload.events.empty()) {
    return Status::InvalidArgument("empty workload: " + workload.name);
  }

  // Tracked users: top-k of the final exact ranking.
  Graph final_graph;
  for (const Event& e : workload.events) (void)final_graph.Apply(e);
  const CsrGraph final_csr =
      CsrGraph::FromGraph(final_graph, options.compute_threads);
  const PageRankResult final_pr =
      PageRank(final_csr, {.threads = options.compute_threads});
  std::vector<VertexId> tracked;
  for (CsrGraph::Index idx : TopKByRank(final_pr.ranks, options.track_top_k)) {
    tracked.push_back(final_csr.IdOf(idx));
  }

  Simulator sim;
  std::unique_ptr<SuiteConnector> connector = factory(&sim);
  if (connector == nullptr) {
    return Status::InvalidArgument("connector factory returned null");
  }

  VirtualReplayerOptions replay_options;
  replay_options.base_rate_eps = workload.rate_eps;
  VirtualReplayer replayer(&sim, replay_options);

  struct PendingWatermark {
    uint64_t events_before;
    Timestamp sent;
  };
  std::deque<PendingWatermark> pending_watermarks;
  LatencyHistogram watermark_latencies;

  bool stream_done = false;
  replayer.Start(
      workload.events,
      [&](const Event& e, size_t) { connector->Ingest(e); },
      [&](const std::string&) {
        pending_watermarks.push_back(
            {replayer.events_delivered(), sim.Now()});
      },
      [&] { stream_done = true; });

  struct RankSnapshot {
    Timestamp time;
    std::vector<double> tracked_ranks;
    double result_age_s;
  };
  std::vector<RankSnapshot> snapshots;

  const Timestamp t0 = sim.Now();
  const Timestamp deadline = t0 + options.max_duration;
  Timestamp next_rank_sample = t0 + options.error_interval;
  bool drained_seen = false;
  Timestamp drained_at;
  RunningStats result_age;

  std::function<void()> sample = [&]() {
    // Watermark visibility.
    while (!pending_watermarks.empty() &&
           connector->EventsApplied() >=
               pending_watermarks.front().events_before) {
      watermark_latencies.Record(sim.Now() - pending_watermarks.front().sent);
      pending_watermarks.pop_front();
    }
    // Periodic rank snapshot for retrospective accuracy.
    if (sim.Now() >= next_rank_sample) {
      next_rank_sample = next_rank_sample + options.error_interval;
      const auto ranks = connector->CurrentRanks();
      RankSnapshot snap;
      snap.time = sim.Now();
      for (VertexId v : tracked) {
        auto it = ranks.find(v);
        snap.tracked_ranks.push_back(it == ranks.end() ? 0.0 : it->second);
      }
      const double age = connector->ResultAge().seconds();
      snap.result_age_s = age;
      if (age < 1e8) result_age.Add(age);
      snapshots.push_back(std::move(snap));
    }
    const bool drained =
        stream_done && connector->Idle() && pending_watermarks.empty();
    if (drained && !drained_seen) {
      drained_seen = true;
      drained_at = sim.Now();
    }
    if (drained || sim.Now() >= deadline) return;
    sim.ScheduleAfter(options.sample_interval, sample);
  };
  sim.ScheduleAfter(options.sample_interval, sample);
  sim.RunUntil(deadline);

  // One final snapshot after the run so epoch-style connectors' last
  // published result is always scored. RunUntil advanced the clock to the
  // deadline even for early-drained runs; staleness is therefore taken
  // relative to the drain instant, where the system last changed.
  {
    const auto ranks = connector->CurrentRanks();
    RankSnapshot snap;
    snap.time = sim.Now();
    for (VertexId v : tracked) {
      auto it = ranks.find(v);
      snap.tracked_ranks.push_back(it == ranks.end() ? 0.0 : it->second);
    }
    double age = connector->ResultAge().seconds();
    if (drained_seen) {
      age = std::max(0.0, age - (sim.Now() - drained_at).seconds());
    }
    snap.result_age_s = age;
    if (age < 1e8) result_age.Add(age);
    snapshots.push_back(std::move(snap));
  }

  SuiteCaseScore score;
  score.workload = workload.name;
  score.connector = connector->Name();
  score.graph_events = workload.graph_events;
  score.offered_rate_eps = workload.rate_eps;
  score.drained = drained_seen;
  score.drained_s =
      drained_seen ? (drained_at - t0).seconds() : (sim.Now() - t0).seconds();
  if (score.drained_s > 0) {
    score.applied_rate_eps =
        static_cast<double>(connector->EventsApplied()) / score.drained_s;
  }
  if (!watermark_latencies.empty()) {
    score.watermark_p50_s = watermark_latencies.ValueAtQuantileSeconds(0.5);
    score.watermark_p99_s = watermark_latencies.ValueAtQuantileSeconds(0.99);
  }
  score.mean_result_age_s = result_age.mean();

  // Retrospective accuracy: exact PageRank on the reconstructed graph at
  // each snapshot time.
  const std::vector<Timestamp>& delivery_times = replayer.delivery_times();
  std::vector<const Event*> graph_events;
  graph_events.reserve(delivery_times.size());
  for (const Event& e : workload.events) {
    if (IsGraphOp(e.type)) graph_events.push_back(&e);
  }
  Graph reconstructed;
  size_t cursor = 0;
  RunningStats error_stats;
  double final_error = -1.0;
  for (const RankSnapshot& snap : snapshots) {
    while (cursor < graph_events.size() && cursor < delivery_times.size() &&
           delivery_times[cursor] <= snap.time) {
      (void)reconstructed.Apply(*graph_events[cursor]);
      ++cursor;
    }
    if (reconstructed.num_vertices() == 0) continue;
    const CsrGraph csr =
        CsrGraph::FromGraph(reconstructed, options.compute_threads);
    const PageRankResult exact =
        PageRank(csr, {.threads = options.compute_threads});
    std::vector<double> errors;
    for (size_t i = 0; i < tracked.size(); ++i) {
      CsrGraph::Index idx;
      if (!csr.IndexOf(tracked[i], &idx)) continue;
      if (exact.ranks[idx] <= 0.0) continue;
      errors.push_back(std::abs(snap.tracked_ranks[i] - exact.ranks[idx]) /
                       exact.ranks[idx]);
    }
    if (errors.empty()) continue;
    final_error = Median(std::move(errors));
    error_stats.Add(final_error);
  }
  if (error_stats.count() > 0) {
    score.mean_rank_error = error_stats.mean();
    score.final_rank_error = final_error;
  }
  return score;
}

Result<CapacityPointScore> MeasureCapacityPoint(
    const SuiteWorkload& workload, const ConnectorFactory& factory,
    double rate_eps, const SuiteCaseOptions& options) {
  if (workload.events.empty()) {
    return Status::InvalidArgument("empty workload: " + workload.name);
  }
  if (rate_eps <= 0.0) {
    return Status::InvalidArgument("rate must be positive");
  }

  Simulator sim;
  std::unique_ptr<SuiteConnector> connector = factory(&sim);
  if (connector == nullptr) {
    return Status::InvalidArgument("connector factory returned null");
  }

  VirtualReplayerOptions replay_options;
  replay_options.base_rate_eps = rate_eps;
  VirtualReplayer replayer(&sim, replay_options);

  struct PendingWatermark {
    uint64_t events_before;
    Timestamp sent;
  };
  std::deque<PendingWatermark> pending_watermarks;
  LatencyHistogram watermark_latencies;

  bool stream_done = false;
  replayer.Start(
      workload.events,
      [&](const Event& e, size_t) { connector->Ingest(e); },
      [&](const std::string&) {
        pending_watermarks.push_back(
            {replayer.events_delivered(), sim.Now()});
      },
      [&] { stream_done = true; });

  const Timestamp t0 = sim.Now();
  const Timestamp deadline = t0 + options.max_duration;
  bool drained_seen = false;
  Timestamp drained_at;
  std::function<void()> sample = [&]() {
    while (!pending_watermarks.empty() &&
           connector->EventsApplied() >=
               pending_watermarks.front().events_before) {
      watermark_latencies.Record(sim.Now() - pending_watermarks.front().sent);
      pending_watermarks.pop_front();
    }
    const bool drained =
        stream_done && connector->Idle() && pending_watermarks.empty();
    if (drained && !drained_seen) {
      drained_seen = true;
      drained_at = sim.Now();
    }
    if (drained || sim.Now() >= deadline) return;
    sim.ScheduleAfter(options.sample_interval, sample);
  };
  sim.ScheduleAfter(options.sample_interval, sample);
  sim.RunUntil(deadline);

  if (!drained_seen) {
    // Watermarks still invisible at the deadline are censored observations:
    // their true latency is at least their current age. Recording the age
    // keeps the p99 honest under partial saturation (some watermarks
    // surfaced early, later ones never did).
    for (const PendingWatermark& wm : pending_watermarks) {
      watermark_latencies.Record(sim.Now() - wm.sent);
    }
  }

  CapacityPointScore score;
  score.offered_rate_eps = rate_eps;
  score.drained = drained_seen;
  const double active_s =
      drained_seen ? (drained_at - t0).seconds() : (sim.Now() - t0).seconds();
  if (active_s > 0.0) {
    score.achieved_rate_eps =
        static_cast<double>(connector->EventsApplied()) / active_s;
  }
  score.watermarks_visible = watermark_latencies.count();
  if (!watermark_latencies.empty()) {
    score.watermark_p50_s = watermark_latencies.ValueAtQuantileSeconds(0.5);
    score.watermark_p99_s = watermark_latencies.ValueAtQuantileSeconds(0.99);
  } else if (!drained_seen) {
    // Saturated past the point of any watermark becoming visible within
    // the deadline: report the run's whole span as the latency floor so
    // the search sees an unambiguous violation rather than silence.
    score.watermark_p50_s = active_s;
    score.watermark_p99_s = active_s;
    score.watermarks_visible = 1;
  }
  return score;
}

Result<CrashRecoveryReport> RunCrashRecoveryCase(
    const SuiteWorkload& workload, const ConnectorFactory& factory,
    const CrashRecoveryOptions& options) {
  if (workload.events.empty()) {
    return Status::InvalidArgument("empty workload: " + workload.name);
  }

  // Tracked users: top-k of the final exact ranking (as in RunSuiteCase).
  Graph final_graph;
  for (const Event& e : workload.events) (void)final_graph.Apply(e);
  const CsrGraph final_csr =
      CsrGraph::FromGraph(final_graph, options.compute_threads);
  const PageRankResult final_pr =
      PageRank(final_csr, {.threads = options.compute_threads});
  std::vector<VertexId> tracked;
  for (CsrGraph::Index idx : TopKByRank(final_pr.ranks, options.track_top_k)) {
    tracked.push_back(final_csr.IdOf(idx));
  }

  Simulator sim;
  RecoverableOptions rec_options;
  rec_options.journal_during_downtime = options.journal_during_downtime;
  RecoverableConnector connector(&sim, factory, rec_options);

  VirtualReplayerOptions replay_options;
  replay_options.base_rate_eps = workload.rate_eps;
  VirtualReplayer replayer(&sim, replay_options);

  bool stream_done = false;
  replayer.Start(
      workload.events,
      [&](const Event& e, size_t) { connector.Ingest(e); }, {},
      [&] { stream_done = true; });

  const Timestamp t0 = sim.Now();
  const Timestamp deadline = t0 + options.max_duration;
  uint64_t applied_at_crash = 0;
  sim.ScheduleAfter(options.kill_after, [&] {
    applied_at_crash = connector.EventsApplied();
    connector.Crash();
  });
  sim.ScheduleAfter(options.kill_after + options.downtime,
                    [&] { connector.Recover(); });

  bool catchup_seen = false;
  Timestamp catchup_at;
  bool drained_seen = false;
  Timestamp drained_at;
  std::function<void()> sample = [&]() {
    const bool post_recovery = connector.crashes() > 0 && !connector.crashed();
    if (!catchup_seen && post_recovery &&
        connector.inner_applied() >= applied_at_crash) {
      catchup_seen = true;
      catchup_at = sim.Now();
    }
    const bool drained = stream_done && post_recovery && connector.Idle();
    if (drained && !drained_seen) {
      drained_seen = true;
      drained_at = sim.Now();
    }
    if (drained || sim.Now() >= deadline) return;
    sim.ScheduleAfter(options.sample_interval, sample);
  };
  sim.ScheduleAfter(options.sample_interval, sample);
  sim.RunUntil(deadline);

  CrashRecoveryReport report;
  report.workload = workload.name;
  report.connector = connector.Name();
  report.crash_at_s = options.kill_after.seconds();
  report.recover_at_s = (options.kill_after + options.downtime).seconds();
  report.journal_events = connector.last_recovery_journal();
  report.lost_events = connector.lost_events();
  report.recovered = catchup_seen;
  if (catchup_seen) {
    report.recovery_catchup_s =
        (catchup_at - connector.last_recovered_at()).seconds();
  }
  report.drained = drained_seen;
  report.drained_s =
      drained_seen ? (drained_at - t0).seconds() : (sim.Now() - t0).seconds();

  const auto ranks = connector.CurrentRanks();
  std::vector<double> errors;
  for (VertexId v : tracked) {
    CsrGraph::Index idx;
    if (!final_csr.IndexOf(v, &idx)) continue;
    if (final_pr.ranks[idx] <= 0.0) continue;
    const auto it = ranks.find(v);
    const double got = it == ranks.end() ? 0.0 : it->second;
    errors.push_back(std::abs(got - final_pr.ranks[idx]) /
                     final_pr.ranks[idx]);
  }
  if (!errors.empty()) report.final_rank_error = Median(std::move(errors));
  return report;
}

Result<std::vector<SuiteCaseScore>> RunSuite(
    const std::vector<SuiteWorkload>& workloads,
    const std::vector<SuiteEntry>& connectors,
    const SuiteCaseOptions& options) {
  std::vector<SuiteCaseScore> scores;
  for (const SuiteWorkload& workload : workloads) {
    for (const SuiteEntry& entry : connectors) {
      GT_ASSIGN_OR_RETURN(SuiteCaseScore score,
                          RunSuiteCase(workload, entry.factory, options));
      if (!entry.name.empty()) score.connector = entry.name;
      scores.push_back(std::move(score));
    }
  }
  return scores;
}

std::string FormatSuiteReport(const std::vector<SuiteCaseScore>& scores) {
  TextTable table({"workload", "connector", "events", "rate [ev/s]",
                   "applied [ev/s]", "drained [s]", "wm p50 [s]",
                   "wm p99 [s]", "mean err", "final err", "staleness [s]"});
  for (const SuiteCaseScore& s : scores) {
    table.AddRow({s.workload, s.connector, std::to_string(s.graph_events),
                  TextTable::FormatDouble(s.offered_rate_eps, 0),
                  TextTable::FormatDouble(s.applied_rate_eps, 0),
                  TextTable::FormatDouble(s.drained_s, 1) +
                      (s.drained ? "" : "+"),
                  TextTable::FormatDouble(s.watermark_p50_s, 3),
                  TextTable::FormatDouble(s.watermark_p99_s, 3),
                  TextTable::FormatDouble(s.mean_rank_error, 4),
                  TextTable::FormatDouble(s.final_rank_error, 4),
                  TextTable::FormatDouble(s.mean_result_age_s, 2)});
  }
  return table.ToString();
}

}  // namespace graphtides
