#include "suite/recoverable_connector.h"

#include <algorithm>

namespace graphtides {

RecoverableConnector::RecoverableConnector(Simulator* sim,
                                           ConnectorFactory factory,
                                           RecoverableOptions options)
    : sim_(sim),
      factory_(std::move(factory)),
      options_(options),
      inner_(factory_(sim)) {}

std::string RecoverableConnector::Name() const {
  return "recoverable-" + (inner_ ? inner_->Name() : std::string("down"));
}

void RecoverableConnector::Ingest(const Event& event) {
  if (crashed_) {
    if (options_.journal_during_downtime) {
      journal_.push_back(event);
    } else {
      ++lost_events_;
    }
    return;
  }
  journal_.push_back(event);
  inner_->Ingest(event);
}

uint64_t RecoverableConnector::EventsApplied() const {
  // Monotone across restarts: during a rebuild the fresh instance's
  // counter climbs from zero back through the journal; watermark
  // correlation must never observe it going backwards.
  if (inner_) {
    reported_applied_ = std::max(reported_applied_, inner_->EventsApplied());
  }
  return reported_applied_;
}

uint64_t RecoverableConnector::inner_applied() const {
  return inner_ ? inner_->EventsApplied() : 0;
}

bool RecoverableConnector::Idle() const {
  return !crashed_ && inner_ != nullptr && inner_->Idle();
}

std::unordered_map<VertexId, double> RecoverableConnector::CurrentRanks()
    const {
  // A crashed system has no queryable result.
  if (crashed_ || inner_ == nullptr) return {};
  return inner_->CurrentRanks();
}

Duration RecoverableConnector::ResultAge() const {
  if (crashed_) return sim_->Now() - crashed_at_;
  return inner_ ? inner_->ResultAge() : Duration::Zero();
}

void RecoverableConnector::Crash() {
  if (crashed_) return;
  reported_applied_ = EventsApplied();
  crashed_ = true;
  crashed_at_ = sim_->Now();
  ++crashes_;
  graveyard_.push_back(std::move(inner_));
  inner_ = nullptr;
}

void RecoverableConnector::Recover() {
  if (!crashed_) return;
  crashed_ = false;
  downtime_ += sim_->Now() - crashed_at_;
  inner_ = factory_(sim_);
  last_recovery_journal_ = journal_.size();
  last_recovered_at_ = sim_->Now();
  // Replay the durable input log. Ingest is non-blocking (it enqueues sim
  // work), so the rebuild's CPU cost unfolds over virtual time on the new
  // instance's processes — that queue-drain time IS the recovery latency.
  for (const Event& e : journal_) inner_->Ingest(e);
}

}  // namespace graphtides
