// The GraphTides benchmark suite (§6 future work, made concrete):
// standardized graph-stream workloads in size classes, a fixed computation
// goal (influence rank), and a scoring harness that runs any SuiteConnector
// under identical conditions and reports the §4.3 metric set — ingest
// throughput (HB), watermark visibility latency (LB), result accuracy (HB),
// result staleness (LB) — enabling the "unbiased system comparisons" the
// paper calls for.
#ifndef GRAPHTIDES_SUITE_BENCHMARK_SUITE_H_
#define GRAPHTIDES_SUITE_BENCHMARK_SUITE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "stream/event.h"
#include "suite/connector.h"

namespace graphtides {

/// Workload size classes (Graphalytics-style). kTiny exists for CI smoke
/// runs — capacity sweeps replay a workload dozens of times, so the smoke
/// lane needs a class an order of magnitude below kSmall.
enum class SuiteSize { kTiny, kSmall, kMedium, kLarge };

/// \brief One standardized benchmark workload.
struct SuiteWorkload {
  std::string name;
  /// Stream including watermark markers and phase markers.
  std::vector<Event> events;
  size_t graph_events = 0;
  /// Replay rate for this workload.
  double rate_eps = 2000.0;
};

/// \brief The standard workload set for a size class: the three §2.4 use
/// cases plus the Table 3 mix, each with watermarks every ~5% of the
/// stream. Deterministic in `seed`.
std::vector<SuiteWorkload> StandardWorkloads(SuiteSize size,
                                             uint64_t seed = 42);

struct SuiteCaseOptions {
  /// Accuracy is scored on the k most influential users of the final graph.
  size_t track_top_k = 10;
  Duration sample_interval = Duration::FromMillis(100);
  /// Exact-reference evaluation cadence (batch PageRank per point).
  Duration error_interval = Duration::FromSeconds(10.0);
  Duration max_duration = Duration::FromSeconds(600.0);
  /// Worker threads for the exact-reference batch computations (0 = auto,
  /// 1 = sequential). Scores are thread-count invariant.
  size_t compute_threads = 1;
};

/// \brief Scores of one (workload, connector) cell.
struct SuiteCaseScore {
  std::string workload;
  std::string connector;

  uint64_t graph_events = 0;
  double offered_rate_eps = 0.0;
  /// Mean ingest rate actually sustained (events applied / active time).
  double applied_rate_eps = 0.0;
  /// Virtual time from first event until the connector fully drained.
  double drained_s = 0.0;
  bool drained = false;

  /// Watermark ingestion-to-visibility latency (seconds).
  double watermark_p50_s = 0.0;
  double watermark_p99_s = 0.0;

  /// Median relative rank error over tracked users, averaged over the
  /// evaluation points (and at the final point).
  double mean_rank_error = -1.0;
  double final_rank_error = -1.0;
  /// Mean age of the queryable result across samples (staleness, LB).
  double mean_result_age_s = 0.0;
};

using ConnectorFactory =
    std::function<std::unique_ptr<SuiteConnector>(Simulator*)>;

/// \brief Runs one connector against one workload and scores it.
Result<SuiteCaseScore> RunSuiteCase(const SuiteWorkload& workload,
                                    const ConnectorFactory& factory,
                                    const SuiteCaseOptions& options = {});

// --- Capacity measurement (closed-loop search, DESIGN.md §16) ------------

/// \brief One capacity-search step's measurement at a fixed offered rate.
struct CapacityPointScore {
  double offered_rate_eps = 0.0;
  /// Events applied per virtual second of active time.
  double achieved_rate_eps = 0.0;
  /// Watermark ingestion-to-visibility latency over the run (seconds).
  double watermark_p50_s = 0.0;
  double watermark_p99_s = 0.0;
  /// Watermarks that became visible (the latency sample count).
  uint64_t watermarks_visible = 0;
  bool drained = false;
};

/// \brief Measures one (workload, connector) cell at `rate_eps`, skipping
/// the accuracy machinery (no reference PageRank) — the cheap repeated
/// primitive a CapacitySearch drives. Deterministic in the workload and
/// connector (virtual time).
Result<CapacityPointScore> MeasureCapacityPoint(
    const SuiteWorkload& workload, const ConnectorFactory& factory,
    double rate_eps, const SuiteCaseOptions& options = {});

/// \brief Runs a full suite: every workload against every connector.
struct SuiteEntry {
  std::string name;  // display name (overrides the connector's own)
  ConnectorFactory factory;
};

Result<std::vector<SuiteCaseScore>> RunSuite(
    const std::vector<SuiteWorkload>& workloads,
    const std::vector<SuiteEntry>& connectors,
    const SuiteCaseOptions& options = {});

/// \brief Renders scores as the suite's comparison table.
std::string FormatSuiteReport(const std::vector<SuiteCaseScore>& scores);

// --- SUT crash–recovery (§3.2 fault-tolerance evaluation, implemented) ---

struct CrashRecoveryOptions {
  /// Virtual time from replay start until the SUT is killed.
  Duration kill_after = Duration::FromSeconds(10.0);
  /// How long the SUT stays down before it is restarted.
  Duration downtime = Duration::FromSeconds(2.0);
  /// Durable input log: events arriving while down are journaled and
  /// replayed on recovery (false = lost and counted).
  bool journal_during_downtime = true;
  /// Consistency is scored on the k most influential users of the final
  /// graph, like RunSuiteCase.
  size_t track_top_k = 10;
  Duration sample_interval = Duration::FromMillis(100);
  Duration max_duration = Duration::FromSeconds(600.0);
  /// Worker threads for the exact-reference batch computations (0 = auto,
  /// 1 = sequential). Reports are thread-count invariant.
  size_t compute_threads = 1;
};

/// \brief Outcome of one kill–restart experiment.
struct CrashRecoveryReport {
  std::string workload;
  std::string connector;
  double crash_at_s = 0.0;
  double recover_at_s = 0.0;
  /// Rebuild workload: journaled events replayed at recovery.
  uint64_t journal_events = 0;
  /// Events lost during downtime (journal_during_downtime = false).
  uint64_t lost_events = 0;
  /// Virtual seconds from restart until the fresh SUT instance re-applied
  /// as many events as the crashed one had (catch-up latency).
  double recovery_catchup_s = -1.0;
  bool recovered = false;
  /// Virtual time until the stream ended and the SUT fully drained.
  double drained_s = 0.0;
  bool drained = false;
  /// Median relative top-k rank error at the end vs exact PageRank on the
  /// final graph — post-recovery consistency.
  double final_rank_error = -1.0;
};

/// \brief Runs one workload against a connector that is killed mid-stream
/// and restarted after a fixed downtime (via RecoverableConnector).
Result<CrashRecoveryReport> RunCrashRecoveryCase(
    const SuiteWorkload& workload, const ConnectorFactory& factory,
    const CrashRecoveryOptions& options = {});

}  // namespace graphtides

#endif  // GRAPHTIDES_SUITE_BENCHMARK_SUITE_H_
