// SocialNetworkModel: a growing social graph of persons and follow
// relations — the synthetic stand-in for the paper's converted LDBC SNB
// workload ("only persons and connections", Table 4) and for the social
// network use case of §2.4.
//
// Dynamics: the network grows steadily (new users, new follow edges with
// preferential attachment, so influencers emerge), with light churn
// (unfollows, departures biased toward weakly connected users) and profile
// updates.
#ifndef GRAPHTIDES_GENERATOR_MODELS_SOCIAL_NETWORK_MODEL_H_
#define GRAPHTIDES_GENERATOR_MODELS_SOCIAL_NETWORK_MODEL_H_

#include <string>

#include "generator/bootstrap.h"
#include "generator/model.h"

namespace graphtides {

struct SocialNetworkModelOptions {
  /// Seed community size and connectivity.
  size_t seed_users = 100;
  size_t seed_follows_per_user = 3;

  /// Evolution-phase event probabilities (normalized internally).
  double p_new_user = 0.15;
  double p_follow = 0.60;
  double p_profile_update = 0.15;
  double p_unfollow = 0.07;
  double p_user_leaves = 0.03;

  /// Preferential-attachment strength for follow targets (>= 0).
  double influencer_bias = 1.0;
  /// Departure bias toward weakly connected users (< 0).
  double departure_bias = -1.5;

  size_t min_users = 10;
};

class SocialNetworkModel : public GeneratorModel {
 public:
  explicit SocialNetworkModel(SocialNetworkModelOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "social_network"; }

  Status BootstrapGraph(GraphBuilder& builder, GeneratorContext& ctx) override;
  EventType NextEventType(GeneratorContext& ctx) override;
  std::optional<VertexId> SelectVertex(EventType type,
                                       GeneratorContext& ctx) override;
  std::optional<EdgeId> SelectEdge(EventType type,
                                   GeneratorContext& ctx) override;
  std::string InsertVertexState(VertexId id, GeneratorContext& ctx) override;
  std::string UpdateVertexState(VertexId id, GeneratorContext& ctx) override;
  std::string InsertEdgeState(EdgeId edge, GeneratorContext& ctx) override;
  bool AllowRemoveVertex(VertexId id, GeneratorContext& ctx) override;

 private:
  SocialNetworkModelOptions options_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_GENERATOR_MODELS_SOCIAL_NETWORK_MODEL_H_
