#include "generator/models/event_mix_model.h"

#include <cmath>

namespace graphtides {

Status EventMixModel::BootstrapGraph(GraphBuilder& builder,
                                     GeneratorContext& ctx) {
  if (std::abs(options_.mix.Sum() - 1.0) > 1e-6) {
    return Status::InvalidArgument("event mix must sum to 1, got " +
                                   std::to_string(options_.mix.Sum()));
  }
  switch (options_.bootstrap) {
    case EventMixModelOptions::Bootstrap::kBarabasiAlbert:
      return BootstrapBarabasiAlbert(builder, ctx, options_.ba);
    case EventMixModelOptions::Bootstrap::kErdosRenyi:
      return BootstrapErdosRenyi(builder, ctx, options_.er);
    case EventMixModelOptions::Bootstrap::kNone:
      return Status::OK();
  }
  return Status::Internal("unhandled bootstrap kind");
}

EventType EventMixModel::NextEventType(GeneratorContext& ctx) {
  const double x = ctx.rng().NextDouble() * options_.mix.Sum();
  double acc = options_.mix.create_vertex;
  if (x < acc) return EventType::kAddVertex;
  acc += options_.mix.remove_vertex;
  if (x < acc) return EventType::kRemoveVertex;
  acc += options_.mix.update_vertex;
  if (x < acc) return EventType::kUpdateVertex;
  acc += options_.mix.create_edge;
  if (x < acc) return EventType::kAddEdge;
  acc += options_.mix.remove_edge;
  if (x < acc) return EventType::kRemoveEdge;
  return EventType::kUpdateEdge;
}

std::optional<VertexId> EventMixModel::SelectVertex(EventType type,
                                                    GeneratorContext& ctx) {
  switch (type) {
    case EventType::kAddVertex:
      return ctx.NextVertexId();
    case EventType::kRemoveVertex:
      // Table 3: Zipf by degree, biased toward less connected vertices.
      return ctx.topology().DegreeBiasedVertex(ctx.rng(),
                                               options_.remove_vertex_bias);
    case EventType::kUpdateVertex:
      // Table 3: uniform-random.
      return ctx.topology().UniformVertex(ctx.rng());
    default:
      return GeneratorModel::SelectVertex(type, ctx);
  }
}

std::optional<EdgeId> EventMixModel::SelectEdge(EventType type,
                                                GeneratorContext& ctx) {
  if (type != EventType::kAddEdge) {
    return GeneratorModel::SelectEdge(type, ctx);
  }
  // Table 3: source uniform-random, target Zipf by degree biased toward
  // strongly connected vertices.
  const TopologyIndex& topo = ctx.topology();
  for (int attempt = 0; attempt < 32; ++attempt) {
    const auto src = topo.UniformVertex(ctx.rng());
    if (!src.has_value()) return std::nullopt;
    const auto dst =
        topo.DegreeBiasedVertex(ctx.rng(), options_.edge_target_bias);
    if (!dst.has_value()) return std::nullopt;
    if (*src != *dst && !topo.HasEdge(*src, *dst)) {
      return EdgeId{*src, *dst};
    }
  }
  return std::nullopt;
}

std::string EventMixModel::InsertVertexState(VertexId id,
                                             GeneratorContext& ctx) {
  return "{\"v\":" + std::to_string(id) +
         ",\"r\":" + std::to_string(ctx.round()) + "}";
}

std::string EventMixModel::UpdateVertexState(VertexId id,
                                             GeneratorContext& ctx) {
  return "{\"v\":" + std::to_string(id) +
         ",\"r\":" + std::to_string(ctx.round()) + "}";
}

std::string EventMixModel::InsertEdgeState(EdgeId, GeneratorContext& ctx) {
  return "{\"w\":" + std::to_string(ctx.rng().NextInt(1, 100)) + "}";
}

std::string EventMixModel::UpdateEdgeState(EdgeId, GeneratorContext& ctx) {
  return "{\"w\":" + std::to_string(ctx.rng().NextInt(1, 100)) + "}";
}

bool EventMixModel::AllowRemoveVertex(VertexId, GeneratorContext& ctx) {
  return ctx.topology().num_vertices() > options_.min_vertices;
}

}  // namespace graphtides
