// EventMixModel: a configurable-ratio workload model. This is the exact
// shape of the paper's Weaver experiment workload (Table 3): a
// Barabási–Albert bootstrap followed by an evolution phase drawn from fixed
// event-type ratios, with Zipf-by-degree selection functions.
#ifndef GRAPHTIDES_GENERATOR_MODELS_EVENT_MIX_MODEL_H_
#define GRAPHTIDES_GENERATOR_MODELS_EVENT_MIX_MODEL_H_

#include <string>

#include "generator/bootstrap.h"
#include "generator/model.h"

namespace graphtides {

/// \brief Probabilities per event type; must sum to ~1.
struct EventMix {
  double create_vertex = 0.10;
  double remove_vertex = 0.05;
  double update_vertex = 0.35;
  double create_edge = 0.35;
  double remove_edge = 0.15;
  double update_edge = 0.00;

  double Sum() const {
    return create_vertex + remove_vertex + update_vertex + create_edge +
           remove_edge + update_edge;
  }
};

struct EventMixModelOptions {
  /// Which bootstrap to run.
  enum class Bootstrap { kBarabasiAlbert, kErdosRenyi, kNone };
  Bootstrap bootstrap = Bootstrap::kBarabasiAlbert;
  /// Table 3 default: n = 10000, m0 = 250, M = 50.
  BarabasiAlbertParams ba{10000, 250, 50};
  ErdosRenyiParams er{};

  EventMix mix;

  /// Selection biases, Table 3 semantics:
  ///  * vertex removal biased toward *less* connected vertices,
  ///  * vertex updates uniform,
  ///  * edge source uniform, edge target biased toward *strongly*
  ///    connected vertices.
  double remove_vertex_bias = -1.0;
  double edge_target_bias = 1.0;

  /// Keep at least this many vertices (removals are vetoed below this).
  size_t min_vertices = 2;
};

class EventMixModel : public GeneratorModel {
 public:
  explicit EventMixModel(EventMixModelOptions options)
      : options_(std::move(options)) {}

  std::string Name() const override { return "event_mix"; }

  Status BootstrapGraph(GraphBuilder& builder, GeneratorContext& ctx) override;
  EventType NextEventType(GeneratorContext& ctx) override;
  std::optional<VertexId> SelectVertex(EventType type,
                                       GeneratorContext& ctx) override;
  std::optional<EdgeId> SelectEdge(EventType type,
                                   GeneratorContext& ctx) override;
  std::string InsertVertexState(VertexId id, GeneratorContext& ctx) override;
  std::string UpdateVertexState(VertexId id, GeneratorContext& ctx) override;
  std::string InsertEdgeState(EdgeId edge, GeneratorContext& ctx) override;
  std::string UpdateEdgeState(EdgeId edge, GeneratorContext& ctx) override;
  bool AllowRemoveVertex(VertexId id, GeneratorContext& ctx) override;

  const EventMixModelOptions& options() const { return options_; }

 private:
  EventMixModelOptions options_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_GENERATOR_MODELS_EVENT_MIX_MODEL_H_
