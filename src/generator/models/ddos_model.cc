#include "generator/models/ddos_model.h"

#include "generator/graph_builder.h"

namespace graphtides {

Status DdosModel::BootstrapGraph(GraphBuilder& builder,
                                 GeneratorContext& ctx) {
  servers_.clear();
  for (size_t i = 0; i < options_.num_servers; ++i) {
    GT_ASSIGN_OR_RETURN(const VertexId id,
                        builder.AddVertex("{\"kind\":\"server\"}"));
    servers_.push_back(id);
  }
  for (size_t i = 0; i < options_.initial_clients; ++i) {
    GT_ASSIGN_OR_RETURN(const VertexId id,
                        builder.AddVertex("{\"kind\":\"client\"}"));
    // Every initial client opens one flow to a random server.
    const VertexId server = servers_[ctx.rng().NextBounded(servers_.size())];
    GT_RETURN_NOT_OK(builder.AddEdge(id, server, "{\"bytes\":0,\"pkts\":0}"));
  }
  return Status::OK();
}

bool DdosModel::InAttack(uint64_t round) const {
  for (const DdosAttackWindow& w : options_.attacks) {
    if (round >= w.start_round && round < w.end_round) return true;
  }
  return false;
}

bool DdosModel::AttackEvent(GeneratorContext& ctx) const {
  return InAttack(ctx.round()) && ctx.rng().NextBool(options_.attack_intensity);
}

EventType DdosModel::NextEventType(GeneratorContext& ctx) {
  if (AttackEvent(ctx)) {
    // Attack traffic: mostly edge updates on existing bot flows, plus a
    // steady influx of fresh bots and new flows toward the victim.
    const double x = ctx.rng().NextDouble();
    if (x < 0.20) return EventType::kAddVertex;   // new bot
    if (x < 0.45) return EventType::kAddEdge;     // bot -> victim flow
    return EventType::kUpdateEdge;                // flood packets
  }
  const std::vector<double> weights = {
      options_.p_new_client, options_.p_client_leaves, options_.p_new_flow,
      options_.p_flow_update, options_.p_flow_closes};
  switch (ctx.rng().NextWeighted(weights)) {
    case 0:
      return EventType::kAddVertex;
    case 1:
      return EventType::kRemoveVertex;
    case 2:
      return EventType::kAddEdge;
    case 3:
      return EventType::kUpdateEdge;
    case 4:
      return EventType::kRemoveEdge;
    default:
      return EventType::kUpdateEdge;
  }
}

std::optional<VertexId> DdosModel::SelectVertex(EventType type,
                                                GeneratorContext& ctx) {
  switch (type) {
    case EventType::kAddVertex:
      return ctx.NextVertexId();
    case EventType::kRemoveVertex: {
      // Only clients leave; servers are fixed infrastructure.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const auto v = ctx.topology().UniformVertex(ctx.rng());
        if (!v.has_value()) return std::nullopt;
        bool is_server = false;
        for (VertexId s : servers_) {
          if (s == *v) {
            is_server = true;
            break;
          }
        }
        if (!is_server) return v;
      }
      return std::nullopt;
    }
    default:
      return GeneratorModel::SelectVertex(type, ctx);
  }
}

std::optional<EdgeId> DdosModel::SelectEdge(EventType type,
                                            GeneratorContext& ctx) {
  const TopologyIndex& topo = ctx.topology();
  const bool attack = AttackEvent(ctx);
  if (type == EventType::kAddEdge) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto client = topo.UniformVertex(ctx.rng());
      if (!client.has_value()) return std::nullopt;
      const VertexId server =
          attack ? victim() : servers_[ctx.rng().NextBounded(servers_.size())];
      if (*client != server && !topo.HasEdge(*client, server)) {
        return EdgeId{*client, server};
      }
    }
    return std::nullopt;
  }
  if (type == EventType::kUpdateEdge && attack) {
    // Hammer a botnet flow into the victim; flood traffic originates from
    // the bots, not from coincidental benign clients of the same server.
    std::optional<EdgeId> into_victim;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto e = topo.UniformEdge(ctx.rng());
      if (!e.has_value()) return std::nullopt;
      if (e->dst != victim()) continue;
      if (bots_.contains(e->src)) return e;
      if (!into_victim.has_value()) into_victim = e;
    }
    if (into_victim.has_value()) return into_victim;
  }
  return topo.UniformEdge(ctx.rng());
}

std::string DdosModel::InsertVertexState(VertexId id, GeneratorContext& ctx) {
  if (InAttack(ctx.round())) {
    bots_.insert(id);
    return "{\"kind\":\"client\",\"origin\":\"botnet\"}";
  }
  return "{\"kind\":\"client\"}";
}

std::string DdosModel::InsertEdgeState(EdgeId, GeneratorContext&) {
  return "{\"bytes\":0,\"pkts\":0}";
}

std::string DdosModel::UpdateEdgeState(EdgeId, GeneratorContext& ctx) {
  const int64_t bytes = InAttack(ctx.round())
                            ? ctx.rng().NextInt(60000, 150000)
                            : ctx.rng().NextInt(100, 5000);
  return "{\"bytes\":" + std::to_string(bytes) +
         ",\"pkts\":" + std::to_string(bytes / 1000 + 1) + "}";
}

bool DdosModel::AllowRemoveVertex(VertexId, GeneratorContext& ctx) {
  return ctx.topology().num_vertices() >
         options_.num_servers + options_.min_clients;
}

}  // namespace graphtides
