#include "generator/models/blockchain_model.h"

#include "generator/graph_builder.h"

namespace graphtides {

Status BlockchainModel::BootstrapGraph(GraphBuilder& builder,
                                       GeneratorContext& ctx) {
  balances_.clear();
  for (size_t i = 0; i < options_.initial_wallets; ++i) {
    GT_ASSIGN_OR_RETURN(
        const VertexId id,
        builder.AddVertex("{\"balance\":" +
                          std::to_string(options_.initial_balance) + "}"));
    balances_[id] = options_.initial_balance;
  }
  (void)ctx;
  return Status::OK();
}

EventType BlockchainModel::NextEventType(GeneratorContext& ctx) {
  const std::vector<double> weights = {options_.p_new_wallet,
                                       options_.p_transaction,
                                       options_.p_balance_snapshot};
  switch (ctx.rng().NextWeighted(weights)) {
    case 0:
      return EventType::kAddVertex;
    case 1: {
      // Pick the counterparties now so we can tell first-contact
      // transactions (CREATE_EDGE) from repeat ones (UPDATE_EDGE).
      const TopologyIndex& topo = ctx.topology();
      for (int attempt = 0; attempt < 32; ++attempt) {
        const auto src = topo.UniformVertex(ctx.rng());
        const auto dst =
            topo.DegreeBiasedVertex(ctx.rng(), options_.hub_bias);
        if (!src.has_value() || !dst.has_value() || *src == *dst) continue;
        if (balances_[*src] <= 0) continue;  // broke wallets cannot send
        pending_pair_ = EdgeId{*src, *dst};
        return topo.HasEdge(*src, *dst) ? EventType::kUpdateEdge
                                        : EventType::kAddEdge;
      }
      return EventType::kUpdateVertex;  // fall back to a snapshot
    }
    case 2:
    default:
      return EventType::kUpdateVertex;
  }
}

std::optional<VertexId> BlockchainModel::SelectVertex(EventType type,
                                                      GeneratorContext& ctx) {
  if (type == EventType::kAddVertex) return ctx.NextVertexId();
  // Balance snapshots favor active wallets.
  return ctx.topology().DegreeBiasedVertex(ctx.rng(), 1.0);
}

std::optional<EdgeId> BlockchainModel::SelectEdge(EventType type,
                                                  GeneratorContext& ctx) {
  if (pending_pair_.has_value()) {
    const EdgeId pair = *pending_pair_;
    pending_pair_.reset();
    return pair;
  }
  return GeneratorModel::SelectEdge(type, ctx);
}

int64_t BlockchainModel::Transact(VertexId src, VertexId dst, Rng& rng) {
  int64_t& src_balance = balances_[src];
  if (src_balance <= 0) return 0;
  const int64_t cap = std::max<int64_t>(1, src_balance / 10);
  const int64_t amount = rng.NextInt(1, cap);
  src_balance -= amount;
  balances_[dst] += amount;
  return amount;
}

std::string BlockchainModel::InsertVertexState(VertexId id,
                                               GeneratorContext&) {
  balances_[id] = 0;
  return "{\"balance\":0}";
}

std::string BlockchainModel::UpdateVertexState(VertexId id,
                                               GeneratorContext&) {
  return "{\"balance\":" + std::to_string(balances_[id]) + "}";
}

std::string BlockchainModel::InsertEdgeState(EdgeId edge,
                                             GeneratorContext& ctx) {
  const int64_t amount = Transact(edge.src, edge.dst, ctx.rng());
  return "{\"tx\":1,\"amount\":" + std::to_string(amount) +
         ",\"total\":" + std::to_string(amount) + "}";
}

std::string BlockchainModel::UpdateEdgeState(EdgeId edge,
                                             GeneratorContext& ctx) {
  const int64_t amount = Transact(edge.src, edge.dst, ctx.rng());
  return "{\"tx\":1,\"amount\":" + std::to_string(amount) + "}";
}

int64_t BlockchainModel::BalanceOf(VertexId wallet) const {
  auto it = balances_.find(wallet);
  return it == balances_.end() ? 0 : it->second;
}

}  // namespace graphtides
