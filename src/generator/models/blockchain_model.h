// BlockchainModel: the distributed-ledger use case of §2.4 — wallets as
// vertices, pairwise transaction channels as edges. Transactions between a
// connected pair are UPDATE_EDGE events carrying the amount; first-contact
// transactions create the edge. Wallet balances are tracked by the model
// and periodically written back as UPDATE_VERTEX events, so a consumer can
// maintain live balance statistics from the stream alone.
#ifndef GRAPHTIDES_GENERATOR_MODELS_BLOCKCHAIN_MODEL_H_
#define GRAPHTIDES_GENERATOR_MODELS_BLOCKCHAIN_MODEL_H_

#include <optional>
#include <string>
#include <unordered_map>

#include "generator/model.h"

namespace graphtides {

struct BlockchainModelOptions {
  size_t initial_wallets = 100;
  int64_t initial_balance = 1000000;  // in smallest units
  double p_new_wallet = 0.05;
  double p_transaction = 0.80;
  double p_balance_snapshot = 0.15;
  /// Transaction counterparties are degree-biased ("exchanges" emerge).
  double hub_bias = 1.2;
};

class BlockchainModel : public GeneratorModel {
 public:
  explicit BlockchainModel(BlockchainModelOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "blockchain"; }

  Status BootstrapGraph(GraphBuilder& builder, GeneratorContext& ctx) override;
  EventType NextEventType(GeneratorContext& ctx) override;
  std::optional<VertexId> SelectVertex(EventType type,
                                       GeneratorContext& ctx) override;
  std::optional<EdgeId> SelectEdge(EventType type,
                                   GeneratorContext& ctx) override;
  std::string InsertVertexState(VertexId id, GeneratorContext& ctx) override;
  std::string UpdateVertexState(VertexId id, GeneratorContext& ctx) override;
  std::string InsertEdgeState(EdgeId edge, GeneratorContext& ctx) override;
  std::string UpdateEdgeState(EdgeId edge, GeneratorContext& ctx) override;

  /// Model-side balance (ground truth for consumers).
  int64_t BalanceOf(VertexId wallet) const;

 private:
  /// Moves a random affordable amount src -> dst; returns the amount.
  int64_t Transact(VertexId src, VertexId dst, Rng& rng);

  BlockchainModelOptions options_;
  std::unordered_map<VertexId, int64_t> balances_;
  /// Counterparties chosen ahead of time by NextEventType.
  std::optional<EdgeId> pending_pair_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_GENERATOR_MODELS_BLOCKCHAIN_MODEL_H_
