// DdosModel: the computer-network use case of §2.4 — a fixed set of
// monitored servers, a churning population of remote clients, and flow
// edges carrying traffic counters in their state.
//
// During configured attack windows, a botnet of fresh clients floods one
// victim server: bursts of CREATE_VERTEX (bots), CREATE_EDGE (bot→victim),
// and hot UPDATE_EDGE traffic on the victim's incoming flows. This produces
// the highly localized temporal workload pattern the paper calls out
// ("huge numbers of state update operations on a single vertex", §3.2).
#ifndef GRAPHTIDES_GENERATOR_MODELS_DDOS_MODEL_H_
#define GRAPHTIDES_GENERATOR_MODELS_DDOS_MODEL_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "generator/model.h"

namespace graphtides {

struct DdosAttackWindow {
  uint64_t start_round = 0;
  uint64_t end_round = 0;  // exclusive
};

struct DdosModelOptions {
  size_t num_servers = 8;
  size_t initial_clients = 200;
  /// Normal-phase behavior.
  double p_new_client = 0.10;
  double p_client_leaves = 0.05;
  double p_new_flow = 0.25;
  double p_flow_update = 0.55;
  double p_flow_closes = 0.05;
  /// During an attack, this fraction of events targets the victim.
  double attack_intensity = 0.9;
  std::vector<DdosAttackWindow> attacks;
  size_t min_clients = 10;
};

class DdosModel : public GeneratorModel {
 public:
  explicit DdosModel(DdosModelOptions options = {}) : options_(options) {}

  std::string Name() const override { return "ddos"; }

  Status BootstrapGraph(GraphBuilder& builder, GeneratorContext& ctx) override;
  EventType NextEventType(GeneratorContext& ctx) override;
  std::optional<VertexId> SelectVertex(EventType type,
                                       GeneratorContext& ctx) override;
  std::optional<EdgeId> SelectEdge(EventType type,
                                   GeneratorContext& ctx) override;
  std::string InsertVertexState(VertexId id, GeneratorContext& ctx) override;
  std::string InsertEdgeState(EdgeId edge, GeneratorContext& ctx) override;
  std::string UpdateEdgeState(EdgeId edge, GeneratorContext& ctx) override;
  bool AllowRemoveVertex(VertexId id, GeneratorContext& ctx) override;

  /// Server vertex IDs (fixed after bootstrap).
  const std::vector<VertexId>& servers() const { return servers_; }
  /// Clients created during attack windows (ground truth for evaluations).
  const std::unordered_set<VertexId>& bots() const { return bots_; }
  /// The server attacked during windows (first server).
  VertexId victim() const { return servers_.empty() ? 0 : servers_.front(); }

  bool InAttack(uint64_t round) const;

 private:
  /// True if the current round's event should serve the attack.
  bool AttackEvent(GeneratorContext& ctx) const;

  DdosModelOptions options_;
  std::vector<VertexId> servers_;
  std::unordered_set<VertexId> bots_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_GENERATOR_MODELS_DDOS_MODEL_H_
