#include "generator/models/social_network_model.h"

namespace graphtides {

Status SocialNetworkModel::BootstrapGraph(GraphBuilder& builder,
                                          GeneratorContext& ctx) {
  BarabasiAlbertParams params;
  params.n = options_.seed_users;
  params.m0 = std::min<size_t>(10, std::max<size_t>(2, options_.seed_users / 10));
  params.m = options_.seed_follows_per_user;
  return BootstrapBarabasiAlbert(builder, ctx, params);
}

EventType SocialNetworkModel::NextEventType(GeneratorContext& ctx) {
  const std::vector<double> weights = {
      options_.p_new_user, options_.p_follow, options_.p_profile_update,
      options_.p_unfollow, options_.p_user_leaves};
  switch (ctx.rng().NextWeighted(weights)) {
    case 0:
      return EventType::kAddVertex;
    case 1:
      return EventType::kAddEdge;
    case 2:
      return EventType::kUpdateVertex;
    case 3:
      return EventType::kRemoveEdge;
    case 4:
      return EventType::kRemoveVertex;
    default:
      return EventType::kAddEdge;
  }
}

std::optional<VertexId> SocialNetworkModel::SelectVertex(
    EventType type, GeneratorContext& ctx) {
  switch (type) {
    case EventType::kAddVertex:
      return ctx.NextVertexId();
    case EventType::kRemoveVertex:
      // Departures hit weakly connected users far more often.
      return ctx.topology().DegreeBiasedVertex(ctx.rng(),
                                               options_.departure_bias);
    case EventType::kUpdateVertex:
      return ctx.topology().UniformVertex(ctx.rng());
    default:
      return GeneratorModel::SelectVertex(type, ctx);
  }
}

std::optional<EdgeId> SocialNetworkModel::SelectEdge(EventType type,
                                                     GeneratorContext& ctx) {
  const TopologyIndex& topo = ctx.topology();
  if (type == EventType::kAddEdge) {
    // A uniformly chosen user follows an influencer-biased target.
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto follower = topo.UniformVertex(ctx.rng());
      if (!follower.has_value()) return std::nullopt;
      const auto target =
          topo.DegreeBiasedVertex(ctx.rng(), options_.influencer_bias);
      if (!target.has_value()) return std::nullopt;
      if (*follower != *target && !topo.HasEdge(*follower, *target)) {
        return EdgeId{*follower, *target};
      }
    }
    return std::nullopt;
  }
  return topo.UniformEdge(ctx.rng());
}

std::string SocialNetworkModel::InsertVertexState(VertexId id,
                                                  GeneratorContext& ctx) {
  return "{\"user\":\"u" + std::to_string(id) +
         "\",\"joined\":" + std::to_string(ctx.round()) + "}";
}

std::string SocialNetworkModel::UpdateVertexState(VertexId id,
                                                  GeneratorContext& ctx) {
  return "{\"user\":\"u" + std::to_string(id) +
         "\",\"bio_rev\":" + std::to_string(ctx.round()) + "}";
}

std::string SocialNetworkModel::InsertEdgeState(EdgeId,
                                                GeneratorContext& ctx) {
  return "{\"since\":" + std::to_string(ctx.round()) + "}";
}

bool SocialNetworkModel::AllowRemoveVertex(VertexId, GeneratorContext& ctx) {
  return ctx.topology().num_vertices() > options_.min_users;
}

}  // namespace graphtides
