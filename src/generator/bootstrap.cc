#include "generator/bootstrap.h"

#include <cmath>
#include <vector>

namespace graphtides {

Status BootstrapBarabasiAlbert(GraphBuilder& builder, GeneratorContext& ctx,
                               const BarabasiAlbertParams& params) {
  if (params.m0 < 2 || params.n < params.m0 || params.m == 0) {
    return Status::InvalidArgument(
        "BarabasiAlbert requires m0 >= 2, n >= m0, m >= 1");
  }
  Rng& rng = ctx.rng();

  // Seed vertices.
  std::vector<VertexId> seed;
  seed.reserve(params.m0);
  for (size_t i = 0; i < params.m0; ++i) {
    GT_ASSIGN_OR_RETURN(const VertexId id, builder.AddVertex());
    seed.push_back(id);
  }
  // Seed connectivity: a directed ring plus random chords, so every seed
  // vertex has nonzero degree before attachment starts.
  for (size_t i = 0; i < params.m0; ++i) {
    GT_RETURN_NOT_OK(
        builder.AddEdge(seed[i], seed[(i + 1) % params.m0]));
  }
  const size_t chords = std::min(params.m, params.m0 - 1);
  for (size_t i = 0; i < params.m0 && chords > 1; ++i) {
    for (size_t c = 1; c < chords; ++c) {
      const VertexId target = seed[rng.NextBounded(params.m0)];
      if (target == seed[i] || ctx.topology().HasEdge(seed[i], target)) {
        continue;
      }
      GT_RETURN_NOT_OK(builder.AddEdge(seed[i], target));
    }
  }

  // Preferential attachment phase. The repeated-endpoints list gives exact
  // degree-proportional sampling.
  for (size_t i = params.m0; i < params.n; ++i) {
    GT_ASSIGN_OR_RETURN(const VertexId v, builder.AddVertex());
    const size_t attach = std::min(params.m, i);
    size_t added = 0;
    size_t guard = 0;
    while (added < attach && guard < attach * 64) {
      ++guard;
      const auto target = ctx.topology().PreferentialVertex(rng);
      if (!target.has_value() || *target == v ||
          ctx.topology().HasEdge(v, *target)) {
        continue;
      }
      GT_RETURN_NOT_OK(builder.AddEdge(v, *target));
      ++added;
    }
  }
  return Status::OK();
}

Status BootstrapErdosRenyi(GraphBuilder& builder, GeneratorContext& ctx,
                           const ErdosRenyiParams& params) {
  if (params.p < 0.0 || params.p > 1.0) {
    return Status::InvalidArgument("ErdosRenyi requires 0 <= p <= 1");
  }
  Rng& rng = ctx.rng();
  std::vector<VertexId> ids;
  ids.reserve(params.n);
  for (size_t i = 0; i < params.n; ++i) {
    GT_ASSIGN_OR_RETURN(const VertexId id, builder.AddVertex());
    ids.push_back(id);
  }
  if (params.p == 0.0 || params.n < 2) return Status::OK();

  // Geometric skipping over the n*(n-1) ordered non-loop pairs.
  const double log_q = std::log(1.0 - params.p);
  const uint64_t total = static_cast<uint64_t>(params.n) *
                         static_cast<uint64_t>(params.n - 1);
  uint64_t idx = 0;
  const bool dense = params.p >= 1.0;
  while (idx < total) {
    if (!dense) {
      double u;
      do {
        u = rng.NextDouble();
      } while (u <= 0.0);
      idx += static_cast<uint64_t>(std::floor(std::log(u) / log_q));
      if (idx >= total) break;
    }
    // Decode the pair: row-major over (src, dst != src).
    const uint64_t src_idx = idx / (params.n - 1);
    uint64_t dst_idx = idx % (params.n - 1);
    if (dst_idx >= src_idx) ++dst_idx;  // skip the diagonal
    GT_RETURN_NOT_OK(builder.AddEdge(ids[src_idx], ids[dst_idx]));
    ++idx;
  }
  return Status::OK();
}

}  // namespace graphtides
