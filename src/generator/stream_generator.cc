#include "generator/stream_generator.h"

#include <algorithm>

namespace graphtides {

Result<Event> StreamGenerator::BuildEvent(EventType type,
                                          GeneratorContext& ctx,
                                          TopologyIndex& topology) {
  switch (type) {
    case EventType::kAddVertex: {
      const auto id = model_->SelectVertex(type, ctx);
      if (!id.has_value() || topology.HasVertex(*id)) {
        return Status::NotFound("no vertex candidate");
      }
      return Event::AddVertex(*id, model_->InsertVertexState(*id, ctx));
    }
    case EventType::kRemoveVertex: {
      const auto id = model_->SelectVertex(type, ctx);
      if (!id.has_value() || !topology.HasVertex(*id)) {
        return Status::NotFound("no vertex candidate");
      }
      if (!model_->AllowRemoveVertex(*id, ctx)) {
        return Status::NotFound("removal vetoed");
      }
      return Event::RemoveVertex(*id);
    }
    case EventType::kUpdateVertex: {
      const auto id = model_->SelectVertex(type, ctx);
      if (!id.has_value() || !topology.HasVertex(*id)) {
        return Status::NotFound("no vertex candidate");
      }
      return Event::UpdateVertex(*id, model_->UpdateVertexState(*id, ctx));
    }
    case EventType::kAddEdge: {
      const auto edge = model_->SelectEdge(type, ctx);
      if (!edge.has_value() || edge->src == edge->dst ||
          !topology.HasVertex(edge->src) || !topology.HasVertex(edge->dst) ||
          topology.HasEdge(edge->src, edge->dst)) {
        return Status::NotFound("no edge candidate");
      }
      return Event::AddEdge(edge->src, edge->dst,
                            model_->InsertEdgeState(*edge, ctx));
    }
    case EventType::kRemoveEdge: {
      const auto edge = model_->SelectEdge(type, ctx);
      if (!edge.has_value() || !topology.HasEdge(edge->src, edge->dst)) {
        return Status::NotFound("no edge candidate");
      }
      if (!model_->AllowRemoveEdge(*edge, ctx)) {
        return Status::NotFound("removal vetoed");
      }
      return Event::RemoveEdge(edge->src, edge->dst);
    }
    case EventType::kUpdateEdge: {
      const auto edge = model_->SelectEdge(type, ctx);
      if (!edge.has_value() || !topology.HasEdge(edge->src, edge->dst)) {
        return Status::NotFound("no edge candidate");
      }
      return Event::UpdateEdge(edge->src, edge->dst,
                               model_->UpdateEdgeState(*edge, ctx));
    }
    case EventType::kMarker:
    case EventType::kSetRate:
    case EventType::kPause:
      return Status::InvalidArgument(
          "models must produce graph-changing event types");
  }
  return Status::Internal("unhandled event type");
}

Result<GeneratedStream> StreamGenerator::Generate() {
  GeneratedStream result;
  TopologyIndex topology;
  Rng rng(options_.seed);
  GeneratorContext ctx(&topology, &rng);

  // Phase (i): bootstrap.
  GraphBuilder builder(&topology, &ctx, &result.events);
  GT_RETURN_NOT_OK(model_->BootstrapGraph(builder, ctx));
  result.bootstrap_events = builder.events_emitted();
  if (options_.emit_phase_markers) {
    result.events.push_back(Event::Marker("BOOTSTRAP_DONE"));
  }
  if (options_.bootstrap_pause > Duration::Zero()) {
    result.events.push_back(Event::Pause(options_.bootstrap_pause));
  }

  // Phase (ii): evolution rounds.
  size_t consecutive_skips = 0;
  size_t marker_counter = 0;
  for (size_t round = 1; round <= options_.rounds; ++round) {
    ctx.set_round(round);
    bool emitted = false;
    for (size_t attempt = 0; attempt < options_.max_retries_per_round;
         ++attempt) {
      const EventType type = model_->NextEventType(ctx);
      if (!IsGraphOp(type)) {
        return Status::InvalidArgument(
            "model " + model_->Name() +
            " returned a non-graph event type from NextEventType");
      }
      Result<Event> candidate = BuildEvent(type, ctx, topology);
      if (!candidate.ok()) {
        if (candidate.status().IsNotFound()) continue;
        return candidate.status();
      }
      Event event = std::move(candidate).value();
      if (!model_->Constraint(event, ctx)) continue;

      // Mirror into the topology shadow; selection already guaranteed
      // validity, so a failure here is an engine bug.
      Status applied;
      switch (event.type) {
        case EventType::kAddVertex:
          applied = topology.AddVertex(event.vertex);
          ctx.BumpNextVertexId(event.vertex);
          break;
        case EventType::kRemoveVertex:
          applied = topology.RemoveVertex(event.vertex);
          break;
        case EventType::kAddEdge:
          applied = topology.AddEdge(event.edge.src, event.edge.dst);
          break;
        case EventType::kRemoveEdge:
          applied = topology.RemoveEdge(event.edge.src, event.edge.dst);
          break;
        default:
          break;  // state updates do not alter topology
      }
      if (!applied.ok()) {
        return applied.WithContext("generator engine inconsistency at round " +
                                   std::to_string(round));
      }
      result.events.push_back(std::move(event));
      ++result.evolution_events;
      emitted = true;
      break;
    }
    if (!emitted) {
      ++result.skipped_rounds;
      if (++consecutive_skips > options_.max_consecutive_skips) {
        return Status::Internal(
            "model " + model_->Name() + " produced no applicable event for " +
            std::to_string(consecutive_skips) + " consecutive rounds");
      }
      continue;
    }
    consecutive_skips = 0;
    if (options_.marker_interval != 0 &&
        result.evolution_events % options_.marker_interval == 0) {
      result.events.push_back(
          Event::Marker("MARK_" + std::to_string(++marker_counter)));
    }
  }
  if (options_.emit_phase_markers) {
    result.events.push_back(Event::Marker("STREAM_END"));
  }
  result.final_vertices = topology.num_vertices();
  result.final_edges = topology.num_edges();
  return result;
}

std::vector<Event> ApplyControlSchedule(std::vector<Event> events,
                                        std::vector<ScheduleEntry> schedule) {
  std::vector<Event> out;
  out.reserve(events.size() + schedule.size());
  size_t graph_events = 0;
  size_t next = 0;
  auto drain_due = [&]() {
    while (next < schedule.size() &&
           schedule[next].after_graph_events <= graph_events) {
      out.push_back(schedule[next].event);
      ++next;
    }
  };
  drain_due();
  for (Event& e : events) {
    const bool is_graph = IsGraphOp(e.type);
    out.push_back(std::move(e));
    if (is_graph) {
      ++graph_events;
      drain_due();
    }
  }
  // Entries past the end of the stream are appended.
  while (next < schedule.size()) {
    out.push_back(schedule[next].event);
    ++next;
  }
  return out;
}

}  // namespace graphtides
