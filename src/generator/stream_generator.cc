#include "generator/stream_generator.h"

#include <algorithm>
#include <charconv>
#include <cstring>

namespace graphtides {

bool StreamGenerator::BuildEvent(EventType type, GeneratorContext& ctx,
                                 TopologyIndex& topology, Event* out,
                                 Status* error) {
  // Candidate misses (no selection, vetoes, duplicates) are the expected
  // retry path of every round, so they return false without constructing a
  // Status message — only genuine engine errors pay for one.
  switch (type) {
    case EventType::kAddVertex: {
      const auto id = model_->SelectVertex(type, ctx);
      if (!id.has_value() || topology.HasVertex(*id)) return false;
      *out = Event::AddVertex(*id, model_->InsertVertexState(*id, ctx));
      return true;
    }
    case EventType::kRemoveVertex: {
      const auto id = model_->SelectVertex(type, ctx);
      if (!id.has_value() || !topology.HasVertex(*id)) return false;
      if (!model_->AllowRemoveVertex(*id, ctx)) return false;
      *out = Event::RemoveVertex(*id);
      return true;
    }
    case EventType::kUpdateVertex: {
      const auto id = model_->SelectVertex(type, ctx);
      if (!id.has_value() || !topology.HasVertex(*id)) return false;
      *out = Event::UpdateVertex(*id, model_->UpdateVertexState(*id, ctx));
      return true;
    }
    case EventType::kAddEdge: {
      const auto edge = model_->SelectEdge(type, ctx);
      if (!edge.has_value() || edge->src == edge->dst ||
          !topology.HasVertex(edge->src) || !topology.HasVertex(edge->dst) ||
          topology.HasEdge(edge->src, edge->dst)) {
        return false;
      }
      *out = Event::AddEdge(edge->src, edge->dst,
                            model_->InsertEdgeState(*edge, ctx));
      return true;
    }
    case EventType::kRemoveEdge: {
      const auto edge = model_->SelectEdge(type, ctx);
      if (!edge.has_value() || !topology.HasEdge(edge->src, edge->dst)) {
        return false;
      }
      if (!model_->AllowRemoveEdge(*edge, ctx)) return false;
      *out = Event::RemoveEdge(edge->src, edge->dst);
      return true;
    }
    case EventType::kUpdateEdge: {
      const auto edge = model_->SelectEdge(type, ctx);
      if (!edge.has_value() || !topology.HasEdge(edge->src, edge->dst)) {
        return false;
      }
      *out = Event::UpdateEdge(edge->src, edge->dst,
                               model_->UpdateEdgeState(*edge, ctx));
      return true;
    }
    case EventType::kMarker:
    case EventType::kSetRate:
    case EventType::kPause:
      *error = Status::InvalidArgument(
          "models must produce graph-changing event types");
      return false;
  }
  *error = Status::Internal("unhandled event type");
  return false;
}

Result<GenerateSummary> StreamGenerator::GenerateTo(EventConsumer& consumer) {
  GenerateSummary summary;
  TopologyIndex topology;
  Rng rng(options_.seed);
  GeneratorContext ctx(&topology, &rng);

  // Phase (i): bootstrap.
  GraphBuilder builder(&topology, &ctx, &consumer);
  GT_RETURN_NOT_OK(model_->BootstrapGraph(builder, ctx));
  summary.bootstrap_events = builder.events_emitted();
  summary.total_events = summary.bootstrap_events;
  if (options_.emit_phase_markers) {
    GT_RETURN_NOT_OK(consumer.Consume(Event::Marker("BOOTSTRAP_DONE")));
    ++summary.total_events;
  }
  if (options_.bootstrap_pause > Duration::Zero()) {
    GT_RETURN_NOT_OK(consumer.Consume(Event::Pause(options_.bootstrap_pause)));
    ++summary.total_events;
  }

  // Phase (ii): evolution rounds.
  size_t consecutive_skips = 0;
  size_t marker_counter = 0;
  // Reused marker label: "MARK_" + counter rendered in place.
  char marker_label[32] = "MARK_";
  constexpr size_t kMarkPrefixLen = 5;
  for (size_t round = 1; round <= options_.rounds; ++round) {
    ctx.set_round(round);
    bool emitted = false;
    for (size_t attempt = 0; attempt < options_.max_retries_per_round;
         ++attempt) {
      const EventType type = model_->NextEventType(ctx);
      if (!IsGraphOp(type)) {
        return Status::InvalidArgument(
            "model " + model_->Name() +
            " returned a non-graph event type from NextEventType");
      }
      Event event;
      Status error;
      if (!BuildEvent(type, ctx, topology, &event, &error)) {
        if (error.ok()) continue;  // no candidate this attempt — retry
        return error;
      }
      if (!model_->Constraint(event, ctx)) continue;

      // Mirror into the topology shadow; selection already guaranteed
      // validity, so a failure here is an engine bug.
      Status applied;
      switch (event.type) {
        case EventType::kAddVertex:
          applied = topology.AddVertex(event.vertex);
          ctx.BumpNextVertexId(event.vertex);
          break;
        case EventType::kRemoveVertex:
          applied = topology.RemoveVertex(event.vertex);
          break;
        case EventType::kAddEdge:
          applied = topology.AddEdge(event.edge.src, event.edge.dst);
          break;
        case EventType::kRemoveEdge:
          applied = topology.RemoveEdge(event.edge.src, event.edge.dst);
          break;
        default:
          break;  // state updates do not alter topology
      }
      if (!applied.ok()) {
        return applied.WithContext("generator engine inconsistency at round " +
                                   std::to_string(round));
      }
      GT_RETURN_NOT_OK(consumer.Consume(std::move(event)));
      ++summary.evolution_events;
      ++summary.total_events;
      emitted = true;
      break;
    }
    if (!emitted) {
      ++summary.skipped_rounds;
      if (++consecutive_skips > options_.max_consecutive_skips) {
        return Status::Internal(
            "model " + model_->Name() + " produced no applicable event for " +
            std::to_string(consecutive_skips) + " consecutive rounds");
      }
      continue;
    }
    consecutive_skips = 0;
    if (options_.marker_interval != 0 &&
        summary.evolution_events % options_.marker_interval == 0) {
      auto [end, ec] =
          std::to_chars(marker_label + kMarkPrefixLen,
                        marker_label + sizeof(marker_label), ++marker_counter);
      (void)ec;
      GT_RETURN_NOT_OK(consumer.Consume(Event::Marker(
          std::string(marker_label, static_cast<size_t>(end - marker_label)))));
      ++summary.total_events;
    }
  }
  if (options_.emit_phase_markers) {
    GT_RETURN_NOT_OK(consumer.Consume(Event::Marker("STREAM_END")));
    ++summary.total_events;
  }
  summary.final_vertices = topology.num_vertices();
  summary.final_edges = topology.num_edges();
  GT_RETURN_NOT_OK(consumer.Finish());
  return summary;
}

Result<GeneratedStream> StreamGenerator::Generate() {
  GeneratedStream result;
  CollectingConsumer consumer(&result.events);
  GT_ASSIGN_OR_RETURN(GenerateSummary summary, GenerateTo(consumer));
  result.bootstrap_events = summary.bootstrap_events;
  result.evolution_events = summary.evolution_events;
  result.skipped_rounds = summary.skipped_rounds;
  result.final_vertices = summary.final_vertices;
  result.final_edges = summary.final_edges;
  return result;
}

std::vector<Event> ApplyControlSchedule(std::vector<Event> events,
                                        std::vector<ScheduleEntry> schedule) {
  std::vector<Event> out;
  out.reserve(events.size() + schedule.size());
  size_t graph_events = 0;
  size_t next = 0;
  auto drain_due = [&]() {
    while (next < schedule.size() &&
           schedule[next].after_graph_events <= graph_events) {
      out.push_back(schedule[next].event);
      ++next;
    }
  };
  drain_due();
  for (Event& e : events) {
    const bool is_graph = IsGraphOp(e.type);
    out.push_back(std::move(e));
    if (is_graph) {
      ++graph_events;
      drain_due();
    }
  }
  // Entries past the end of the stream are appended.
  while (next < schedule.size()) {
    out.push_back(schedule[next].event);
    ++next;
  }
  return out;
}

}  // namespace graphtides
